//! Barnes-Hut n-body on the CCSVM chip (paper §5.3.1, Figure 7): the CPU
//! sequentially builds a malloc'd quadtree each timestep; MTTOP threads
//! traverse it recursively in parallel; the CPU integrates. The frequent
//! sequential/parallel toggling is exactly what loose coupling can't do.
//!
//! ```text
//! cargo run --release --example barnes_hut_demo
//! ```

use ccsvm::{Machine, SystemConfig};
use ccsvm_workloads::barnes_hut::{oracle_checksum, xthreads_source, BhParams};

fn main() {
    let params = BhParams {
        bodies: 256,
        steps: 2,
        max_threads: 1280,
        seed: 2024,
    };
    println!(
        "Barnes-Hut: {} bodies, {} timesteps, θ = 0.5, on the Table 2 chip",
        params.bodies, params.steps
    );

    let program = ccsvm_xthreads::build(&xthreads_source(&params)).expect("compiles");
    let mut machine = Machine::new(SystemConfig::paper_default(), program);
    let report = machine.run();

    let oracle = oracle_checksum(&params);
    println!("Runtime:            {}", report.time);
    println!(
        "Position checksum:  {} (oracle {})",
        report.exit_code, oracle
    );
    println!(
        "MTTOP page faults forwarded through the MIFD: {}",
        report.stats.get("mifd.faults_forwarded")
    );
    println!(
        "Launches (one per timestep's force phase): {}",
        report.stats.get("mifd.launches")
    );
    assert_eq!(
        report.exit_code, oracle,
        "timing machine matches the functional oracle"
    );
    println!("ok: pointer-chasing recursion ran on MTTOP cores over a CPU-built tree");
}
