//! The paper's Figures 3 and 4 side by side: vector addition in OpenCL
//! (what the loosely-coupled APU requires) versus xthreads (what CCSVM
//! enables). "Increased code complexity obviously does not directly lead to
//! poorer performance, but it does reveal situations in which more work
//! must be done." (§4.4)
//!
//! ```text
//! cargo run --release --example opencl_vs_xthreads
//! ```

use ccsvm_workloads::vecadd::{reference_checksum, xthreads_source, VecaddParams};

/// The paper's Figure 3 host + kernel code, verbatim in structure (what a
/// programmer must write for the APU path).
const OPENCL_LISTING: &str = r#"
__kernel void vector_add(__global int *v1, __global int *v2, __global int *sum) {
    unsigned int tid = get_global_id(0);
    sum[tid] = v1[tid] + v2[tid];
}
/* host file */
int main() {
    cl_platform_id platform_id = NULL;
    cl_device_id device_id = NULL;
    cl_uint ret_num_devices, ret_num_platforms;
    cl_int ret;
    ret = clGetPlatformIDs(1, &platform_id, &ret_num_platforms);
    ret = clGetDeviceIDs(platform_id, CL_DEVICE_TYPE_DEFAULT, 1, &device_id, &ret_num_devices);
    cl_context context = clCreateContext(NULL, 1, &device_id, NULL, NULL, &ret);
    cl_command_queue cmd_queue = clCreateCommandQueue(context, device_id, 0, &ret);
    cl_program program = clCreateProgramWithSource(context, 1, &source_str, &source_size, &ret);
    ret = clBuildProgram(program, 0, 0, NULL, NULL, NULL);
    cl_mem v1_mem_obj = clCreateBuffer(context, CL_MEM_ALLOC_HOST_PTR | CL_MEM_READ_WRITE, 256*sizeof(int), NULL, &ret);
    cl_mem v2_mem_obj = clCreateBuffer(context, CL_MEM_ALLOC_HOST_PTR | CL_MEM_READ_WRITE, 256*sizeof(int), NULL, &ret);
    cl_mem sum_mem_obj = clCreateBuffer(context, CL_MEM_ALLOC_HOST_PTR | CL_MEM_READ_WRITE, 256*sizeof(int), NULL, &ret);
    int *v1 = (int*)clEnqueueMapBuffer(cmd_queue, v1_mem_obj, CL_TRUE, 0, 0, 256*sizeof(int), 0, NULL, NULL, NULL);
    int *v2 = (int*)clEnqueueMapBuffer(cmd_queue, v2_mem_obj, CL_TRUE, 0, 0, 256*sizeof(int), 0, NULL, NULL, NULL);
    for (int i = 0; i < 256; i++) { v1[i] = rand(); v2[i] = rand(); }
    clEnqueueUnmapMemObject(cmd_queue, v1_mem_obj, v1, 0, NULL, NULL);
    clEnqueueUnmapMemObject(cmd_queue, v2_mem_obj, v2, 0, NULL, NULL);
    cl_kernel kernel = clCreateKernel(program, "vector_add", &ret);
    size_t gsize = 256;
    ret = clSetKernelArg(kernel, 0, sizeof(cl_mem), (void*)&v1_mem_obj);
    ret = clSetKernelArg(kernel, 1, sizeof(cl_mem), (void*)&v2_mem_obj);
    ret = clSetKernelArg(kernel, 2, sizeof(cl_mem), (void*)&sum_mem_obj);
    ret = clEnqueueNDRangeKernel(cmd_queue, kernel, 1, NULL, &gsize, NULL, 0, NULL, NULL);
    clFinish(cmd_queue);
    clEnqueueUnmapMemObject(cmd_queue, sum_mem_obj, sum, 0, NULL, NULL);
    clReleaseMemObject(v1_mem_obj);
    clReleaseMemObject(v2_mem_obj);
    clReleaseMemObject(sum_mem_obj);
    return 0;
}
"#;

fn meaningful_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && *l != "*/")
        .count()
}

/// The paper's Figure 4 (xthreads) listing — just the offload orchestration,
/// matching what Figure 3 shows for OpenCL.
const XTHREADS_LISTING: &str = r#"
struct Args { v1: int*; v2: int*; sum: int*; done: int*; }
_MTTOP_ fn add(tid: int, a: Args*) {
    a->sum[tid] = a->v1[tid] + a->v2[tid];
    xt_msignal(a->done, tid);
}
_CPU_ fn main() -> int {
    let a: Args* = malloc(sizeof(Args));
    a->v1 = malloc(256 * 8);
    a->v2 = malloc(256 * 8);
    a->sum = malloc(256 * 8);
    a->done = malloc(256 * 8);
    for (let i = 0; i < 256; i = i + 1) {
        a->v1[i] = rand(); a->v2[i] = rand(); a->done[i] = 0;
    }
    xt_create_mthread(add, a as int, 0, 255);
    xt_wait(a->done, 0, 255);
    return 0;
}
"#;

fn main() {
    let p = VecaddParams { n: 256, seed: 7 };
    let xthreads = xthreads_source(&p);

    let ocl = meaningful_lines(OPENCL_LISTING);
    let xt = meaningful_lines(XTHREADS_LISTING);
    println!("== Figure 3 vs Figure 4: what the programmer writes for vector add");
    println!("OpenCL (APU):        {ocl:3} lines  (context, queue, JIT build, buffers, mapping, args, launch, sync, release)");
    println!("xthreads (CCSVM):    {xt:3} lines  (malloc, fill, create_mthread, wait)");
    println!("ratio:               {:.1}x", ocl as f64 / xt as f64);

    // And the xthreads one actually runs, on the simulated chip:
    let program = ccsvm_xthreads::build(&xthreads).expect("compiles");
    let mut m = ccsvm::Machine::new(ccsvm::SystemConfig::paper_default(), program);
    let report = m.run();
    assert_eq!(report.exit_code, reference_checksum(&p));
    println!(
        "\nxthreads version executed on the CCSVM chip: checksum {} in {}",
        report.exit_code, report.time
    );
}
