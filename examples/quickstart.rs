//! Quickstart: the paper's Figure 4 program — vector addition written in
//! the xthreads model — compiled and run on the simulated CCSVM chip.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ccsvm::{Machine, SystemConfig};

const PROGRAM: &str = r#"
// Figure 4, ported to XC: a CPU thread spawns 256 MTTOP threads that each
// add one element, signal their condition variable, and exit. The CPU waits
// on the condition array — all through ordinary coherent shared memory.
struct Args { v1: int*; v2: int*; sum: int*; done: int*; }

_MTTOP_ fn add(tid: int, a: Args*) {
    a->sum[tid] = a->v1[tid] + a->v2[tid];
    xt_msignal(a->done, tid);
}

_CPU_ fn main() -> int {
    let n = 256;
    let a: Args* = malloc(sizeof(Args));
    a->v1 = malloc(n * 8);
    a->v2 = malloc(n * 8);
    a->sum = malloc(n * 8);
    a->done = malloc(n * 8);
    let x = 12345;
    for (let i = 0; i < n; i = i + 1) {
        x = x * 6364136223846793005 + 1442695040888963407;
        a->v1[i] = (x >> 33) % 1000;
        x = x * 6364136223846793005 + 1442695040888963407;
        a->v2[i] = (x >> 33) % 1000;
        a->done[i] = 0;
    }
    if (xt_create_mthread(add, a as int, 0, n - 1) != 0) { return -1; }
    xt_wait(a->done, 0, n - 1);
    let total = 0;
    for (let i = 0; i < n; i = i + 1) { total = total + a->sum[i]; }
    print_int(total);
    return total;
}
"#;

fn main() {
    println!("Compiling the Figure 4 program with xcc + the xthreads runtime...");
    let program = ccsvm_xthreads::build(PROGRAM).expect("program compiles");
    println!(
        "  {} HIR instructions, {} symbols",
        program.text.len(),
        program.symbols.len()
    );

    println!("Booting the Table 2 CCSVM chip (4 CPUs + 10 MTTOPs, shared L2, torus)...");
    let mut machine = Machine::new(SystemConfig::paper_default(), program);
    let report = machine.run();

    println!("Guest printed: {:?}", report.printed);
    println!("Runtime:       {}", report.time);
    println!("Instructions:  {}", report.instructions);
    println!("DRAM accesses: {}", report.dram_accesses);
    println!(
        "MTTOP launches/chunks: {}/{}",
        report.stats.get("mifd.launches"),
        report.stats.get("mifd.chunks")
    );
    assert_eq!(report.printed.len(), 1, "one print from the guest");
    println!("ok: 256 MTTOP threads cooperated with the CPU through coherent shared memory");
}
