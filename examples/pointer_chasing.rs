//! Pointer-based, dynamically allocated data structures shared between CPU
//! and MTTOP cores — the capability the paper's §5.3 argues CCSVM unlocks
//! ("thus extending MTTOP applications from primarily numerical code to
//! include pointer-chasing code").
//!
//! MTTOP threads build per-thread linked lists with `mttop_malloc` (proxied
//! through a CPU malloc server, §5.3.2); the CPU then walks the very same
//! pointers.
//!
//! ```text
//! cargo run --release --example pointer_chasing
//! ```

use ccsvm::{Machine, SystemConfig};

const PROGRAM: &str = r#"
struct Node { val: int; next: Node*; }
struct Args { req: int*; resp: int*; heads: int*; done: int*; per: int; }

_MTTOP_ fn build(tid: int, a: Args*) {
    let head: Node* = 0 as Node*;
    for (let i = 1; i <= a->per; i = i + 1) {
        let n: Node* = xt_mttop_malloc(a->req, a->resp, tid, sizeof(Node)) as Node*;
        n->val = tid * 100 + i;
        n->next = head;
        head = n;
    }
    a->heads[tid] = head as int;
    xt_msignal(a->done, tid);
}

_CPU_ fn main() -> int {
    let nt = 64;
    let a: Args* = malloc(sizeof(Args));
    a->req = malloc(nt * 8);
    a->resp = malloc(nt * 8);
    a->heads = malloc(nt * 8);
    a->done = malloc(nt * 8);
    a->per = 5;
    for (let i = 0; i < nt; i = i + 1) { a->req[i] = 0; a->resp[i] = 0; a->done[i] = 0; }

    xt_create_mthread(build, a as int, 0, nt - 1);
    xt_malloc_server(a->req, a->resp, nt, a->done, 0, nt - 1);

    // The CPU traverses MTTOP-built lists directly: same pointers, same
    // address space, kept coherent by hardware.
    let total = 0;
    let nodes = 0;
    for (let t = 0; t < nt; t = t + 1) {
        let p: Node* = a->heads[t] as Node*;
        while (p != 0 as Node*) {
            total = total + p->val;
            nodes = nodes + 1;
            p = p->next;
        }
    }
    print_int(nodes);
    print_int(total);
    return total;
}
"#;

fn main() {
    let program = ccsvm_xthreads::build(PROGRAM).expect("program compiles");
    let mut machine = Machine::new(SystemConfig::paper_default(), program);
    let report = machine.run();

    let expect: u64 = (0..64u64)
        .map(|t| (1..=5u64).map(|i| t * 100 + i).sum::<u64>())
        .sum();
    println!("Nodes allocated by MTTOP threads: {}", report.printed[0]);
    println!("Checksum walked by the CPU:       {}", report.printed[1]);
    println!("Expected:                         {expect}");
    println!(
        "Runtime: {}   (mttop_malloc requests proxied through a CPU server)",
        report.time
    );
    assert_eq!(report.exit_code, expect);
    assert_eq!(report.printed[0], "320");
    println!("ok: 320 heap nodes allocated from MTTOP threads and traversed by the CPU");
}
