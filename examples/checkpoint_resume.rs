//! Checkpoint/resume: pause a simulation mid-offload, snapshot it to disk,
//! restore the image into a brand-new machine, and finish — proving the
//! resumed run is bit-for-bit identical to the uninterrupted one.
//!
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```

use ccsvm::{Machine, SystemConfig, Time};

const PROGRAM: &str = r#"
// The Figure 4 vector-add shape: 256 MTTOP threads cooperate with the CPU
// through coherent shared memory — plenty of in-flight state to snapshot.
struct Args { v1: int*; v2: int*; sum: int*; done: int*; }

_MTTOP_ fn add(tid: int, a: Args*) {
    a->sum[tid] = a->v1[tid] + a->v2[tid];
    xt_msignal(a->done, tid);
}

_CPU_ fn main() -> int {
    let n = 256;
    let a: Args* = malloc(sizeof(Args));
    a->v1 = malloc(n * 8);
    a->v2 = malloc(n * 8);
    a->sum = malloc(n * 8);
    a->done = malloc(n * 8);
    for (let i = 0; i < n; i = i + 1) {
        a->v1[i] = i * 3;
        a->v2[i] = i + 7;
        a->done[i] = 0;
    }
    if (xt_create_mthread(add, a as int, 0, n - 1) != 0) { return -1; }
    xt_wait(a->done, 0, n - 1);
    let total = 0;
    for (let i = 0; i < n; i = i + 1) { total = total + a->sum[i]; }
    print_int(total);
    return total;
}
"#;

fn main() {
    let cfg = SystemConfig::paper_default();
    let build = || ccsvm_xthreads::build(PROGRAM).expect("program compiles");

    // The uninterrupted reference run.
    let reference = Machine::new(cfg.clone(), build()).run();
    println!(
        "reference run: exit {} at {}",
        reference.exit_code, reference.time
    );

    // Run a second machine to the middle of that, then checkpoint. A paused
    // machine sits between two dispatched events — mid-offload here, with
    // warps in flight and coherence transactions outstanding.
    let half = Time::from_ps(reference.time.as_ps() / 2);
    let mut m = Machine::new(cfg.clone(), build());
    assert!(m.run_until(half).is_none(), "still mid-run at {half}");
    let path = std::env::temp_dir().join("ccsvm-example.ccsnap");
    m.checkpoint(&path).expect("write snapshot");
    println!(
        "checkpointed at {} -> {} ({} bytes)",
        m.now(),
        path.display(),
        std::fs::metadata(&path).map(|md| md.len()).unwrap_or(0)
    );
    drop(m); // the original machine is gone — only the image survives

    // Restore into a brand-new machine (think: a later process, or a crash
    // recovery) and finish the run.
    let mut restored = Machine::restore(cfg.clone(), build(), &path).expect("restore snapshot");
    let resumed = restored.run();
    println!(
        "resumed run:   exit {} at {}",
        resumed.exit_code, resumed.time
    );
    assert_eq!(resumed, reference, "resumed report is bit-identical");

    // A snapshot never restores into the wrong machine: mismatched
    // configuration is a typed error up front, not silent corruption.
    let mut other = cfg.clone();
    other.n_cpus += 1;
    match Machine::restore(other, build(), &path) {
        Err(e) => println!("wrong config rejected: {e}"),
        Ok(_) => panic!("a 5-CPU machine must not accept a 4-CPU image"),
    }

    let _ = std::fs::remove_file(&path);
    println!("ok: checkpoint -> restore -> run reproduced the uninterrupted report exactly");
}
