//! Cross-crate integration tests: whole-stack scenarios that span the
//! compiler, runtime, OS, coherence protocol and both core types.

use ccsvm::{Machine, SystemConfig};
use ccsvm_engine::Time;
use ccsvm_mem::WritePolicy;

fn run(cfg: SystemConfig, src: &str) -> ccsvm::RunReport {
    let prog = ccsvm_xthreads::build(src).unwrap_or_else(|e| panic!("compile: {e}"));
    Machine::new(cfg, prog).run()
}

fn tiny() -> SystemConfig {
    SystemConfig::tiny()
}

#[test]
fn simulation_is_deterministic() {
    let src = "struct Args { out: int*; done: int*; }
        _MTTOP_ fn k(tid: int, a: Args*) {
            let acc = 0;
            for (let i = 0; i < tid + 3; i = i + 1) { acc = acc + i * tid; }
            a->out[tid] = acc;
            xt_msignal(a->done, tid);
        }
        _CPU_ fn main() -> int {
            let n = 24;
            let a: Args* = malloc(sizeof(Args));
            a->out = malloc(n * 8);
            a->done = malloc(n * 8);
            for (let i = 0; i < n; i = i + 1) { a->done[i] = 0; }
            xt_create_mthread(k, a as int, 0, n - 1);
            xt_wait(a->done, 0, n - 1);
            let s = 0;
            for (let i = 0; i < n; i = i + 1) { s = s + a->out[i]; }
            return s;
        }";
    let a = run(tiny(), src);
    let b = run(tiny(), src);
    assert_eq!(a.exit_code, b.exit_code);
    assert_eq!(a.time, b.time, "bit-identical timing across runs");
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.dram_accesses, b.dram_accesses);
}

#[test]
fn write_through_ablation_config_is_correct_but_heavier() {
    let src = "struct Args { out: int*; done: int*; }
        _MTTOP_ fn k(tid: int, a: Args*) {
            for (let i = 0; i < 16; i = i + 1) { a->out[tid * 16 + i] = tid + i; }
            xt_msignal(a->done, tid);
        }
        _CPU_ fn main() -> int {
            let n = 16;
            let a: Args* = malloc(sizeof(Args));
            a->out = malloc(n * 16 * 8);
            a->done = malloc(n * 8);
            for (let i = 0; i < n; i = i + 1) { a->done[i] = 0; }
            xt_create_mthread(k, a as int, 0, n - 1);
            xt_wait(a->done, 0, n - 1);
            let s = 0;
            for (let i = 0; i < n * 16; i = i + 1) { s = s + a->out[i]; }
            return s;
        }";
    let wb = run(tiny(), src);
    let mut cfg = tiny();
    cfg.l1_write_policy = WritePolicy::WriteThrough;
    let wt = run(cfg, src);
    assert_eq!(wb.exit_code, wt.exit_code, "policy must not change results");
    let wb_writebacks: f64 = (0..4)
        .map(|i| wb.stats.get(&format!("mem.l1.{i}.writebacks")))
        .sum();
    let wt_writebacks: f64 = (0..4)
        .map(|i| wt.stats.get(&format!("mem.l1.{i}.writebacks")))
        .sum();
    assert!(
        wt_writebacks > wb_writebacks,
        "write-through pushes a data message per store (paper 6.1): {wt_writebacks} vs {wb_writebacks}"
    );
}

#[test]
fn sequential_launches_reuse_warp_contexts() {
    // tiny chip: 64 contexts. Launch 3 waves of 64 threads back to back —
    // contexts must recycle after each wave exits.
    let src = "struct Args { out: int*; done: int*; base: int; }
        _MTTOP_ fn k(tid: int, a: Args*) {
            a->out[a->base + tid] = a->base + tid;
            xt_msignal(a->done, tid);
        }
        _CPU_ fn main() -> int {
            let a: Args* = malloc(sizeof(Args));
            a->out = malloc(192 * 8);
            a->done = malloc(64 * 8);
            for (let w = 0; w < 3; w = w + 1) {
                for (let i = 0; i < 64; i = i + 1) { a->done[i] = 0; }
                a->base = w * 64;
                // A wave's warps free only when every lane has executed
                // `exit`, which can trail the done-signals; retry on the
                // MIFD's error register like real software would.
                while (xt_create_mthread(k, a as int, 0, 63) != 0) { }
                xt_wait(a->done, 0, 63);
            }
            let s = 0;
            for (let i = 0; i < 192; i = i + 1) { s = s + a->out[i]; }
            return s;
        }";
    let r = run(tiny(), src);
    assert_eq!(r.exit_code, (0..192u64).sum::<u64>());
    assert!(r.stats.get("mifd.launches") >= 3.0);
}

#[test]
fn cpu_to_mttop_wait_signal_direction() {
    // MTTOP threads wait on the CPU (xt_mwait); CPU releases them.
    let src = "struct Args { gate: int*; out: int*; done: int*; }
        _MTTOP_ fn k(tid: int, a: Args*) {
            xt_mwait(a->gate, tid);
            a->out[tid] = 7;
            xt_msignal(a->done, tid);
        }
        _CPU_ fn main() -> int {
            let n = 8;
            let a: Args* = malloc(sizeof(Args));
            a->gate = malloc(n * 8);
            a->out = malloc(n * 8);
            a->done = malloc(n * 8);
            for (let i = 0; i < n; i = i + 1) {
                a->gate[i] = 0; a->out[i] = 0; a->done[i] = 0;
            }
            xt_create_mthread(k, a as int, 0, n - 1);
            // Nothing may proceed before the signal.
            let early = 0;
            for (let i = 0; i < n; i = i + 1) { early = early + a->out[i]; }
            xt_signal(a->gate, 0, n - 1);
            xt_wait(a->done, 0, n - 1);
            let s = 0;
            for (let i = 0; i < n; i = i + 1) { s = s + a->out[i]; }
            return early * 1000 + s;
        }";
    let r = run(tiny(), src);
    assert_eq!(r.exit_code, 56, "early sum 0, final sum 8*7");
}

#[test]
fn dekker_litmus_no_both_zero_under_sc() {
    // Store-buffering litmus across a CPU thread and an MTTOP thread: under
    // SC at least one side must observe the other's store.
    let src = "struct Args { x: int*; y: int*; r: int*; done: int*; }
        _MTTOP_ fn t1(tid: int, a: Args*) {
            *(a->x) = 1;
            a->r[0] = *(a->y);
            xt_msignal(a->done, 0);
        }
        _CPU_ fn main() -> int {
            let a: Args* = malloc(sizeof(Args));
            a->x = malloc(64);
            a->y = malloc(64);
            a->r = malloc(64);
            a->done = malloc(64);
            *(a->x) = 0; *(a->y) = 0; a->done[0] = 0;
            xt_create_mthread(t1, a as int, 0, 0);
            *(a->y) = 1;
            let r1 = *(a->x);
            xt_wait(a->done, 0, 0);
            let r0 = a->r[0];
            if (r0 == 0 && r1 == 0) { return -1; }
            return r0 * 10 + r1;
        }";
    for _ in 0..3 {
        let r = run(tiny(), src);
        assert_ne!(r.exit_code as i64, -1, "SC forbids both observing 0");
    }
}

#[test]
fn minimal_and_wide_configs_boot() {
    let src = "_MTTOP_ fn k(tid: int, out: int*) { out[tid] = 1; }
        _CPU_ fn main() -> int {
            let out: int* = malloc(8 * 8);
            for (let i = 0; i < 8; i = i + 1) { out[i] = 0; }
            xt_create_mthread(k, out as int, 0, 7);
            let s = 0;
            while (s != 8) {
                s = 0;
                for (let i = 0; i < 8; i = i + 1) { s = s + out[i]; }
            }
            return s;
        }";
    // 1 CPU + 1 MTTOP, single bank.
    let mut small = SystemConfig::tiny();
    small.n_cpus = 1;
    small.n_mttops = 1;
    small.l2_banks = 1;
    assert_eq!(run(small, src).exit_code, 8);
    // Wide: 8 banks on a bigger torus.
    let mut wide = SystemConfig::tiny();
    wide.l2_banks = 8;
    wide.torus = (4, 4);
    assert_eq!(run(wide, src).exit_code, 8);
}

#[test]
fn deep_mttop_recursion_faults_in_more_stack() {
    // Recursion on MTTOP lanes descends past the pre-mapped top stack page,
    // forcing mid-kernel page faults through the MIFD.
    let src = "struct Args { out: int*; done: int*; }
        fn burn(depth: int) -> int {
            let pad0 = depth; let pad1 = depth; let pad2 = depth; let pad3 = depth;
            &pad0; &pad1; &pad2; &pad3;  // force frame slots (stack depth)
            if (depth == 0) { return pad0 + pad3; }
            return burn(depth - 1) + 1;
        }
        _MTTOP_ fn k(tid: int, a: Args*) {
            a->out[tid] = burn(120);
            xt_msignal(a->done, tid);
        }
        _CPU_ fn main() -> int {
            let n = 4;
            let a: Args* = malloc(sizeof(Args));
            a->out = malloc(n * 8);
            a->done = malloc(n * 8);
            for (let i = 0; i < n; i = i + 1) { a->done[i] = 0; }
            xt_create_mthread(k, a as int, 0, n - 1);
            xt_wait(a->done, 0, n - 1);
            return a->out[0] + a->out[3];
        }";
    let r = run(tiny(), src);
    assert_eq!(r.exit_code, 2 * 120);
    assert!(
        r.stats.get("mifd.faults_forwarded") > 0.0,
        "deep recursion must fault beyond the pre-mapped stack page"
    );
}

#[test]
fn report_time_is_monotone_with_work() {
    let mk = |iters: u64| {
        format!(
            "_CPU_ fn main() -> int {{
                let s = 0;
                for (let i = 0; i < {iters}; i = i + 1) {{ s = s + i; }}
                return s % 1000;
            }}"
        )
    };
    let small = run(tiny(), &mk(100));
    let big = run(tiny(), &mk(10000));
    assert!(big.time > small.time);
    assert!(big.time.as_us() > 0.0);
    assert!(big.time < Time::from_ms(100), "sane absolute scale");
}
