//! `OsLite`: the kernel-lite managing physical frames and page tables.
//!
//! The paper runs unmodified Linux on the CPU cores; the only OS services its
//! evaluation actually exercises are address-space management (mmap/brk),
//! demand paging, page-fault handling (including faults forwarded from MTTOP
//! cores via the MIFD), and TLB shootdown. `OsLite` provides exactly those.
//!
//! All page-table *modifications* are returned as [`PteWrite`] lists rather
//! than applied directly: during simulation the machine model issues them as
//! coherent stores from the CPU core running the handler (so they cost real
//! time and traffic, and hardware walkers at other cores observe them through
//! the coherence protocol); before simulation the loader applies them through
//! the memory backdoor.

use ccsvm_engine::FxHashMap;
use ccsvm_mem::PhysAddr;

use crate::walk::{VirtAddr, PAGE_BYTES, PTE_PRESENT};

/// A single page-table-entry store the OS wants performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PteWrite {
    /// Physical address of the 8-byte PTE.
    pub addr: PhysAddr,
    /// Value to store.
    pub value: u64,
}

/// The kernel-lite: physical frames, page tables, PTE-write generation.
///
/// # Examples
///
/// ```
/// use ccsvm_vm::{OsLite, VirtAddr};
/// let mut os = OsLite::new(0x10_0000, 0x8000_0000);
/// let writes = os.map_page(VirtAddr(0x4000_0000));
/// assert!(!writes.is_empty());
/// assert!(os.translate(VirtAddr(0x4000_0123)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct OsLite {
    /// Next never-allocated frame cursor (counts allocations).
    next_frame: u64,
    /// Start of the physical memory pool.
    phys_base: u64,
    /// End of the physical memory pool (exclusive).
    phys_end: u64,
    /// Recycled frames.
    free_frames: Vec<u64>,
    /// Authoritative mirror of every PTE the OS has written.
    mirror: FxHashMap<u64, u64>,
    /// Root page table (the process CR3).
    root: PhysAddr,
    /// Leaf mapping mirror: vpn → frame base (fast host-side translate).
    pages: FxHashMap<u64, u64>,
    faults_handled: u64,
}

impl OsLite {
    /// Creates the kernel with a physical pool `[phys_base, phys_end)` and
    /// allocates the root page table from it.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty or misaligned.
    pub fn new(phys_base: u64, phys_end: u64) -> OsLite {
        assert!(
            phys_base.is_multiple_of(PAGE_BYTES),
            "pool must be page-aligned"
        );
        assert!(phys_end > phys_base, "empty physical pool");
        let mut os = OsLite {
            next_frame: phys_base,
            phys_base,
            phys_end,
            free_frames: Vec::new(),
            mirror: FxHashMap::default(),
            root: PhysAddr(0),
            pages: FxHashMap::default(),
            faults_handled: 0,
        };
        os.root = PhysAddr(os.alloc_frame());
        os
    }

    /// The process page-table root (loaded into each core's CR3).
    pub fn cr3(&self) -> PhysAddr {
        self.root
    }

    /// Allocates one physical frame.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted.
    pub fn alloc_frame(&mut self) -> u64 {
        if let Some(f) = self.free_frames.pop() {
            return f;
        }
        assert!(
            self.next_frame < self.phys_end,
            "out of physical memory at {:#x}",
            self.next_frame
        );
        let f = self.next_frame;
        self.next_frame += PAGE_BYTES;
        f
    }

    /// Maps the page containing `va` to a newly allocated frame (the page
    /// fault handler), creating intermediate tables as needed. No-op (empty
    /// list) if already mapped.
    pub fn map_page(&mut self, va: VirtAddr) -> Vec<PteWrite> {
        let frame = match self.pages.get(&va.vpn()) {
            Some(_) => return Vec::new(),
            None => self.alloc_frame(),
        };
        self.faults_handled += 1;
        self.map_fixed(va, PhysAddr(frame))
    }

    /// Maps the page containing `va` to the given frame base.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped or `frame` is not page-aligned.
    pub fn map_fixed(&mut self, va: VirtAddr, frame: PhysAddr) -> Vec<PteWrite> {
        assert!(
            frame.0.is_multiple_of(PAGE_BYTES),
            "frame must be page-aligned"
        );
        assert!(
            !self.pages.contains_key(&va.vpn()),
            "page {va} already mapped"
        );
        let mut writes = Vec::new();
        let mut table = self.root;
        for level in (1..4).rev() {
            let pte_addr = table.0 + va.index(level) * 8;
            let pte = self.mirror.get(&pte_addr).copied().unwrap_or(0);
            if pte & PTE_PRESENT == 0 {
                let child = self.alloc_frame();
                let value = child | PTE_PRESENT;
                self.mirror.insert(pte_addr, value);
                writes.push(PteWrite {
                    addr: PhysAddr(pte_addr),
                    value,
                });
                table = PhysAddr(child);
            } else {
                table = PhysAddr(pte & !(PAGE_BYTES - 1));
            }
        }
        let pte_addr = table.0 + va.index(0) * 8;
        let value = frame.0 | PTE_PRESENT;
        self.mirror.insert(pte_addr, value);
        writes.push(PteWrite {
            addr: PhysAddr(pte_addr),
            value,
        });
        self.pages.insert(va.vpn(), frame.0);
        writes
    }

    /// Unmaps the page containing `va`, recycling its frame. Returns the PTE
    /// clear to perform; the caller is responsible for the TLB shootdown.
    /// Returns an empty list if the page was not mapped.
    pub fn unmap_page(&mut self, va: VirtAddr) -> Vec<PteWrite> {
        let Some(frame) = self.pages.remove(&va.vpn()) else {
            return Vec::new();
        };
        self.free_frames.push(frame);
        // Find the leaf PTE address by mirror-walking.
        let mut table = self.root;
        for level in (1..4).rev() {
            let pte_addr = table.0 + va.index(level) * 8;
            let pte = self.mirror[&pte_addr];
            table = PhysAddr(pte & !(PAGE_BYTES - 1));
        }
        let pte_addr = table.0 + va.index(0) * 8;
        self.mirror.insert(pte_addr, 0);
        vec![PteWrite {
            addr: PhysAddr(pte_addr),
            value: 0,
        }]
    }

    /// Whether `va`'s page has a mapping.
    pub fn is_mapped(&self, va: VirtAddr) -> bool {
        self.pages.contains_key(&va.vpn())
    }

    /// Host-side translation using the mirror (loaders, tests, assertions —
    /// the simulated cores use hardware walks instead).
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.pages
            .get(&va.vpn())
            .map(|f| PhysAddr(f + va.page_offset()))
    }

    /// Number of demand-paging faults handled.
    pub fn faults_handled(&self) -> u64 {
        self.faults_handled
    }

    /// Number of distinct frames ever allocated (including page tables).
    pub fn frames_allocated(&self) -> u64 {
        (self.next_frame - self.phys_base) / PAGE_BYTES
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec. Any change here is a snapshot schema change (bump
// `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

impl ccsvm_snap::Snapshot for OsLite {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        // `phys_base`/`phys_end` are construction parameters (config-derived)
        // and not serialized. `free_frames` keeps its LIFO order; hash maps
        // are written sorted so the byte stream is canonical.
        w.put_u64(self.next_frame);
        w.put_usize(self.free_frames.len());
        for &f in &self.free_frames {
            w.put_u64(f);
        }
        let mut ptes: Vec<u64> = self.mirror.keys().copied().collect();
        ptes.sort_unstable();
        w.put_usize(ptes.len());
        for a in ptes {
            w.put_u64(a);
            w.put_u64(self.mirror[&a]);
        }
        w.put_u64(self.root.0);
        let mut vpns: Vec<u64> = self.pages.keys().copied().collect();
        vpns.sort_unstable();
        w.put_usize(vpns.len());
        for v in vpns {
            w.put_u64(v);
            w.put_u64(self.pages[&v]);
        }
        w.put_u64(self.faults_handled);
    }

    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.next_frame = r.get_u64()?;
        self.free_frames.clear();
        for _ in 0..r.get_usize()? {
            self.free_frames.push(r.get_u64()?);
        }
        self.mirror.clear();
        for _ in 0..r.get_usize()? {
            let addr = r.get_u64()?;
            self.mirror.insert(addr, r.get_u64()?);
        }
        self.root = PhysAddr(r.get_u64()?);
        self.pages.clear();
        for _ in 0..r.get_usize()? {
            let vpn = r.get_u64()?;
            self.pages.insert(vpn, r.get_u64()?);
        }
        self.faults_handled = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{Walk, WalkResult};
    use std::collections::HashMap;

    fn os() -> OsLite {
        OsLite::new(0x10_0000, 0x10_0000 + 64 * 1024 * 1024)
    }

    /// Applies OsLite's writes to a flat map and runs the *hardware* walk
    /// against it, proving the generated PTEs are what walkers need.
    fn hw_translate(os: &OsLite, mem: &HashMap<u64, u64>, va: VirtAddr) -> Option<PhysAddr> {
        let mut walk = Walk::new(os.cr3(), va);
        loop {
            let pte = mem.get(&walk.pte_addr().0).copied().unwrap_or(0);
            match walk.feed(pte) {
                WalkResult::Continue(w) => walk = w,
                WalkResult::Done(frame) => return Some(crate::walk::frame_plus_offset(frame, va)),
                WalkResult::Fault(_) => return None,
            }
        }
    }

    #[test]
    fn map_page_generates_walkable_tables() {
        let mut os = os();
        let mut mem = HashMap::new();
        let va = VirtAddr(0x4000_2000);
        for w in os.map_page(va) {
            mem.insert(w.addr.0, w.value);
        }
        let hw = hw_translate(&os, &mem, VirtAddr(0x4000_2ABC)).expect("mapped");
        assert_eq!(Some(hw), os.translate(VirtAddr(0x4000_2ABC)));
        assert!(hw_translate(&os, &mem, VirtAddr(0x4000_3000)).is_none());
    }

    #[test]
    fn first_map_writes_four_levels_second_writes_one() {
        let mut os = os();
        let w1 = os.map_page(VirtAddr(0x4000_0000));
        assert_eq!(w1.len(), 4);
        let w2 = os.map_page(VirtAddr(0x4000_1000)); // same leaf table
        assert_eq!(w2.len(), 1);
        let far = os.map_page(VirtAddr(0x7000_0000_0000)); // different L3 subtree
        assert_eq!(far.len(), 4);
    }

    #[test]
    fn double_map_is_noop() {
        let mut os = os();
        assert_eq!(os.map_page(VirtAddr(0x1000)).len(), 4);
        assert!(os.map_page(VirtAddr(0x1000)).is_empty());
        assert!(os.map_page(VirtAddr(0x1FFF)).is_empty());
        assert_eq!(os.faults_handled(), 1);
    }

    #[test]
    fn unmap_then_walk_faults_and_frame_recycles() {
        let mut os = os();
        let mut mem = HashMap::new();
        for w in os.map_page(VirtAddr(0x5000)) {
            mem.insert(w.addr.0, w.value);
        }
        let frame = os.translate(VirtAddr(0x5000)).unwrap();
        for w in os.unmap_page(VirtAddr(0x5000)) {
            mem.insert(w.addr.0, w.value);
        }
        assert!(hw_translate(&os, &mem, VirtAddr(0x5000)).is_none());
        assert!(!os.is_mapped(VirtAddr(0x5000)));
        // The freed frame is reused.
        os.map_page(VirtAddr(0x9000));
        assert_eq!(os.translate(VirtAddr(0x9000)), Some(PhysAddr(frame.0)));
        assert!(os.unmap_page(VirtAddr(0x5000)).is_empty(), "double unmap");
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut os = os();
        os.map_page(VirtAddr(0x0000));
        os.map_page(VirtAddr(0x1000));
        let a = os.translate(VirtAddr(0x0000)).unwrap();
        let b = os.translate(VirtAddr(0x1000)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of physical memory")]
    fn pool_exhaustion_panics() {
        // Pool of 4 frames: root + 3 table levels leaves nothing for data.
        let mut os = OsLite::new(0x10_0000, 0x10_0000 + 4 * PAGE_BYTES);
        os.map_page(VirtAddr(0x0));
    }

    #[test]
    fn map_fixed_controls_frame() {
        let mut os = os();
        os.map_fixed(VirtAddr(0x2000), PhysAddr(0x123000));
        assert_eq!(os.translate(VirtAddr(0x2004)), Some(PhysAddr(0x123004)));
    }
}
