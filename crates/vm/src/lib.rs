//! Shared virtual memory for the CCSVM chip (paper §3.2.1).
//!
//! The paper's SVM design follows x86: hardware page-table walkers at every
//! core (CPU *and* MTTOP), a per-core CR3, per-core TLBs (64-entry, fully
//! associative, Table 2), OS-managed page tables, page faults serviced by CPU
//! cores (MTTOP faults are forwarded through the MIFD), and conservative TLB
//! shootdown that *flushes* all MTTOP TLBs.
//!
//! This crate provides the mechanisms:
//!
//! * [`VirtAddr`] and the 4-level, 4 KiB-page [`Walk`] state machine. The walk
//!   is driven by the *core models*: they read each PTE through their own L1
//!   (PTEs are cacheable and coherent, as on real x86), feed the value back,
//!   and either finish with a translation or raise a [`Fault`].
//! * [`Tlb`] — fully-associative, true-LRU translation cache with flush and
//!   single-entry invalidate (shootdown uses both).
//! * [`OsLite`] — the kernel-lite: physical frame allocator, authoritative
//!   page-table mirror, and PTE-write generation. Every mapping change is
//!   returned as a list of [`PteWrite`]s so the machine can either apply them
//!   through a CPU core's coherent stores (during simulation, e.g. in a fault
//!   handler) or through the memory backdoor (pre-run loading).
//! * [`GuestHeap`] — the `malloc`/`free` used by the xthreads runtime
//!   (`mttop_malloc` offloads to a CPU running this allocator, §5.3.2).

mod heap;
mod os;
mod tlb;
mod walk;

pub use heap::GuestHeap;
pub use os::{OsLite, PteWrite};
pub use tlb::Tlb;
pub use walk::{frame_plus_offset, Fault, VirtAddr, Walk, WalkResult, PAGE_BYTES, PTE_PRESENT};
