//! Virtual addresses and the 4-level hardware page-table walk.

use ccsvm_mem::PhysAddr;
use std::fmt;

/// Page size (x86 4 KiB pages).
pub const PAGE_BYTES: u64 = 4096;
/// Present bit in a PTE; the rest of the low 12 bits are reserved-zero and
/// bits 12+ hold the frame base.
pub const PTE_PRESENT: u64 = 1;

const LEVELS: u8 = 4;
const IDX_BITS: u64 = 9;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;

/// A virtual address in the process's shared address space.
///
/// # Examples
///
/// ```
/// use ccsvm_vm::VirtAddr;
/// let va = VirtAddr(0x7000_1234);
/// assert_eq!(va.page_offset(), 0x234);
/// assert_eq!(va.vpn(), 0x7000_1234 >> 12);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Offset within the 4 KiB page.
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Virtual page number.
    pub fn vpn(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Base address of the containing page.
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_BYTES - 1))
    }

    /// Page-table index at `level` (3 = root .. 0 = leaf).
    pub fn index(self, level: u8) -> u64 {
        debug_assert!(level < LEVELS);
        (self.0 >> (12 + IDX_BITS * level as u64)) & IDX_MASK
    }

    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A page fault discovered by the walker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulting virtual address.
    pub va: VirtAddr,
    /// The level whose PTE was not present (3 = root .. 0 = leaf).
    pub level: u8,
}

/// In-progress hardware page-table walk.
///
/// The walker itself performs no memory accesses: the owning core reads
/// [`Walk::pte_addr`] through its cache hierarchy (PTEs are physically
/// addressed, cacheable and coherent) and feeds the value to [`Walk::feed`].
///
/// # Examples
///
/// ```
/// use ccsvm_mem::PhysAddr;
/// use ccsvm_vm::{VirtAddr, Walk, WalkResult, PTE_PRESENT};
///
/// let mut walk = Walk::new(PhysAddr(0x1000), VirtAddr(0x2000));
/// // Pretend every level points at table frame 0x5000.
/// for _ in 0..3 {
///     match walk.feed(0x5000 | PTE_PRESENT) {
///         WalkResult::Continue(w) => walk = w,
///         other => panic!("unexpected {other:?}"),
///     }
/// }
/// match walk.feed(0x9000 | PTE_PRESENT) {
///     WalkResult::Done(pa) => assert_eq!(pa, PhysAddr(0x9000)),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Walk {
    va: VirtAddr,
    level: u8,
    table: PhysAddr,
}

/// Outcome of feeding one PTE to a [`Walk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkResult {
    /// Another level to read.
    Continue(Walk),
    /// Translation complete: the physical base of the mapped frame.
    Done(PhysAddr),
    /// Not present at some level.
    Fault(Fault),
}

impl Walk {
    /// Starts a walk of `va` from the root table at `cr3`.
    pub fn new(cr3: PhysAddr, va: VirtAddr) -> Walk {
        Walk {
            va,
            level: LEVELS - 1,
            table: cr3,
        }
    }

    /// The virtual address being translated.
    pub fn va(&self) -> VirtAddr {
        self.va
    }

    /// Physical address of the PTE the core must read next.
    pub fn pte_addr(&self) -> PhysAddr {
        PhysAddr(self.table.0 + self.va.index(self.level) * 8)
    }

    /// Consumes the PTE value read at [`Walk::pte_addr`].
    pub fn feed(self, pte: u64) -> WalkResult {
        if pte & PTE_PRESENT == 0 {
            return WalkResult::Fault(Fault {
                va: self.va,
                level: self.level,
            });
        }
        let next = PhysAddr(pte & !(PAGE_BYTES - 1));
        if self.level == 0 {
            WalkResult::Done(next)
        } else {
            WalkResult::Continue(Walk {
                va: self.va,
                level: self.level - 1,
                table: next,
            })
        }
    }
}

/// Combines a frame base with the page offset of `va`.
pub fn frame_plus_offset(frame: PhysAddr, va: VirtAddr) -> PhysAddr {
    PhysAddr(frame.0 + va.page_offset())
}

// ---------------------------------------------------------------------------
// Snapshot codec. Any change here is a snapshot schema change (bump
// `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

impl Walk {
    /// Appends this in-flight walk to a snapshot.
    pub fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        w.put_u64(self.va.0);
        w.put_u8(self.level);
        w.put_u64(self.table.0);
    }

    /// Reads a walk previously written by [`Walk::save`].
    pub fn load(r: &mut ccsvm_snap::SnapReader<'_>) -> Result<Walk, ccsvm_snap::SnapError> {
        let va = VirtAddr(r.get_u64()?);
        let level = r.get_u8()?;
        if level >= LEVELS {
            return Err(ccsvm_snap::SnapError::Corrupt {
                what: format!("walk level {level} out of range"),
            });
        }
        Ok(Walk {
            va,
            level,
            table: PhysAddr(r.get_u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn va_decomposition() {
        let va = VirtAddr(0x0000_7FFF_FFFF_FFFF);
        assert_eq!(va.index(3), 0xFF);
        assert_eq!(va.index(2), 0x1FF);
        assert_eq!(va.index(1), 0x1FF);
        assert_eq!(va.index(0), 0x1FF);
        assert_eq!(va.page_offset(), 0xFFF);
        let va = VirtAddr(0x4000_1000);
        assert_eq!(va.vpn(), 0x40001);
        assert_eq!(va.page_base(), VirtAddr(0x4000_1000));
        assert_eq!(VirtAddr(0x4000_1234).page_base(), VirtAddr(0x4000_1000));
    }

    #[test]
    fn walk_addresses_follow_indices() {
        let va = VirtAddr(0x4000_1234);
        let w = Walk::new(PhysAddr(0x10_0000), va);
        assert_eq!(w.pte_addr(), PhysAddr(0x10_0000 + va.index(3) * 8));
        let w2 = match w.feed(0x20_0000 | PTE_PRESENT) {
            WalkResult::Continue(w) => w,
            other => panic!("{other:?}"),
        };
        assert_eq!(w2.pte_addr(), PhysAddr(0x20_0000 + va.index(2) * 8));
    }

    #[test]
    fn walk_faults_at_any_level() {
        let va = VirtAddr(0x1000);
        let w = Walk::new(PhysAddr(0x10_0000), va);
        assert_eq!(w.feed(0), WalkResult::Fault(Fault { va, level: 3 }));
        let w = Walk::new(PhysAddr(0x10_0000), va);
        let w = match w.feed(0x20_0000 | PTE_PRESENT) {
            WalkResult::Continue(w) => w,
            other => panic!("{other:?}"),
        };
        assert_eq!(w.feed(2), WalkResult::Fault(Fault { va, level: 2 }));
    }

    #[test]
    fn walk_completes_with_offset() {
        let va = VirtAddr(0x4000_1234);
        let mut w = Walk::new(PhysAddr(0x10_0000), va);
        for _ in 0..3 {
            w = match w.feed(0x20_0000 | PTE_PRESENT) {
                WalkResult::Continue(w) => w,
                other => panic!("{other:?}"),
            };
        }
        match w.feed(0x55_5000 | PTE_PRESENT) {
            WalkResult::Done(frame) => {
                assert_eq!(frame, PhysAddr(0x55_5000));
                assert_eq!(frame_plus_offset(frame, va), PhysAddr(0x55_5234));
            }
            other => panic!("{other:?}"),
        }
    }
}
