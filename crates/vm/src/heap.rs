//! The guest heap allocator behind `malloc`/`mttop_malloc`.
//!
//! The paper's xthreads runtime offloads MTTOP dynamic allocation to a CPU
//! thread that performs ordinary `malloc` calls (§5.3.2). This is that
//! allocator: a first-fit free list over a virtual address range. It hands
//! out *virtual* addresses only; pages materialize later through demand
//! paging when the guest touches them.

use std::collections::BTreeMap;

use crate::walk::VirtAddr;

/// First-fit guest-heap allocator over a fixed virtual range.
///
/// # Examples
///
/// ```
/// use ccsvm_vm::{GuestHeap, VirtAddr};
/// let mut h = GuestHeap::new(VirtAddr(0x4000_0000), 1 << 20);
/// let a = h.malloc(100).unwrap();
/// let b = h.malloc(100).unwrap();
/// assert_ne!(a, b);
/// h.free(a);
/// ```
#[derive(Clone, Debug)]
pub struct GuestHeap {
    base: u64,
    len: u64,
    /// Free regions: start → length.
    free: BTreeMap<u64, u64>,
    /// Live allocations: start → length.
    live: BTreeMap<u64, u64>,
    align: u64,
}

impl GuestHeap {
    /// Creates a heap spanning `[base, base + len)` with 8-byte alignment.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or `base` is not 8-byte aligned.
    pub fn new(base: VirtAddr, len: u64) -> GuestHeap {
        assert!(len > 0, "empty heap");
        assert!(base.0.is_multiple_of(8), "heap base must be 8-byte aligned");
        let mut free = BTreeMap::new();
        free.insert(base.0, len);
        GuestHeap {
            base: base.0,
            len,
            free,
            live: BTreeMap::new(),
            align: 8,
        }
    }

    /// Allocates `size` bytes (rounded up to the alignment); returns `None`
    /// when no free region fits.
    pub fn malloc(&mut self, size: u64) -> Option<VirtAddr> {
        let size = size.max(1).next_multiple_of(self.align);
        let (start, region_len) = self
            .free
            .iter()
            .find(|(_, &l)| l >= size)
            .map(|(&s, &l)| (s, l))?;
        self.free.remove(&start);
        if region_len > size {
            self.free.insert(start + size, region_len - size);
        }
        self.live.insert(start, size);
        Some(VirtAddr(start))
    }

    /// Releases an allocation, coalescing with free neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live allocation (double free / wild free).
    pub fn free(&mut self, addr: VirtAddr) {
        let size = self
            .live
            .remove(&addr.0)
            .unwrap_or_else(|| panic!("free of non-allocated address {addr}"));
        let mut start = addr.0;
        let mut len = size;
        // Coalesce with the region immediately after.
        if let Some(&next_len) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += next_len;
        }
        // Coalesce with the region immediately before.
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        self.free.insert(start, len);
    }

    /// Size of the live allocation at `addr`, if any.
    pub fn size_of(&self, addr: VirtAddr) -> Option<u64> {
        self.live.get(&addr.0).copied()
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// The heap's full capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.len
    }

    /// The heap's base address.
    pub fn base(&self) -> VirtAddr {
        VirtAddr(self.base)
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec. Any change here is a snapshot schema change (bump
// `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

impl ccsvm_snap::Snapshot for GuestHeap {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        // `base`/`len`/`align` are construction parameters (config-derived)
        // and not serialized; BTreeMaps iterate sorted by nature.
        w.put_usize(self.free.len());
        for (&start, &len) in &self.free {
            w.put_u64(start);
            w.put_u64(len);
        }
        w.put_usize(self.live.len());
        for (&start, &len) in &self.live {
            w.put_u64(start);
            w.put_u64(len);
        }
    }

    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.free.clear();
        for _ in 0..r.get_usize()? {
            let start = r.get_u64()?;
            self.free.insert(start, r.get_u64()?);
        }
        self.live.clear();
        for _ in 0..r.get_usize()? {
            let start = r.get_u64()?;
            self.live.insert(start, r.get_u64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> GuestHeap {
        GuestHeap::new(VirtAddr(0x4000_0000), 1024)
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut h = heap();
        let a = h.malloc(10).unwrap();
        let b = h.malloc(10).unwrap();
        assert_eq!(a.0 % 8, 0);
        assert_eq!(b.0 % 8, 0);
        assert!(b.0 >= a.0 + 16, "rounded to 16 bytes");
        assert_eq!(h.live_bytes(), 32);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut h = heap();
        assert!(h.malloc(1024).is_some());
        assert!(h.malloc(1).is_none());
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut h = heap();
        let a = h.malloc(128).unwrap();
        let b = h.malloc(128).unwrap();
        let c = h.malloc(128).unwrap();
        h.free(a);
        h.free(c);
        h.free(b); // middle free must merge into one region
        assert!(h.malloc(1024).is_some(), "full capacity available again");
    }

    #[test]
    fn reuse_after_free() {
        let mut h = heap();
        let a = h.malloc(1024).unwrap();
        h.free(a);
        let b = h.malloc(512).unwrap();
        assert_eq!(a, b, "first fit reuses the freed region");
    }

    #[test]
    #[should_panic(expected = "free of non-allocated")]
    fn double_free_panics() {
        let mut h = heap();
        let a = h.malloc(8).unwrap();
        h.free(a);
        h.free(a);
    }

    #[test]
    fn size_of_reports_rounded_size() {
        let mut h = heap();
        let a = h.malloc(5).unwrap();
        assert_eq!(h.size_of(a), Some(8));
        assert_eq!(h.size_of(VirtAddr(0x9999)), None);
    }
}

#[cfg(all(test, feature = "slow-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random malloc/free sequences never hand out overlapping regions,
        /// and freeing everything restores full capacity.
        #[test]
        fn no_overlap_and_full_recovery(ops in proptest::collection::vec(1u64..200, 1..60)) {
            let mut h = GuestHeap::new(VirtAddr(0x1000), 16 * 1024);
            let mut live: Vec<(u64, u64)> = Vec::new();
            for (i, &sz) in ops.iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let (addr, _) = live.swap_remove(i % live.len());
                    h.free(VirtAddr(addr));
                } else if let Some(a) = h.malloc(sz) {
                    let rounded = h.size_of(a).unwrap();
                    for &(s, l) in &live {
                        prop_assert!(a.0 + rounded <= s || s + l <= a.0, "overlap");
                    }
                    live.push((a.0, rounded));
                }
            }
            for (addr, _) in live.drain(..) {
                h.free(VirtAddr(addr));
            }
            prop_assert_eq!(h.live_bytes(), 0);
            prop_assert!(h.malloc(16 * 1024).is_some());
        }
    }
}
