//! Fully-associative translation lookaside buffer.

use ccsvm_engine::{stat_id, Stats};
use ccsvm_mem::PhysAddr;

use crate::walk::VirtAddr;

#[derive(Clone, Copy, Debug)]
struct Entry {
    vpn: u64,
    frame: PhysAddr,
    lru: u64,
}

/// A fully-associative, true-LRU TLB (Table 2: 64 entries per core, for CPU
/// and MTTOP cores alike).
///
/// # Examples
///
/// ```
/// use ccsvm_mem::PhysAddr;
/// use ccsvm_vm::{Tlb, VirtAddr};
/// let mut tlb = Tlb::new(64);
/// assert_eq!(tlb.lookup(VirtAddr(0x1000)), None);
/// tlb.insert(VirtAddr(0x1000), PhysAddr(0x7000));
/// assert_eq!(tlb.lookup(VirtAddr(0x1234)), Some(PhysAddr(0x7000)));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<Entry>,
    capacity: usize,
    /// Direct-mapped position hints: `memo[vpn % 64]` is the index in
    /// `entries` where that page was last found. Purely a host-side lookup
    /// accelerator: every hint is validated against the entry's `vpn` before
    /// use, so stale hints (after `swap_remove`, flushes, or snapshot load)
    /// simply fall back to the linear scan. Never serialized.
    memo: [u32; MEMO_SLOTS],
    tick: u64,
    hits: u64,
    misses: u64,
    flushes: u64,
    shootdown_invalidations: u64,
}

const MEMO_SLOTS: usize = 64;

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            memo: [u32::MAX; MEMO_SLOTS],
            tick: 0,
            hits: 0,
            misses: 0,
            flushes: 0,
            shootdown_invalidations: 0,
        }
    }

    /// Finds `vpn`'s index, trying the memo hint before the linear scan, and
    /// refreshing the hint on a scan hit. Does not touch LRU or counters.
    #[inline]
    fn find(&mut self, vpn: u64) -> Option<usize> {
        let slot = (vpn as usize) % MEMO_SLOTS;
        let hint = self.memo[slot] as usize;
        if let Some(e) = self.entries.get(hint) {
            if e.vpn == vpn {
                return Some(hint);
            }
        }
        let idx = self.entries.iter().position(|e| e.vpn == vpn)?;
        self.memo[slot] = idx as u32;
        Some(idx)
    }

    /// Looks up the translation of `va`'s page, counting a hit or miss.
    /// Returns the *frame base* (combine with the page offset).
    pub fn lookup(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        let vpn = va.vpn();
        self.tick += 1;
        match self.find(vpn) {
            Some(idx) => {
                let e = &mut self.entries[idx];
                e.lru = self.tick;
                self.hits += 1;
                Some(e.frame)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Like [`Tlb::lookup`] on a hit (LRU touch, hit count), but a **no-op on
    /// a miss**: no tick advance, no miss count. Fast paths use this as a
    /// combined `holds` + `lookup` probe; on `None` they fall back to the
    /// generic path, whose own `lookup` then performs the one counted miss —
    /// so composing `try_lookup` + fallback is observably identical to the
    /// generic path alone.
    pub fn try_lookup(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        let vpn = va.vpn();
        let idx = self.find(vpn)?;
        self.tick += 1;
        let e = &mut self.entries[idx];
        e.lru = self.tick;
        self.hits += 1;
        Some(e.frame)
    }

    /// Installs a translation, evicting LRU if full.
    pub fn insert(&mut self, va: VirtAddr, frame: PhysAddr) {
        let vpn = va.vpn();
        self.tick += 1;
        if let Some(idx) = self.find(vpn) {
            let e = &mut self.entries[idx];
            e.frame = frame;
            e.lru = self.tick;
            return;
        }
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("nonempty");
            self.entries.swap_remove(idx);
        }
        self.memo[(vpn as usize) % MEMO_SLOTS] = self.entries.len() as u32;
        self.entries.push(Entry {
            vpn,
            frame,
            lru: self.tick,
        });
    }

    /// Removes the entry for `va`'s page (selective shootdown, used for CPU
    /// TLBs).
    pub fn invalidate(&mut self, va: VirtAddr) {
        let vpn = va.vpn();
        if let Some(idx) = self.entries.iter().position(|e| e.vpn == vpn) {
            self.entries.swap_remove(idx);
            self.shootdown_invalidations += 1;
        }
    }

    /// Empties the TLB (the paper's conservative MTTOP shootdown: "we extend
    /// shootdown by having the CPU core signal the TLBs at all MTTOP cores to
    /// flush").
    pub fn flush(&mut self) {
        self.entries.clear();
        self.flushes += 1;
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Every live `(vpn, frame base)` translation, in storage order — the
    /// sanitizer's TLB⊆page-table check compares these against the OS's
    /// authoritative mappings. Read-only: does not touch LRU or counters.
    pub fn entries(&self) -> Vec<(u64, PhysAddr)> {
        self.entries.iter().map(|e| (e.vpn, e.frame)).collect()
    }

    /// Whether the TLB holds a live translation for `va`'s page. Read-only
    /// (unlike [`Tlb::lookup`], no LRU update, no hit/miss accounting).
    pub fn holds(&self, va: VirtAddr) -> bool {
        let vpn = va.vpn();
        self.entries.iter().any(|e| e.vpn == vpn)
    }

    /// Test-only corruption hook for sanitizer mutation tests: offsets the
    /// frame of the first live entry so it no longer matches the page table.
    /// Returns `false` when the TLB is empty.
    pub fn test_corrupt_first_entry(&mut self) -> bool {
        match self.entries.first_mut() {
            Some(e) => {
                e.frame = PhysAddr(e.frame.0 ^ 0x1_0000);
                true
            }
            None => false,
        }
    }

    /// Whether the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/flush counters.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("hits"), self.hits as f64);
        s.set_id(stat_id("misses"), self.misses as f64);
        s.set_id(stat_id("flushes"), self.flushes as f64);
        s.set_id(
            stat_id("shootdown_invalidations"),
            self.shootdown_invalidations as f64,
        );
        s
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec. Any change here is a snapshot schema change (bump
// `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

impl ccsvm_snap::Snapshot for Tlb {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        // Entry order matters (swap_remove eviction makes the Vec layout part
        // of future behaviour), so entries are serialized in place.
        w.put_usize(self.capacity);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.vpn);
            w.put_u64(e.frame.0);
            w.put_u64(e.lru);
        }
        w.put_u64(self.tick);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.flushes);
        w.put_u64(self.shootdown_invalidations);
    }

    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        let capacity = r.get_usize()?;
        if capacity != self.capacity {
            return Err(ccsvm_snap::SnapError::Corrupt {
                what: format!(
                    "snapshot TLB capacity {capacity} differs from configured {}",
                    self.capacity
                ),
            });
        }
        let n = r.get_usize()?;
        if n > capacity {
            return Err(ccsvm_snap::SnapError::Corrupt {
                what: format!("snapshot TLB holds {n} entries, capacity {capacity}"),
            });
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(Entry {
                vpn: r.get_u64()?,
                frame: PhysAddr(r.get_u64()?),
                lru: r.get_u64()?,
            });
        }
        self.tick = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        self.flushes = r.get_u64()?;
        self.shootdown_invalidations = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_with_offset() {
        let mut t = Tlb::new(4);
        t.insert(VirtAddr(0x5000), PhysAddr(0x9000));
        assert_eq!(t.lookup(VirtAddr(0x5FFF)), Some(PhysAddr(0x9000)));
        assert_eq!(t.lookup(VirtAddr(0x6000)), None);
        assert_eq!(t.stats().get("hits"), 1.0);
        assert_eq!(t.stats().get("misses"), 1.0); // only the 0x6000 lookup
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = Tlb::new(2);
        t.insert(VirtAddr(0x1000), PhysAddr(0x1000));
        t.insert(VirtAddr(0x2000), PhysAddr(0x2000));
        t.lookup(VirtAddr(0x1000)); // 0x2000 now LRU
        t.insert(VirtAddr(0x3000), PhysAddr(0x3000));
        assert!(t.lookup(VirtAddr(0x2000)).is_none());
        assert!(t.lookup(VirtAddr(0x1000)).is_some());
        assert!(t.lookup(VirtAddr(0x3000)).is_some());
    }

    #[test]
    fn insert_existing_updates() {
        let mut t = Tlb::new(2);
        t.insert(VirtAddr(0x1000), PhysAddr(0xA000));
        t.insert(VirtAddr(0x1000), PhysAddr(0xB000));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(VirtAddr(0x1000)), Some(PhysAddr(0xB000)));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(4);
        t.insert(VirtAddr(0x1000), PhysAddr(0x1000));
        t.insert(VirtAddr(0x2000), PhysAddr(0x2000));
        t.invalidate(VirtAddr(0x1000));
        assert!(t.lookup(VirtAddr(0x1000)).is_none());
        assert!(t.lookup(VirtAddr(0x2000)).is_some());
        t.flush();
        assert!(t.is_empty());
        assert_eq!(t.stats().get("flushes"), 1.0);
        assert_eq!(t.stats().get("shootdown_invalidations"), 1.0);
    }
}
