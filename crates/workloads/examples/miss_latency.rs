//! Microbenchmark: uncontended load-to-use miss latency of an MTTOP thread,
//! measured with a cold pointer chase (one node per cache block). A handy
//! single-number sanity check of the L1->L2->coherence path.

use ccsvm::{Machine, SystemConfig};
use ccsvm_workloads as wl;

fn main() {
    // One MTTOP thread chases a 2000-node list, one node per cache block.
    let src = "
        struct Node { next: Node*; pad0: int; pad1: int; pad2: int;
                      pad3: int; pad4: int; pad5: int; pad6: int; }
        struct Args { head: int*; out: int*; }
        _MTTOP_ fn chase(tid: int, a: Args*) {
            let p: Node* = a->head[0] as Node*;
            let n = 0;
            while (p != 0 as Node*) { p = p->next; n = n + 1; }
            a->out[0] = n;
        }
        _CPU_ fn main() -> int {
            let a: Args* = malloc(sizeof(Args));
            a->head = malloc(8);
            a->out = malloc(8);
            let prev = 0;
            for (let i = 0; i < 2000; i = i + 1) {
                let nd: Node* = malloc(sizeof(Node));
                nd->next = prev as Node*;
                prev = nd as int;
            }
            a->head[0] = prev;
            a->out[0] = 0 - 1;
            print_int(-7000001);
            xt_create_mthread(chase, a as int, 0, 0);
            while (a->out[0] == 0 - 1) { }
            print_int(-7000002);
            return a->out[0];
        }";
    let mut m = Machine::new(SystemConfig::paper_default(), wl::build(src));
    let r = m.run();
    let reg = wl::region_time(&r.printed, &r.printed_at, r.time);
    println!(
        "chase of 2000 blocks: {} => {} per hop (exit {})",
        reg,
        ccsvm_engine::Time::from_ps(reg.as_ps() / 2000),
        r.exit_code
    );
    println!("avg_miss {:?}", r.stats.get("mttop.0.avg_miss_ns"));
}
