//! Diagnostic: per-phase breakdown of Barnes-Hut on the CCSVM chip
//! (tree-build vs force vs total), with memory-system counters. Used while
//! calibrating Figure 7; kept as a worked example of phase-level profiling
//! with marker prints.

use ccsvm::{Machine, SystemConfig};
use ccsvm_workloads as wl;

fn main() {
    let p = wl::barnes_hut::BhParams {
        bodies: 256,
        steps: 1,
        max_threads: 1280,
        seed: 42,
    };
    // Patch the xthreads source to add phase markers.
    let src = wl::barnes_hut::xthreads_source(&p)
        .replace(
            "g->root = build_tree(g->bodies);",
            "print_int(101); g->root = build_tree(g->bodies); print_int(102);",
        )
        .replace(
            "xt_wait(g->done, 0, g->nt - 1);",
            "xt_wait(g->done, 0, g->nt - 1); print_int(103);",
        );
    let mut m = Machine::new(SystemConfig::paper_default(), wl::build(&src));
    let r = m.run();
    for (s, t) in r.printed.iter().zip(&r.printed_at) {
        println!("{s} at {t}");
    }
    for (k, v) in r.stats.iter() {
        if v != 0.0
            && (k.contains("mttop.0.")
                || k.contains("mem.l1.4")
                || k.contains("mem.l2.0")
                || k.contains("dram")
                || k.contains("noc"))
        {
            println!("{k} = {v}");
        }
    }
}
