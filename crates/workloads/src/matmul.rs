//! Dense matrix multiplication (paper §5.2, Figures 5 and 9).
//!
//! "a (dense) matrix multiplication kernel that is launched from a CPU to as
//! many MTTOP cores as can be utilized for the matrix size". Threads use a
//! grid-stride loop so one launch covers any `n` with at most
//! `max_threads` MTTOP threads.

use crate::{lcg_xc, MARK_END, MARK_START};

/// Inputs are `n×n` integer matrices filled from the LCG (`% 100`).
#[derive(Clone, Copy, Debug)]
pub struct MatmulParams {
    /// Matrix dimension.
    pub n: u64,
    /// MTTOP threads to launch (clamped to the work and the chip).
    pub max_threads: u64,
    /// LCG seed.
    pub seed: u64,
}

impl MatmulParams {
    /// `n×n` with the paper-default 1280-thread chip.
    pub fn new(n: u64, seed: u64) -> MatmulParams {
        MatmulParams {
            n,
            max_threads: 1280,
            seed,
        }
    }

    /// Threads actually launched.
    pub fn threads(&self) -> u64 {
        (self.n * self.n).min(self.max_threads).max(1)
    }
}

/// Shared program prologue: allocate and LCG-fill `a` and `b`.
fn init_xc(p: &MatmulParams) -> String {
    format!(
        "{lcg}
         const N = {n};
         const SEED = {seed};
         fn fill(a: int*, b: int*) {{
             let x = SEED;
             for (let i = 0; i < N * N; i = i + 1) {{
                 x = x * LCG_MUL + LCG_ADD;
                 a[i] = (x >> 33) % 100;
                 x = x * LCG_MUL + LCG_ADD;
                 b[i] = (x >> 33) % 100;
             }}
         }}
         fn checksum(c: int*) -> int {{
             let s = 0;
             for (let i = 0; i < N * N; i = i + 1) {{ s = s + c[i] * (i % 17 + 1); }}
             return s;
         }}",
        lcg = lcg_xc(),
        n = p.n,
        seed = p.seed,
    )
}

/// The CCSVM/xthreads version: init on CPU, one launch, wait, checksum.
pub fn xthreads_source(p: &MatmulParams) -> String {
    format!(
        "{init}
         struct Args {{ a: int*; b: int*; c: int*; done: int*; nt: int; }}
         _MTTOP_ fn mm(tid: int, g: Args*) {{
             let n = N;
             let total = n * n;
             let idx = tid;
             while (idx < total) {{
                 let i = idx / n;
                 let j = idx % n;
                 let s = 0;
                 for (let k = 0; k < n; k = k + 1) {{
                     s = s + g->a[i * n + k] * g->b[k * n + j];
                 }}
                 g->c[idx] = s;
                 idx = idx + g->nt;
             }}
             xt_msignal(g->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let g: Args* = malloc(sizeof(Args));
             g->a = malloc(N * N * 8);
             g->b = malloc(N * N * 8);
             g->c = malloc(N * N * 8);
             g->nt = {threads};
             g->done = malloc(g->nt * 8);
             fill(g->a, g->b);
             for (let t = 0; t < g->nt; t = t + 1) {{ g->done[t] = 0; }}
             print_int({start});
             if (xt_create_mthread(mm, g as int, 0, g->nt - 1) != 0) {{ return -1; }}
             xt_wait(g->done, 0, g->nt - 1);
             print_int({end});
             return checksum(g->c);
         }}",
        init = init_xc(p),
        threads = p.threads(),
        start = MARK_START,
        end = MARK_END,
    )
}

/// Single-CPU version (the denominator of Figures 5/6: "relative to the AMD
/// CPU core").
pub fn cpu_source(p: &MatmulParams) -> String {
    format!(
        "{init}
         _CPU_ fn main() -> int {{
             let a: int* = malloc(N * N * 8);
             let b: int* = malloc(N * N * 8);
             let c: int* = malloc(N * N * 8);
             fill(a, b);
             print_int({start});
             for (let i = 0; i < N; i = i + 1) {{
                 for (let j = 0; j < N; j = j + 1) {{
                     let s = 0;
                     for (let k = 0; k < N; k = k + 1) {{
                         s = s + a[i * N + k] * b[k * N + j];
                     }}
                     c[i * N + j] = s;
                 }}
             }}
             print_int({end});
             return checksum(c);
         }}",
        init = init_xc(p),
        start = MARK_START,
        end = MARK_END,
    )
}

/// The kernel-only source for the APU baseline (same `mm` kernel; the host
/// side is modeled by the OpenCL-style runtime in `ccsvm-apu`).
pub fn kernel_source(p: &MatmulParams) -> String {
    // The APU model runs the same xthreads-compiled kernel on its GPU; host
    // phases come from the OclScript. Reuse the xthreads program.
    xthreads_source(p)
}

/// Rust reference: the expected checksum.
pub fn reference_checksum(p: &MatmulParams) -> u64 {
    let n = p.n as usize;
    let mut a = vec![0i64; n * n];
    let mut b = vec![0i64; n * n];
    let mut x = p.seed;
    for i in 0..n * n {
        x = crate::lcg_next(x);
        a[i] = ((x >> 33) % 100) as i64;
        x = crate::lcg_next(x);
        b[i] = ((x >> 33) % 100) as i64;
    }
    let mut s: i64 = 0;
    for i in 0..n {
        for j in 0..n {
            let mut c: i64 = 0;
            for k in 0..n {
                c = c.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
            }
            s = s.wrapping_add(c.wrapping_mul((i * n + j) as i64 % 17 + 1));
        }
    }
    s as u64
}

/// Total arithmetic work (for sanity checks / rate reporting).
pub fn flop_count(p: &MatmulParams) -> u64 {
    2 * p.n * p.n * p.n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_matches_reference_both_versions() {
        for n in [1, 2, 4, 7] {
            let p = MatmulParams {
                n,
                max_threads: 16,
                seed: 42,
            };
            let expect = reference_checksum(&p);
            let got = crate::run_functional(&xthreads_source(&p), 500_000_000);
            assert_eq!(got, expect, "xthreads n={n}");
            let got = crate::run_functional(&cpu_source(&p), 500_000_000);
            assert_eq!(got, expect, "cpu n={n}");
        }
    }

    #[test]
    fn thread_clamping() {
        assert_eq!(MatmulParams::new(4, 0).threads(), 16);
        assert_eq!(MatmulParams::new(64, 0).threads(), 1280);
        let p = MatmulParams {
            n: 64,
            max_threads: 64,
            seed: 0,
        };
        assert_eq!(p.threads(), 64);
    }

    #[test]
    fn different_seeds_differ() {
        let a = reference_checksum(&MatmulParams::new(4, 1));
        let b = reference_checksum(&MatmulParams::new(4, 2));
        assert_ne!(a, b);
    }
}
