//! Vector addition — the paper's running example (Figures 3 and 4).
//!
//! The xthreads version below is a direct port of Figure 4; the paper's
//! Figure 3 shows the ~70-line OpenCL equivalent (see
//! `examples/opencl_vs_xthreads.rs` for the code-size comparison).

use crate::{lcg_xc, MARK_END, MARK_START};

/// `n`-element integer vectors.
#[derive(Clone, Copy, Debug)]
pub struct VecaddParams {
    /// Element count (also the thread count, as in Figure 4).
    pub n: u64,
    /// LCG seed.
    pub seed: u64,
}

/// The Figure 4 program: one thread per element.
pub fn xthreads_source(p: &VecaddParams) -> String {
    format!(
        "{lcg}
         const N = {n};
         const SEED = {seed};
         struct Args {{ v1: int*; v2: int*; sum: int*; done: int*; }}
         _MTTOP_ fn add(tid: int, a: Args*) {{
             a->sum[tid] = a->v1[tid] + a->v2[tid];
             xt_msignal(a->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let a: Args* = malloc(sizeof(Args));
             a->v1 = malloc(N * 8);
             a->v2 = malloc(N * 8);
             a->sum = malloc(N * 8);
             a->done = malloc(N * 8);
             let x = SEED;
             for (let i = 0; i < N; i = i + 1) {{
                 x = x * LCG_MUL + LCG_ADD;
                 a->v1[i] = (x >> 33) % 1000;
                 x = x * LCG_MUL + LCG_ADD;
                 a->v2[i] = (x >> 33) % 1000;
                 a->done[i] = 0;
             }}
             print_int({start});
             if (xt_create_mthread(add, a as int, 0, N - 1) != 0) {{ return -1; }}
             xt_wait(a->done, 0, N - 1);
             print_int({end});
             let s = 0;
             for (let i = 0; i < N; i = i + 1) {{ s = s + a->sum[i]; }}
             return s;
         }}",
        lcg = lcg_xc(),
        n = p.n,
        seed = p.seed,
        start = MARK_START,
        end = MARK_END,
    )
}

/// Rust reference: expected sum of all elements.
pub fn reference_checksum(p: &VecaddParams) -> u64 {
    let mut x = p.seed;
    let mut s: i64 = 0;
    for _ in 0..p.n {
        x = crate::lcg_next(x);
        s += ((x >> 33) % 1000) as i64;
        x = crate::lcg_next(x);
        s += ((x >> 33) % 1000) as i64;
    }
    s as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_matches_reference() {
        for n in [1, 8, 100] {
            let p = VecaddParams { n, seed: 5 };
            let got = crate::run_functional(&xthreads_source(&p), 100_000_000);
            assert_eq!(got, reference_checksum(&p), "n={n}");
        }
    }
}
