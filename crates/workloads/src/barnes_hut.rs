//! Barnes-Hut n-body (paper §5.3.1, Figure 7).
//!
//! "This benchmark extensively uses pointers and recursion and, most
//! problematically for current CPU/MTTOP chips, involves frequent toggling
//! between sequential and parallel phases."
//!
//! Per timestep: the CPU **sequentially** builds a quadtree of malloc'd
//! nodes and summarizes mass/center-of-mass; the MTTOP threads compute
//! forces **in parallel** by recursively traversing the pointer-linked tree
//! (θ opening criterion); the CPU then integrates positions. Under CCSVM
//! the phase toggles are a launch syscall and a few cache misses; on a
//! loosely-coupled chip each toggle is a driver round-trip.
//!
//! The 2D formulation keeps the tree a quadtree; the paper's argument is
//! about pointer-chasing and phase-toggling, not dimensionality.
//!
//! Float results are validated by running the *same program* on the
//! functional interpreter (identical IEEE-754 operation order ⇒ identical
//! bits), not by an independent Rust reimplementation.

use crate::{lcg_xc, MARK_END, MARK_START};

/// An n-body instance.
#[derive(Clone, Copy, Debug)]
pub struct BhParams {
    /// Body count.
    pub bodies: u64,
    /// Timesteps.
    pub steps: u64,
    /// MTTOP threads for the force phase.
    pub max_threads: u64,
    /// LCG seed.
    pub seed: u64,
}

impl BhParams {
    /// `bodies` over one step on the paper-default chip.
    pub fn new(bodies: u64, seed: u64) -> BhParams {
        BhParams {
            bodies,
            steps: 1,
            max_threads: 1280,
            seed,
        }
    }

    /// Threads launched per force phase. Recursion keeps a real stack per
    /// lane, and per-lane stacks never coalesce; capping the launch keeps
    /// every live frame L1-resident (2 warps per core on the paper chip),
    /// which is how SIMT codes run recursive traversals at all.
    pub fn threads(&self) -> u64 {
        self.bodies.min(self.max_threads).clamp(1, 80)
    }
}

/// Everything except `main`: types, tree build, summarize, force traversal,
/// integrate, checksum.
fn common_xc(p: &BhParams) -> String {
    format!(
        r#"{lcg}
const NB = {nb};
const STEPS = {steps};
const SEED = {seed};

struct Body {{ x: float; y: float; vx: float; vy: float; m: float; ax: float; ay: float; }}
// body: -2 = empty leaf, -1 = internal, >= 0 = leaf holding that body index.
struct QNode {{ cx: float; cy: float; half: float; mass: float;
               comx: float; comy: float;
               c0: QNode*; c1: QNode*; c2: QNode*; c3: QNode*; body: int; }}

fn qchild(nd: QNode*, q: int) -> QNode* {{
    if (q == 0) {{ return nd->c0; }}
    if (q == 1) {{ return nd->c1; }}
    if (q == 2) {{ return nd->c2; }}
    return nd->c3;
}}

// Userspace arena for tree nodes: one malloc syscall per 64 KiB slab, like
// a real libc allocator, instead of a kernel round-trip per node.
global arena_cur: int;
global arena_end: int;

_CPU_ fn falloc(n: int) -> int {{
    if (arena_cur + n > arena_end) {{
        arena_cur = malloc(65536) as int;
        arena_end = arena_cur + 65536;
    }}
    let p = arena_cur;
    arena_cur = arena_cur + n;
    return p;
}}

_CPU_ fn new_node(cx: float, cy: float, half: float) -> QNode* {{
    let nd: QNode* = falloc(sizeof(QNode)) as QNode*;
    nd->cx = cx; nd->cy = cy; nd->half = half;
    nd->mass = 0.0; nd->comx = 0.0; nd->comy = 0.0;
    nd->c0 = 0 as QNode*; nd->c1 = 0 as QNode*;
    nd->c2 = 0 as QNode*; nd->c3 = 0 as QNode*;
    nd->body = 0 - 2;
    return nd;
}}

_CPU_ fn insert_child(nd: QNode*, bi: int, bodies: Body*) {{
    let b = bodies[bi];
    let q = 0;
    if (b->x >= nd->cx) {{ q = q + 1; }}
    if (b->y >= nd->cy) {{ q = q + 2; }}
    let c = qchild(nd, q);
    if (c == 0 as QNode*) {{
        let h = nd->half / 2.0;
        let cx = nd->cx - h;
        if (b->x >= nd->cx) {{ cx = nd->cx + h; }}
        let cy = nd->cy - h;
        if (b->y >= nd->cy) {{ cy = nd->cy + h; }}
        c = new_node(cx, cy, h);
        if (q == 0) {{ nd->c0 = c; }}
        else if (q == 1) {{ nd->c1 = c; }}
        else if (q == 2) {{ nd->c2 = c; }}
        else {{ nd->c3 = c; }}
    }}
    insert(c, bi, bodies);
}}

_CPU_ fn insert(nd: QNode*, bi: int, bodies: Body*) {{
    if (nd->body == 0 - 2) {{ nd->body = bi; return; }}
    if (nd->body >= 0) {{
        let old = nd->body;
        nd->body = 0 - 1;
        insert_child(nd, old, bodies);
        insert_child(nd, bi, bodies);
        return;
    }}
    insert_child(nd, bi, bodies);
}}

_CPU_ fn summarize(nd: QNode*, bodies: Body*) {{
    if (nd == 0 as QNode*) {{ return; }}
    if (nd->body >= 0) {{
        let b = bodies[nd->body];
        nd->mass = b->m; nd->comx = b->x; nd->comy = b->y;
        return;
    }}
    if (nd->body == 0 - 2) {{ return; }}
    if (nd->c0 != 0 as QNode*) {{ summarize(nd->c0, bodies); }}
    if (nd->c1 != 0 as QNode*) {{ summarize(nd->c1, bodies); }}
    if (nd->c2 != 0 as QNode*) {{ summarize(nd->c2, bodies); }}
    if (nd->c3 != 0 as QNode*) {{ summarize(nd->c3, bodies); }}
    let m = 0.0; let sx = 0.0; let sy = 0.0;
    for (let q = 0; q < 4; q = q + 1) {{
        let c = qchild(nd, q);
        if (c != 0 as QNode*) {{
            m = m + c->mass;
            sx = sx + c->comx * c->mass;
            sy = sy + c->comy * c->mass;
        }}
    }}
    nd->mass = m;
    if (m > 0.0) {{ nd->comx = sx / m; nd->comy = sy / m; }}
}}

// Recursive force traversal (runs on CPU and MTTOP alike): accumulates the
// acceleration of body bi. theta = 0.5; softened gravity, G = 1.
fn force(nd: QNode*, bi: int, bodies: Body*) {{
    if (nd == 0 as QNode*) {{ return; }}
    if (nd->body == 0 - 2) {{ return; }}
    let b = bodies[bi];
    if (nd->body >= 0) {{
        if (nd->body != bi) {{
            let o = bodies[nd->body];
            let dx = o->x - b->x;
            let dy = o->y - b->y;
            let d2 = dx * dx + dy * dy + 0.0001;
            let inv = 1.0 / sqrt(d2);
            let s = o->m * inv * inv * inv;
            b->ax = b->ax + dx * s;
            b->ay = b->ay + dy * s;
        }}
        return;
    }}
    let dx = nd->comx - b->x;
    let dy = nd->comy - b->y;
    let d2 = dx * dx + dy * dy + 0.0001;
    let w = nd->half * 2.0;
    if (w * w < 0.25 * d2) {{    // (w/d)^2 < theta^2, theta = 0.5
        let inv = 1.0 / sqrt(d2);
        let s = nd->mass * inv * inv * inv;
        b->ax = b->ax + dx * s;
        b->ay = b->ay + dy * s;
    }} else {{
        if (nd->c0 != 0 as QNode*) {{ force(nd->c0, bi, bodies); }}
        if (nd->c1 != 0 as QNode*) {{ force(nd->c1, bi, bodies); }}
        if (nd->c2 != 0 as QNode*) {{ force(nd->c2, bi, bodies); }}
        if (nd->c3 != 0 as QNode*) {{ force(nd->c3, bi, bodies); }}
    }}
}}

_CPU_ fn init_bodies(bodies: Body*) {{
    let x = SEED;
    for (let i = 0; i < NB; i = i + 1) {{
        let b = bodies[i];
        x = x * LCG_MUL + LCG_ADD;
        b->x = ((x >> 11) % 1000000) as float / 1000000.0;
        x = x * LCG_MUL + LCG_ADD;
        b->y = ((x >> 11) % 1000000) as float / 1000000.0;
        b->vx = 0.0; b->vy = 0.0;
        x = x * LCG_MUL + LCG_ADD;
        b->m = 1.0 + ((x >> 11) % 100) as float / 100.0;
        b->ax = 0.0; b->ay = 0.0;
    }}
}}

// Build the step's tree over the current bounding square.
_CPU_ fn build_tree(bodies: Body*) -> QNode* {{
    let lo = bodies[0]->x; let hi = bodies[0]->x;
    for (let i = 0; i < NB; i = i + 1) {{
        let b = bodies[i];
        if (b->x < lo) {{ lo = b->x; }}
        if (b->x > hi) {{ hi = b->x; }}
        if (b->y < lo) {{ lo = b->y; }}
        if (b->y > hi) {{ hi = b->y; }}
    }}
    let half = (hi - lo) / 2.0 + 0.001;
    let root = new_node(lo + half, lo + half, half);
    for (let i = 0; i < NB; i = i + 1) {{ insert(root, i, bodies); }}
    summarize(root, bodies);
    return root;
}}

// In-order tree walk collecting leaf bodies: consecutive entries are
// spatially adjacent, so warps of consecutive tids traverse nearly identical
// node sequences (the standard SIMT Barnes-Hut trick; Burtscher & Pingali).
_CPU_ fn collect(nd: QNode*, order: int*, pos: int*) {{
    if (nd == 0 as QNode*) {{ return; }}
    if (nd->body >= 0) {{
        order[*pos] = nd->body;
        *pos = *pos + 1;
        return;
    }}
    if (nd->body == 0 - 2) {{ return; }}
    if (nd->c0 != 0 as QNode*) {{ collect(nd->c0, order, pos); }}
    if (nd->c1 != 0 as QNode*) {{ collect(nd->c1, order, pos); }}
    if (nd->c2 != 0 as QNode*) {{ collect(nd->c2, order, pos); }}
    if (nd->c3 != 0 as QNode*) {{ collect(nd->c3, order, pos); }}
}}

_CPU_ fn integrate(bodies: Body*) {{
    for (let i = 0; i < NB; i = i + 1) {{
        let b = bodies[i];
        b->vx = b->vx + b->ax * 0.01;
        b->vy = b->vy + b->ay * 0.01;
        b->x = b->x + b->vx * 0.01;
        b->y = b->y + b->vy * 0.01;
    }}
}}

fn checksum(bodies: Body*) -> int {{
    let s = 0;
    for (let i = 0; i < NB; i = i + 1) {{
        let b = bodies[i];
        s = s + ((b->x + b->y) * 1000000.0) as int;
        s = s + ((b->vx + b->vy) * 1000000.0) as int;
    }}
    return s;
}}
"#,
        lcg = lcg_xc(),
        nb = p.bodies,
        steps = p.steps,
        seed = p.seed,
    )
}

/// CCSVM/xthreads: CPU build + MTTOP force + CPU integrate, per step.
pub fn xthreads_source(p: &BhParams) -> String {
    format!(
        r#"{common}
struct Args {{ bodies: Body*; root: QNode*; order: int*; done: int*; nt: int; }}

_MTTOP_ fn kforce(tid: int, g: Args*) {{
    let idx = tid;
    while (idx < NB) {{
        let i = g->order[idx];
        let b = g->bodies[i];
        b->ax = 0.0; b->ay = 0.0;
        force(g->root, i, g->bodies);
        idx = idx + g->nt;
    }}
    xt_msignal(g->done, tid);
}}

_CPU_ fn main() -> int {{
    arena_cur = 0; arena_end = 0;
    let g: Args* = malloc(sizeof(Args));
    g->bodies = malloc(NB * sizeof(Body)) as Body*;
    g->order = malloc(NB * 8);
    g->nt = {threads};
    g->done = malloc(g->nt * 8);
    for (let t = 0; t < g->nt; t = t + 1) {{ g->done[t] = 0; }}
    init_bodies(g->bodies);
    print_int({start});
    for (let s = 0; s < STEPS; s = s + 1) {{
        g->root = build_tree(g->bodies);
        let pos = 0;
        collect(g->root, g->order, &pos);
        if (xt_create_mthread(kforce, g as int, 0, g->nt - 1) != 0) {{ return -1; }}
        xt_wait(g->done, 0, g->nt - 1);
        integrate(g->bodies);
    }}
    print_int({end});
    return checksum(g->bodies);
}}
"#,
        common = common_xc(p),
        threads = p.threads(),
        start = MARK_START,
        end = MARK_END,
    )
}

/// Single-CPU version (the Figure 7 "AMD CPU" baseline).
pub fn cpu_source(p: &BhParams) -> String {
    format!(
        r#"{common}
_CPU_ fn main() -> int {{
    arena_cur = 0; arena_end = 0;
    let bodies: Body* = malloc(NB * sizeof(Body)) as Body*;
    init_bodies(bodies);
    print_int({start});
    for (let s = 0; s < STEPS; s = s + 1) {{
        let root = build_tree(bodies);
        for (let i = 0; i < NB; i = i + 1) {{
            let b = bodies[i];
            b->ax = 0.0; b->ay = 0.0;
            force(root, i, bodies);
        }}
        integrate(bodies);
    }}
    print_int({end});
    return checksum(bodies);
}}
"#,
        common = common_xc(p),
        start = MARK_START,
        end = MARK_END,
    )
}

/// pthreads-style version: the force phase fans out over `ncpus` CPU threads
/// (spawned per step, Figure 7's "pthreads version … with 4 threads").
pub fn pthreads_source(p: &BhParams, ncpus: u64) -> String {
    format!(
        r#"{common}
const NCPU = {ncpus};
struct Args {{ bodies: Body*; root: QNode*; done: int*; }}
global gargs: int;

fn force_slice(t: int, g: Args*) {{
    let per = (NB + NCPU - 1) / NCPU;
    let lo = t * per;
    let hi = lo + per;
    if (hi > NB) {{ hi = NB; }}
    for (let i = lo; i < hi; i = i + 1) {{
        let b = g->bodies[i];
        b->ax = 0.0; b->ay = 0.0;
        force(g->root, i, g->bodies);
    }}
}}

fn worker(t: int) -> int {{
    let g: Args* = gargs as Args*;
    force_slice(t, g);
    g->done[t] = 1;
    return 0;
}}

_CPU_ fn main() -> int {{
    arena_cur = 0; arena_end = 0;
    let g: Args* = malloc(sizeof(Args));
    g->bodies = malloc(NB * sizeof(Body)) as Body*;
    g->done = malloc(NCPU * 8);
    gargs = g as int;
    init_bodies(g->bodies);
    print_int({start});
    for (let s = 0; s < STEPS; s = s + 1) {{
        g->root = build_tree(g->bodies);
        for (let t = 1; t < NCPU; t = t + 1) {{
            g->done[t] = 0;
            spawn_cthread(worker, t);
        }}
        force_slice(0, g);
        for (let t = 1; t < NCPU; t = t + 1) {{
            while (g->done[t] == 0) {{ }}
        }}
        integrate(g->bodies);
    }}
    print_int({end});
    return checksum(g->bodies);
}}
"#,
        common = common_xc(p),
        ncpus = ncpus,
        start = MARK_START,
        end = MARK_END,
    )
}

/// The functional-interpreter oracle checksum for this instance (runs the
/// CPU version; all versions compute identical IEEE-754 sequences per body).
pub fn oracle_checksum(p: &BhParams) -> u64 {
    crate::run_functional(&cpu_source(p), 2_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_xthreads_agree_functionally() {
        let p = BhParams {
            bodies: 24,
            steps: 2,
            max_threads: 8,
            seed: 9,
        };
        let cpu = crate::run_functional(&cpu_source(&p), 1_000_000_000);
        let xt = crate::run_functional(&xthreads_source(&p), 1_000_000_000);
        assert_eq!(cpu, xt, "same arithmetic on both versions");
        assert_ne!(cpu, 0, "bodies moved");
    }

    #[test]
    fn deterministic_across_runs() {
        let p = BhParams {
            bodies: 16,
            steps: 1,
            max_threads: 4,
            seed: 3,
        };
        assert_eq!(oracle_checksum(&p), oracle_checksum(&p));
    }

    #[test]
    fn pthreads_source_compiles() {
        let p = BhParams {
            bodies: 16,
            steps: 1,
            max_threads: 4,
            seed: 3,
        };
        let _ = crate::build(&pthreads_source(&p, 4));
    }
}
