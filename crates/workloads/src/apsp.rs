//! All-pairs shortest path (paper §5.2, Figure 6).
//!
//! Floyd–Warshall: "a triply-nested loop that fills out an adjacency
//! matrix … The algorithm requires a barrier between each iteration of the
//! outermost loop." The xthreads version launches threads **once** and uses
//! the cheap CPU+MTTOP memory barrier per `k` iteration — exactly the
//! pattern that makes loosely-coupled systems relaunch a kernel per
//! iteration (the paper's Figure 6 point).

use crate::{lcg_xc, MARK_END, MARK_START};

/// An `n`-node directed graph with LCG-random edges.
#[derive(Clone, Copy, Debug)]
pub struct ApspParams {
    /// Node count.
    pub n: u64,
    /// MTTOP threads (clamped to `n*n` and the chip).
    pub max_threads: u64,
    /// LCG seed.
    pub seed: u64,
}

/// "Infinite" distance (no edge).
pub const INF: i64 = 1_000_000;

impl ApspParams {
    /// `n` nodes on the paper-default chip.
    pub fn new(n: u64, seed: u64) -> ApspParams {
        ApspParams {
            n,
            max_threads: 1280,
            seed,
        }
    }

    /// Threads actually launched. APSP barriers cost O(threads) per outer
    /// iteration, so the port launches "as many MTTOP cores as can be
    /// utilized **for the matrix size**" (paper §5.2): enough threads that
    /// per-iteration compute amortizes the barrier, never more than the chip
    /// holds.
    pub fn threads(&self) -> u64 {
        (self.n * self.n / 128)
            .clamp(64, 256)
            .min(self.n * self.n)
            .min(self.max_threads)
            .max(1)
    }
}

fn init_xc(p: &ApspParams) -> String {
    format!(
        "{lcg}
         const N = {n};
         const SEED = {seed};
         const INF = {inf};
         fn fill(d: int*) {{
             let x = SEED;
             for (let i = 0; i < N; i = i + 1) {{
                 for (let j = 0; j < N; j = j + 1) {{
                     x = x * LCG_MUL + LCG_ADD;
                     let r = (x >> 33) % 64;
                     if (i == j) {{ d[i * N + j] = 0; }}
                     else if (r < 12) {{ d[i * N + j] = (x >> 13) % 100 + 1; }}
                     else {{ d[i * N + j] = INF; }}
                 }}
             }}
         }}
         fn checksum(d: int*) -> int {{
             let s = 0;
             for (let i = 0; i < N * N; i = i + 1) {{
                 let v = d[i];
                 if (v < INF) {{ s = s + v * (i % 13 + 1); }}
             }}
             return s;
         }}",
        lcg = lcg_xc(),
        n = p.n,
        seed = p.seed,
        inf = INF,
    )
}

/// CCSVM/xthreads: one launch; per-`k` global barrier in shared memory.
pub fn xthreads_source(p: &ApspParams) -> String {
    format!(
        "{init}
         struct Args {{ d: int*; bar: int*; sense: int*; nt: int; }}
         _MTTOP_ fn fw(tid: int, g: Args*) {{
             let n = N;
             let d = g->d;
             for (let k = 0; k < n; k = k + 1) {{
                 let idx = tid;
                 while (idx < n * n) {{
                     let i = idx / n;
                     let j = idx % n;
                     let via = d[i * n + k] + d[k * n + j];
                     if (via < d[idx]) {{ d[idx] = via; }}
                     idx = idx + g->nt;
                 }}
                 xt_barrier_mttop(g->bar, g->sense, tid);
             }}
         }}
         _CPU_ fn main() -> int {{
             let g: Args* = malloc(sizeof(Args));
             g->d = malloc(N * N * 8);
             g->nt = {threads};
             g->bar = malloc(g->nt * 8);
             g->sense = malloc(8);
             fill(g->d);
             for (let t = 0; t < g->nt; t = t + 1) {{ g->bar[t] = 0; }}
             *(g->sense) = 0;
             print_int({start});
             if (xt_create_mthread(fw, g as int, 0, g->nt - 1) != 0) {{ return -1; }}
             for (let k = 0; k < N; k = k + 1) {{
                 xt_barrier_cpu(g->bar, g->sense, 0, g->nt - 1);
             }}
             print_int({end});
             return checksum(g->d);
         }}",
        init = init_xc(p),
        threads = p.threads(),
        start = MARK_START,
        end = MARK_END,
    )
}

/// Single-CPU Floyd–Warshall.
pub fn cpu_source(p: &ApspParams) -> String {
    format!(
        "{init}
         _CPU_ fn main() -> int {{
             let d: int* = malloc(N * N * 8);
             fill(d);
             print_int({start});
             for (let k = 0; k < N; k = k + 1) {{
                 for (let i = 0; i < N; i = i + 1) {{
                     for (let j = 0; j < N; j = j + 1) {{
                         let via = d[i * N + k] + d[k * N + j];
                         if (via < d[i * N + j]) {{ d[i * N + j] = via; }}
                     }}
                 }}
             }}
             print_int({end});
             return checksum(d);
         }}",
        init = init_xc(p),
        start = MARK_START,
        end = MARK_END,
    )
}

/// Number of kernel launches a loosely-coupled (OpenCL-style) system needs:
/// one per outer iteration (this is what the APU model pays for).
pub fn launches_needed(p: &ApspParams) -> u64 {
    p.n
}

/// Rust reference checksum.
pub fn reference_checksum(p: &ApspParams) -> u64 {
    let n = p.n as usize;
    let mut d = vec![0i64; n * n];
    let mut x = p.seed;
    for i in 0..n {
        for j in 0..n {
            x = crate::lcg_next(x);
            let r = (x >> 33) % 64;
            d[i * n + j] = if i == j {
                0
            } else if r < 12 {
                ((x >> 13) % 100 + 1) as i64
            } else {
                INF
            };
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i * n + k] + d[k * n + j];
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    let mut s: i64 = 0;
    for (i, &v) in d.iter().enumerate() {
        if v < INF {
            s = s.wrapping_add(v.wrapping_mul(i as i64 % 13 + 1));
        }
    }
    s as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_version_matches_reference() {
        for n in [2, 4, 8] {
            let p = ApspParams {
                n,
                max_threads: 16,
                seed: 7,
            };
            let got = crate::run_functional(&cpu_source(&p), 500_000_000);
            assert_eq!(got, reference_checksum(&p), "n={n}");
        }
    }

    // The xthreads version uses the CPU+MTTOP barrier, which cannot run on
    // the synchronous functional interpreter; it is validated on the timing
    // machine in `tests/workloads.rs`.

    #[test]
    fn reference_shrinks_distances() {
        // After FW, distances never exceed direct edges.
        let p = ApspParams {
            n: 6,
            max_threads: 8,
            seed: 3,
        };
        let _ = reference_checksum(&p); // smoke: no panic, deterministic
        assert_eq!(reference_checksum(&p), reference_checksum(&p));
    }

    #[test]
    fn launches_scale_with_n() {
        assert_eq!(launches_needed(&ApspParams::new(128, 0)), 128);
    }
}
