//! The paper's evaluation benchmarks (§5.2–§5.3) as XC programs.
//!
//! Each module provides:
//!
//! * XC source generators for the **xthreads/CCSVM** version and the
//!   baselines the paper compares against (single-CPU, and pthreads-style
//!   multi-CPU for Barnes-Hut);
//! * a deterministic **Rust reference** used to validate guest results;
//! * the checksum convention: programs return a checksum as `main`'s exit
//!   code, so validation never perturbs timing.
//!
//! # Timing markers
//!
//! The paper's figures measure the offload region (launch + execution +
//! synchronization), not program setup. Programs bracket the region of
//! interest with `print_int(MARK_START)` / `print_int(MARK_END)`; harnesses
//! read the timestamps of those prints from the run report
//! ([`region_time`]). Input initialization (the benchmarks' `rand()` loops)
//! happens *before* the start mark, checksums after the end mark — matching
//! the paper's "runtime without compilation and initialization" accounting
//! for its own system.
//!
//! # Determinism
//!
//! Guest-side input initialization uses a 64-bit LCG ([`LCG_MUL`],
//! [`LCG_ADD`]) implemented identically in XC (wrapping integer multiply)
//! and in the Rust references, so reference results match bit-for-bit.

pub mod apsp;
pub mod barnes_hut;
pub mod matmul;
pub mod spmm;
pub mod vecadd;

/// Marker printed at the start of the timed region.
pub const MARK_START: i64 = -7_000_001;
/// Marker printed at the end of the timed region.
pub const MARK_END: i64 = -7_000_002;

/// LCG multiplier (Knuth MMIX).
pub const LCG_MUL: i64 = 6364136223846793005;
/// LCG increment.
pub const LCG_ADD: i64 = 1442695040888963407;

/// Advances the LCG (Rust side; the XC side is `x * LCG_MUL + LCG_ADD`).
pub fn lcg_next(x: u64) -> u64 {
    x.wrapping_mul(LCG_MUL as u64).wrapping_add(LCG_ADD as u64)
}

/// XC snippet defining the LCG constants (include once per program).
pub fn lcg_xc() -> String {
    format!("const LCG_MUL = {LCG_MUL};\nconst LCG_ADD = {LCG_ADD};\n")
}

/// Extracts the `[MARK_START, MARK_END]` region duration from a run's
/// `(printed, printed_at)` pair. Returns the full runtime when markers are
/// absent.
pub fn region_time(
    printed: &[String],
    printed_at: &[ccsvm_engine::Time],
    full: ccsvm_engine::Time,
) -> ccsvm_engine::Time {
    let start = printed.iter().position(|s| s == &MARK_START.to_string());
    let end = printed.iter().position(|s| s == &MARK_END.to_string());
    match (start, end) {
        (Some(s), Some(e)) if e > s => printed_at[e] - printed_at[s],
        _ => full,
    }
}

/// Region-only DRAM accesses between the `[MARK_START, MARK_END]` prints;
/// falls back to `total` when markers are absent.
pub fn region_dram(printed: &[String], dram_at_print: &[u64], total: u64) -> u64 {
    let start = printed.iter().position(|s| s == &MARK_START.to_string());
    let end = printed.iter().position(|s| s == &MARK_END.to_string());
    match (start, end) {
        (Some(s), Some(e)) if e > s => dram_at_print[e] - dram_at_print[s],
        _ => total,
    }
}

use ccsvm_isa::Program;

/// Compiles an xthreads workload source.
///
/// # Panics
///
/// Panics on compile errors — workload sources are generated, so an error is
/// a bug in this crate.
pub fn build(source: &str) -> Program {
    ccsvm_xthreads::build(source)
        .unwrap_or_else(|e| panic!("workload failed to compile: {e}\n{source}"))
}

/// Runs a workload functionally (reference interpreter, synchronous
/// launches) and returns `main`'s exit value. Used as the semantic oracle
/// for workloads whose arithmetic is awkward to re-derive in Rust
/// (Barnes-Hut's float traversal order).
///
/// # Panics
///
/// Panics if the program traps or exceeds `max_steps`.
pub fn run_functional(source: &str, max_steps: u64) -> u64 {
    let p = build(source);
    let mut mem = ccsvm_isa::FlatMem::new();
    let mut os = ccsvm_isa::FuncOs::new();
    let mut t = ccsvm_isa::Interp::new(p.entry("__start"), 0);
    t.run(&p, &mut mem, &mut os, max_steps)
        .unwrap_or_else(|e| panic!("functional run trapped: {e:?}"));
    t.regs[1]
}
