//! Sparse matrix multiplication over linked non-zero elements
//! (paper §5.3.2, Figure 8).
//!
//! "For extremely large, sparse matrices, the only tractable way to
//! represent them is with pointer-based data structures that link non-zero
//! elements." Rows are linked lists of `Node { col, val, next }`. The MTTOP
//! threads build the **result's** linked rows with `mttop_malloc`, serviced
//! by a CPU thread running the xthreads malloc server — the paper's
//! dynamic-allocation mechanism, including its bottleneck at high densities
//! (Figure 8 right).

use crate::{lcg_xc, MARK_END, MARK_START};

/// Sparse `n×n` integer matrices with `density_ppm/1e6` expected non-zeros.
#[derive(Clone, Copy, Debug)]
pub struct SpmmParams {
    /// Matrix dimension.
    pub n: u64,
    /// Non-zero probability in parts per thousand (10 = the paper's 1%... in
    /// tenths of a percent: 10 ⇒ 1%).
    pub density_tenths_pct: u64,
    /// MTTOP threads (one row per thread, grid-stride).
    pub max_threads: u64,
    /// LCG seed.
    pub seed: u64,
}

impl SpmmParams {
    /// The paper's fixed-sparsity (1%) configuration.
    pub fn one_percent(n: u64, seed: u64) -> SpmmParams {
        SpmmParams {
            n,
            density_tenths_pct: 10,
            max_threads: 1280,
            seed,
        }
    }

    /// Threads actually launched (≤ one per row).
    pub fn threads(&self) -> u64 {
        self.n.min(self.max_threads).max(1)
    }
}

fn common_xc(p: &SpmmParams) -> String {
    format!(
        "{lcg}
         const N = {n};
         const SEED = {seed};
         const TH = {th};
         struct Node {{ col: int; val: int; next: Node*; }}
         // Builds one sparse matrix's rows (ascending col order) with malloc;
         // returns the LCG state. rows[i] holds a Node* as int.
         _CPU_ fn build(rows: int*, x0: int) -> int {{
             let x = x0;
             for (let i = 0; i < N; i = i + 1) {{
                 let head: Node* = 0 as Node*;
                 for (let j = N - 1; j >= 0; j = j - 1) {{
                     x = x * LCG_MUL + LCG_ADD;
                     let r = (x >> 33) % 1000;
                     if (r < TH) {{
                         let nn: Node* = malloc(sizeof(Node));
                         nn->col = j;
                         nn->val = (x >> 13) % 9 + 1;
                         nn->next = head;
                         head = nn;
                     }}
                 }}
                 rows[i] = head as int;
             }}
             return x;
         }}
         fn checksum_rows(rows: int*) -> int {{
             let s = 0;
             for (let i = 0; i < N; i = i + 1) {{
                 let p: Node* = rows[i] as Node*;
                 while (p != 0 as Node*) {{
                     s = s + p->val * ((i * 31 + p->col) % 97 + 1);
                     p = p->next;
                 }}
             }}
             return s;
         }}",
        lcg = lcg_xc(),
        n = p.n,
        seed = p.seed,
        th = p.density_tenths_pct,
    )
}

/// CCSVM/xthreads: MTTOP threads compute result rows, allocating result
/// nodes through `mttop_malloc`; the CPU runs the malloc server.
pub fn xthreads_source(p: &SpmmParams) -> String {
    format!(
        "{common}
         struct Args {{
             arows: int*; brows: int*; crows: int*;
             scratch: int*; req: int*; resp: int*; done: int*; nt: int;
         }}
         _MTTOP_ fn spmm(tid: int, g: Args*) {{
             let i = tid;
             while (i < N) {{
                 let acc = g->scratch + tid * N;
                 for (let j = 0; j < N; j = j + 1) {{ acc[j] = 0; }}
                 let pa: Node* = g->arows[i] as Node*;
                 while (pa != 0 as Node*) {{
                     let k = pa->col;
                     let va = pa->val;
                     let pb: Node* = g->brows[k] as Node*;
                     while (pb != 0 as Node*) {{
                         acc[pb->col] = acc[pb->col] + va * pb->val;
                         pb = pb->next;
                     }}
                     pa = pa->next;
                 }}
                 let head: Node* = 0 as Node*;
                 for (let j = N - 1; j >= 0; j = j - 1) {{
                     if (acc[j] != 0) {{
                         let nn: Node* =
                             xt_mttop_malloc(g->req, g->resp, tid, sizeof(Node)) as Node*;
                         nn->col = j;
                         nn->val = acc[j];
                         nn->next = head;
                         head = nn;
                     }}
                 }}
                 g->crows[i] = head as int;
                 i = i + g->nt;
             }}
             xt_msignal(g->done, tid);
         }}
         _CPU_ fn main() -> int {{
             let g: Args* = malloc(sizeof(Args));
             g->arows = malloc(N * 8);
             g->brows = malloc(N * 8);
             g->crows = malloc(N * 8);
             g->nt = {threads};
             g->scratch = malloc(g->nt * N * 8);
             g->req = malloc(g->nt * 8);
             g->resp = malloc(g->nt * 8);
             g->done = malloc(g->nt * 8);
             let x = build(g->arows, SEED);
             x = build(g->brows, x);
             for (let t = 0; t < g->nt; t = t + 1) {{
                 g->req[t] = 0; g->resp[t] = 0; g->done[t] = 0;
             }}
             print_int({start});
             if (xt_create_mthread(spmm, g as int, 0, g->nt - 1) != 0) {{ return -1; }}
             xt_malloc_server(g->req, g->resp, g->nt, g->done, 0, g->nt - 1);
             print_int({end});
             return checksum_rows(g->crows);
         }}",
        common = common_xc(p),
        threads = p.threads(),
        start = MARK_START,
        end = MARK_END,
    )
}

/// Single-CPU version (regular `malloc`).
pub fn cpu_source(p: &SpmmParams) -> String {
    format!(
        "{common}
         _CPU_ fn main() -> int {{
             let arows: int* = malloc(N * 8);
             let brows: int* = malloc(N * 8);
             let crows: int* = malloc(N * 8);
             let acc: int* = malloc(N * 8);
             let x = build(arows, SEED);
             x = build(brows, x);
             print_int({start});
             for (let i = 0; i < N; i = i + 1) {{
                 for (let j = 0; j < N; j = j + 1) {{ acc[j] = 0; }}
                 let pa: Node* = arows[i] as Node*;
                 while (pa != 0 as Node*) {{
                     let k = pa->col;
                     let va = pa->val;
                     let pb: Node* = brows[k] as Node*;
                     while (pb != 0 as Node*) {{
                         acc[pb->col] = acc[pb->col] + va * pb->val;
                         pb = pb->next;
                     }}
                     pa = pa->next;
                 }}
                 let head: Node* = 0 as Node*;
                 for (let j = N - 1; j >= 0; j = j - 1) {{
                     if (acc[j] != 0) {{
                         let nn: Node* = malloc(sizeof(Node));
                         nn->col = j;
                         nn->val = acc[j];
                         nn->next = head;
                         head = nn;
                     }}
                 }}
                 crows[i] = head as int;
             }}
             print_int({end});
             return checksum_rows(crows);
         }}",
        common = common_xc(p),
        start = MARK_START,
        end = MARK_END,
    )
}

/// Rust reference checksum (order-independent, so list order is moot).
pub fn reference_checksum(p: &SpmmParams) -> u64 {
    let n = p.n as usize;
    let mut x = p.seed;
    let build = |x: &mut u64| -> Vec<Vec<(usize, i64)>> {
        let mut rows = vec![Vec::new(); n];
        for row in rows.iter_mut() {
            // Guest iterates j from N-1 down to 0.
            for j in (0..n).rev() {
                *x = crate::lcg_next(*x);
                if (*x >> 33) % 1000 < p.density_tenths_pct {
                    row.push((j, ((*x >> 13) % 9 + 1) as i64));
                }
            }
            row.reverse(); // ascending col, like the guest list
        }
        rows
    };
    let a = build(&mut x);
    let b = build(&mut x);
    let mut s: i64 = 0;
    for (i, row) in a.iter().enumerate().take(n) {
        let mut acc = vec![0i64; n];
        for &(k, va) in row {
            for &(j, vb) in &b[k] {
                acc[j] += va * vb;
            }
        }
        for (j, &v) in acc.iter().enumerate() {
            if v != 0 {
                s = s.wrapping_add(v.wrapping_mul(((i * 31 + j) % 97 + 1) as i64));
            }
        }
    }
    s as u64
}

/// Expected number of result-node allocations (drives the Figure 8
/// malloc-bottleneck analysis).
pub fn reference_allocations(p: &SpmmParams) -> u64 {
    let n = p.n as usize;
    let mut x = p.seed;
    let build = |x: &mut u64| -> Vec<Vec<(usize, i64)>> {
        let mut rows = vec![Vec::new(); n];
        for row in rows.iter_mut() {
            for j in (0..n).rev() {
                *x = crate::lcg_next(*x);
                if (*x >> 33) % 1000 < p.density_tenths_pct {
                    row.push((j, 1));
                }
            }
        }
        rows
    };
    let a = build(&mut x);
    let b = build(&mut x);
    let mut total = 0u64;
    for row in a.iter().take(n) {
        let mut nz = vec![false; n];
        for &(k, _) in row {
            for &(j, _) in &b[k] {
                nz[j] = true;
            }
        }
        total += nz.iter().filter(|&&z| z).count() as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_version_matches_reference() {
        for (n, th) in [(8, 100), (12, 300), (16, 50)] {
            let p = SpmmParams {
                n,
                density_tenths_pct: th,
                max_threads: 8,
                seed: 11,
            };
            let got = crate::run_functional(&cpu_source(&p), 500_000_000);
            assert_eq!(got, reference_checksum(&p), "n={n} th={th}");
        }
    }

    #[test]
    fn dense_limit_matches_matmul_shape() {
        // 100% density: every row full.
        let p = SpmmParams {
            n: 6,
            density_tenths_pct: 1000,
            max_threads: 4,
            seed: 2,
        };
        assert_eq!(reference_allocations(&p), 36);
        let got = crate::run_functional(&cpu_source(&p), 500_000_000);
        assert_eq!(got, reference_checksum(&p));
    }

    #[test]
    fn zero_density_allocates_nothing() {
        let p = SpmmParams {
            n: 8,
            density_tenths_pct: 0,
            max_threads: 4,
            seed: 2,
        };
        assert_eq!(reference_allocations(&p), 0);
        assert_eq!(reference_checksum(&p), 0);
    }

    // The xthreads version needs the malloc server (CPU/MTTOP concurrency):
    // validated on the timing machine in `tests/workloads.rs`.
}
