//! Workloads on the timing machine: every benchmark's guest result must
//! match its reference, with real launches, barriers, malloc servers and
//! coherence in play.

use ccsvm::{Machine, SystemConfig};
use ccsvm_workloads as wl;

fn run_timed(src: &str, cfg: SystemConfig) -> (u64, ccsvm_engine::Time, ccsvm::RunReport) {
    let prog = wl::build(src);
    let mut m = Machine::new(cfg, prog);
    let r = m.run();
    let region = wl::region_time(&r.printed, &r.printed_at, r.time);
    (r.exit_code, region, r)
}

fn small_chip() -> SystemConfig {
    let mut c = SystemConfig::tiny();
    c.max_sim_time = ccsvm_engine::Time::from_ms(2_000);
    c
}

#[test]
fn vecadd_checksum_and_markers() {
    let p = wl::vecadd::VecaddParams { n: 48, seed: 1 };
    let (code, region, r) = run_timed(&wl::vecadd::xthreads_source(&p), small_chip());
    assert_eq!(code, wl::vecadd::reference_checksum(&p));
    assert!(region > ccsvm_engine::Time::ZERO);
    assert!(region < r.time, "markers exclude init");
}

#[test]
fn matmul_xthreads_matches_reference() {
    let p = wl::matmul::MatmulParams {
        n: 8,
        max_threads: 32,
        seed: 4,
    };
    let (code, _, _) = run_timed(&wl::matmul::xthreads_source(&p), small_chip());
    assert_eq!(code, wl::matmul::reference_checksum(&p));
}

#[test]
fn matmul_cpu_matches_reference() {
    let p = wl::matmul::MatmulParams {
        n: 8,
        max_threads: 32,
        seed: 4,
    };
    let (code, _, _) = run_timed(&wl::matmul::cpu_source(&p), small_chip());
    assert_eq!(code, wl::matmul::reference_checksum(&p));
}

#[test]
fn apsp_xthreads_barriers_converge() {
    // Per-k CPU+MTTOP barriers across 2 MTTOP cores.
    let p = wl::apsp::ApspParams {
        n: 6,
        max_threads: 16,
        seed: 13,
    };
    let (code, _, r) = run_timed(&wl::apsp::xthreads_source(&p), small_chip());
    assert_eq!(code, wl::apsp::reference_checksum(&p));
    assert_eq!(r.stats.get("mifd.launches"), 1.0, "one launch, N barriers");
}

#[test]
fn spmm_xthreads_with_malloc_server() {
    let p = wl::spmm::SpmmParams {
        n: 12,
        density_tenths_pct: 150,
        max_threads: 8,
        seed: 21,
    };
    let (code, _, _) = run_timed(&wl::spmm::xthreads_source(&p), small_chip());
    assert_eq!(code, wl::spmm::reference_checksum(&p));
}

#[test]
fn barnes_hut_xthreads_matches_oracle() {
    let p = wl::barnes_hut::BhParams {
        bodies: 16,
        steps: 1,
        max_threads: 8,
        seed: 17,
    };
    let oracle = wl::barnes_hut::oracle_checksum(&p);
    let (code, _, _) = run_timed(&wl::barnes_hut::xthreads_source(&p), small_chip());
    assert_eq!(code, oracle);
}

#[test]
fn barnes_hut_pthreads_matches_oracle() {
    let p = wl::barnes_hut::BhParams {
        bodies: 16,
        steps: 1,
        max_threads: 8,
        seed: 17,
    };
    let oracle = wl::barnes_hut::oracle_checksum(&p);
    let (code, _, _) = run_timed(&wl::barnes_hut::pthreads_source(&p, 2), small_chip());
    assert_eq!(code, oracle);
}

#[test]
fn offload_beats_single_cpu_on_parallel_work() {
    // The paper's core claim in miniature: with enough parallel work, the
    // MTTOP offload (even on the tiny chip) beats one slow CPU core.
    let p = wl::matmul::MatmulParams {
        n: 32,
        max_threads: 64,
        seed: 2,
    };
    let (_, t_xt, _) = run_timed(&wl::matmul::xthreads_source(&p), small_chip());
    let (_, t_cpu, _) = run_timed(&wl::matmul::cpu_source(&p), small_chip());
    assert!(
        t_xt < t_cpu,
        "offload {t_xt} should beat single CPU {t_cpu}"
    );
}
