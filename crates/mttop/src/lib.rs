//! MTTOP core timing model and the MTTOP InterFace Device (MIFD).
//!
//! Table 2's MTTOP cores: 600 MHz, 128 thread contexts per core, "can
//! simultaneously execute 8 threads" (⇒ up to 80 ops/cycle across the
//! 10-core MTTOP). Each core has a private coherent L1 (full MOESI peer,
//! §3.2.2), a 64-entry TLB with a hardware walker whose PTE reads are
//! ordinary cacheable loads, and performs atomics at the L1 after acquiring
//! M (§3.2.4).
//!
//! Two issue organisations are implemented ([`MttopConfig::lockstep`]):
//!
//! * **Fine-grained multithreading** (the CCSVM MTTOP default,
//!   [`MttopConfig::paper_ccsvm`]): 128 single-lane contexts; each cycle up
//!   to `issue_width` (8) *independent* threads issue. Control-flow
//!   divergence costs nothing, which is what lets the paper's recursive
//!   pointer-chasing kernels (§5.3) run well, and latency hiding comes from
//!   the many outstanding per-thread misses.
//! * **Lockstep SIMT** (the APU baseline's Radeon,
//!   [`MttopConfig::apu_gpu`]): 16 warps × 8 lanes, one warp-instruction per
//!   cycle with min-PC divergence handling, per-warp **coalescing**
//!   (same-instruction accesses to one 64 B block merge into one L1 access;
//!   atomics never coalesce), and `vliw_ops_per_lane` packing (4 ⇒ Table 2's
//!   "max 320 operations per cycle").
//!
//! # The min-PC reconvergence rule (exact)
//!
//! Earlier revisions of this doc said only that "lanes at the warp's minimum
//! PC execute so lagging lanes catch up", which drifted from what `issue`
//! actually implements (and under-specified what any fast-path dispatcher
//! must preserve). The precise rule, asserted by the
//! `lagging_lane_reconverges_at_min_pc` litmus test:
//!
//! 1. **Participating set**: before *every* issued warp-instruction, the set
//!    is recomputed as the **live** lanes whose PC equals the minimum PC over
//!    all live lanes. Dead lanes (`exit`ed) never participate and never hold
//!    the minimum.
//! 2. The participating lanes all execute the *same* instruction (the one at
//!    the min PC) in the same issue slot; non-participating live lanes are
//!    untouched.
//! 3. `divergent_issues` increments once per issue whose participating set is
//!    a strict subset of the live lanes.
//! 4. **Reconvergence** is emergent, not stack-based: a lane group behind the
//!    others keeps holding the minimum until its PC reaches another lane's
//!    PC, at which point the recomputation in (1) merges them into one set.
//!    Hence the batched superblock dispatcher may reuse a cached
//!    participating set **only up to the smallest lagging live lane's PC** —
//!    one micro-op short of it, the cursor dies and the next issue
//!    recomputes, exactly as the per-instruction loop would.
//! 5. A warp whose live-lane set is empty frees its context; a warp whose
//!    participating lanes sit on a memory instruction issues it for those
//!    lanes only (coalescing applies within the participating set).
//!
//! Timing quirk, kept deliberately: `CallReg` charges
//! `clock.period()` in **both** modes (fine-grained included), unlike `Call`
//! which charges the mode-dependent `full_charge` (zero in fine-grained
//! mode). Golden `RunReport`s bake this in, so the fast path must *not*
//! "fix" it; it is harmless because indirect calls are a superblock boundary
//! and always take the slow path.
//!
//! Page faults cannot trap to an OS here (MTTOPs don't run the OS): the core
//! reports them and the machine forwards them through the [`Mifd`] to a CPU
//! core (§3.2.1).

use std::collections::VecDeque;

use ccsvm_engine::{stat_id, Clock, FxHashMap, Stats, Time};
use ccsvm_isa::{
    abi, decodable, AmoKind, Instr, MicroOp, Operand, Program, Reg, SbCache, SbRef, SbStats,
};
use ccsvm_mem::{Access, AccessResult, AtomicOp, CorePort, PhysAddr, PortId};
use ccsvm_vm::{frame_plus_offset, Tlb, VirtAddr, Walk, WalkResult};

/// Static configuration of one MTTOP core.
#[derive(Clone, Copy, Debug)]
pub struct MttopConfig {
    /// Core clock (Table 2: 600 MHz).
    pub clock: Clock,
    /// Warp contexts per core (16 ⇒ 128 threads).
    pub warps: usize,
    /// Lanes per warp (8 simultaneous threads).
    pub lanes: usize,
    /// Batch quantum in core cycles.
    pub quantum_cycles: u64,
    /// Warp-scheduler wakeup grid in core cycles: a memory completion (or
    /// fault resolution) arriving mid-grid wakes the core at the *next*
    /// grid edge, not at the completion's exact picosecond — a clocked
    /// scheduler samples runnable warps at tick edges rather than
    /// asynchronously. Coarser grids coalesce nearby completions into one
    /// batch (fewer, fatter scheduling events); `0` disables alignment.
    pub wake_grid_cycles: u64,
    /// TLB capacity.
    pub tlb_entries: usize,
    /// VLIW packing factor for ALU work (1 = the CCSVM MTTOP; 4 = the APU
    /// GPU at full VLIW utilization).
    pub vliw_ops_per_lane: u64,
    /// First hardware-context id of this core (for stack placement).
    pub ctx_base: u64,
    /// L1 access banks: this many uncoalesced same-instruction groups issue
    /// per cycle (GPU L1s are multi-banked; fully-diverged accesses serialize
    /// over `lanes / l1_banks` cycles, not `lanes`).
    pub l1_banks: u64,
    /// Lockstep SIMT (`true`: one warp-instruction per cycle across `lanes`
    /// lanes — a VLIW-GPU-style core) versus fine-grained multithreading
    /// (`false`: `issue_width` independent single-lane threads issue per
    /// cycle — Table 2's "supports 128 threads and can simultaneously
    /// execute 8 threads", which is what lets the paper's recursive
    /// pointer-chasing kernels run without lockstep divergence collapse).
    pub lockstep: bool,
    /// Threads issued per cycle in fine-grained mode.
    pub issue_width: usize,
}

impl MttopConfig {
    /// The paper's CCSVM MTTOP core: 128 thread contexts, 8 issued per
    /// cycle, fine-grained (divergence-tolerant) scheduling.
    pub fn paper_ccsvm(ctx_base: u64) -> MttopConfig {
        MttopConfig {
            clock: Clock::from_mhz(600.0),
            warps: 128,
            lanes: 1,
            quantum_cycles: 100,
            wake_grid_cycles: 16,
            tlb_entries: 64,
            vliw_ops_per_lane: 1,
            ctx_base,
            l1_banks: 4,
            lockstep: false,
            issue_width: 8,
        }
    }

    /// A Radeon-like VLIW SIMD unit for the APU baseline: 16 lockstep warps
    /// of 8 lanes packing up to 4 ops per lane.
    pub fn apu_gpu(ctx_base: u64) -> MttopConfig {
        MttopConfig {
            clock: Clock::from_mhz(600.0),
            warps: 16,
            lanes: 8,
            quantum_cycles: 100,
            wake_grid_cycles: 16,
            tlb_entries: 64,
            vliw_ops_per_lane: 4,
            ctx_base,
            l1_banks: 4,
            lockstep: true,
            issue_width: 1,
        }
    }
}

/// A warp-sized slice of a launched task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskChunk {
    /// Entry PC of the kernel function.
    pub entry: usize,
    /// Argument pointer (→ each thread's `r2`).
    pub args: u64,
    /// First thread id in this chunk (→ lane 0's `r1`).
    pub first_tid: u64,
    /// Last thread id (inclusive); `last - first + 1 <= lanes`.
    pub last_tid: u64,
    /// Page-table root for the owning process (§4.3: part of the task
    /// descriptor).
    pub cr3: PhysAddr,
    /// Return address (the program's `__kexit` stub).
    pub ra: usize,
}

/// Outcome of a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MttopAction {
    /// Schedule the next batch at the given time.
    Continue {
        /// Earliest useful resume time.
        at: Time,
    },
    /// All runnable warps are blocked on memory/walks/faults.
    Blocked,
    /// No live warps.
    Idle,
}

/// A page fault the machine must forward to a CPU via the MIFD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageFaultReq {
    /// Faulting warp index.
    pub warp: usize,
    /// Faulting address.
    pub va: VirtAddr,
    /// CR3 the fault handler needs (§3.2.1: shipped with the interrupt).
    pub cr3: PhysAddr,
}

/// Result of [`MttopCore::run_batch`].
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Scheduling directive.
    pub action: MttopAction,
    /// New page faults discovered this batch.
    pub faults: Vec<PageFaultReq>,
    /// An access this batch (or an earlier one) touched an ECC-poisoned
    /// block; the machine must abort the run gracefully.
    pub poisoned: bool,
}

#[derive(Clone, Debug)]
struct Lane {
    regs: [u64; 32],
    pc: usize,
    live: bool,
}

/// Executes `op` on the lanes selected by `mask`, advancing each lane's PC
/// by `pc_step`. Three shapes, chosen by how many lanes participate: the
/// full-warp case hands every register file to [`MicroOp::exec_all`] (one
/// enum dispatch per warp-op, no per-lane mask test), the single-lane case
/// (deep divergence) skips iteration entirely, and the partial case walks
/// the mask bits.
#[inline(always)]
fn exec_masked(op: MicroOp, lanes: &mut [Lane], mask: u8, full: u8, pc_step: usize) {
    if mask == full {
        op.exec_all(lanes.iter_mut().map(|l| &mut l.regs));
        for lane in lanes {
            lane.pc += pc_step;
        }
    } else if mask.is_power_of_two() {
        let lane = &mut lanes[mask.trailing_zeros() as usize];
        op.exec(&mut lane.regs);
        lane.pc += pc_step;
    } else {
        let mut m = mask;
        while m != 0 {
            let li = m.trailing_zeros() as usize;
            m &= m - 1;
            let lane = &mut lanes[li];
            op.exec(&mut lane.regs);
            lane.pc += pc_step;
        }
    }
}

/// Sprint body: executes a whole run of micro-ops on the lanes selected by
/// `mask` and advances their PCs by `ops.len()`. Full warps go op-outer so
/// the enum dispatch happens once per op for all lanes; divergent warps go
/// lane-outer so one lane's register file stays hot across the run.
#[inline(always)]
fn sprint_masked(ops: &[MicroOp], lanes: &mut [Lane], mask: u8, full: u8) {
    if mask == full {
        for op in ops {
            op.exec_all(lanes.iter_mut().map(|l| &mut l.regs));
        }
        for lane in lanes {
            lane.pc += ops.len();
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let li = m.trailing_zeros() as usize;
            m &= m - 1;
            let lane = &mut lanes[li];
            for op in ops {
                op.exec(&mut lane.regs);
            }
            lane.pc += ops.len();
        }
    }
}

/// The timed access a coalesced group issues: the lead lane's operation.
/// Shared by the real issue path and the doomed-retry short circuit so the
/// two can never disagree about what a group's access looks like.
fn group_access(group: &[LaneOp]) -> Access {
    let lead = group[0];
    match lead.kind {
        LaneKind::Ld { size, .. } => Access::Read {
            paddr: lead.paddr.expect("t"),
            size: size as usize,
        },
        LaneKind::St { size, value } => Access::Write {
            paddr: lead.paddr.expect("t"),
            size: size as usize,
            value,
        },
        LaneKind::Amo { op, .. } => Access::Rmw {
            paddr: lead.paddr.expect("t"),
            size: 8,
            op,
        },
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WarpState {
    Free,
    Ready,
    /// Waiting for outstanding memory flights.
    Mem,
    /// A PTE read for this warp's walk is in flight.
    Walk,
    /// Waiting for the core's single walker to free up.
    WalkQueued,
    /// Waiting for the machine to resolve a fault.
    Fault,
}

/// Per-warp execution context. The scheduler-scanned fields (`state`,
/// `ready_at`) live in compact parallel arrays on [`MttopCore`] instead:
/// the ready scan runs every core cycle over every warp, and walking one
/// large struct per warp made that scan touch a cache line per warp.
#[derive(Clone, Debug)]
struct Warp {
    lanes: Vec<Lane>,
    outstanding: usize,
    /// Memory plan being translated/issued.
    plan: Option<Plan>,
}

impl Warp {
    fn live(&self) -> bool {
        self.lanes.iter().any(|l| l.live)
    }
}

/// What kind of access each lane performs.
#[derive(Clone, Copy, Debug)]
enum LaneKind {
    Ld { rd: Reg, size: u8 },
    St { size: u8, value: u64 },
    Amo { rd: Reg, op: AtomicOp },
}

#[derive(Clone, Copy, Debug)]
struct LaneOp {
    lane: usize,
    va: VirtAddr,
    paddr: Option<PhysAddr>,
    kind: LaneKind,
}

/// A warp memory instruction in progress.
#[derive(Clone, Debug)]
struct Plan {
    ops: Vec<LaneOp>,
    /// Index of the next op needing translation.
    next_translate: usize,
    /// The instruction's PC (for the advance at the end).
    pc: usize,
    /// Coalesced groups awaiting issue (built after translation).
    groups: Option<std::collections::VecDeque<Vec<LaneOp>>>,
    /// Groups issued so far (each extra group costs an L1-port cycle).
    issued: usize,
    /// Latest inline-hit completion time.
    finish: Time,
}

/// One in-flight (timed) access and the lanes it serves. An empty `ops`
/// marks a walker PTE read.
#[derive(Clone, Debug)]
struct Flight {
    warp: usize,
    ops: Vec<LaneOp>,
    issued_at: Time,
}

/// Per-warp cursor into a decoded superblock (`ccsvm_isa::decode`). While
/// valid (`rem > 0`), [`MttopCore::issue`] retires one micro-op per issue
/// slot for the cached participating-lane set without recomputing the min-PC
/// set or re-matching the `Instr` enum. Strictly host-side: never serialized,
/// cleared on snapshot load and task assignment, and revalidated (slot
/// generation + expected PC) before every use, so a stale cursor is harmless.
#[derive(Clone, Copy, Debug)]
struct SbCursor {
    sb: SbRef,
    /// Index of the next micro-op to execute.
    off: u32,
    /// Micro-ops this warp may still execute from the block; `0` = invalid.
    /// Capped at entry so the run ends exactly where a lagging live lane's
    /// PC forces the min-PC participating set to be recomputed
    /// (reconvergence — see the module docs).
    rem: u32,
    /// Expected participating-lane PC at the next issue (validation).
    pc: u32,
    /// Participating lane set (bit per lane; `lanes <= 8`).
    mask: u8,
    /// Participating lane count.
    np: u8,
    /// Live lane count at block entry (for the `divergent_issues` counter;
    /// liveness cannot change while the warp is mid-block — only `exit`
    /// kills lanes, and `exit` is a superblock boundary).
    live: u8,
}

impl SbCursor {
    const INVALID: SbCursor = SbCursor {
        sb: SbRef { slot: 0, gen: 0 },
        off: 0,
        rem: 0,
        pc: 0,
        mask: 0,
        np: 0,
        live: 0,
    };
}

/// In-memory pre-image of the state one [`MttopCore::run_batch`] call can
/// mutate, captured by [`MttopCore::spec_save`] and reapplied by
/// [`MttopCore::spec_restore`] when a speculative epoch member rolls back
/// (DESIGN §12).
///
/// Between the save and a rollback the machine delivers no external
/// mutation to the core — a directory response destined for a speculating
/// member rolls it back *before* `on_completion`, and OS/MIFD actions roll
/// the whole epoch back before dispatch — so only `run_batch`'s own
/// footprint needs undo: the warps that could issue (the Ready set), wake
/// (arrived completions, the walker pipeline), plus the scalar scheduler
/// state, TLB, and flight table. That makes a claim O(touched warps)
/// instead of O(thread contexts); serializing a full 128-context core per
/// claim dominated the epoch executor's host cost. All buffers are reused
/// across claims.
///
/// The decoded-superblock cache is deliberately *not* captured: it is
/// host-side memoization of the immutable text section and cannot change
/// simulated behaviour (warps re-enter through their `sb_cur` cursors,
/// which are restored).
#[derive(Debug, Default)]
pub struct SpecUndo {
    /// Pre-images of touched warps; `n_warps` entries are live, the tail is
    /// kept as an allocation pool.
    warps: Vec<WarpUndo>,
    n_warps: usize,
    /// Dedup bitmap for the touched-warp scan (bit per warp).
    seen: Vec<u64>,
    rr: usize,
    local_time: Time,
    batch_epoch: u64,
    token_seq: u64,
    tlb: Option<Tlb>,
    walker: Option<(usize, Walk)>,
    walker_queue: Vec<usize>,
    flights: Vec<(u64, Flight)>,
    arrived: Vec<(u64, u64)>,
    counters: [u64; 8],
    miss_lat_sum: Time,
    miss_count: u64,
    poisoned: bool,
}

/// One touched warp's pre-image inside a [`SpecUndo`].
#[derive(Debug)]
struct WarpUndo {
    wi: usize,
    warp: Warp,
    state: WarpState,
    ready_at: Time,
    sb_cur: SbCursor,
    retry_epoch: u64,
}

/// One SIMT MTTOP core.
#[derive(Debug)]
pub struct MttopCore {
    /// This core's L1 port.
    pub port: PortId,
    config: MttopConfig,
    alu_cost: Time,
    /// `l1_banks - 1` when the bank count is a power of two, else `u64::MAX`
    /// as a "divide instead" sentinel — the bank-cycle charge in
    /// `issue_accesses` sits on every issued group.
    l1_bank_mask: u64,
    /// Participating-set mask meaning "all lanes" (`config.lanes` ones).
    full_lane_mask: u8,
    warps: Vec<Warp>,
    /// `states[wi]` = scheduling state of warp `wi`. Kept out of [`Warp`]
    /// so the per-cycle ready scan stays within a couple of cache lines.
    states: Vec<WarpState>,
    /// Bit `wi` set iff `states[wi] == Ready`. The scheduler scans this
    /// with `trailing_zeros` so a cycle costs O(ready warps), not
    /// O(total warps); all transitions go through [`Self::set_state`].
    ready_mask: Vec<u64>,
    /// `ready_at[wi]` = earliest issue time for a `Ready` warp.
    ready_at: Vec<Time>,
    rr: usize,
    local_time: Time,
    tlb: Tlb,
    /// The single page-table walker: `Some((warp, walk))` when busy.
    walker: Option<(usize, Walk)>,
    walker_queue: Vec<usize>,
    flights: FxHashMap<u64, Flight>,
    arrived: Vec<(u64, u64)>,
    /// Scratch for the per-cycle ready-warp scan, reused across cycles so
    /// the scheduler loop stays allocation-free.
    chosen: Vec<usize>,
    /// `CCSVM_MISS_TRACE` sampled once at construction (`std::env::var`
    /// takes a lock per call, and completions are hot).
    miss_trace: bool,
    token_prefix: u64,
    token_seq: u64,
    cr3: PhysAddr,
    // counters
    warp_instrs: u64,
    thread_instrs: u64,
    mem_instrs: u64,
    coalesced_accesses: u64,
    divergent_issues: u64,
    walks: u64,
    faults: u64,
    tasks: u64,
    miss_lat_sum: Time,
    miss_count: u64,
    /// Set (sticky) when any access observed ECC poison; surfaced through
    /// [`BatchOutcome::poisoned`] so the machine can abort gracefully.
    poisoned: bool,
    /// Decoded-superblock cache (`ccsvm_isa::decode`). Host-side memoization
    /// of the immutable text section — never serialized, and draining or
    /// disabling it cannot change simulated behaviour.
    sb: SbCache,
    /// `sb_cur[wi]` = warp `wi`'s fast-path cursor (invalid when `rem == 0`).
    sb_cur: Vec<SbCursor>,
    /// Monotone batch counter for the doomed-retry short circuit; never
    /// serialized (epochs restart after a snapshot load).
    batch_epoch: u64,
    /// `retry_epoch[wi]` = the batch in which warp `wi`'s head group last
    /// drew [`AccessResult::Retry`], or `u64::MAX`. While it equals
    /// `batch_epoch`, re-attempts are provably doomed (MSHRs and way
    /// reservations drain only between batches) and are short-circuited.
    retry_epoch: Vec<u64>,
}

impl MttopCore {
    /// Creates an idle core. `token_prefix` must be unique per core.
    pub fn new(port: PortId, config: MttopConfig, token_prefix: u64) -> MttopCore {
        assert!(config.lanes >= 1 && config.lanes <= 8, "1..=8 lanes");
        let alu_cost =
            Time::from_ps((config.clock.period().as_ps() / config.vliw_ops_per_lane).max(1));
        let l1_bank_mask = if config.l1_banks.is_power_of_two() {
            config.l1_banks - 1
        } else {
            u64::MAX
        };
        MttopCore {
            port,
            config,
            alu_cost,
            l1_bank_mask,
            full_lane_mask: if config.lanes == 8 {
                0xff
            } else {
                (1u8 << config.lanes) - 1
            },
            warps: vec![
                Warp {
                    lanes: vec![
                        Lane {
                            regs: [0; 32],
                            pc: 0,
                            live: false
                        };
                        config.lanes
                    ],
                    outstanding: 0,
                    plan: None,
                };
                config.warps
            ],
            states: vec![WarpState::Free; config.warps],
            ready_mask: vec![0; config.warps.div_ceil(64)],
            ready_at: vec![Time::ZERO; config.warps],
            rr: 0,
            local_time: Time::ZERO,
            tlb: Tlb::new(config.tlb_entries),
            walker: None,
            walker_queue: Vec::new(),
            flights: FxHashMap::default(),
            arrived: Vec::new(),
            chosen: Vec::with_capacity(config.issue_width.max(1)),
            miss_trace: std::env::var("CCSVM_MISS_TRACE").is_ok(),
            token_prefix,
            token_seq: 0,
            cr3: PhysAddr(0),
            warp_instrs: 0,
            thread_instrs: 0,
            mem_instrs: 0,
            coalesced_accesses: 0,
            divergent_issues: 0,
            walks: 0,
            faults: 0,
            tasks: 0,
            miss_lat_sum: Time::ZERO,
            miss_count: 0,
            poisoned: false,
            sb: SbCache::new(SbCache::DEFAULT_CAPACITY),
            sb_cur: vec![SbCursor::INVALID; config.warps],
            batch_epoch: 0,
            retry_epoch: vec![u64::MAX; config.warps],
        }
    }

    /// Enables or disables the decoded-superblock cache (the `--no-sb-cache`
    /// ablation). Pure host-perf knob: simulated timing and results are
    /// bit-identical either way.
    pub fn set_sb_cache(&mut self, enabled: bool) {
        self.sb.set_enabled(enabled);
        if !enabled {
            for c in &mut self.sb_cur {
                *c = SbCursor::INVALID;
            }
        }
    }

    /// Superblock-cache host counters (hits/misses/evictions/decode time).
    pub fn sb_stats(&self) -> SbStats {
        *self.sb.stats()
    }

    /// Transitions warp `wi` to `s`, keeping the ready bitmap in sync.
    /// Every `states` write must go through here.
    #[inline]
    fn set_state(&mut self, wi: usize, s: WarpState) {
        let bit = 1u64 << (wi & 63);
        if s == WarpState::Ready {
            self.ready_mask[wi >> 6] |= bit;
        } else {
            self.ready_mask[wi >> 6] &= !bit;
        }
        self.states[wi] = s;
    }

    /// Number of free warp contexts (the MIFD consults this).
    pub fn free_warps(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == WarpState::Free)
            .count()
    }

    /// Whether any warp is live.
    pub fn busy(&self) -> bool {
        self.states.iter().any(|&s| s != WarpState::Free)
    }

    /// The core's local clock.
    pub fn local_time(&self) -> Time {
        self.local_time
    }

    /// Flush the TLB (conservative MTTOP shootdown, §3.2.1).
    pub fn tlb_flush(&mut self) {
        self.tlb.flush();
    }

    /// Invalidate one translation (the selective-shootdown extension the
    /// paper suggests as future work in §3.2.1).
    pub fn tlb_invalidate(&mut self, va: VirtAddr) {
        self.tlb.invalidate(va);
    }

    /// Live TLB translations, for the sanitizer's TLB⊆page-table check.
    /// Read-only: no LRU or counter effects.
    pub fn tlb_entries(&self) -> Vec<(u64, PhysAddr)> {
        self.tlb.entries()
    }

    /// Whether the TLB still holds a translation for `va`'s page (read-only;
    /// the sanitizer's stale-shootdown check).
    pub fn tlb_holds(&self, va: VirtAddr) -> bool {
        self.tlb.holds(va)
    }

    /// Assigns a task chunk. In lockstep mode the chunk fills one warp's
    /// lanes; in fine-grained mode it spreads over `nthreads` single-lane
    /// contexts. Returns `false` when contexts are exhausted (the MIFD then
    /// sets its error register).
    pub fn start_task(&mut self, now: Time, chunk: TaskChunk) -> bool {
        let nthreads = (chunk.last_tid - chunk.first_tid + 1) as usize;
        if self.config.lanes == 1 {
            let free: Vec<usize> = self
                .states
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == WarpState::Free)
                .map(|(i, _)| i)
                .take(nthreads)
                .collect();
            if free.len() < nthreads {
                return false;
            }
            self.tasks += 1;
            self.cr3 = chunk.cr3;
            for (k, &wi) in free.iter().enumerate() {
                let ctx = self.config.ctx_base + wi as u64;
                let warp = &mut self.warps[wi];
                let lane = &mut warp.lanes[0];
                lane.regs = [0; 32];
                lane.regs[abi::A0.0 as usize] = chunk.first_tid + k as u64;
                lane.regs[abi::A1.0 as usize] = chunk.args;
                lane.regs[abi::SP.0 as usize] = abi::stack_top(ctx);
                lane.regs[abi::FP.0 as usize] = lane.regs[abi::SP.0 as usize];
                lane.regs[abi::RA.0 as usize] = chunk.ra as u64;
                lane.pc = chunk.entry;
                lane.live = true;
                warp.outstanding = 0;
                warp.plan = None;
                self.sb_cur[wi] = SbCursor::INVALID;
                self.set_state(wi, WarpState::Ready);
                self.ready_at[wi] = now;
            }
            return true;
        }
        let Some(wi) = self.states.iter().position(|&s| s == WarpState::Free) else {
            return false;
        };
        self.tasks += 1;
        self.cr3 = chunk.cr3;
        assert!(nthreads <= self.config.lanes, "chunk exceeds warp width");
        let ctx0 = self.config.ctx_base + (wi * self.config.lanes) as u64;
        let warp = &mut self.warps[wi];
        for (li, lane) in warp.lanes.iter_mut().enumerate() {
            if li < nthreads {
                lane.regs = [0; 32];
                lane.regs[abi::A0.0 as usize] = chunk.first_tid + li as u64;
                lane.regs[abi::A1.0 as usize] = chunk.args;
                lane.regs[abi::SP.0 as usize] = abi::stack_top(ctx0 + li as u64);
                lane.regs[abi::FP.0 as usize] = lane.regs[abi::SP.0 as usize];
                lane.regs[abi::RA.0 as usize] = chunk.ra as u64;
                lane.pc = chunk.entry;
                lane.live = true;
            } else {
                lane.live = false;
            }
        }
        warp.outstanding = 0;
        warp.plan = None;
        self.sb_cur[wi] = SbCursor::INVALID;
        self.set_state(wi, WarpState::Ready);
        self.ready_at[wi] = now;
        true
    }

    /// How many more standard 8-thread dispatch chunks this core can accept.
    pub fn free_chunks(&self, span: usize) -> usize {
        self.free_warps() * self.config.lanes / span
    }

    /// The machine resolved a page fault for `warp`; it retries translation.
    pub fn fault_resolved(&mut self, warp: usize, at: Time) {
        debug_assert_eq!(self.states[warp], WarpState::Fault);
        self.set_state(warp, WarpState::Ready);
        self.ready_at[warp] = at;
    }

    /// Records a memory completion; the machine then schedules a batch at the
    /// returned time.
    pub fn on_completion(&mut self, now: Time, token: u64, value: u64) -> Time {
        self.local_time = self.local_time.max(now);
        self.arrived.push((token, value));
        now
    }

    fn token(&mut self) -> u64 {
        self.token_seq += 1;
        self.token_prefix | self.token_seq
    }

    /// Executes until the quantum, or until every live warp blocks.
    pub fn run_batch(
        &mut self,
        now: Time,
        prog: &Program,
        port: &mut CorePort<'_>,
    ) -> BatchOutcome {
        self.local_time = self.local_time.max(now);
        self.batch_epoch += 1;
        let mut faults = Vec::new();

        let arrived = std::mem::take(&mut self.arrived);
        for (token, value) in arrived {
            self.apply_completion(token, value, port, &mut faults);
        }

        let deadline = self.local_time + self.config.clock.cycles(self.config.quantum_cycles);
        let per_cycle = if self.config.lockstep {
            1
        } else {
            self.config.issue_width.max(1)
        };
        // `chosen` is taken out of `self` once per batch (not per cycle): the
        // scheduler loop below is the hottest host loop in the core, and the
        // take/restore pair per cycle showed up in profiles.
        let mut chosen = std::mem::take(&mut self.chosen);
        let outcome = loop {
            if self.local_time >= deadline {
                break BatchOutcome {
                    action: MttopAction::Continue {
                        at: self.local_time,
                    },
                    faults,
                    poisoned: self.poisoned,
                };
            }
            // Collect up to `per_cycle` distinct ready warps for this cycle,
            // round-robin from `rr`. The bitmap scan visits only warps that
            // are actually in `Ready` (the common case is a handful out of
            // 128), in exactly the order the old full scan produced:
            // rr..n, then 0..rr.
            let n = self.warps.len();
            chosen.clear();
            let mut earliest: Option<Time> = None;
            if n <= 64 {
                // Single-word specialization (the paper-default core has 16
                // warps): the rr..n / 0..rr rotation is two masked views of
                // `ready_mask[0]`. Bits at or above `n` are never set, and
                // `rr < n <= 64` keeps the shift in range.
                let mask0 = self.ready_mask[0];
                let hi_bits = mask0 & (!0u64 << (self.rr & 63));
                'scan1: for mut bits in [hi_bits, mask0 ^ hi_bits] {
                    while bits != 0 {
                        let wi = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let at = self.ready_at[wi];
                        if at <= self.local_time {
                            chosen.push(wi);
                            if chosen.len() == per_cycle {
                                break 'scan1;
                            }
                        } else {
                            earliest = Some(match earliest {
                                Some(e) => e.min(at),
                                None => at,
                            });
                        }
                    }
                }
            } else {
                'scan: for (lo, hi) in [(self.rr, n), (0, self.rr)] {
                    if lo >= hi {
                        continue;
                    }
                    let first_word = lo >> 6;
                    let last_word = (hi + 63) >> 6; // exclusive
                    for w in first_word..last_word {
                        let mut bits = self.ready_mask[w];
                        if w == first_word {
                            bits &= !0u64 << (lo & 63);
                        }
                        if (w + 1) << 6 > hi {
                            // Partial last word (only possible when `hi` is not
                            // word-aligned, i.e. `hi & 63 != 0`).
                            bits &= (1u64 << (hi & 63)) - 1;
                        }
                        while bits != 0 {
                            let wi = (w << 6) | bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let at = self.ready_at[wi];
                            if at <= self.local_time {
                                chosen.push(wi);
                                if chosen.len() == per_cycle {
                                    break 'scan;
                                }
                            } else {
                                earliest = Some(match earliest {
                                    Some(e) => e.min(at),
                                    None => at,
                                });
                            }
                        }
                    }
                }
            }
            if chosen.is_empty() {
                if let Some(e) = earliest {
                    self.local_time = e.min(deadline);
                    continue;
                }
                let any_blocked = self.states.iter().any(|&s| {
                    matches!(
                        s,
                        WarpState::Mem | WarpState::Walk | WarpState::WalkQueued | WarpState::Fault
                    )
                });
                let action = if any_blocked {
                    MttopAction::Blocked
                } else {
                    MttopAction::Idle
                };
                break BatchOutcome {
                    action,
                    faults,
                    poisoned: self.poisoned,
                };
            }
            // ALU sprint: when every warp that can issue right now is
            // mid-superblock, whole rounds of the per-cycle rotation are pure
            // ALU work with no port traffic, so they can be retired in
            // per-warp blocks (see `try_sprint` for the equivalence argument).
            if self.config.lockstep && n <= 64 && chosen.len() == 1 && self.try_sprint(deadline) {
                continue;
            }
            self.rr = (chosen[chosen.len() - 1] + 1) % n;
            let cycle_start = self.local_time;
            for &wi in &chosen {
                self.issue(wi, prog, port, &mut faults);
            }
            if !self.config.lockstep {
                // Fine-grained mode: the cycle itself is the charge.
                self.local_time = cycle_start + self.config.clock.period();
            }
        };
        self.chosen = chosen;
        outcome
    }

    /// Attempts to retire several full rotation rounds of decoded ALU
    /// micro-ops in one pass (lockstep mode, `warps <= 64`). Returns `true`
    /// if it issued anything; the caller then rescans.
    ///
    /// # Equivalence
    ///
    /// The per-cycle lockstep loop, while the set `S` of warps eligible *now*
    /// is stable and every member is mid-superblock, does exactly this each
    /// round: visit `S` in rotation order from `rr`, issue one ALU micro-op
    /// per warp, advance `local_time` by one ALU charge per issue. Those
    /// issues touch no shared state — superblock ops are port-free and
    /// branch-free, warp register files are private, and the instruction
    /// counters are commutative sums — and intermediate `local_time` values
    /// are unobservable because nothing else runs inside the window. So `k`
    /// full rounds can be retired warp-by-warp instead of round-by-round,
    /// provided `S` cannot change within the window:
    ///
    /// * nothing *leaves* `S` — a warp leaves only by exhausting its run,
    ///   so `k` is clipped to the minimum remaining run length;
    /// * nothing *joins* `S` — a parked warp with wake time `ta` joins at
    ///   cycle `ceil((ta - t) / c)`, so `k*|S|` issues are clipped below
    ///   that; the quantum deadline clips identically (`t + m*c < D`), the
    ///   same comparisons the per-cycle loop performs at cycle granularity;
    /// * `rr` ends one past the last warp of a rotation round, and the
    ///   rotation order re-stabilizes after the first round, so the final
    ///   `rr` equals `(last of round 1) + 1` — what the loop would leave;
    /// * the attempt bails (returns `false`) unless EVERY eligible warp has
    ///   a valid superblock cursor, so a slow-path warp in `S` forces the
    ///   exact per-cycle interleaving instead.
    fn try_sprint(&mut self, deadline: Time) -> bool {
        let n = self.warps.len();
        let t = self.local_time;
        let mask0 = self.ready_mask[0];
        let hi = mask0 & (!0u64 << (self.rr & 63));
        let mut s_buf = [0usize; 64];
        let mut s_len = 0usize;
        let mut min_rem = u32::MAX;
        let mut earliest_future: Option<Time> = None;
        for mut bits in [hi, mask0 ^ hi] {
            while bits != 0 {
                let wi = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let at = self.ready_at[wi];
                if at <= t {
                    let cur = &self.sb_cur[wi];
                    if cur.rem == 0
                        || self.sb.ops_at(cur.sb).is_none()
                        || self.warps[wi].lanes[cur.mask.trailing_zeros() as usize].pc
                            != cur.pc as usize
                    {
                        return false;
                    }
                    s_buf[s_len] = wi;
                    s_len += 1;
                    min_rem = min_rem.min(cur.rem);
                } else {
                    earliest_future = Some(earliest_future.map_or(at, |e| e.min(at)));
                }
            }
        }
        debug_assert!(s_len >= 1, "caller chose an eligible warp");
        let c = self.alu_cost.as_ps().max(1);
        // Cycle `m` (issue `m`) runs iff `t + m*c < deadline`, and a parked
        // warp with wake time `ta` joins the eligible set from cycle
        // `ceil((ta - t) / c)` on — identical to the per-cycle loop's
        // comparisons.
        let mut max_issues = (deadline.as_ps().saturating_sub(t.as_ps())).div_ceil(c);
        if let Some(f) = earliest_future {
            max_issues = max_issues.min((f.as_ps() - t.as_ps()).div_ceil(c));
        }
        let k = (min_rem as u64).min(max_issues / s_len as u64) as usize;
        if k * s_len < 2 {
            return false;
        }
        for &wi in &s_buf[..s_len] {
            let cur = self.sb_cur[wi];
            let ops = self.sb.ops_at(cur.sb).expect("validated above");
            let ops = &ops[cur.off as usize..cur.off as usize + k];
            let warp = &mut self.warps[wi];
            sprint_masked(ops, &mut warp.lanes, cur.mask, self.full_lane_mask);
            if cur.np < cur.live {
                self.divergent_issues += k as u64;
            }
            self.warp_instrs += k as u64;
            self.thread_instrs += k as u64 * cur.np as u64;
            let cu = &mut self.sb_cur[wi];
            cu.rem -= k as u32;
            cu.off += k as u32;
            cu.pc += k as u32;
        }
        self.rr = (s_buf[s_len - 1] + 1) % n;
        self.local_time = Time::from_ps(t.as_ps() + (k * s_len) as u64 * c);
        true
    }

    /// Executes one warp-instruction for warp `wi`.
    fn issue(
        &mut self,
        wi: usize,
        prog: &Program,
        port: &mut CorePort<'_>,
        faults: &mut Vec<PageFaultReq>,
    ) {
        // A Ready warp with a plan is retrying after a fault resolution.
        if self.warps[wi].plan.is_some() {
            // Doomed-retry short circuit: this warp's head group already drew
            // `Retry` earlier in this same batch, and nothing that could
            // change the outcome (MSHR frees, way-reservation releases, line
            // fills) happens mid-batch — completions are delivered between
            // batches. Replay the real attempt's exact side effects — the
            // bank-boundary charge, the token draw, the L1 counter bumps and
            // the backoff — without re-running the memory controller.
            if self.retry_epoch[wi] == self.batch_epoch {
                let plan = self.warps[wi].plan.as_ref().expect("plan");
                let issued = plan.issued;
                let access =
                    group_access(plan.groups.as_ref().expect("groups").front().expect("retried"));
                let on_bank_boundary = if self.l1_bank_mask != u64::MAX {
                    issued as u64 & self.l1_bank_mask == 0
                } else {
                    (issued as u64).is_multiple_of(self.config.l1_banks)
                };
                if issued > 0 && on_bank_boundary {
                    self.local_time += self.config.clock.period();
                }
                let _ = self.token();
                port.count_doomed_retry(access);
                self.ready_at[wi] = self.local_time + self.config.clock.cycles(8);
                return;
            }
            self.set_state(wi, WarpState::Mem);
            self.continue_plan(wi, port, faults);
            return;
        }
        // Superblock fast path: a valid cursor means this warp is mid-run in
        // a decoded straight-line block. Retire exactly ONE micro-op for the
        // cached participating set — cycle-exact: counters, charges, and the
        // issue-slot rotation match the slow path op for op; the win is the
        // dispatch itself (no min-PC recompute, no `Instr` match), not op
        // batching, so event interleaving with other warps is unchanged.
        let cur = self.sb_cur[wi];
        if cur.rem > 0 {
            let lead = cur.mask.trailing_zeros() as usize;
            let op = if self.warps[wi].lanes[lead].pc == cur.pc as usize {
                self.sb.ops_at(cur.sb).map(|ops| ops[cur.off as usize])
            } else {
                None
            };
            if let Some(op) = op {
                #[cfg(debug_assertions)]
                {
                    // The cached participating set must still be exactly the
                    // live lanes at the warp's min PC.
                    let warp = &self.warps[wi];
                    let mut m = cur.mask;
                    while m != 0 {
                        let li = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let lane = &warp.lanes[li];
                        debug_assert!(lane.live && lane.pc == cur.pc as usize);
                    }
                    let live = warp.lanes.iter().filter(|l| l.live).count();
                    debug_assert_eq!(live, cur.live as usize);
                }
                let warp = &mut self.warps[wi];
                exec_masked(op, &mut warp.lanes, cur.mask, self.full_lane_mask, 1);
                if (cur.np as usize) < cur.live as usize {
                    self.divergent_issues += 1;
                }
                self.warp_instrs += 1;
                self.thread_instrs += cur.np as u64;
                if self.config.lockstep {
                    self.local_time += self.alu_cost;
                }
                let c = &mut self.sb_cur[wi];
                c.rem -= 1;
                c.off += 1;
                c.pc += 1;
                return;
            }
            // Stale cursor (snapshot load, eviction, task reuse): drop it and
            // re-derive everything on the slow path below.
            self.sb_cur[wi] = SbCursor::INVALID;
        }
        let min_pc = self.warps[wi]
            .lanes
            .iter()
            .filter(|l| l.live)
            .map(|l| l.pc)
            .min();
        let Some(pc) = min_pc else {
            self.set_state(wi, WarpState::Free);
            return;
        };
        // Lane sets are at most 8 wide (asserted in `new`), so the
        // participating set lives on the stack — this runs once per issued
        // warp-instruction and must not allocate.
        let mut lane_buf = [0usize; 8];
        let mut np = 0;
        let mut live = 0;
        for (i, l) in self.warps[wi].lanes.iter().enumerate() {
            if l.live {
                live += 1;
                if l.pc == pc {
                    lane_buf[np] = i;
                    np += 1;
                }
            }
        }
        let participating = &lane_buf[..np];
        if participating.len() < live {
            self.divergent_issues += 1;
        }
        let lockstep = self.config.lockstep;
        let alu_charge = if lockstep { self.alu_cost } else { Time::ZERO };
        let full_charge = if lockstep {
            self.config.clock.period()
        } else {
            Time::ZERO
        };
        let Some(&instr) = prog.text.get(pc) else {
            panic!("MTTOP pc {pc} outside text");
        };
        self.warp_instrs += 1;
        self.thread_instrs += participating.len() as u64;

        // First touch of a decodable run: resolve (or decode) the superblock
        // at `pc`, execute its first micro-op in this issue slot, and park a
        // cursor so subsequent issues take the fast path above. The cursor is
        // capped at the nearest lagging live lane's PC: when the
        // participating set would reach it, the min-PC rule must recompute
        // the set so the lagging lane rejoins (reconvergence — see the
        // module docs and `lagging_lane_reconverges_at_min_pc`).
        if decodable(&instr) {
            if let Some(r) = self.sb.entry(prog, pc) {
                let (op0, len) = {
                    let ops = self.sb.ops_at(r).expect("fresh superblock ref");
                    (ops[0], ops.len())
                };
                let mut cap = len;
                if np < live {
                    for l in &self.warps[wi].lanes {
                        if l.live && l.pc > pc {
                            cap = cap.min(l.pc - pc);
                        }
                    }
                }
                let mut mask = 0u8;
                for &li in participating {
                    let lane = &mut self.warps[wi].lanes[li];
                    op0.exec(&mut lane.regs);
                    lane.pc += 1;
                    mask |= 1 << li;
                }
                self.local_time += alu_charge;
                self.sb_cur[wi] = if cap > 1 {
                    SbCursor {
                        sb: r,
                        off: 1,
                        rem: (cap - 1) as u32,
                        pc: (pc + 1) as u32,
                        mask,
                        np: np as u8,
                        live: live as u8,
                    }
                } else {
                    SbCursor::INVALID
                };
                return;
            }
        }

        match instr {
            Instr::Alu { op, rd, ra, rb } => {
                for &li in participating {
                    let lane = &mut self.warps[wi].lanes[li];
                    let b = match rb {
                        Operand::Reg(r) => lane_get(lane, r),
                        Operand::Imm(i) => i as u64,
                    };
                    let v = op.apply(lane_get(lane, ra), b);
                    lane_set(lane, rd, v);
                    lane.pc += 1;
                }
                self.local_time += alu_charge;
            }
            Instr::Li { rd, imm } => {
                for &li in participating {
                    let lane = &mut self.warps[wi].lanes[li];
                    lane_set(lane, rd, imm as u64);
                    lane.pc += 1;
                }
                self.local_time += alu_charge;
            }
            Instr::Br {
                cond,
                ra,
                rb,
                target,
            } => {
                for &li in participating {
                    let lane = &mut self.warps[wi].lanes[li];
                    lane.pc = if cond.test(lane_get(lane, ra), lane_get(lane, rb)) {
                        target
                    } else {
                        lane.pc + 1
                    };
                }
                self.local_time += full_charge;
            }
            Instr::Jmp { target } => {
                for &li in participating {
                    self.warps[wi].lanes[li].pc = target;
                }
                self.local_time += full_charge;
            }
            Instr::JmpReg { rs } => {
                for &li in participating {
                    let lane = &mut self.warps[wi].lanes[li];
                    lane.pc = lane_get(lane, rs) as usize;
                }
                self.local_time += full_charge;
            }
            Instr::Call { target } => {
                for &li in participating {
                    let lane = &mut self.warps[wi].lanes[li];
                    lane_set(lane, abi::RA, (lane.pc + 1) as u64);
                    lane.pc = target;
                }
                self.local_time += full_charge;
            }
            Instr::CallReg { rs } => {
                for &li in participating {
                    let lane = &mut self.warps[wi].lanes[li];
                    let t = lane_get(lane, rs) as usize;
                    lane_set(lane, abi::RA, (lane.pc + 1) as u64);
                    lane.pc = t;
                }
                self.local_time += self.config.clock.period();
            }
            Instr::Fence | Instr::Nop => {
                for &li in participating {
                    self.warps[wi].lanes[li].pc += 1;
                }
                self.local_time += alu_charge;
            }
            Instr::Exit => {
                for &li in participating {
                    self.warps[wi].lanes[li].live = false;
                }
                if !self.warps[wi].live() {
                    self.set_state(wi, WarpState::Free);
                }
                self.local_time += full_charge;
            }
            Instr::Syscall => {
                panic!(
                    "syscall executed on MTTOP core (pc {pc}): MTTOP cores do \
                     not run the OS (paper §3.2.1); xcc rejects this statically"
                );
            }
            Instr::Ld { .. } | Instr::St { .. } | Instr::Amo { .. } => {
                self.mem_instrs += 1;
                self.local_time += full_charge;
                // Single participating lane (always true in fine-grained
                // mode): one op is one coalesced group of one, so on a
                // TLB-present translation the access issues without the
                // plan's per-instruction allocations.
                if np == 1 && self.mem_single(wi, lane_buf[0], pc, instr, port) {
                    return;
                }
                let mut ops = Vec::with_capacity(participating.len());
                for &li in participating {
                    let lane = &self.warps[wi].lanes[li];
                    let (va, kind) = lane_mem_op(lane, instr);
                    ops.push(LaneOp {
                        lane: li,
                        va: VirtAddr(va),
                        paddr: None,
                        kind,
                    });
                }
                self.warps[wi].plan = Some(Plan {
                    ops,
                    next_translate: 0,
                    pc,
                    groups: None,
                    issued: 0,
                    finish: self.local_time,
                });
                self.set_state(wi, WarpState::Mem);
                self.warps[wi].outstanding = 0;
                self.continue_plan(wi, port, faults);
            }
        }
    }

    /// Fast path for a memory instruction with exactly one participating
    /// lane: one lane op is one coalesced group of one, so on a TLB-present
    /// translation the access can issue immediately without building the
    /// `Plan`'s per-instruction allocations (ops `Vec` + groups `VecDeque`).
    /// Every state transition, counter, token draw, TLB LRU touch, and time
    /// charge replicates the generic `continue_plan`/`issue_accesses` path
    /// exactly, and on Pending/Retry/Poisoned the warp is parked with the
    /// byte-identical `Plan` the generic path would have left — a snapshot
    /// taken mid-access cannot tell the paths apart. Returns `false` (no
    /// state touched beyond one read-only TLB probe) when the translation is
    /// absent; the caller then falls back to the generic walker path, which
    /// performs the one counted TLB miss exactly as before.
    fn mem_single(
        &mut self,
        wi: usize,
        li: usize,
        pc: usize,
        instr: Instr,
        port: &mut CorePort<'_>,
    ) -> bool {
        let (va, kind) = lane_mem_op(&self.warps[wi].lanes[li], instr);
        let va = VirtAddr(va);
        // One combined probe: a hit counts exactly like `lookup`, a miss is
        // a no-op and the generic path performs the counted miss itself.
        let Some(frame) = self.tlb.try_lookup(va) else {
            return false;
        };
        let paddr = frame_plus_offset(frame, va);
        let op = LaneOp {
            lane: li,
            va,
            paddr: Some(paddr),
            kind,
        };
        // `issue_accesses` would build exactly one group here.
        self.coalesced_accesses += 1;
        let start = self.local_time; // the plan's `finish` baseline
        let access = match kind {
            LaneKind::Ld { size, .. } => Access::Read {
                paddr,
                size: size as usize,
            },
            LaneKind::St { size, value } => Access::Write {
                paddr,
                size: size as usize,
                value,
            },
            LaneKind::Amo { op, .. } => Access::Rmw {
                paddr,
                size: 8,
                op,
            },
        };
        let token = self.token();
        match port.access(self.local_time, token, access) {
            AccessResult::Hit { finish, value } => {
                match kind {
                    LaneKind::Ld { rd, .. } | LaneKind::Amo { rd, .. } => {
                        lane_set(&mut self.warps[wi].lanes[li], rd, value);
                    }
                    LaneKind::St { .. } => {}
                }
                self.warps[wi].lanes[li].pc = pc + 1;
                self.set_state(wi, WarpState::Ready);
                self.ready_at[wi] = start.max(finish).max(self.local_time);
            }
            AccessResult::Pending => {
                self.flights.insert(
                    token,
                    Flight {
                        warp: wi,
                        ops: vec![op],
                        issued_at: self.local_time,
                    },
                );
                self.warps[wi].plan = Some(Plan {
                    ops: vec![op],
                    next_translate: 1,
                    pc,
                    groups: Some(VecDeque::new()),
                    issued: 1,
                    finish: start,
                });
                self.warps[wi].outstanding = 1;
                self.set_state(wi, WarpState::Mem);
            }
            AccessResult::Retry => {
                let mut groups = VecDeque::with_capacity(1);
                groups.push_back(vec![op]);
                self.warps[wi].plan = Some(Plan {
                    ops: vec![op],
                    next_translate: 1,
                    pc,
                    groups: Some(groups),
                    issued: 0,
                    finish: start,
                });
                self.warps[wi].outstanding = 0;
                self.set_state(wi, WarpState::Ready);
                self.ready_at[wi] = self.local_time + self.config.clock.cycles(8);
            }
            AccessResult::Poisoned => {
                let mut groups = VecDeque::with_capacity(1);
                groups.push_back(vec![op]);
                self.warps[wi].plan = Some(Plan {
                    ops: vec![op],
                    next_translate: 1,
                    pc,
                    groups: Some(groups),
                    issued: 0,
                    finish: start,
                });
                self.warps[wi].outstanding = 0;
                self.poisoned = true;
                self.set_state(wi, WarpState::Mem);
            }
        }
        true
    }

    /// Drives a warp's memory plan: translate every lane, then issue the
    /// coalesced accesses. May leave the warp in Walk/WalkQueued/Fault/Mem.
    fn continue_plan(
        &mut self,
        wi: usize,
        port: &mut CorePort<'_>,
        faults: &mut Vec<PageFaultReq>,
    ) {
        loop {
            let plan = self.warps[wi].plan.as_ref().expect("plan");
            let Some(op) = plan.ops.get(plan.next_translate).copied() else {
                break;
            };
            match self.tlb.lookup(op.va) {
                Some(frame) => {
                    let plan = self.warps[wi].plan.as_mut().expect("plan");
                    plan.ops[plan.next_translate].paddr = Some(frame_plus_offset(frame, op.va));
                    plan.next_translate += 1;
                }
                None => {
                    if self.walker.is_some() {
                        self.set_state(wi, WarpState::WalkQueued);
                        self.walker_queue.push(wi);
                        return;
                    }
                    self.walks += 1;
                    let walk = Walk::new(self.cr3, op.va);
                    if !self.issue_walk_step(wi, walk, port, faults) {
                        return; // blocked in Walk state or faulted
                    }
                    // Walk finished inline; loop to re-lookup.
                }
            }
        }
        self.issue_accesses(wi, port);
    }

    /// Issues PTE reads until blocked, done, faulted, or the L1 runs out of
    /// MSHRs. Returns `true` when the walk completed inline and the TLB now
    /// holds the translation. On MSHR exhaustion the warp yields (Ready with
    /// a one-cycle backoff) so the event loop can drain completions — a
    /// synchronous retry here would livelock the simulator.
    fn issue_walk_step(
        &mut self,
        wi: usize,
        mut walk: Walk,
        port: &mut CorePort<'_>,
        faults: &mut Vec<PageFaultReq>,
    ) -> bool {
        loop {
            let token = self.token();
            let access = Access::Read {
                paddr: walk.pte_addr(),
                size: 8,
            };
            match port.access(self.local_time, token, access) {
                AccessResult::Hit { finish, value } => {
                    self.local_time = self.local_time.max(finish);
                    match walk.feed(value) {
                        WalkResult::Continue(next) => walk = next,
                        WalkResult::Done(frame) => {
                            self.tlb.insert(walk.va(), frame);
                            return true;
                        }
                        WalkResult::Fault(f) => {
                            self.faults += 1;
                            self.set_state(wi, WarpState::Fault);
                            faults.push(PageFaultReq {
                                warp: wi,
                                va: f.va,
                                cr3: self.cr3,
                            });
                            return false;
                        }
                    }
                }
                AccessResult::Pending => {
                    self.walker = Some((wi, walk));
                    self.flights.insert(
                        token,
                        Flight {
                            warp: wi,
                            ops: Vec::new(),
                            issued_at: self.local_time,
                        },
                    );
                    self.set_state(wi, WarpState::Walk);
                    return false;
                }
                AccessResult::Retry => {
                    self.set_state(wi, WarpState::Ready);
                    self.ready_at[wi] = self.local_time + self.config.clock.cycles(8);
                    return false;
                }
                AccessResult::Poisoned => {
                    self.poisoned = true;
                    self.set_state(wi, WarpState::Ready);
                    return false;
                }
            }
        }
    }

    /// All lanes translated: group by cache block (once) and issue the
    /// groups. On MSHR exhaustion the warp yields with the remaining groups
    /// parked in its plan; the retry re-enters here.
    fn issue_accesses(&mut self, wi: usize, port: &mut CorePort<'_>) {
        if self.warps[wi].plan.as_ref().expect("plan").groups.is_none() {
            let plan = self.warps[wi].plan.as_mut().expect("plan");
            let mut groups: Vec<Vec<LaneOp>> = Vec::new();
            for &op in &plan.ops {
                let paddr = op.paddr.expect("translated");
                if !matches!(op.kind, LaneKind::Amo { .. }) {
                    if let Some(g) = groups.iter_mut().find(|g| {
                        !matches!(g[0].kind, LaneKind::Amo { .. })
                            && same_kind(&g[0].kind, &op.kind)
                            && ccsvm_mem::block_of(g[0].paddr.expect("t"))
                                == ccsvm_mem::block_of(paddr)
                    }) {
                        g.push(op);
                        continue;
                    }
                }
                groups.push(vec![op]);
            }
            self.coalesced_accesses += groups.len() as u64;
            plan.groups = Some(groups.into());
            plan.finish = self.local_time;
        }

        loop {
            // Pop the group up front (re-parking it on Retry/Poisoned)
            // instead of cloning it: groups move through here once per
            // issued access, and the Vec clone showed up in profiles.
            let plan = self.warps[wi].plan.as_mut().expect("plan");
            let Some(group) = plan.groups.as_mut().expect("groups").pop_front() else {
                break;
            };
            let on_bank_boundary = if self.l1_bank_mask != u64::MAX {
                plan.issued as u64 & self.l1_bank_mask == 0
            } else {
                (plan.issued as u64).is_multiple_of(self.config.l1_banks)
            };
            if plan.issued > 0 && on_bank_boundary {
                // A cycle per `l1_banks` groups: banked L1 ports.
                self.local_time += self.config.clock.period();
            }
            match self.issue_group(wi, &group, port) {
                AccessResult::Hit { finish: f, value } => {
                    let plan = self.warps[wi].plan.as_mut().expect("plan");
                    plan.finish = plan.finish.max(f);
                    plan.issued += 1;
                    self.apply_group(wi, &group, value, port);
                }
                AccessResult::Pending => {
                    self.warps[wi].outstanding += 1;
                    let plan = self.warps[wi].plan.as_mut().expect("plan");
                    plan.issued += 1;
                }
                AccessResult::Retry => {
                    // Yield: let the event loop drain MSHR completions. Until
                    // then, re-attempts of this head group are doomed — mark
                    // the batch so `issue` can short-circuit them.
                    let plan = self.warps[wi].plan.as_mut().expect("plan");
                    plan.groups.as_mut().expect("groups").push_front(group);
                    self.retry_epoch[wi] = self.batch_epoch;
                    self.set_state(wi, WarpState::Ready);
                    self.ready_at[wi] = self.local_time + self.config.clock.cycles(8);
                    return;
                }
                AccessResult::Poisoned => {
                    let plan = self.warps[wi].plan.as_mut().expect("plan");
                    plan.groups.as_mut().expect("groups").push_front(group);
                    self.poisoned = true;
                    return;
                }
            }
        }

        if self.warps[wi].outstanding == 0 {
            let at = self.warps[wi].plan.as_ref().expect("plan").finish;
            self.finish_mem_instr(wi, at.max(self.local_time));
        } else {
            self.set_state(wi, WarpState::Mem);
        }
    }

    fn issue_group(
        &mut self,
        wi: usize,
        group: &[LaneOp],
        port: &mut CorePort<'_>,
    ) -> AccessResult {
        let access = group_access(group);
        let token = self.token();
        let result = port.access(self.local_time, token, access);
        if matches!(result, AccessResult::Pending) {
            self.flights.insert(
                token,
                Flight {
                    warp: wi,
                    ops: group.to_vec(),
                    issued_at: self.local_time,
                },
            );
        }
        result
    }

    /// Applies one completed group: the lead lane takes `value`; the other
    /// lanes peek/poke the now-resident block. If permission slipped away
    /// between completion and application, the lane's access is re-issued as
    /// its own timed flight.
    fn apply_group(&mut self, wi: usize, group: &[LaneOp], value: u64, port: &mut CorePort<'_>) {
        for (i, op) in group.iter().enumerate() {
            let paddr = op.paddr.expect("translated");
            match op.kind {
                LaneKind::Ld { rd, size } => {
                    let v = if i == 0 {
                        Some(value)
                    } else {
                        port.peek(paddr, size as usize)
                    };
                    match v {
                        Some(v) => {
                            let lane = &mut self.warps[wi].lanes[op.lane];
                            lane_set(lane, rd, v);
                        }
                        None => match self.issue_group(wi, std::slice::from_ref(op), port) {
                            AccessResult::Hit { value, .. } => {
                                let lane = &mut self.warps[wi].lanes[op.lane];
                                lane_set(lane, rd, value);
                            }
                            AccessResult::Pending => self.warps[wi].outstanding += 1,
                            AccessResult::Poisoned => self.poisoned = true,
                            AccessResult::Retry => {
                                unreachable!("lane fallback with a just-freed MSHR")
                            }
                        },
                    }
                }
                LaneKind::St { size, value: v } => {
                    if i != 0 && !port.poke(paddr, size as usize, v) {
                        match self.issue_group(wi, std::slice::from_ref(op), port) {
                            AccessResult::Hit { .. } => {}
                            AccessResult::Pending => self.warps[wi].outstanding += 1,
                            AccessResult::Poisoned => self.poisoned = true,
                            AccessResult::Retry => {
                                unreachable!("lane fallback with a just-freed MSHR")
                            }
                        }
                    }
                }
                LaneKind::Amo { rd, .. } => {
                    debug_assert_eq!(group.len(), 1, "atomics are not coalesced");
                    let lane = &mut self.warps[wi].lanes[op.lane];
                    lane_set(lane, rd, value);
                }
            }
        }
    }

    /// All groups of the warp's memory instruction are done: advance PCs.
    fn finish_mem_instr(&mut self, wi: usize, at: Time) {
        let plan = self.warps[wi].plan.take().expect("plan");
        for op in &plan.ops {
            self.warps[wi].lanes[op.lane].pc = plan.pc + 1;
        }
        self.set_state(wi, WarpState::Ready);
        self.ready_at[wi] = at;
    }

    /// Routes an arrived completion (called from `run_batch`).
    fn apply_completion(
        &mut self,
        token: u64,
        value: u64,
        port: &mut CorePort<'_>,
        faults: &mut Vec<PageFaultReq>,
    ) {
        let flight = self
            .flights
            .remove(&token)
            .expect("unknown completion token");
        let lat = self.local_time.saturating_sub(flight.issued_at);
        self.miss_lat_sum += lat;
        self.miss_count += 1;
        if self.miss_trace && lat > Time::from_ns(400) {
            let b = flight
                .ops
                .first()
                .and_then(|o| o.paddr)
                .map(ccsvm_mem::block_of);
            eprintln!(
                "SLOWMISS {}ns block {:?} kind {}",
                lat.as_ns() as u64,
                b,
                if flight.ops.is_empty() {
                    "walk"
                } else {
                    "data"
                }
            );
        }
        if flight.ops.is_empty() {
            // A walker PTE read completed.
            let (wi, walk) = self.walker.take().expect("walker busy");
            debug_assert_eq!(wi, flight.warp);
            match walk.feed(value) {
                WalkResult::Continue(next) => {
                    if !self.issue_walk_step(wi, next, port, faults) {
                        // Blocked again (Walk) or faulted; if faulted, the
                        // walker is free for queued users.
                        if self.walker.is_none() {
                            self.wake_walker_queue(port, faults);
                        }
                        return;
                    }
                    self.set_state(wi, WarpState::Mem);
                    self.continue_plan(wi, port, faults);
                }
                WalkResult::Done(frame) => {
                    self.tlb.insert(walk.va(), frame);
                    self.set_state(wi, WarpState::Mem);
                    self.continue_plan(wi, port, faults);
                }
                WalkResult::Fault(f) => {
                    self.faults += 1;
                    self.set_state(wi, WarpState::Fault);
                    faults.push(PageFaultReq {
                        warp: wi,
                        va: f.va,
                        cr3: self.cr3,
                    });
                }
            }
            if self.walker.is_none() {
                self.wake_walker_queue(port, faults);
            }
            return;
        }
        let wi = flight.warp;
        self.warps[wi].outstanding -= 1;
        self.apply_group(wi, &flight.ops, value, port);
        if self.warps[wi].outstanding == 0
            && self.states[wi] == WarpState::Mem
            && self.warps[wi]
                .plan
                .as_ref()
                .is_some_and(|p| p.groups.as_ref().is_some_and(|g| g.is_empty()))
        {
            self.finish_mem_instr(wi, self.local_time);
        }
    }

    fn wake_walker_queue(&mut self, port: &mut CorePort<'_>, faults: &mut Vec<PageFaultReq>) {
        while self.walker.is_none() {
            let Some(wi) = self.walker_queue.pop() else {
                return;
            };
            if self.states[wi] != WarpState::WalkQueued {
                continue;
            }
            self.set_state(wi, WarpState::Mem);
            self.continue_plan(wi, port, faults);
        }
    }

    /// Core counters and TLB statistics.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("warp_instructions"), self.warp_instrs as f64);
        s.set_id(stat_id("thread_instructions"), self.thread_instrs as f64);
        s.set_id(stat_id("mem_instructions"), self.mem_instrs as f64);
        s.set_id(
            stat_id("coalesced_accesses"),
            self.coalesced_accesses as f64,
        );
        s.set_id(stat_id("divergent_issues"), self.divergent_issues as f64);
        s.set_id(stat_id("tlb_walks"), self.walks as f64);
        s.set_id(stat_id("page_faults"), self.faults as f64);
        s.set_id(stat_id("tasks"), self.tasks as f64);
        s.set_id(stat_id("miss_count"), self.miss_count as f64);
        if self.miss_count > 0 {
            s.set_id(
                stat_id("avg_miss_ns"),
                self.miss_lat_sum.as_ns() / self.miss_count as f64,
            );
        }
        s.merge_prefixed("tlb", &self.tlb.stats());
        s
    }
}

fn same_kind(a: &LaneKind, b: &LaneKind) -> bool {
    matches!(
        (a, b),
        (LaneKind::Ld { .. }, LaneKind::Ld { .. }) | (LaneKind::St { .. }, LaneKind::St { .. })
    )
}

fn lane_get(lane: &Lane, r: Reg) -> u64 {
    if r.0 == 0 {
        0
    } else {
        lane.regs[r.0 as usize]
    }
}

fn lane_set(lane: &mut Lane, r: Reg, v: u64) {
    if r.0 != 0 {
        lane.regs[r.0 as usize] = v;
    }
}

/// One lane's (virtual address, lane-op kind) for a memory instruction.
/// Shared by the generic plan builder and the single-lane fast path so the
/// two can never drift.
///
/// # Panics
///
/// Panics if `instr` is not `Ld`/`St`/`Amo`.
fn lane_mem_op(lane: &Lane, instr: Instr) -> (u64, LaneKind) {
    match instr {
        Instr::Ld {
            rd,
            base,
            off,
            size,
        } => (
            lane_get(lane, base).wrapping_add(off as u64),
            LaneKind::Ld { rd, size },
        ),
        Instr::St {
            rs,
            base,
            off,
            size,
        } => (
            lane_get(lane, base).wrapping_add(off as u64),
            LaneKind::St {
                size,
                value: lane_get(lane, rs),
            },
        ),
        Instr::Amo { op, addr, a, b, rd } => (
            lane_get(lane, addr),
            LaneKind::Amo {
                rd,
                op: match op {
                    AmoKind::Cas => AtomicOp::Cas {
                        expected: lane_get(lane, a),
                        value: lane_get(lane, b),
                    },
                    AmoKind::Add => AtomicOp::Add {
                        value: lane_get(lane, a),
                    },
                    AmoKind::Inc => AtomicOp::Inc,
                    AmoKind::Dec => AtomicOp::Dec,
                    AmoKind::Exch => AtomicOp::Exch {
                        value: lane_get(lane, a),
                    },
                },
            },
        ),
        _ => unreachable!("lane_mem_op on non-memory instruction"),
    }
}

/// The MTTOP InterFace Device (§3.1): abstracts the number and identity of
/// MTTOP cores behind a single device. CPU cores launch tasks at it via a
/// write syscall; it splits tasks into warp-sized chunks and assigns them
/// round-robin; it forwards MTTOP page faults to a CPU core as interrupts;
/// it sets an error register when a launch doesn't fit.
#[derive(Debug)]
pub struct Mifd {
    cursor: usize,
    error_register: bool,
    launches: u64,
    chunks: u64,
    rejected: u64,
    faults_forwarded: u64,
}

impl Default for Mifd {
    fn default() -> Self {
        Mifd::new()
    }
}

/// A planned chunk assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkAssign {
    /// Target MTTOP core index.
    pub core: usize,
    /// First tid of the chunk.
    pub first_tid: u64,
    /// Last tid (inclusive).
    pub last_tid: u64,
}

impl Mifd {
    /// A fresh device.
    pub fn new() -> Mifd {
        Mifd {
            cursor: 0,
            error_register: false,
            launches: 0,
            chunks: 0,
            rejected: 0,
            faults_forwarded: 0,
        }
    }

    /// Plans a launch of threads `first..=last` over cores with the given
    /// free-warp counts, round-robin from the device cursor (§3.1: "task
    /// assignment is done in a simple round-robin manner").
    ///
    /// Returns `None` — and sets the error register — when the task needs
    /// more warp contexts than are free.
    ///
    /// # Panics
    ///
    /// Panics if `last < first` or `free_warps` is empty.
    pub fn plan_launch(
        &mut self,
        first: u64,
        last: u64,
        lanes: usize,
        free_warps: &[usize],
    ) -> Option<Vec<ChunkAssign>> {
        assert!(last >= first, "empty launch");
        assert!(!free_warps.is_empty(), "no MTTOP cores");
        self.launches += 1;
        let nthreads = last - first + 1;
        let nchunks = nthreads.div_ceil(lanes as u64);
        let total_free: usize = free_warps.iter().sum();
        if (total_free as u64) < nchunks {
            self.error_register = true;
            self.rejected += 1;
            return None;
        }
        let mut remaining: Vec<usize> = free_warps.to_vec();
        let n = remaining.len();
        let mut out = Vec::with_capacity(nchunks as usize);
        let mut tid = first;
        for _ in 0..nchunks {
            while remaining[self.cursor % n] == 0 {
                self.cursor = (self.cursor + 1) % n;
            }
            let core = self.cursor % n;
            remaining[core] -= 1;
            self.cursor = (self.cursor + 1) % n;
            let last_tid = (tid + lanes as u64 - 1).min(last);
            out.push(ChunkAssign {
                core,
                first_tid: tid,
                last_tid,
            });
            tid = last_tid + 1;
        }
        self.chunks += out.len() as u64;
        Some(out)
    }

    /// Reads and clears the error register.
    pub fn take_error(&mut self) -> bool {
        std::mem::take(&mut self.error_register)
    }

    /// Counts a forwarded page-fault interrupt (§3.2.1).
    pub fn count_fault_forward(&mut self) {
        self.faults_forwarded += 1;
    }

    /// Device counters.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("launches"), self.launches as f64);
        s.set_id(stat_id("chunks"), self.chunks as f64);
        s.set_id(stat_id("rejected"), self.rejected as f64);
        s.set_id(stat_id("faults_forwarded"), self.faults_forwarded as f64);
        s
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs. Tagged-union encoding (one tag byte, then the variant's
// fields in declaration order). Any change here is a snapshot schema change
// (bump `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

use ccsvm_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

fn bad_tag(what: &str, tag: u8) -> SnapError {
    SnapError::Corrupt {
        what: format!("unknown {what} tag {tag:#04x}"),
    }
}

impl TaskChunk {
    /// Appends this chunk to a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.entry);
        w.put_u64(self.args);
        w.put_u64(self.first_tid);
        w.put_u64(self.last_tid);
        w.put_u64(self.cr3.0);
        w.put_usize(self.ra);
    }

    /// Reads a chunk previously written by [`TaskChunk::save`].
    pub fn load(r: &mut SnapReader<'_>) -> Result<TaskChunk, SnapError> {
        Ok(TaskChunk {
            entry: r.get_usize()?,
            args: r.get_u64()?,
            first_tid: r.get_u64()?,
            last_tid: r.get_u64()?,
            cr3: PhysAddr(r.get_u64()?),
            ra: r.get_usize()?,
        })
    }
}

impl PageFaultReq {
    /// Appends this fault request to a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.warp);
        w.put_u64(self.va.0);
        w.put_u64(self.cr3.0);
    }

    /// Reads a fault request previously written by [`PageFaultReq::save`].
    pub fn load(r: &mut SnapReader<'_>) -> Result<PageFaultReq, SnapError> {
        Ok(PageFaultReq {
            warp: r.get_usize()?,
            va: VirtAddr(r.get_u64()?),
            cr3: PhysAddr(r.get_u64()?),
        })
    }
}

impl LaneOp {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.lane);
        w.put_u64(self.va.0);
        match self.paddr {
            Some(p) => {
                w.put_bool(true);
                w.put_u64(p.0);
            }
            None => w.put_bool(false),
        }
        match self.kind {
            LaneKind::Ld { rd, size } => {
                w.put_u8(0);
                w.put_u8(rd.0);
                w.put_u8(size);
            }
            LaneKind::St { size, value } => {
                w.put_u8(1);
                w.put_u8(size);
                w.put_u64(value);
            }
            LaneKind::Amo { rd, op } => {
                w.put_u8(2);
                w.put_u8(rd.0);
                op.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<LaneOp, SnapError> {
        let lane = r.get_usize()?;
        let va = VirtAddr(r.get_u64()?);
        let paddr = if r.get_bool()? {
            Some(PhysAddr(r.get_u64()?))
        } else {
            None
        };
        let kind = match r.get_u8()? {
            0 => LaneKind::Ld {
                rd: Reg(r.get_u8()?),
                size: r.get_u8()?,
            },
            1 => LaneKind::St {
                size: r.get_u8()?,
                value: r.get_u64()?,
            },
            2 => LaneKind::Amo {
                rd: Reg(r.get_u8()?),
                op: AtomicOp::load(r)?,
            },
            t => return Err(bad_tag("LaneKind", t)),
        };
        Ok(LaneOp {
            lane,
            va,
            paddr,
            kind,
        })
    }
}

fn save_lane_ops(w: &mut SnapWriter, ops: &[LaneOp]) {
    w.put_usize(ops.len());
    for op in ops {
        op.save(w);
    }
}

fn load_lane_ops(r: &mut SnapReader<'_>) -> Result<Vec<LaneOp>, SnapError> {
    let n = r.get_count(1)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(LaneOp::load(r)?);
    }
    Ok(ops)
}

impl Plan {
    fn save(&self, w: &mut SnapWriter) {
        save_lane_ops(w, &self.ops);
        w.put_usize(self.next_translate);
        w.put_usize(self.pc);
        match &self.groups {
            Some(groups) => {
                w.put_bool(true);
                w.put_usize(groups.len());
                for g in groups {
                    save_lane_ops(w, g);
                }
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.issued);
        w.put_u64(self.finish.as_ps());
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Plan, SnapError> {
        let ops = load_lane_ops(r)?;
        let next_translate = r.get_usize()?;
        let pc = r.get_usize()?;
        let groups = if r.get_bool()? {
            let n = r.get_count(1)?;
            let mut q = std::collections::VecDeque::with_capacity(n);
            for _ in 0..n {
                q.push_back(load_lane_ops(r)?);
            }
            Some(q)
        } else {
            None
        };
        Ok(Plan {
            ops,
            next_translate,
            pc,
            groups,
            issued: r.get_usize()?,
            finish: Time::from_ps(r.get_u64()?),
        })
    }
}

impl WarpState {
    fn snap_tag(self) -> u8 {
        match self {
            WarpState::Free => 0,
            WarpState::Ready => 1,
            WarpState::Mem => 2,
            WarpState::Walk => 3,
            WarpState::WalkQueued => 4,
            WarpState::Fault => 5,
        }
    }

    fn from_snap_tag(tag: u8) -> Result<WarpState, SnapError> {
        Ok(match tag {
            0 => WarpState::Free,
            1 => WarpState::Ready,
            2 => WarpState::Mem,
            3 => WarpState::Walk,
            4 => WarpState::WalkQueued,
            5 => WarpState::Fault,
            t => return Err(bad_tag("WarpState", t)),
        })
    }
}

impl MttopCore {
    /// Captures into `u` (reusing its buffers) the pre-image of everything
    /// the next [`Self::run_batch`] call can mutate. See [`SpecUndo`] for
    /// why this bounded footprint suffices.
    pub fn spec_save(&self, u: &mut SpecUndo) {
        u.rr = self.rr;
        u.local_time = self.local_time;
        u.batch_epoch = self.batch_epoch;
        u.token_seq = self.token_seq;
        match &mut u.tlb {
            Some(t) => t.clone_from(&self.tlb),
            None => u.tlb = Some(self.tlb.clone()),
        }
        u.walker = self.walker;
        u.walker_queue.clear();
        u.walker_queue.extend_from_slice(&self.walker_queue);
        u.flights.clear();
        u.flights
            .extend(self.flights.iter().map(|(&t, f)| (t, f.clone())));
        u.arrived.clear();
        u.arrived.extend_from_slice(&self.arrived);
        u.counters = [
            self.warp_instrs,
            self.thread_instrs,
            self.mem_instrs,
            self.coalesced_accesses,
            self.divergent_issues,
            self.walks,
            self.faults,
            self.tasks,
        ];
        u.miss_lat_sum = self.miss_lat_sum;
        u.miss_count = self.miss_count;
        u.poisoned = self.poisoned;
        // Touched warps: the Ready set (can issue), warps with an arrived
        // completion (will wake), and the walker pipeline (can advance or
        // start the queued walk). Everything else is Free, Fault, or Mem
        // with nothing arrived — `run_batch` cannot reach it.
        u.n_warps = 0;
        u.seen.clear();
        u.seen.resize(self.warps.len().div_ceil(64), 0);
        for (word, &bits) in self.ready_mask.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let wi = (word << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.undo_warp(u, wi);
            }
        }
        for &(token, _) in &self.arrived {
            if let Some(f) = self.flights.get(&token) {
                self.undo_warp(u, f.warp);
            }
        }
        if let Some((wi, _)) = self.walker {
            self.undo_warp(u, wi);
        }
        for &wi in &self.walker_queue {
            self.undo_warp(u, wi);
        }
    }

    /// Appends warp `wi`'s pre-image to `u` unless already captured.
    fn undo_warp(&self, u: &mut SpecUndo, wi: usize) {
        let bit = 1u64 << (wi & 63);
        if u.seen[wi >> 6] & bit != 0 {
            return;
        }
        u.seen[wi >> 6] |= bit;
        if u.n_warps == u.warps.len() {
            u.warps.push(WarpUndo {
                wi,
                warp: self.warps[wi].clone(),
                state: self.states[wi],
                ready_at: self.ready_at[wi],
                sb_cur: self.sb_cur[wi],
                retry_epoch: self.retry_epoch[wi],
            });
        } else {
            let e = &mut u.warps[u.n_warps];
            let src = &self.warps[wi];
            e.wi = wi;
            e.warp.lanes.clone_from(&src.lanes);
            e.warp.outstanding = src.outstanding;
            e.warp.plan.clone_from(&src.plan);
            e.state = self.states[wi];
            e.ready_at = self.ready_at[wi];
            e.sb_cur = self.sb_cur[wi];
            e.retry_epoch = self.retry_epoch[wi];
        }
        u.n_warps += 1;
    }

    /// Reapplies the pre-image captured by [`Self::spec_save`], erasing the
    /// speculative `run_batch`'s every effect on the core. The ready bitmap
    /// is rebuilt per restored warp through [`Self::set_state`]; untouched
    /// warps kept their states, so their bits are already correct.
    pub fn spec_restore(&mut self, u: &SpecUndo) {
        self.rr = u.rr;
        self.local_time = u.local_time;
        self.batch_epoch = u.batch_epoch;
        self.token_seq = u.token_seq;
        self.tlb
            .clone_from(u.tlb.as_ref().expect("spec_save captured a TLB"));
        self.walker = u.walker;
        self.walker_queue.clear();
        self.walker_queue.extend_from_slice(&u.walker_queue);
        self.flights.clear();
        self.flights
            .extend(u.flights.iter().map(|(t, f)| (*t, f.clone())));
        self.arrived.clear();
        self.arrived.extend_from_slice(&u.arrived);
        [
            self.warp_instrs,
            self.thread_instrs,
            self.mem_instrs,
            self.coalesced_accesses,
            self.divergent_issues,
            self.walks,
            self.faults,
            self.tasks,
        ] = u.counters;
        self.miss_lat_sum = u.miss_lat_sum;
        self.miss_count = u.miss_count;
        self.poisoned = u.poisoned;
        for e in &u.warps[..u.n_warps] {
            {
                let w = &mut self.warps[e.wi];
                w.lanes.clone_from(&e.warp.lanes);
                w.outstanding = e.warp.outstanding;
                w.plan.clone_from(&e.warp.plan);
            }
            self.ready_at[e.wi] = e.ready_at;
            self.sb_cur[e.wi] = e.sb_cur;
            self.retry_epoch[e.wi] = e.retry_epoch;
            self.set_state(e.wi, e.state);
        }
    }
}

impl Snapshot for MttopCore {
    fn save(&self, w: &mut SnapWriter) {
        // `port`, `config`, `alu_cost` and `token_prefix` are construction
        // parameters; `chosen` is per-cycle scratch (empty between batches);
        // `miss_trace` is a host-side env toggle; `ready_mask` is rebuilt
        // from `states` on load. None of them are serialized.
        w.put_usize(self.warps.len());
        for warp in &self.warps {
            w.put_usize(warp.lanes.len());
            // Sparse: a dead lane's registers and PC are fully reset when a
            // chunk reactivates it, so only live lanes carry state worth
            // writing. Idle cores shrink to a bitmap instead of a register
            // file per lane.
            for lane in &warp.lanes {
                w.put_bool(lane.live);
                if lane.live {
                    for &v in &lane.regs {
                        w.put_u64(v);
                    }
                    w.put_usize(lane.pc);
                }
            }
            w.put_usize(warp.outstanding);
            match &warp.plan {
                Some(p) => {
                    w.put_bool(true);
                    p.save(w);
                }
                None => w.put_bool(false),
            }
        }
        for &s in &self.states {
            w.put_u8(s.snap_tag());
        }
        for &t in &self.ready_at {
            w.put_u64(t.as_ps());
        }
        w.put_usize(self.rr);
        w.put_u64(self.local_time.as_ps());
        self.tlb.save(w);
        match &self.walker {
            Some((wi, walk)) => {
                w.put_bool(true);
                w.put_usize(*wi);
                walk.save(w);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.walker_queue.len());
        for &wi in &self.walker_queue {
            w.put_usize(wi);
        }
        // Flights sorted by token so the byte stream is canonical.
        let mut tokens: Vec<u64> = self.flights.keys().copied().collect();
        tokens.sort_unstable();
        w.put_usize(tokens.len());
        for t in tokens {
            let f = &self.flights[&t];
            w.put_u64(t);
            w.put_usize(f.warp);
            save_lane_ops(w, &f.ops);
            w.put_u64(f.issued_at.as_ps());
        }
        w.put_usize(self.arrived.len());
        for &(token, value) in &self.arrived {
            w.put_u64(token);
            w.put_u64(value);
        }
        w.put_u64(self.token_seq);
        w.put_u64(self.cr3.0);
        for c in [
            self.warp_instrs,
            self.thread_instrs,
            self.mem_instrs,
            self.coalesced_accesses,
            self.divergent_issues,
            self.walks,
            self.faults,
            self.tasks,
        ] {
            w.put_u64(c);
        }
        w.put_u64(self.miss_lat_sum.as_ps());
        w.put_u64(self.miss_count);
        w.put_bool(self.poisoned);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.warps.len() {
            return Err(SnapError::Corrupt {
                what: format!("snapshot has {n} warps, config builds {}", self.warps.len()),
            });
        }
        for warp in &mut self.warps {
            let lanes = r.get_usize()?;
            if lanes != warp.lanes.len() {
                return Err(SnapError::Corrupt {
                    what: format!(
                        "snapshot has {lanes} lanes per warp, config builds {}",
                        warp.lanes.len()
                    ),
                });
            }
            for lane in &mut warp.lanes {
                lane.live = r.get_bool()?;
                if lane.live {
                    for v in &mut lane.regs {
                        *v = r.get_u64()?;
                    }
                    // `r0` reads as zero regardless of storage (`lane_get`
                    // masks it), so normalizing here changes nothing
                    // observable while re-establishing the `regs[0] == 0`
                    // invariant the decoded fast path relies on, even for a
                    // hand-corrupted image.
                    lane.regs[0] = 0;
                    lane.pc = r.get_usize()?;
                } else {
                    lane.regs = [0; 32];
                    lane.pc = 0;
                }
            }
            warp.outstanding = r.get_usize()?;
            warp.plan = if r.get_bool()? {
                Some(Plan::load(r)?)
            } else {
                None
            };
        }
        // Route through `set_state` so `ready_mask` is rebuilt in sync.
        for wi in 0..n {
            let s = WarpState::from_snap_tag(r.get_u8()?)?;
            self.set_state(wi, s);
        }
        for wi in 0..n {
            self.ready_at[wi] = Time::from_ps(r.get_u64()?);
        }
        self.rr = r.get_usize()?;
        self.local_time = Time::from_ps(r.get_u64()?);
        self.tlb.load(r)?;
        self.walker = if r.get_bool()? {
            Some((r.get_usize()?, Walk::load(r)?))
        } else {
            None
        };
        self.walker_queue.clear();
        for _ in 0..r.get_usize()? {
            self.walker_queue.push(r.get_usize()?);
        }
        self.flights.clear();
        for _ in 0..r.get_usize()? {
            let token = r.get_u64()?;
            let warp = r.get_usize()?;
            let ops = load_lane_ops(r)?;
            let issued_at = Time::from_ps(r.get_u64()?);
            self.flights.insert(
                token,
                Flight {
                    warp,
                    ops,
                    issued_at,
                },
            );
        }
        self.arrived.clear();
        for _ in 0..r.get_usize()? {
            let token = r.get_u64()?;
            self.arrived.push((token, r.get_u64()?));
        }
        self.token_seq = r.get_u64()?;
        self.cr3 = PhysAddr(r.get_u64()?);
        for c in [
            &mut self.warp_instrs,
            &mut self.thread_instrs,
            &mut self.mem_instrs,
            &mut self.coalesced_accesses,
            &mut self.divergent_issues,
            &mut self.walks,
            &mut self.faults,
            &mut self.tasks,
        ] {
            *c = r.get_u64()?;
        }
        self.miss_lat_sum = Time::from_ps(r.get_u64()?);
        self.miss_count = r.get_u64()?;
        self.poisoned = r.get_bool()?;
        // Superblock cursors and retry epochs are host-side memoization of
        // restored state, never part of the image; drop them so the next
        // issue re-derives the participating set from the loaded lanes and
        // the first post-restore retry runs the real controller.
        for c in &mut self.sb_cur {
            *c = SbCursor::INVALID;
        }
        self.batch_epoch = 0;
        for e in &mut self.retry_epoch {
            *e = u64::MAX;
        }
        Ok(())
    }
}

impl Snapshot for Mifd {
    fn save(&self, w: &mut SnapWriter) {
        w.put_usize(self.cursor);
        w.put_bool(self.error_register);
        w.put_u64(self.launches);
        w.put_u64(self.chunks);
        w.put_u64(self.rejected);
        w.put_u64(self.faults_forwarded);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cursor = r.get_usize()?;
        self.error_register = r.get_bool()?;
        self.launches = r.get_u64()?;
        self.chunks = r.get_u64()?;
        self.rejected = r.get_u64()?;
        self.faults_forwarded = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsvm_isa::{AluOp, Cond};
    use ccsvm_mem::{MemorySystem, PortLog};

    #[test]
    fn mifd_round_robin_assignment() {
        let mut m = Mifd::new();
        let plan = m.plan_launch(0, 31, 8, &[16, 16, 16]).unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan[0],
            ChunkAssign {
                core: 0,
                first_tid: 0,
                last_tid: 7
            }
        );
        assert_eq!(plan[1].core, 1);
        assert_eq!(plan[2].core, 2);
        assert_eq!(plan[3].core, 0, "wraps around");
        assert_eq!(plan[3].first_tid, 24);
        assert_eq!(plan[3].last_tid, 31);
    }

    #[test]
    fn mifd_partial_tail_chunk() {
        let mut m = Mifd::new();
        let plan = m.plan_launch(0, 9, 8, &[16]).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[1].first_tid, 8);
        assert_eq!(plan[1].last_tid, 9);
    }

    #[test]
    fn mifd_error_register_on_overflow() {
        let mut m = Mifd::new();
        assert!(m.plan_launch(0, 99, 8, &[4, 4]).is_none());
        assert!(m.take_error());
        assert!(!m.take_error(), "error register clears on read");
        assert_eq!(m.stats().get("rejected"), 1.0);
    }

    #[test]
    fn mifd_skips_busy_cores() {
        let mut m = Mifd::new();
        let plan = m.plan_launch(0, 15, 8, &[0, 2, 0]).unwrap();
        assert!(plan.iter().all(|c| c.core == 1));
    }

    #[test]
    fn start_task_fine_grained_spreads_contexts() {
        let mut core = MttopCore::new(PortId(0), MttopConfig::paper_ccsvm(0), 0);
        assert_eq!(core.free_warps(), 128);
        assert_eq!(core.free_chunks(8), 16);
        assert!(core.start_task(
            Time::ZERO,
            TaskChunk {
                entry: 0,
                args: 0x4000,
                first_tid: 8,
                last_tid: 11,
                cr3: PhysAddr(0x1000),
                ra: 99,
            }
        ));
        assert_eq!(core.free_warps(), 124, "4 threads take 4 contexts");
        assert!(core.busy());
        assert_eq!(core.warps[0].lanes[0].regs[1], 8);
        assert_eq!(core.warps[3].lanes[0].regs[1], 11);
        assert_eq!(core.warps[1].lanes[0].regs[2], 0x4000);
        assert_ne!(
            core.warps[0].lanes[0].regs[30], core.warps[1].lanes[0].regs[30],
            "distinct stacks"
        );
    }

    #[test]
    fn start_task_lockstep_fills_one_warp() {
        let mut core = MttopCore::new(PortId(0), MttopConfig::apu_gpu(0), 0);
        assert_eq!(core.free_warps(), 16);
        assert!(core.start_task(
            Time::ZERO,
            TaskChunk {
                entry: 0,
                args: 1,
                first_tid: 0,
                last_tid: 7,
                cr3: PhysAddr(0),
                ra: 0
            }
        ));
        assert_eq!(core.free_warps(), 15);
        let w = &core.warps[0];
        assert_eq!(w.lanes.iter().filter(|l| l.live).count(), 8);
        assert_ne!(w.lanes[0].regs[30], w.lanes[7].regs[30], "distinct stacks");
    }

    #[test]
    fn start_task_rejects_when_full() {
        let mut core = MttopCore::new(PortId(0), MttopConfig::paper_ccsvm(0), 0);
        for i in 0..16 {
            assert!(core.start_task(
                Time::ZERO,
                TaskChunk {
                    entry: 0,
                    args: 0,
                    first_tid: i * 8,
                    last_tid: i * 8 + 7,
                    cr3: PhysAddr(0),
                    ra: 0,
                }
            ));
        }
        assert_eq!(core.free_warps(), 0);
        assert!(!core.start_task(
            Time::ZERO,
            TaskChunk {
                entry: 0,
                args: 0,
                first_tid: 0,
                last_tid: 7,
                cr3: PhysAddr(0),
                ra: 0
            }
        ));
    }

    /// Builds a single-core memory system just big enough to hand
    /// `run_batch` a real [`CorePort`]; the litmus program is pure ALU +
    /// branch, so the port is never actually hit.
    fn litmus_mem() -> MemorySystem {
        MemorySystem::new(ccsvm_mem::MemConfig {
            l1s: vec![ccsvm_mem::L1Config {
                node: ccsvm_noc::NodeId(0),
                cache: ccsvm_mem::CacheConfig { sets: 64, ways: 4 },
                hit_time: Time::from_ps(1000),
                max_mshrs: 8,
                write_policy: ccsvm_mem::WritePolicy::WriteBack,
            }],
            banks: vec![ccsvm_mem::BankConfig {
                node: ccsvm_noc::NodeId(1),
                cache: ccsvm_mem::CacheConfig { sets: 256, ways: 8 },
                latency: Time::from_ps(10_000),
            }],
            dram: ccsvm_mem::DramConfig::paper_default(),
            ctrl_bytes: 8,
            data_bytes: 72,
            protocol: ccsvm_mem::ProtocolKind::Directory,
        })
    }

    /// Runs `prog` to completion on one lockstep warp (tids 0..=7) and
    /// returns `(per-lane r4, divergent_issues, warp_instrs, thread_instrs,
    /// final local_time)`.
    fn run_litmus(prog: &Program, sb_cache: bool) -> ([u64; 8], u64, u64, u64, Time) {
        let mut core = MttopCore::new(PortId(0), MttopConfig::apu_gpu(0), 0);
        core.set_sb_cache(sb_cache);
        let mut mem = litmus_mem();
        let mut logs = vec![PortLog::new()];
        let mut ports = mem.core_ports(&mut logs);
        assert!(core.start_task(
            Time::ZERO,
            TaskChunk {
                entry: 0,
                args: 0,
                first_tid: 0,
                last_tid: 7,
                cr3: PhysAddr(0),
                ra: 0,
            }
        ));
        let mut now = Time::ZERO;
        for _ in 0..64 {
            let out = core.run_batch(now, prog, &mut ports[0]);
            assert!(out.faults.is_empty(), "ALU litmus cannot fault");
            match out.action {
                MttopAction::Continue { at } => now = at,
                MttopAction::Idle => break,
                MttopAction::Blocked => panic!("ALU litmus cannot block on memory"),
            }
        }
        assert!(!core.busy(), "litmus did not finish");
        let mut r4 = [0u64; 8];
        for (i, lane) in core.warps[0].lanes.iter().enumerate() {
            r4[i] = lane.regs[4];
        }
        (
            r4,
            core.divergent_issues,
            core.warp_instrs,
            core.thread_instrs,
            core.local_time,
        )
    }

    /// The module-doc min-PC reconvergence rule, end to end: after a branch
    /// splits lane 0 from lanes 1..7, lane 0 (the min-PC holder) issues
    /// *alone* through its catch-up path, and the moment its PC reaches the
    /// waiting lanes' PC the recomputed participating set merges them back
    /// into one full-warp issue — with identical architectural results and
    /// counters whether the superblock fast path is on or off (rule 4: a
    /// cached run must die at the smallest lagging live lane's PC).
    #[test]
    fn lagging_lane_reconverges_at_min_pc() {
        let r4 = Reg(4);
        let add = |imm: i64| Instr::Alu {
            op: AluOp::Add,
            rd: r4,
            ra: r4,
            rb: Operand::Imm(imm),
        };
        let prog = Program {
            text: vec![
                // Lanes with tid != 0 hop over the catch-up path.
                Instr::Br {
                    cond: Cond::Ne,
                    ra: Reg(1),
                    rb: Reg(0),
                    target: 3,
                },
                add(100), // lane 0 only
                add(100), // lane 0 only — last lagging op before reconvergence
                add(1),   // full warp again (decodes into one superblock run)
                add(1),
                add(1),
                Instr::Exit,
            ],
            symbols: Default::default(),
            globals_size: 0,
            data: Vec::new(),
        };
        let (r4_on, div_on, wi_on, ti_on, t_on) = run_litmus(&prog, true);
        assert_eq!(r4_on[0], 203, "lane 0 must run its solo path then rejoin");
        for (i, &v) in r4_on.iter().enumerate().skip(1) {
            assert_eq!(v, 3, "lane {i} must wait at the join PC, then run 3 adds");
        }
        assert_eq!(
            div_on, 2,
            "exactly the two solo catch-up issues are divergent; more means \
             the dispatcher ran past the reconvergence point"
        );
        // The host-side cache must be invisible: identical results, counters
        // and simulated clock with the fast path ablated.
        let (r4_off, div_off, wi_off, ti_off, t_off) = run_litmus(&prog, false);
        assert_eq!(r4_on, r4_off);
        assert_eq!(
            (div_on, wi_on, ti_on, t_on),
            (div_off, wi_off, ti_off, t_off),
            "superblock fast path perturbed counters or simulated time"
        );
    }
}
