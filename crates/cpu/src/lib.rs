//! In-order CPU core timing model.
//!
//! The paper's simulated CPU cores are "in-order x86 cores, 2.9 GHz, max
//! IPC = 0.5" (Table 2) with no write buffers (§3.2.3: SC). This model
//! executes the shared HIR ISA with a configurable cycles-per-instruction
//! cost, blocking (SC) memory operations through the coherent
//! [`ccsvm_mem::MemorySystem`], a hardware page-table walker whose PTE reads
//! are ordinary cacheable loads (§3.2.1), and a per-core TLB.
//!
//! Execution is *quantum-batched*: [`CpuCore::run_batch`] executes straight
//! through L1 hits and ALU work until it blocks on a miss, reaches the time
//! quantum, or hits something the machine must handle (syscall, page fault,
//! thread exit). The surrounding machine model schedules batches through its
//! event queue, so inter-core interactions are event-accurate at quantum
//! granularity (the gem5 approach).

use ccsvm_engine::{stat_id, Clock, SplitMix64, Stats, Time, TlbFaultConfig};
use ccsvm_isa::{abi, decodable, AmoKind, Instr, Operand, Program, Reg, SbCache, SbStats};
use ccsvm_mem::{Access, AccessResult, AtomicOp, CorePort, PhysAddr, PortId};
use ccsvm_vm::{frame_plus_offset, Tlb, VirtAddr, Walk, WalkResult};

/// Static configuration of one CPU core.
#[derive(Clone, Copy, Debug)]
pub struct CpuConfig {
    /// Core clock.
    pub clock: Clock,
    /// Instruction cost numerator in cycles (max IPC 0.5 ⇒ 2/1).
    pub cycles_per_instr_num: u64,
    /// Instruction cost denominator (max IPC 4 ⇒ 1/4).
    pub cycles_per_instr_den: u64,
    /// Batch quantum in core cycles.
    pub quantum_cycles: u64,
    /// TLB capacity (Table 2: 64).
    pub tlb_entries: usize,
}

impl CpuConfig {
    /// The paper's CCSVM CPU core: 2.9 GHz, max IPC 0.5, 64-entry TLB.
    pub fn paper_ccsvm() -> CpuConfig {
        CpuConfig {
            clock: Clock::from_ghz(2.9),
            cycles_per_instr_num: 2,
            cycles_per_instr_den: 1,
            quantum_cycles: 100,
            tlb_entries: 64,
        }
    }

    /// The APU baseline's out-of-order core: 2.9 GHz, max IPC 4.
    pub fn paper_apu() -> CpuConfig {
        CpuConfig {
            cycles_per_instr_num: 1,
            cycles_per_instr_den: 4,
            ..CpuConfig::paper_ccsvm()
        }
    }
}

/// What the machine must do after a [`CpuCore::run_batch`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuAction {
    /// Schedule the next batch at the given time.
    Continue {
        /// Earliest time the core can execute again.
        at: Time,
    },
    /// Blocked on an outstanding memory access; resume via
    /// [`CpuCore::on_completion`].
    Blocked,
    /// The running thread executed `syscall` (number in `r1`). The machine
    /// services it and calls [`CpuCore::resume_syscall`].
    Syscall,
    /// The walker found a non-present page. The machine (OS) maps it and
    /// calls [`CpuCore::fault_resolved`]; the faulting instruction retries.
    PageFault {
        /// Faulting virtual address.
        va: VirtAddr,
    },
    /// The thread executed `exit`; the core is idle again.
    Exited,
    /// No thread is running.
    Idle,
    /// The access touched a block poisoned by an uncorrectable ECC error;
    /// the machine must abort the run gracefully.
    Poisoned,
}

/// Seeded transient TLB-walk fault injection (installed via
/// [`CpuCore::install_tlb_faults`]).
#[derive(Debug)]
struct TlbFaults {
    cfg: TlbFaultConfig,
    rng: SplitMix64,
    transients: u64,
}

/// An architectural memory operation awaiting translation/access.
#[derive(Clone, Copy, Debug)]
enum OpKind {
    Ld {
        rd: Reg,
        size: u8,
    },
    St {
        size: u8,
        value: u64,
    },
    Amo {
        rd: Reg,
        op: AmoKind,
        a: u64,
        b: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct MemOp {
    va: VirtAddr,
    kind: OpKind,
}

/// Where the core is mid-instruction.
#[derive(Clone, Copy, Debug)]
enum Pending {
    /// Start (or restart) at `pc`.
    None,
    /// A PTE read is outstanding.
    WalkRead { walk: Walk, op: MemOp },
    /// A PTE value arrived; continue the walk in the next batch.
    WalkReady { pte: u64, walk: Walk, op: MemOp },
    /// The translated demand access is outstanding.
    Access { op: MemOp },
    /// The demand access completed; apply it in the next batch.
    AccessReady { value: u64, op: MemOp },
    /// Waiting for the machine to service a syscall.
    Syscall,
    /// Waiting for the machine to resolve a page fault (the address is
    /// carried by the `PageFault` action; kept here for Debug dumps).
    Fault {
        #[allow(dead_code)]
        va: VirtAddr,
    },
}

/// One in-order CPU core.
#[derive(Debug)]
pub struct CpuCore {
    /// This core's L1 port.
    pub port: PortId,
    config: CpuConfig,
    instr_cost: Time,
    /// Architectural registers of the running thread.
    regs: [u64; 32],
    pc: usize,
    running: bool,
    local_time: Time,
    pending: Pending,
    tlb: Tlb,
    cr3: PhysAddr,
    token_prefix: u64,
    token_seq: u64,
    outstanding_token: Option<u64>,
    icount: u64,
    mem_ops: u64,
    walks: u64,
    faults: u64,
    busy_time: Time,
    tlb_faults: Option<TlbFaults>,
    /// Decoded-superblock cache: host-side memoization only, never
    /// serialized (rebuilt on demand after a snapshot restore).
    sb: SbCache,
}

impl CpuCore {
    /// Creates an idle core. `token_prefix` must be unique per core; it tags
    /// this core's memory-completion tokens for the machine's routing.
    pub fn new(port: PortId, config: CpuConfig, token_prefix: u64) -> CpuCore {
        let instr_cost = Time::from_ps(
            config.clock.period().as_ps() * config.cycles_per_instr_num
                / config.cycles_per_instr_den,
        );
        CpuCore {
            port,
            config,
            instr_cost,
            regs: [0; 32],
            pc: 0,
            running: false,
            local_time: Time::ZERO,
            pending: Pending::None,
            tlb: Tlb::new(config.tlb_entries),
            cr3: PhysAddr(0),
            token_prefix,
            token_seq: 0,
            outstanding_token: None,
            icount: 0,
            mem_ops: 0,
            walks: 0,
            faults: 0,
            busy_time: Time::ZERO,
            tlb_faults: None,
            sb: SbCache::new(SbCache::DEFAULT_CAPACITY),
        }
    }

    /// Enables/disables the decoded-superblock fast path (the
    /// `SystemConfig::sb_cache` ablation knob). Pure host-perf toggle: the
    /// executed instruction stream, timing and stats are identical either way.
    pub fn set_sb_cache(&mut self, enabled: bool) {
        self.sb.set_enabled(enabled);
    }

    /// Superblock-cache counters (host-side; not part of [`CpuCore::stats`]).
    pub fn sb_stats(&self) -> SbStats {
        *self.sb.stats()
    }

    /// Installs seeded transient TLB-walk fault injection: each completed
    /// walk fails with probability `cfg.transient_rate`, charging
    /// `cfg.retry_penalty` and re-walking, instead of filling the TLB.
    pub fn install_tlb_faults(&mut self, cfg: TlbFaultConfig, rng: SplitMix64) {
        self.tlb_faults = Some(TlbFaults {
            cfg,
            rng,
            transients: 0,
        });
    }

    /// Whether a thread is currently assigned.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Architectural register read (machine syscall handling).
    pub fn reg(&self, i: usize) -> u64 {
        self.regs[i]
    }

    /// Architectural register write (machine syscall handling).
    pub fn set_reg(&mut self, i: usize, v: u64) {
        if i != 0 {
            self.regs[i] = v;
        }
    }

    /// The core's local clock (never behind the last event it processed).
    pub fn local_time(&self) -> Time {
        self.local_time
    }

    /// Starts a thread: entry PC, argument (→ `r1`), stack context id, CR3.
    ///
    /// # Panics
    ///
    /// Panics if the core is already running a thread.
    pub fn start_thread(
        &mut self,
        now: Time,
        entry: usize,
        arg: u64,
        ctx: u64,
        cr3: PhysAddr,
        ra: usize,
    ) {
        assert!(!self.running, "core already running a thread");
        self.regs = [0; 32];
        self.regs[abi::A0.0 as usize] = arg;
        self.regs[abi::SP.0 as usize] = abi::stack_top(ctx);
        self.regs[abi::FP.0 as usize] = self.regs[abi::SP.0 as usize];
        self.regs[abi::RA.0 as usize] = ra as u64;
        self.pc = entry;
        self.cr3 = cr3;
        self.running = true;
        self.pending = Pending::None;
        self.local_time = self.local_time.max(now);
    }

    /// Advances this core's local clock to `t` (used when the OS "steals"
    /// the core for handler work: interrupts, page-fault service).
    pub fn preempt_until(&mut self, t: Time) {
        self.local_time = self.local_time.max(t);
    }

    /// Invalidate one TLB entry (shootdown IPI target, §3.2.1).
    pub fn tlb_invalidate(&mut self, va: VirtAddr) {
        self.tlb.invalidate(va);
    }

    /// Live TLB translations, for the sanitizer's TLB⊆page-table check.
    /// Read-only: no LRU or counter effects.
    pub fn tlb_entries(&self) -> Vec<(u64, PhysAddr)> {
        self.tlb.entries()
    }

    /// Whether the TLB still holds a translation for `va`'s page (read-only;
    /// the sanitizer's stale-shootdown check).
    pub fn tlb_holds(&self, va: VirtAddr) -> bool {
        self.tlb.holds(va)
    }

    /// Test-only sanitizer mutation hook: corrupt one live TLB entry's frame.
    pub fn test_corrupt_tlb(&mut self) -> bool {
        self.tlb.test_corrupt_first_entry()
    }

    fn token(&mut self) -> u64 {
        self.token_seq += 1;
        let t = self.token_prefix | self.token_seq;
        self.outstanding_token = Some(t);
        t
    }

    fn get(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    fn set(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// A memory completion for this core arrived. Returns the time at which
    /// the machine should schedule the next batch.
    ///
    /// # Panics
    ///
    /// Panics if the token doesn't match the outstanding access.
    pub fn on_completion(&mut self, now: Time, token: u64, value: u64) -> Time {
        assert_eq!(
            Some(token),
            self.outstanding_token,
            "completion token mismatch"
        );
        self.outstanding_token = None;
        self.local_time = self.local_time.max(now);
        self.pending = match self.pending {
            Pending::WalkRead { walk, op } => Pending::WalkReady {
                pte: value,
                walk,
                op,
            },
            Pending::Access { op } => Pending::AccessReady { value, op },
            ref p => unreachable!("completion in state {p:?}"),
        };
        self.local_time
    }

    /// The machine serviced a syscall; `ret` goes to `r1` and execution
    /// resumes at `at`.
    pub fn resume_syscall(&mut self, at: Time, ret: u64) -> Time {
        debug_assert!(matches!(self.pending, Pending::Syscall));
        self.regs[1] = ret;
        self.pc += 1;
        self.pending = Pending::None;
        self.local_time = self.local_time.max(at);
        self.local_time
    }

    /// The machine mapped the faulting page; the instruction retries.
    pub fn fault_resolved(&mut self, at: Time) -> Time {
        debug_assert!(matches!(self.pending, Pending::Fault { .. }));
        self.pending = Pending::None;
        self.local_time = self.local_time.max(at);
        self.local_time
    }

    /// The thread exits (machine-side, e.g. the exit syscall).
    pub fn stop_thread(&mut self) {
        self.running = false;
        self.pending = Pending::None;
    }

    /// Executes until a block/quantum boundary. See the [crate docs](crate).
    ///
    /// All memory traffic goes through `port`, the core's private
    /// [`CorePort`]: the step mutates only this core and its own L1, so
    /// batches of distinct cores may run concurrently and their buffered
    /// [`ccsvm_mem::PortLog`]s be replayed afterwards in canonical order.
    pub fn run_batch(&mut self, now: Time, prog: &Program, port: &mut CorePort<'_>) -> CpuAction {
        if !self.running {
            return CpuAction::Idle;
        }
        self.local_time = self.local_time.max(now);
        let deadline = self.local_time + self.config.clock.cycles(self.config.quantum_cycles);
        let start = self.local_time;

        loop {
            // Resolve whatever the last event left us.
            match std::mem::replace(&mut self.pending, Pending::None) {
                Pending::None => {}
                Pending::WalkReady { pte, walk, op } => {
                    let action = self.walk_feed(pte, walk, op, port);
                    match action {
                        None => {}
                        Some(a) => return self.charge_and(a, start),
                    }
                }
                Pending::AccessReady { value, op } => {
                    self.apply_op(value, op);
                }
                p @ (Pending::WalkRead { .. }
                | Pending::Access { .. }
                | Pending::Syscall
                | Pending::Fault { .. }) => {
                    // Spurious batch while blocked: put it back, do nothing.
                    self.pending = p;
                    return CpuAction::Blocked;
                }
            }

            if self.local_time >= deadline {
                let at = self.local_time;
                self.busy_time += at - start;
                return CpuAction::Continue { at };
            }

            let Some(&instr) = prog.text.get(self.pc) else {
                panic!("CPU pc {} outside text (len {})", self.pc, prog.text.len());
            };

            // Decoded-superblock fast path (`ccsvm_isa::decode`): execute the
            // straight-line run from here in a tight loop. Each micro-op
            // retires with exactly the serial bookkeeping below — icount,
            // then the time charge, then the register write — and the same
            // quantum-deadline check between instructions, so timing and
            // stats are bit-identical to the one-`match`-per-instruction path.
            if decodable(&instr) {
                if let Some(r) = self.sb.entry(prog, self.pc) {
                    let ops = self.sb.ops_at(r).expect("fresh superblock ref");
                    let mut k = 0;
                    while k < ops.len() {
                        self.icount += 1;
                        self.local_time += self.instr_cost;
                        ops[k].exec(&mut self.regs);
                        k += 1;
                        if self.local_time >= deadline {
                            break;
                        }
                    }
                    self.pc += k;
                    continue;
                }
            }

            self.icount += 1;
            self.local_time += self.instr_cost;

            match instr {
                Instr::Alu { op, rd, ra, rb } => {
                    let b = match rb {
                        Operand::Reg(r) => self.get(r),
                        Operand::Imm(i) => i as u64,
                    };
                    let v = op.apply(self.get(ra), b);
                    self.set(rd, v);
                    self.pc += 1;
                }
                Instr::Li { rd, imm } => {
                    self.set(rd, imm as u64);
                    self.pc += 1;
                }
                Instr::Br {
                    cond,
                    ra,
                    rb,
                    target,
                } => {
                    self.pc = if cond.test(self.get(ra), self.get(rb)) {
                        target
                    } else {
                        self.pc + 1
                    };
                }
                Instr::Jmp { target } => self.pc = target,
                Instr::JmpReg { rs } => self.pc = self.get(rs) as usize,
                Instr::Call { target } => {
                    self.set(abi::RA, (self.pc + 1) as u64);
                    self.pc = target;
                }
                Instr::CallReg { rs } => {
                    let t = self.get(rs) as usize;
                    self.set(abi::RA, (self.pc + 1) as u64);
                    self.pc = t;
                }
                Instr::Fence | Instr::Nop => self.pc += 1,
                Instr::Syscall => {
                    self.pending = Pending::Syscall;
                    self.busy_time += self.local_time - start;
                    return CpuAction::Syscall;
                }
                Instr::Exit => {
                    self.running = false;
                    self.busy_time += self.local_time - start;
                    return CpuAction::Exited;
                }
                Instr::Ld {
                    rd,
                    base,
                    off,
                    size,
                } => {
                    let va = VirtAddr(self.get(base).wrapping_add(off as u64));
                    let op = MemOp {
                        va,
                        kind: OpKind::Ld { rd, size },
                    };
                    if let Some(a) = self.issue_mem(op, port) {
                        return self.charge_and(a, start);
                    }
                }
                Instr::St {
                    rs,
                    base,
                    off,
                    size,
                } => {
                    let va = VirtAddr(self.get(base).wrapping_add(off as u64));
                    let value = self.get(rs);
                    let op = MemOp {
                        va,
                        kind: OpKind::St { size, value },
                    };
                    if let Some(a) = self.issue_mem(op, port) {
                        return self.charge_and(a, start);
                    }
                }
                Instr::Amo { op, rd, addr, a, b } => {
                    let va = VirtAddr(self.get(addr));
                    let mop = MemOp {
                        va,
                        kind: OpKind::Amo {
                            rd,
                            op,
                            a: self.get(a),
                            b: self.get(b),
                        },
                    };
                    if let Some(act) = self.issue_mem(mop, port) {
                        return self.charge_and(act, start);
                    }
                }
            }
        }
    }

    fn charge_and(&mut self, a: CpuAction, start: Time) -> CpuAction {
        self.busy_time += self.local_time.saturating_sub(start);
        a
    }

    /// Translates and issues a memory op. `None` means it completed inline
    /// (hit); `Some(action)` means the batch must end.
    fn issue_mem(&mut self, op: MemOp, port: &mut CorePort<'_>) -> Option<CpuAction> {
        self.mem_ops += 1;
        match self.tlb.lookup(op.va) {
            Some(frame) => self.issue_access(frame_plus_offset(frame, op.va), op, port),
            None => {
                self.walks += 1;
                let walk = Walk::new(self.cr3, op.va);
                self.issue_walk_read(walk, op, port)
            }
        }
    }

    fn issue_walk_read(
        &mut self,
        walk: Walk,
        op: MemOp,
        port: &mut CorePort<'_>,
    ) -> Option<CpuAction> {
        let token = self.token();
        let access = Access::Read {
            paddr: walk.pte_addr(),
            size: 8,
        };
        match port.access(self.local_time, token, access) {
            AccessResult::Hit { finish, value } => {
                self.outstanding_token = None;
                self.local_time = finish;
                self.walk_feed(value, walk, op, port)
            }
            AccessResult::Pending => {
                self.pending = Pending::WalkRead { walk, op };
                Some(CpuAction::Blocked)
            }
            AccessResult::Retry => {
                self.outstanding_token = None;
                self.local_time += self.config.clock.period();
                Some(CpuAction::Continue {
                    at: self.local_time,
                })
            }
            AccessResult::Poisoned => {
                self.outstanding_token = None;
                Some(CpuAction::Poisoned)
            }
        }
    }

    /// Feeds a PTE into the walk; continues the walk / finishes translation /
    /// faults. `None` = fully done inline.
    fn walk_feed(
        &mut self,
        pte: u64,
        walk: Walk,
        op: MemOp,
        port: &mut CorePort<'_>,
    ) -> Option<CpuAction> {
        match walk.feed(pte) {
            WalkResult::Continue(next) => self.issue_walk_read(next, op, port),
            WalkResult::Done(frame) => {
                if let Some(f) = &mut self.tlb_faults {
                    if f.rng.next_f64() < f.cfg.transient_rate {
                        // Transient walk failure: the translation is lost
                        // before it reaches the TLB; the instruction pays the
                        // retry penalty and re-walks from scratch.
                        f.transients += 1;
                        self.local_time += f.cfg.retry_penalty;
                        return Some(CpuAction::Continue {
                            at: self.local_time,
                        });
                    }
                }
                self.tlb.insert(op.va, frame);
                self.issue_access(frame_plus_offset(frame, op.va), op, port)
            }
            WalkResult::Fault(f) => {
                self.faults += 1;
                self.pending = Pending::Fault { va: f.va };
                Some(CpuAction::PageFault { va: f.va })
            }
        }
    }

    fn issue_access(
        &mut self,
        paddr: PhysAddr,
        op: MemOp,
        port: &mut CorePort<'_>,
    ) -> Option<CpuAction> {
        let access = match op.kind {
            OpKind::Ld { size, .. } => Access::Read {
                paddr,
                size: size as usize,
            },
            OpKind::St { size, value } => Access::Write {
                paddr,
                size: size as usize,
                value,
            },
            OpKind::Amo { op: k, a, b, .. } => Access::Rmw {
                paddr,
                size: 8,
                op: match k {
                    AmoKind::Cas => AtomicOp::Cas {
                        expected: a,
                        value: b,
                    },
                    AmoKind::Add => AtomicOp::Add { value: a },
                    AmoKind::Inc => AtomicOp::Inc,
                    AmoKind::Dec => AtomicOp::Dec,
                    AmoKind::Exch => AtomicOp::Exch { value: a },
                },
            },
        };
        let token = self.token();
        match port.access(self.local_time, token, access) {
            AccessResult::Hit { finish, value } => {
                self.outstanding_token = None;
                self.local_time = finish;
                self.apply_op(value, op);
                None
            }
            AccessResult::Pending => {
                self.pending = Pending::Access { op };
                Some(CpuAction::Blocked)
            }
            AccessResult::Retry => {
                self.outstanding_token = None;
                self.local_time += self.config.clock.period();
                Some(CpuAction::Continue {
                    at: self.local_time,
                })
            }
            AccessResult::Poisoned => {
                self.outstanding_token = None;
                Some(CpuAction::Poisoned)
            }
        }
    }

    fn apply_op(&mut self, value: u64, op: MemOp) {
        match op.kind {
            OpKind::Ld { rd, .. } => self.set(rd, value),
            OpKind::St { .. } => {}
            OpKind::Amo { rd, .. } => self.set(rd, value),
        }
        self.pc += 1;
    }

    /// Core counters (instructions, memory ops, walks, faults, busy time) and
    /// TLB statistics.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("instructions"), self.icount as f64);
        s.set_id(stat_id("mem_ops"), self.mem_ops as f64);
        s.set_id(stat_id("tlb_walks"), self.walks as f64);
        s.set_id(stat_id("page_faults"), self.faults as f64);
        s.set_id(stat_id("busy_us"), self.busy_time.as_us());
        if let Some(f) = &self.tlb_faults {
            s.set_id(stat_id("tlb_transients"), f.transients as f64);
        }
        s.merge_prefixed("tlb", &self.tlb.stats());
        s
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs. Tagged-union encoding (one tag byte, then the variant's
// fields in declaration order). Any change here is a snapshot schema change
// (bump `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

use ccsvm_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

fn bad_tag(what: &str, tag: u8) -> SnapError {
    SnapError::Corrupt {
        what: format!("unknown {what} tag {tag:#04x}"),
    }
}

fn save_amo_kind(w: &mut SnapWriter, k: AmoKind) {
    w.put_u8(match k {
        AmoKind::Cas => 0,
        AmoKind::Add => 1,
        AmoKind::Inc => 2,
        AmoKind::Dec => 3,
        AmoKind::Exch => 4,
    });
}

fn load_amo_kind(r: &mut SnapReader<'_>) -> Result<AmoKind, SnapError> {
    Ok(match r.get_u8()? {
        0 => AmoKind::Cas,
        1 => AmoKind::Add,
        2 => AmoKind::Inc,
        3 => AmoKind::Dec,
        4 => AmoKind::Exch,
        t => return Err(bad_tag("AmoKind", t)),
    })
}

impl MemOp {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.va.0);
        match self.kind {
            OpKind::Ld { rd, size } => {
                w.put_u8(0);
                w.put_u8(rd.0);
                w.put_u8(size);
            }
            OpKind::St { size, value } => {
                w.put_u8(1);
                w.put_u8(size);
                w.put_u64(value);
            }
            OpKind::Amo { rd, op, a, b } => {
                w.put_u8(2);
                w.put_u8(rd.0);
                save_amo_kind(w, op);
                w.put_u64(a);
                w.put_u64(b);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<MemOp, SnapError> {
        let va = VirtAddr(r.get_u64()?);
        let kind = match r.get_u8()? {
            0 => OpKind::Ld {
                rd: Reg(r.get_u8()?),
                size: r.get_u8()?,
            },
            1 => OpKind::St {
                size: r.get_u8()?,
                value: r.get_u64()?,
            },
            2 => OpKind::Amo {
                rd: Reg(r.get_u8()?),
                op: load_amo_kind(r)?,
                a: r.get_u64()?,
                b: r.get_u64()?,
            },
            t => return Err(bad_tag("OpKind", t)),
        };
        Ok(MemOp { va, kind })
    }
}

impl Pending {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Pending::None => w.put_u8(0),
            Pending::WalkRead { walk, op } => {
                w.put_u8(1);
                walk.save(w);
                op.save(w);
            }
            Pending::WalkReady { pte, walk, op } => {
                w.put_u8(2);
                w.put_u64(*pte);
                walk.save(w);
                op.save(w);
            }
            Pending::Access { op } => {
                w.put_u8(3);
                op.save(w);
            }
            Pending::AccessReady { value, op } => {
                w.put_u8(4);
                w.put_u64(*value);
                op.save(w);
            }
            Pending::Syscall => w.put_u8(5),
            Pending::Fault { va } => {
                w.put_u8(6);
                w.put_u64(va.0);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Pending, SnapError> {
        Ok(match r.get_u8()? {
            0 => Pending::None,
            1 => Pending::WalkRead {
                walk: Walk::load(r)?,
                op: MemOp::load(r)?,
            },
            2 => Pending::WalkReady {
                pte: r.get_u64()?,
                walk: Walk::load(r)?,
                op: MemOp::load(r)?,
            },
            3 => Pending::Access {
                op: MemOp::load(r)?,
            },
            4 => Pending::AccessReady {
                value: r.get_u64()?,
                op: MemOp::load(r)?,
            },
            5 => Pending::Syscall,
            6 => Pending::Fault {
                va: VirtAddr(r.get_u64()?),
            },
            t => return Err(bad_tag("Pending", t)),
        })
    }
}

impl Snapshot for CpuCore {
    fn save(&self, w: &mut SnapWriter) {
        // `port`, `config`, `instr_cost` and `token_prefix` are construction
        // parameters (config-derived) and deliberately not serialized.
        for &v in &self.regs {
            w.put_u64(v);
        }
        w.put_usize(self.pc);
        w.put_bool(self.running);
        w.put_u64(self.local_time.as_ps());
        self.pending.save(w);
        self.tlb.save(w);
        w.put_u64(self.cr3.0);
        w.put_u64(self.token_seq);
        match self.outstanding_token {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.icount);
        w.put_u64(self.mem_ops);
        w.put_u64(self.walks);
        w.put_u64(self.faults);
        w.put_u64(self.busy_time.as_ps());
        match &self.tlb_faults {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                w.put_u64(f.rng.state());
                w.put_u64(f.transients);
            }
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for v in &mut self.regs {
            *v = r.get_u64()?;
        }
        self.pc = r.get_usize()?;
        self.running = r.get_bool()?;
        self.local_time = Time::from_ps(r.get_u64()?);
        self.pending = Pending::load(r)?;
        self.tlb.load(r)?;
        self.cr3 = PhysAddr(r.get_u64()?);
        self.token_seq = r.get_u64()?;
        self.outstanding_token = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.icount = r.get_u64()?;
        self.mem_ops = r.get_u64()?;
        self.walks = r.get_u64()?;
        self.faults = r.get_u64()?;
        self.busy_time = Time::from_ps(r.get_u64()?);
        let has_faults = r.get_bool()?;
        match (&mut self.tlb_faults, has_faults) {
            (Some(f), true) => {
                f.rng.set_state(r.get_u64()?);
                f.transients = r.get_u64()?;
            }
            (None, false) => {}
            _ => {
                return Err(SnapError::Corrupt {
                    what: "cpu tlb fault-injection presence differs from config".into(),
                })
            }
        }
        Ok(())
    }
}
