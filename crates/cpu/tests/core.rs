//! CPU-core timing-model tests driven through a minimal harness: one core,
//! a real coherent memory system, page tables built by OsLite.

use ccsvm_cpu::{CpuAction, CpuConfig, CpuCore};
use ccsvm_engine::{EventQueue, Time};
use ccsvm_isa::{abi, assemble, Program};
use ccsvm_mem::{
    BankConfig, CacheConfig, DramConfig, L1Config, MemConfig, MemEvent, MemorySystem, PortId,
    PortLog, WritePolicy,
};
use ccsvm_noc::{Network, NocConfig, NodeId, Topology};
use ccsvm_vm::{OsLite, VirtAddr};

struct Rig {
    core: CpuCore,
    mem: MemorySystem,
    net: Network,
    queue: EventQueue<MemEvent>,
    os: OsLite,
    prog: Program,
    now: Time,
}

impl Rig {
    fn new(src: &str, config: CpuConfig) -> Rig {
        let topo = Topology::torus(2, 2);
        let mem = MemorySystem::new(MemConfig {
            l1s: vec![L1Config {
                node: NodeId(0),
                cache: CacheConfig::from_capacity(8 * 1024, 2),
                hit_time: Time::from_ps(690),
                max_mshrs: 4,
                write_policy: WritePolicy::WriteBack,
            }],
            banks: vec![BankConfig {
                node: NodeId(1),
                cache: CacheConfig::from_capacity(256 * 1024, 8),
                latency: Time::from_ps(3450),
            }],
            dram: DramConfig::paper_default(),
            ctrl_bytes: 8,
            data_bytes: 72,
            protocol: ccsvm_mem::ProtocolKind::Directory,
        });
        let mut rig = Rig {
            core: CpuCore::new(PortId(0), config, 1 << 60),
            mem,
            net: Network::new(topo, NocConfig::paper_default()),
            queue: EventQueue::new(),
            os: OsLite::new(0x10_0000, 0x1000_0000),
            prog: assemble(src).expect("assembles"),
            now: Time::ZERO,
        };
        // Pre-map the stack and one scratch data page the tests use.
        for va in [abi::stack_top(0) & !0xFFF, 0x4000_0000] {
            for w in rig.os.map_page(VirtAddr(va)) {
                rig.mem.backdoor_write(w.addr, &w.value.to_le_bytes());
            }
        }
        let cr3 = rig.os.cr3();
        rig.core
            .start_thread(Time::ZERO, rig.prog.entry("main"), 0, 0, cr3, usize::MAX);
        rig
    }

    /// Runs to thread exit; panics on anything unexpected.
    fn run(&mut self) -> Time {
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 1_000_000, "runaway test");
            let action = {
                let mut log = PortLog::new();
                let a = self.core.run_batch(
                    self.now,
                    &self.prog,
                    &mut self.mem.core_port(PortId(0), &mut log),
                );
                let q = &mut self.queue;
                let mut sched = |t: Time, e: MemEvent| q.push(t, e);
                log.replay(&mut self.net, &mut sched);
                a
            };
            match action {
                CpuAction::Exited => return self.core.local_time(),
                CpuAction::Continue { .. } => {}
                CpuAction::Blocked => {
                    let (t, ev) = self.queue.pop().expect("blocked with empty queue");
                    self.now = t;
                    let mut done = Vec::new();
                    {
                        let q = &mut self.queue;
                        let mut sched = |at: Time, e: MemEvent| q.push(at, e);
                        self.mem.handle(t, &mut self.net, &mut sched, ev, &mut done);
                    }
                    for c in done {
                        self.core.on_completion(self.now, c.token, c.value);
                    }
                }
                CpuAction::PageFault { va } => {
                    // Inline OS: map and retry (timing shortcut for the rig;
                    // the real machine issues the PTE stores coherently).
                    for w in self.os.map_page(va) {
                        self.mem
                            .backdoor_write_coherent(w.addr, &w.value.to_le_bytes());
                    }
                    self.core.fault_resolved(self.now);
                }
                CpuAction::Syscall => panic!("rig programs don't use syscalls"),
                CpuAction::Idle => panic!("idle while expecting work"),
                CpuAction::Poisoned => panic!("unexpected ECC poison in test"),
            }
        }
    }
}

#[test]
fn alu_loop_timing_matches_ipc() {
    // 1000 iterations x 4 instructions + prologue-ish; max IPC 0.5 at
    // 2.9 GHz means ~2 cycles (690 ps) per instruction.
    let src = "main:
        li r8, 0
        li r9, 0
    loop:
        add r8, r8, 2
        add r9, r9, 1
        li r10, 1000
        blt r9, r10, loop
        mv r1, r8
        exit";
    let mut rig = Rig::new(src, CpuConfig::paper_ccsvm());
    let t = rig.run();
    assert_eq!(rig.core.reg(1), 2000);
    let instrs = 3 + 4 * 1000 + 2;
    let expect = Time::from_ps(instrs * 690);
    let slack = Time::from_ps(expect.as_ps() / 10);
    assert!(
        t >= expect.saturating_sub(slack) && t <= expect + slack,
        "time {t} vs expected ~{expect}"
    );
}

#[test]
fn ipc4_core_is_8x_faster_on_alu() {
    let src = "main:
        li r8, 0
    loop:
        add r8, r8, 1
        li r10, 5000
        blt r8, r10, loop
        exit";
    let slow = Rig::new(src, CpuConfig::paper_ccsvm()).run();
    let fast = Rig::new(src, CpuConfig::paper_apu()).run();
    let ratio = slow.as_ps() as f64 / fast.as_ps() as f64;
    assert!((6.0..10.0).contains(&ratio), "IPC 0.5 vs 4 ratio {ratio}");
}

#[test]
fn loads_and_stores_roundtrip_through_translation() {
    let src = "main:
        li r8, 0x40000000
        li r9, 77
        st8 r9, 0(r8)
        ld8 r1, 0(r8)
        st4 r9, 16(r8)
        ld2 r2, 16(r8)
        exit";
    let mut rig = Rig::new(src, CpuConfig::paper_ccsvm());
    rig.run();
    assert_eq!(rig.core.reg(1), 77);
    assert_eq!(rig.core.reg(2), 77);
    let stats = rig.core.stats();
    assert!(stats.get("tlb_walks") >= 1.0, "data page needed a walk");
    assert_eq!(stats.get("page_faults"), 0.0, "page was pre-mapped");
}

#[test]
fn page_fault_fires_on_unmapped_page_and_retries() {
    let src = "main:
        li r8, 0x50000000   ; unmapped
        li r9, 5
        st8 r9, 0(r8)
        ld8 r1, 0(r8)
        exit";
    let mut rig = Rig::new(src, CpuConfig::paper_ccsvm());
    rig.run();
    assert_eq!(rig.core.reg(1), 5);
    assert!(rig.core.stats().get("page_faults") >= 1.0);
}

#[test]
fn tlb_hit_after_first_access() {
    let src = "main:
        li r8, 0x40000000
        li r9, 0
    loop:
        st8 r9, 0(r8)
        add r9, r9, 1
        li r10, 50
        blt r9, r10, loop
        exit";
    let mut rig = Rig::new(src, CpuConfig::paper_ccsvm());
    rig.run();
    let s = rig.core.stats();
    assert_eq!(s.get("tlb_walks"), 1.0, "one walk, then 49 TLB hits");
    assert!(s.get("tlb.hits") >= 49.0);
}

#[test]
fn atomics_execute_at_l1() {
    let src = "main:
        li r8, 0x40000000
        li r9, 10
        st8 r9, 0(r8)
        amoadd r1, (r8), r9
        amoinc r2, (r8)
        ld8 r3, 0(r8)
        exit";
    let mut rig = Rig::new(src, CpuConfig::paper_ccsvm());
    rig.run();
    assert_eq!(rig.core.reg(1), 10);
    assert_eq!(rig.core.reg(2), 20);
    assert_eq!(rig.core.reg(3), 21);
}

#[test]
fn misses_cost_more_than_hits() {
    // Stride through 64 distinct lines (all misses) vs hammer one line.
    let strided = "main:
        li r8, 0x40000000
        li r9, 0
    loop:
        ld8 r10, 0(r8)
        add r8, r8, 64
        add r9, r9, 1
        li r11, 48
        blt r9, r11, loop
        exit";
    let hot = "main:
        li r8, 0x40000000
        li r9, 0
    loop:
        ld8 r10, 0(r8)
        add r9, r9, 1
        li r11, 48
        blt r9, r11, loop
        exit";
    let t_strided = Rig::new(strided, CpuConfig::paper_ccsvm()).run();
    let t_hot = Rig::new(hot, CpuConfig::paper_ccsvm()).run();
    assert!(
        t_strided.as_ps() > t_hot.as_ps() * 2,
        "misses {t_strided} vs hits {t_hot}"
    );
}
