//! APU baseline end-to-end: the decomposition behaves like §2.3 says it
//! should, and results stay correct.

use ccsvm_apu::{run_cpu, run_offload, ApuConfig, OffloadShape};
use ccsvm_engine::Time;
use ccsvm_workloads as wl;

fn small_cfg() -> ApuConfig {
    let mut c = ApuConfig::paper_scaled();
    // Shrink the chips for test speed.
    c.cpu_chip.n_mttops = 1;
    c.gpu_chip.n_mttops = 4;
    c.gpu_chip.max_sim_time = Time::from_ms(2_000);
    c.cpu_chip.max_sim_time = Time::from_ms(2_000);
    c
}

#[test]
fn offload_result_is_correct_and_decomposed() {
    let cfg = small_cfg();
    let p = wl::matmul::MatmulParams {
        n: 8,
        max_threads: 64,
        seed: 3,
    };
    let shape = OffloadShape {
        buffer_bytes: 3 * 8 * 8 * 8,
        launches: 1,
    };
    let r = run_offload(&cfg, &wl::matmul::xthreads_source(&p), shape);
    assert_eq!(r.exit_code, wl::matmul::reference_checksum(&p));
    assert_eq!(
        r.total,
        r.total_no_init + r.init_time + r.compile_time,
        "decomposition adds up"
    );
    assert_eq!(r.total_no_init, r.kernel_time + r.dma_time + r.driver_time);
    assert!(r.total_no_init < r.total);
    assert!(r.dram_accesses > 0);
}

#[test]
fn cpu_baseline_is_faster_than_ccsvm_cpu() {
    // The APU's out-of-order CPU (max IPC 4) must beat the CCSVM chip's
    // in-order core (max IPC 0.5) on the same program — the paper's
    // deliberately conservative stacking (§5.1).
    let p = wl::matmul::MatmulParams {
        n: 16,
        max_threads: 64,
        seed: 3,
    };
    let src = wl::matmul::cpu_source(&p);
    let (apu_t, _, apu_code) = run_cpu(&small_cfg(), &src);

    let mut ccsvm_cfg = ccsvm::SystemConfig::paper_default();
    ccsvm_cfg.n_mttops = 1;
    let mut m = ccsvm::Machine::new(ccsvm_cfg, wl::build(&src));
    let r = m.run();
    let ccsvm_t = wl::region_time(&r.printed, &r.printed_at, r.time);

    assert_eq!(apu_code, r.exit_code);
    assert!(
        apu_t < ccsvm_t,
        "APU CPU {apu_t} should beat CCSVM CPU {ccsvm_t}"
    );
}

#[test]
fn per_iteration_launches_hurt_apsp_style_workloads() {
    // Figure 6's mechanism: the same kernel with N launches pays N driver
    // overheads on the APU.
    let cfg = small_cfg();
    let p = wl::matmul::MatmulParams {
        n: 8,
        max_threads: 64,
        seed: 3,
    };
    let src = wl::matmul::xthreads_source(&p);
    let one = run_offload(
        &cfg,
        &src,
        OffloadShape {
            buffer_bytes: 1024,
            launches: 1,
        },
    );
    let many = run_offload(
        &cfg,
        &src,
        OffloadShape {
            buffer_bytes: 1024,
            launches: 64,
        },
    );
    let delta = many.total_no_init.saturating_sub(one.total_no_init);
    let expect = Time::from_ps(cfg.launch_overhead.as_ps() * 63);
    assert_eq!(delta, expect);
}
