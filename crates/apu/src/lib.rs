//! The loosely-coupled APU baseline (paper §2.3, §5.1: AMD A8-3850 "Llano"
//! running OpenCL).
//!
//! The paper compares its simulated CCSVM chip against *real* Llano hardware.
//! This crate models that baseline as the sum of the behaviours that make
//! loose coupling slow, per §2.3:
//!
//! * **Separate address spaces**: CPU and GPU communicate only through
//!   DRAM-staged DMA of pinned buffers — every offload pays
//!   `2 × (latency + bytes/bandwidth)` and the corresponding DRAM traffic
//!   (this is the Figure 9 gap).
//! * **Driver-mediated launches**: each `clEnqueueNDRangeKernel` +
//!   completion sync costs a fixed driver overhead — so per-iteration
//!   barriers (APSP) become per-iteration relaunches (Figure 6).
//! * **One-time OpenCL costs**: `clBuildProgram` JIT compilation and
//!   platform/context/queue initialization. The paper reports APU runtimes
//!   both with and without these (Figure 5's two APU series).
//! * **Raw-throughput advantage**: the Radeon's VLIW-4 cores reach up to 4×
//!   the CCSVM MTTOP's operations per cycle (Table 2); kernel *execution* is
//!   simulated on a chip whose MTTOP cores are configured with
//!   `vliw_ops_per_lane = 4`. Its CPU cores run at max IPC 4 (out-of-order).
//!
//! Kernel execution and the CPU-only baseline are **simulated** (same
//! component library as the CCSVM chip); the driver/DMA costs are modeled
//! constants, scaled for the simulable problem sizes and documented in
//! EXPERIMENTS.md. We cannot run the authors' 2011 hardware; what the
//! paper's comparison needs is the overhead *structure*, which this
//! preserves.

use ccsvm::{Machine, SystemConfig};
use ccsvm_engine::Time;
use ccsvm_workload_shim::{region_dram, region_time};

/// `region_time` lives in `ccsvm-workloads`, which depends on this crate's
/// dev targets; a tiny local copy avoids a dependency cycle.
mod ccsvm_workload_shim {
    use ccsvm_engine::Time;

    pub fn region_time(printed: &[String], printed_at: &[Time], full: Time) -> Time {
        const MARK_START: i64 = -7_000_001;
        const MARK_END: i64 = -7_000_002;
        let s = printed.iter().position(|x| x == &MARK_START.to_string());
        let e = printed.iter().position(|x| x == &MARK_END.to_string());
        match (s, e) {
            (Some(s), Some(e)) if e > s => printed_at[e] - printed_at[s],
            _ => full,
        }
    }

    pub fn region_dram(printed: &[String], dram_at_print: &[u64], total: u64) -> u64 {
        const MARK_START: i64 = -7_000_001;
        const MARK_END: i64 = -7_000_002;
        let s = printed.iter().position(|x| x == &MARK_START.to_string());
        let e = printed.iter().position(|x| x == &MARK_END.to_string());
        match (s, e) {
            (Some(s), Some(e)) if e > s => dram_at_print[e] - dram_at_print[s],
            _ => total,
        }
    }
}

/// APU model parameters. See [`ApuConfig::paper_scaled`].
#[derive(Clone, Debug)]
pub struct ApuConfig {
    /// `clBuildProgram` JIT compilation (one-time).
    pub compile_time: Time,
    /// Platform/context/queue/buffer initialization (one-time).
    pub init_time: Time,
    /// Per-kernel-launch driver overhead including completion sync.
    pub launch_overhead: Time,
    /// Per-DMA-transfer setup latency.
    pub dma_latency: Time,
    /// DMA staging bandwidth in bytes/ns.
    pub dma_bytes_per_ns: f64,
    /// The APU's CPU subsystem (max IPC 4, 72 ns DRAM).
    pub cpu_chip: SystemConfig,
    /// The APU's GPU subsystem (VLIW-4 MTTOP cores).
    pub gpu_chip: SystemConfig,
}

impl ApuConfig {
    /// Constants scaled for the simulable problem range (the paper sweeps to
    /// 1024×1024; we sweep to 128–256, so the one-time costs are scaled by
    /// ~1/10 to keep the Figure 5 crossover structure inside the measured
    /// range — see EXPERIMENTS.md for the calibration table).
    pub fn paper_scaled() -> ApuConfig {
        let mut cpu_chip = SystemConfig::paper_default();
        cpu_chip.cpu = ccsvm_cpu::CpuConfig::paper_apu();
        cpu_chip.cpu_l1_hit = Time::from_ps(345); // 1 ns-class L1 (Table 2)
        cpu_chip.dram.latency = Time::from_ns(72); // Table 2 APU DRAM
        cpu_chip.n_mttops = 1; // present but unused (the torus needs ≥1)

        let mut gpu_chip = SystemConfig::paper_default();
        // The Radeon is a lockstep VLIW SIMD machine, unlike the CCSVM
        // MTTOP's fine-grained scheduling.
        gpu_chip.mttop = ccsvm_mttop::MttopConfig::apu_gpu(0);
        gpu_chip.dram.latency = Time::from_ns(72);
        // The GPU-side host core also runs at APU speed (it only launches
        // and waits; its speed barely matters).
        gpu_chip.cpu = ccsvm_cpu::CpuConfig::paper_apu();

        ApuConfig {
            compile_time: Time::from_ms(10),
            init_time: Time::from_ms(5),
            launch_overhead: Time::from_us(100),
            dma_latency: Time::from_us(10),
            dma_bytes_per_ns: 6.0, // Llano-class pinned-memory staging
            cpu_chip,
            gpu_chip,
        }
    }
}

/// What an offload moves and launches.
#[derive(Clone, Copy, Debug)]
pub struct OffloadShape {
    /// Total bytes staged to the GPU plus staged back (all buffers).
    pub buffer_bytes: u64,
    /// Kernel launches the OpenCL host performs (APSP: one per outer
    /// iteration; matmul: one).
    pub launches: u64,
}

/// The modeled APU run, decomposed the way the paper reports it.
#[derive(Clone, Debug)]
pub struct ApuReport {
    /// Simulated kernel execution (on the VLIW GPU chip).
    pub kernel_time: Time,
    /// DMA staging time (both directions).
    pub dma_time: Time,
    /// Driver launch/sync overhead (`launches × launch_overhead`).
    pub driver_time: Time,
    /// One-time initialization.
    pub init_time: Time,
    /// One-time JIT compilation.
    pub compile_time: Time,
    /// Full runtime (everything) — Figure 5's "APU" series.
    pub total: Time,
    /// Runtime without compilation and initialization — Figure 5's second
    /// APU series.
    pub total_no_init: Time,
    /// Off-chip accesses: GPU-side demand traffic + DMA staging blocks.
    pub dram_accesses: u64,
    /// Kernel result checksum (validation).
    pub exit_code: u64,
}

/// Runs an offloaded workload on the APU model: the xthreads program's
/// kernel region executes on the VLIW GPU chip; DMA/driver/setup costs are
/// added per `shape`.
///
/// # Panics
///
/// Panics if the program fails to compile or the simulation deadlocks.
pub fn run_offload(cfg: &ApuConfig, xthreads_src: &str, shape: OffloadShape) -> ApuReport {
    let prog = ccsvm_xthreads::build(xthreads_src)
        .unwrap_or_else(|e| panic!("APU kernel program failed to compile: {e}"));
    let mut m = Machine::new(cfg.gpu_chip.clone(), prog);
    let r = m.run();
    let kernel_time = region_time(&r.printed, &r.printed_at, r.time);
    let kernel_dram = region_dram(&r.printed, &r.dram_at_print, r.dram_accesses);

    let xfer =
        Time::from_ps((shape.buffer_bytes as f64 * 1_000.0 / cfg.dma_bytes_per_ns).ceil() as u64);
    let dma_time = cfg.dma_latency + xfer + cfg.dma_latency + xfer; // in + out
    let driver_time = Time::from_ps(cfg.launch_overhead.as_ps() * shape.launches);
    let total_no_init = kernel_time + dma_time + driver_time;
    let total = total_no_init + cfg.init_time + cfg.compile_time;
    // Staging writes the pinned region and the GPU reads it (and vice versa
    // for results): 2 DRAM accesses per staged block, both directions.
    let dma_blocks = 2 * shape.buffer_bytes.div_ceil(64) * 2;
    ApuReport {
        kernel_time,
        dma_time,
        driver_time,
        init_time: cfg.init_time,
        compile_time: cfg.compile_time,
        total,
        total_no_init,
        dram_accesses: kernel_dram + dma_blocks,
        exit_code: r.exit_code,
    }
}

/// Runs a CPU-only program on the APU's CPU subsystem (the "AMD CPU"
/// denominator of Figures 5–8). Returns (measured region, DRAM accesses,
/// exit code).
///
/// # Panics
///
/// Panics if the program fails to compile or the simulation deadlocks.
pub fn run_cpu(cfg: &ApuConfig, cpu_src: &str) -> (Time, u64, u64) {
    let prog = ccsvm_xthreads::build(cpu_src)
        .unwrap_or_else(|e| panic!("APU CPU program failed to compile: {e}"));
    let mut m = Machine::new(cfg.cpu_chip.clone(), prog);
    let r = m.run();
    let t = region_time(&r.printed, &r.printed_at, r.time);
    let d = region_dram(&r.printed, &r.dram_at_print, r.dram_accesses);
    (t, d, r.exit_code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scaled_is_consistent() {
        let c = ApuConfig::paper_scaled();
        assert_eq!(c.cpu_chip.cpu.cycles_per_instr_den, 4, "max IPC 4");
        assert_eq!(c.gpu_chip.mttop.vliw_ops_per_lane, 4, "VLIW 4");
        assert_eq!(c.cpu_chip.dram.latency, Time::from_ns(72));
        assert!(c.compile_time > c.launch_overhead);
    }

    #[test]
    fn dma_time_scales_with_bytes() {
        let cfg = ApuConfig::paper_scaled();
        let small = OffloadShape {
            buffer_bytes: 64,
            launches: 1,
        };
        let big = OffloadShape {
            buffer_bytes: 1 << 20,
            launches: 1,
        };
        let xfer = |s: OffloadShape| {
            Time::from_ps((s.buffer_bytes as f64 * 1000.0 / cfg.dma_bytes_per_ns).ceil() as u64)
        };
        assert!(xfer(big) > xfer(small));
    }
}
