//! Online invariant checking ("coherence sanitizer") support types.
//!
//! The paper's results are only meaningful if the modeled memory system
//! actually preserves the coherence and SVM invariants it claims (§3.2.2:
//! single-writer/multiple-reader, the data-value invariant). The sanitizer is
//! an opt-in check layer threaded through `mem`, `noc` and `vm` that verifies
//! those invariants *online*, at event granularity, and turns the first
//! violation into a typed, replayable failure instead of silent figure skew.
//!
//! This module holds the shared vocabulary:
//!
//! * [`InvariantId`] — stable identifiers for every checked invariant (the
//!   full catalogue, with statements and cost classes, lives in DESIGN.md §9).
//! * [`Violation`] — one detected violation: which invariant, at which cycle,
//!   with a human-readable detail string.
//! * [`SanitizerConfig`] — the toggle, the uncore-event ring capacity, and
//!   the test-only protocol [`Mutation`] used to prove the checker fires.
//! * [`EvRing`] — a bounded ring buffer of recent uncore events, captured
//!   into replay bundles for post-mortem triage.
//!
//! Determinism contract: checks are read-only. Enabling the sanitizer must
//! not change event order, statistics, RNG draws, or any other simulated
//! state — a sanitizer-on run produces a bit-identical `RunReport` to a
//! sanitizer-off run (enforced by `core/tests/sanitizer.rs`).

use std::fmt;

use ccsvm_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::time::Time;

/// Stable identifier of one checked invariant. The string forms (via
/// [`InvariantId::as_str`]) are part of the replay-bundle format and the
/// test contract; never renumber or rename existing entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantId {
    /// At most one L1 holds a block writable (M/E); a writable copy excludes
    /// all other valid copies (single-writer/multiple-reader).
    MemSwmr,
    /// Every valid L1 copy is accounted for by the directory (as owner or
    /// sharer) or by an active transaction on the block.
    MemDirAgree,
    /// All valid copies of a block agree on its data; clean copies match the
    /// L2 backing value.
    MemDataValue,
    /// A delivered coherence response matches an expectation the directory
    /// actually holds (no spurious or duplicated responses in strict mode).
    MemMsgConserve,
    /// Uncore message conservation: every event sent is delivered, sanctioned
    /// by the fault plan, or still in flight — nothing lost or duplicated.
    NocConserve,
    /// Every TLB entry maps a page consistently with the OS page tables.
    VmTlbPt,
    /// After a shootdown (IPI/flush delivered, acks collected) no TLB retains
    /// the invalidated translation.
    VmStaleShoot,
}

impl InvariantId {
    /// All invariants, in catalogue order (DESIGN.md §9).
    pub const ALL: [InvariantId; 7] = [
        InvariantId::MemSwmr,
        InvariantId::MemDirAgree,
        InvariantId::MemDataValue,
        InvariantId::MemMsgConserve,
        InvariantId::NocConserve,
        InvariantId::VmTlbPt,
        InvariantId::VmStaleShoot,
    ];

    /// The stable string form used in diagnostics, bundles, and tests.
    pub fn as_str(self) -> &'static str {
        match self {
            InvariantId::MemSwmr => "MEM-SWMR",
            InvariantId::MemDirAgree => "MEM-DIR-AGREE",
            InvariantId::MemDataValue => "MEM-DATA-VALUE",
            InvariantId::MemMsgConserve => "MEM-MSG-CONSERVE",
            InvariantId::NocConserve => "NOC-CONSERVE",
            InvariantId::VmTlbPt => "VM-TLB-PT",
            InvariantId::VmStaleShoot => "VM-STALE-SHOOT",
        }
    }

    fn snap_tag(self) -> u8 {
        match self {
            InvariantId::MemSwmr => 0,
            InvariantId::MemDirAgree => 1,
            InvariantId::MemDataValue => 2,
            InvariantId::MemMsgConserve => 3,
            InvariantId::NocConserve => 4,
            InvariantId::VmTlbPt => 5,
            InvariantId::VmStaleShoot => 6,
        }
    }

    fn from_snap_tag(tag: u8) -> Result<InvariantId, SnapError> {
        Ok(match tag {
            0 => InvariantId::MemSwmr,
            1 => InvariantId::MemDirAgree,
            2 => InvariantId::MemDataValue,
            3 => InvariantId::MemMsgConserve,
            4 => InvariantId::NocConserve,
            5 => InvariantId::VmTlbPt,
            6 => InvariantId::VmStaleShoot,
            t => {
                return Err(SnapError::Corrupt {
                    what: format!("unknown InvariantId tag {t:#04x}"),
                })
            }
        })
    }
}

impl fmt::Display for InvariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A set of [`InvariantId`]s. Coherence protocols declare which sanitizer
/// invariants they uphold (DESIGN.md §13): SWMR is an invariant of
/// invalidation protocols but explicitly *not* of a write-update protocol
/// like Dragon, and only the directory protocol keeps directory state for
/// `MEM-DIR-AGREE` to check. The checker consults the active protocol's mask
/// instead of being silently disabled wholesale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvariantMask(u32);

impl InvariantMask {
    /// The empty set.
    pub const EMPTY: InvariantMask = InvariantMask(0);

    /// Every invariant in the catalogue.
    pub fn all() -> InvariantMask {
        InvariantId::ALL
            .iter()
            .fold(InvariantMask::EMPTY, |m, &id| m.with(id))
    }

    /// A mask holding exactly `ids`.
    pub fn of(ids: &[InvariantId]) -> InvariantMask {
        ids.iter().fold(InvariantMask::EMPTY, |m, &id| m.with(id))
    }

    /// `self` plus `id`.
    pub fn with(self, id: InvariantId) -> InvariantMask {
        InvariantMask(self.0 | 1 << id.snap_tag())
    }

    /// `self` minus `id`.
    pub fn without(self, id: InvariantId) -> InvariantMask {
        InvariantMask(self.0 & !(1 << id.snap_tag()))
    }

    /// Whether `id` is in the set.
    pub fn contains(self, id: InvariantId) -> bool {
        self.0 & 1 << id.snap_tag() != 0
    }

    /// The members, in catalogue order.
    pub fn ids(self) -> Vec<InvariantId> {
        InvariantId::ALL
            .into_iter()
            .filter(|&id| self.contains(id))
            .collect()
    }
}

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: InvariantId,
    /// Simulated time at which the violation was detected.
    pub at: Time,
    /// Human-readable description of the failing state.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.invariant, self.at, self.detail)
    }
}

impl Snapshot for Violation {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(self.invariant.snap_tag());
        w.put_u64(self.at.as_ps());
        w.put_str(&self.detail);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.invariant = InvariantId::from_snap_tag(r.get_u8()?)?;
        self.at = Time::from_ps(r.get_u64()?);
        self.detail = r.get_str()?.to_string();
        Ok(())
    }
}

impl Default for Violation {
    fn default() -> Self {
        Violation {
            invariant: InvariantId::MemSwmr,
            at: Time::ZERO,
            detail: String::new(),
        }
    }
}

/// A deliberate, test-only protocol corruption. Each kind targets a specific
/// invariant; `core/tests/sanitizer.rs` applies every kind and asserts the
/// sanitizer reports the matching [`InvariantId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Erase the directory's owner registration for the block of the n-th
    /// data delivery (⇒ `MEM-DIR-AGREE`).
    CorruptDirOwner,
    /// Upgrade the n-th shared-grant data delivery to a modified grant,
    /// creating a second writable copy (⇒ `MEM-SWMR`).
    CorruptGrant,
    /// Flip one payload byte of the n-th shared-grant data delivery
    /// (⇒ `MEM-DATA-VALUE`).
    CorruptFillData,
    /// Re-deliver the n-th L1→directory response a second time
    /// (⇒ `MEM-MSG-CONSERVE`).
    DuplicateResp,
    /// Silently discard the n-th L1→directory response — an unsanctioned
    /// message loss (⇒ `NOC-CONSERVE`, surfaced at the watchdog abort).
    DropResp,
    /// Skip the TLB invalidation of the n-th shootdown IPI while still
    /// acknowledging it (⇒ `VM-STALE-SHOOT`).
    SkipTlbInvalidate,
    /// Corrupt the frame of a live CPU TLB entry at the n-th uncore event
    /// (⇒ `VM-TLB-PT`).
    CorruptTlbEntry,
    /// Clear the `had` flag of the n-th shared snoop response, making the
    /// ordering point grant exclusive while a sharer survives — only
    /// meaningful under the snooping protocols (⇒ `MEM-SWMR`).
    CorruptSnoopShared,
    /// Flip the payload of the n-th write-update delivery so one sharer
    /// applies a different value than the writer — only meaningful under the
    /// Dragon protocol (⇒ `MEM-DATA-VALUE`).
    CorruptUpdValue,
    /// Corrupt the epoch bookkeeping of the n-th timed-out snoop/update
    /// solicitation round so the ordering point abandons one still-pending
    /// probe and completes the round without its answer — only meaningful
    /// under the snooping protocols with recovery armed (⇒ `MEM-SWMR` /
    /// `MEM-DATA-VALUE`, depending on what the abandoned port held).
    CorruptResendEpoch,
}

impl MutationKind {
    fn snap_tag(self) -> u8 {
        match self {
            MutationKind::CorruptDirOwner => 0,
            MutationKind::CorruptGrant => 1,
            MutationKind::CorruptFillData => 2,
            MutationKind::DuplicateResp => 3,
            MutationKind::DropResp => 4,
            MutationKind::SkipTlbInvalidate => 5,
            MutationKind::CorruptTlbEntry => 6,
            MutationKind::CorruptSnoopShared => 7,
            MutationKind::CorruptUpdValue => 8,
            MutationKind::CorruptResendEpoch => 9,
        }
    }

    fn from_snap_tag(tag: u8) -> Result<MutationKind, SnapError> {
        Ok(match tag {
            0 => MutationKind::CorruptDirOwner,
            1 => MutationKind::CorruptGrant,
            2 => MutationKind::CorruptFillData,
            3 => MutationKind::DuplicateResp,
            4 => MutationKind::DropResp,
            5 => MutationKind::SkipTlbInvalidate,
            6 => MutationKind::CorruptTlbEntry,
            7 => MutationKind::CorruptSnoopShared,
            8 => MutationKind::CorruptUpdValue,
            9 => MutationKind::CorruptResendEpoch,
            t => {
                return Err(SnapError::Corrupt {
                    what: format!("unknown MutationKind tag {t:#04x}"),
                })
            }
        })
    }
}

/// A seeded protocol corruption: apply `kind` to the `nth` (1-based)
/// matching event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mutation {
    /// What to corrupt.
    pub kind: MutationKind,
    /// Which matching event to corrupt (1-based).
    pub nth: u64,
}

/// Sanitizer knobs. `Default` is production: checks off, no mutation, a
/// 256-entry event ring (only populated while checks are on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Master toggle for online invariant checks.
    pub enabled: bool,
    /// Capacity of the recent-uncore-event ring captured into replay bundles.
    pub ring_capacity: usize,
    /// Test-only protocol corruption. Unlike `enabled`, a mutation *changes
    /// the simulation* and therefore participates in the config hash.
    pub mutate: Option<Mutation>,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            enabled: false,
            ring_capacity: 256,
            mutate: None,
        }
    }
}

impl Snapshot for SanitizerConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bool(self.enabled);
        w.put_usize(self.ring_capacity);
        match self.mutate {
            Some(m) => {
                w.put_bool(true);
                w.put_u8(m.kind.snap_tag());
                w.put_u64(m.nth);
            }
            None => w.put_bool(false),
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.enabled = r.get_bool()?;
        self.ring_capacity = r.get_usize()?;
        self.mutate = if r.get_bool()? {
            Some(Mutation {
                kind: MutationKind::from_snap_tag(r.get_u8()?)?,
                nth: r.get_u64()?,
            })
        } else {
            None
        };
        Ok(())
    }
}

/// One recorded uncore event: a compact, formatting-free summary. The kind
/// byte and operand meanings are assigned by the machine layer (see
/// `ccsvm::ring_kind_name`); the engine only stores and replays them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvRecord {
    /// Monotone sequence number (total events recorded so far).
    pub seq: u64,
    /// Simulated time of the event, in picoseconds.
    pub at_ps: u64,
    /// Machine-assigned kind code.
    pub kind: u8,
    /// First operand (usually the block or virtual address).
    pub a: u64,
    /// Second operand (usually the port or core index).
    pub b: u64,
}

impl Snapshot for EvRecord {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.seq);
        w.put_u64(self.at_ps);
        w.put_u8(self.kind);
        w.put_u64(self.a);
        w.put_u64(self.b);
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.seq = r.get_u64()?;
        self.at_ps = r.get_u64()?;
        self.kind = r.get_u8()?;
        self.a = r.get_u64()?;
        self.b = r.get_u64()?;
        Ok(())
    }
}

/// A bounded ring of the most recent [`EvRecord`]s. Recording is O(1) and
/// allocation-free after the first wrap; the ring is deliberately *not* part
/// of machine snapshots (triage re-runs rebuild it deterministically).
#[derive(Clone, Debug, Default)]
pub struct EvRing {
    cap: usize,
    seq: u64,
    buf: Vec<EvRecord>,
    /// Index of the oldest record once the buffer has wrapped.
    head: usize,
}

impl EvRing {
    /// A ring holding at most `cap` records (`cap == 0` disables recording).
    pub fn new(cap: usize) -> EvRing {
        EvRing {
            cap,
            seq: 0,
            buf: Vec::new(),
            head: 0,
        }
    }

    /// Records one event summary.
    pub fn record(&mut self, at: Time, kind: u8, a: u64, b: u64) {
        if self.cap == 0 {
            return;
        }
        let rec = EvRecord {
            seq: self.seq,
            at_ps: at.as_ps(),
            kind,
            a,
            b,
        };
        self.seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Total events ever recorded (not just retained).
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<EvRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Uncore message-conservation verdict: given end-of-run accounting, decide
/// whether every sent event is delivered, fault-sanctioned, or still queued.
/// Returns the violation detail on mismatch.
pub fn check_conservation(
    sent: u64,
    delivered: u64,
    sanctioned: u64,
    in_flight: u64,
) -> Option<String> {
    let accounted = delivered + sanctioned + in_flight;
    if accounted == sent {
        return None;
    }
    if accounted < sent {
        Some(format!(
            "{} uncore event(s) lost without fault-plan sanction \
             (sent {sent}, delivered {delivered}, sanctioned {sanctioned}, in flight {in_flight})",
            sent - accounted
        ))
    } else {
        Some(format!(
            "{} uncore event(s) duplicated \
             (sent {sent}, delivered {delivered}, sanctioned {sanctioned}, in flight {in_flight})",
            accounted - sent
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariant_ids_round_trip_and_are_unique() {
        let mut seen = Vec::new();
        for id in InvariantId::ALL {
            assert_eq!(InvariantId::from_snap_tag(id.snap_tag()).unwrap(), id);
            assert!(!seen.contains(&id.as_str()), "duplicate id string");
            seen.push(id.as_str());
        }
        assert!(InvariantId::from_snap_tag(200).is_err());
    }

    #[test]
    fn invariant_mask_set_ops() {
        let all = InvariantMask::all();
        for id in InvariantId::ALL {
            assert!(all.contains(id));
            assert!(!InvariantMask::EMPTY.contains(id));
        }
        let no_swmr = all.without(InvariantId::MemSwmr);
        assert!(!no_swmr.contains(InvariantId::MemSwmr));
        assert!(no_swmr.contains(InvariantId::MemDataValue));
        assert_eq!(no_swmr.with(InvariantId::MemSwmr), all);
        let pair = InvariantMask::of(&[InvariantId::NocConserve, InvariantId::VmTlbPt]);
        assert_eq!(
            pair.ids(),
            vec![InvariantId::NocConserve, InvariantId::VmTlbPt]
        );
    }

    #[test]
    fn violation_snapshot_round_trips() {
        let v = Violation {
            invariant: InvariantId::VmStaleShoot,
            at: Time::from_ns(123),
            detail: "stale va 0x4000 in cpu 1".to_string(),
        };
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.into_vec();
        let mut back = Violation::default();
        back.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn sanitizer_config_round_trips() {
        let cfg = SanitizerConfig {
            enabled: true,
            ring_capacity: 64,
            mutate: Some(Mutation {
                kind: MutationKind::DuplicateResp,
                nth: 3,
            }),
        };
        let mut w = SnapWriter::new();
        cfg.save(&mut w);
        let bytes = w.into_vec();
        let mut back = SanitizerConfig::default();
        back.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn ring_keeps_the_last_k_in_order() {
        let mut ring = EvRing::new(4);
        for i in 0..10u64 {
            ring.record(Time::from_ns(i), 1, i, 0);
        }
        let recs = ring.records();
        assert_eq!(ring.total(), 10);
        assert_eq!(recs.len(), 4);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        // Zero capacity records nothing.
        let mut off = EvRing::new(0);
        off.record(Time::ZERO, 1, 0, 0);
        assert_eq!(off.total(), 0);
        assert!(off.records().is_empty());
    }

    #[test]
    fn conservation_flags_loss_and_duplication() {
        assert_eq!(check_conservation(10, 8, 1, 1), None);
        let lost = check_conservation(10, 8, 0, 1).expect("loss detected");
        assert!(lost.contains("1 uncore event(s) lost"), "{lost}");
        let dup = check_conservation(10, 11, 0, 0).expect("dup detected");
        assert!(dup.contains("1 uncore event(s) duplicated"), "{dup}");
    }
}
