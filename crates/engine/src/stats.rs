//! Ordered name → value statistics tables for run reports.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered table of named statistics.
///
/// Components record counters here at the end of a run; the figure harnesses
/// and `RunReport`s print or post-process them. Keys are dotted paths such as
/// `"l2.bank0.misses"` so related counters sort together.
///
/// # Examples
///
/// ```
/// use ccsvm_engine::Stats;
/// let mut s = Stats::new();
/// s.add("dram.reads", 3.0);
/// s.add("dram.reads", 2.0);
/// assert_eq!(s.get("dram.reads"), 5.0);
/// assert_eq!(s.get("dram.writes"), 0.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    values: BTreeMap<String, f64>,
}

impl Stats {
    /// Creates an empty table.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Sets `key` to `value`, replacing any previous value.
    pub fn set(&mut self, key: impl Into<String>, value: f64) {
        self.values.insert(key.into(), value);
    }

    /// Adds `value` to `key` (missing keys start at zero).
    pub fn add(&mut self, key: impl Into<String>, value: f64) {
        *self.values.entry(key.into()).or_insert(0.0) += value;
    }

    /// The value for `key`, or `0.0` if absent.
    pub fn get(&self, key: &str) -> f64 {
        self.values.get(key).copied().unwrap_or(0.0)
    }

    /// Whether `key` has been recorded.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Merges every entry of `other` into `self` with a `prefix.` prepended,
    /// adding to any existing values.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Stats) {
        for (k, v) in &other.values {
            self.add(format!("{prefix}.{k}"), *v);
        }
    }

    /// Sum of all values whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        self.values
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.values.keys().map(|k| k.len()).max().unwrap_or(0);
        for (k, v) in &self.values {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                writeln!(f, "{k:width$}  {}", *v as i64)?;
            } else {
                writeln!(f, "{k:width$}  {v:.4}")?;
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Stats {
    type Item = (&'a str, f64);
    type IntoIter = std::vec::IntoIter<(&'a str, f64)>;
    fn into_iter(self) -> Self::IntoIter {
        self.values
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_add() {
        let mut s = Stats::new();
        assert!(s.is_empty());
        s.set("a", 1.0);
        s.add("a", 2.0);
        s.add("b", 4.0);
        assert_eq!(s.get("a"), 3.0);
        assert_eq!(s.get("b"), 4.0);
        assert_eq!(s.get("missing"), 0.0);
        assert!(s.contains("a"));
        assert!(!s.contains("missing"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_prefixed_accumulates() {
        let mut inner = Stats::new();
        inner.set("hits", 10.0);
        inner.set("misses", 2.0);
        let mut outer = Stats::new();
        outer.merge_prefixed("l1.0", &inner);
        outer.merge_prefixed("l1.0", &inner);
        assert_eq!(outer.get("l1.0.hits"), 20.0);
        assert_eq!(outer.get("l1.0.misses"), 4.0);
    }

    #[test]
    fn sum_prefix_sums_matching_keys() {
        let mut s = Stats::new();
        s.set("dram.reads", 5.0);
        s.set("dram.writes", 7.0);
        s.set("noc.flits", 100.0);
        assert_eq!(s.sum_prefix("dram."), 12.0);
        assert_eq!(s.sum_prefix("nope"), 0.0);
    }

    #[test]
    fn display_is_sorted_and_nonempty() {
        let mut s = Stats::new();
        s.set("b", 2.5);
        s.set("a", 1.0);
        let text = s.to_string();
        let a = text.find("a ").unwrap();
        let b = text.find("b ").unwrap();
        assert!(a < b);
        assert!(text.contains("2.5000"));
        assert!(text.contains('1'));
    }

    #[test]
    fn iter_matches_contents() {
        let mut s = Stats::new();
        s.set("x", 1.0);
        s.set("y", 2.0);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![("x", 1.0), ("y", 2.0)]);
        let v2: Vec<_> = (&s).into_iter().collect();
        assert_eq!(v, v2);
    }
}
