//! Ordered name → value statistics tables for run reports.
//!
//! Statistic names fall in two tiers:
//!
//! * **Interned** ([`StatId`], [`stat_id`]): component counters with
//!   `&'static str` names register once in a process-wide table and are
//!   recorded by dense index — [`Stats::add_id`]/[`Stats::set_id`] never
//!   allocate or hash strings.
//! * **Strings**: dynamically built names (`"l1.3.misses"`) live in an
//!   ordered map. The string API ([`Stats::set`], [`Stats::add`],
//!   [`Stats::get`]) is a compat layer: when a name happens to be
//!   registered it routes to the interned slot, so both APIs observe the
//!   same value.
//!
//! All read-side views (iteration, `Display`, equality) present the union
//! of both tiers sorted by name, so a table reads identically no matter
//! which API recorded it.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::fxmap::FxHashMap;

/// Handle to an interned statistic name (see [`stat_id`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StatId(u32);

impl StatId {
    /// The interned name.
    pub fn name(self) -> &'static str {
        registry().lock().expect("stat registry").names[self.0 as usize]
    }
}

struct Registry {
    names: Vec<&'static str>,
    by_name: FxHashMap<&'static str, u32>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            names: Vec::new(),
            by_name: FxHashMap::default(),
        })
    })
}

/// Interns `name`, returning its process-wide [`StatId`]. Idempotent: the
/// same name always yields the same id. Register ids once (in a
/// constructor or at first use) and record through them on hot paths;
/// recording by id neither allocates nor hashes.
pub fn stat_id(name: &'static str) -> StatId {
    let mut reg = registry().lock().expect("stat registry");
    if let Some(&id) = reg.by_name.get(name) {
        return StatId(id);
    }
    let id = u32::try_from(reg.names.len()).expect("stat id overflow");
    reg.names.push(name);
    reg.by_name.insert(name, id);
    StatId(id)
}

/// Looks up a registered id by name without interning; `None` if `name`
/// was never registered.
fn lookup_id(name: &str) -> Option<StatId> {
    registry()
        .lock()
        .expect("stat registry")
        .by_name
        .get(name)
        .map(|&id| StatId(id))
}

/// An ordered table of named statistics.
///
/// Components record counters here at the end of a run; the figure harnesses
/// and `RunReport`s print or post-process them. Keys are dotted paths such as
/// `"l2.bank0.misses"` so related counters sort together.
///
/// # Examples
///
/// ```
/// use ccsvm_engine::{stat_id, Stats};
/// let mut s = Stats::new();
/// s.add("dram.reads", 3.0);
/// s.add("dram.reads", 2.0);
/// assert_eq!(s.get("dram.reads"), 5.0);
/// assert_eq!(s.get("dram.writes"), 0.0);
///
/// // Interned ids: allocation-free recording, same view.
/// let id = stat_id("dram.refreshes");
/// s.add_id(id, 1.0);
/// assert_eq!(s.get("dram.refreshes"), 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Dynamically named entries.
    values: BTreeMap<String, f64>,
    /// Interned entries, indexed by [`StatId`]; `None` = never recorded.
    dense: Vec<Option<f64>>,
}

impl Stats {
    /// Creates an empty table.
    pub fn new() -> Stats {
        Stats::default()
    }

    fn dense_slot(&mut self, id: StatId) -> &mut Option<f64> {
        let idx = id.0 as usize;
        if idx >= self.dense.len() {
            self.dense.resize(idx + 1, None);
        }
        &mut self.dense[idx]
    }

    /// Sets the interned stat `id` to `value`. Never allocates once the
    /// dense table covers `id`.
    pub fn set_id(&mut self, id: StatId, value: f64) {
        *self.dense_slot(id) = Some(value);
    }

    /// Adds `value` to the interned stat `id` (missing entries start at
    /// zero). Never allocates once the dense table covers `id`.
    pub fn add_id(&mut self, id: StatId, value: f64) {
        let slot = self.dense_slot(id);
        *slot = Some(slot.unwrap_or(0.0) + value);
    }

    /// The value recorded for interned stat `id`, or `0.0` if absent.
    pub fn get_id(&self, id: StatId) -> f64 {
        self.dense
            .get(id.0 as usize)
            .copied()
            .flatten()
            .unwrap_or(0.0)
    }

    /// Sets `key` to `value`, replacing any previous value. Routes to the
    /// interned slot when `key` is a registered stat name.
    pub fn set(&mut self, key: impl Into<String> + AsRef<str>, value: f64) {
        if let Some(id) = lookup_id(key.as_ref()) {
            self.set_id(id, value);
        } else {
            self.values.insert(key.into(), value);
        }
    }

    /// Adds `value` to `key` (missing keys start at zero). Allocates only
    /// when inserting a new dynamically named key.
    pub fn add(&mut self, key: impl Into<String> + AsRef<str>, value: f64) {
        if let Some(id) = lookup_id(key.as_ref()) {
            self.add_id(id, value);
        } else if let Some(v) = self.values.get_mut(key.as_ref()) {
            *v += value;
        } else {
            self.values.insert(key.into(), value);
        }
    }

    /// The value for `key`, or `0.0` if absent.
    pub fn get(&self, key: &str) -> f64 {
        if let Some(v) = self.values.get(key) {
            return *v;
        }
        lookup_id(key).map_or(0.0, |id| self.get_id(id))
    }

    /// Whether `key` has been recorded.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
            || lookup_id(key)
                .and_then(|id| self.dense.get(id.0 as usize).copied().flatten())
                .is_some()
    }

    /// Merges every entry of `other` into `self` with a `prefix.` prepended,
    /// adding to any existing values. One reused name buffer; per-key heap
    /// traffic only when a prefixed key is new to `self`.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Stats) {
        let mut buf = String::with_capacity(prefix.len() + 24);
        let mut merge = |this: &mut Stats, name: &str, v: f64| {
            buf.clear();
            buf.push_str(prefix);
            buf.push('.');
            buf.push_str(name);
            if let Some(slot) = this.values.get_mut(buf.as_str()) {
                *slot += v;
            } else if let Some(id) = lookup_id(buf.as_str()) {
                this.add_id(id, v);
            } else {
                this.values.insert(buf.clone(), v);
            }
        };
        for (k, v) in &other.values {
            merge(self, k, *v);
        }
        for (idx, v) in other.dense.iter().enumerate() {
            if let Some(v) = *v {
                merge(self, StatId(idx as u32).name(), v);
            }
        }
    }

    /// Sum of all values whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        self.entries()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The union of both tiers, sorted by name. Entries recorded under the
    /// same name through both APIs (possible when a name is registered
    /// after a string write) are folded by addition.
    fn entries(&self) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = Vec::with_capacity(self.values.len() + self.dense.len());
        out.extend(self.values.iter().map(|(k, v)| (k.as_str(), *v)));
        for (idx, v) in self.dense.iter().enumerate() {
            if let Some(v) = *v {
                out.push((StatId(idx as u32).name(), v));
            }
        }
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out.dedup_by(|dup, keep| {
            let same = dup.0 == keep.0;
            if same {
                keep.1 += dup.1;
            }
            same
        });
        out
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries().into_iter()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty() && self.dense.iter().all(|v| v.is_none())
    }
}

/// Snapshots serialize the logical view — sorted `(name, value)` pairs —
/// because interned [`StatId`] indices depend on process-global
/// registration order and are not stable across binaries. Loading routes
/// each pair through [`Stats::set`], which re-interns registered names.
impl ccsvm_snap::Snapshot for Stats {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        let entries = self.entries();
        w.put_usize(entries.len());
        for (name, value) in entries {
            w.put_str(name);
            w.put_f64(value);
        }
    }
    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.values.clear();
        self.dense.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let name = r.get_str()?.to_string();
            let value = r.get_f64()?;
            self.set(name, value);
        }
        Ok(())
    }
}

/// Logical equality: same named entries with the same values, regardless
/// of which tier recorded them.
impl PartialEq for Stats {
    fn eq(&self, other: &Stats) -> bool {
        self.entries() == other.entries()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entries = self.entries();
        let width = entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (k, v) in entries {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                writeln!(f, "{k:width$}  {}", v as i64)?;
            } else {
                writeln!(f, "{k:width$}  {v:.4}")?;
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Stats {
    type Item = (&'a str, f64);
    type IntoIter = std::vec::IntoIter<(&'a str, f64)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_add() {
        let mut s = Stats::new();
        assert!(s.is_empty());
        s.set("a", 1.0);
        s.add("a", 2.0);
        s.add("b", 4.0);
        assert_eq!(s.get("a"), 3.0);
        assert_eq!(s.get("b"), 4.0);
        assert_eq!(s.get("missing"), 0.0);
        assert!(s.contains("a"));
        assert!(!s.contains("missing"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_prefixed_accumulates() {
        let mut inner = Stats::new();
        inner.set("hits", 10.0);
        inner.set("misses", 2.0);
        let mut outer = Stats::new();
        outer.merge_prefixed("l1.0", &inner);
        outer.merge_prefixed("l1.0", &inner);
        assert_eq!(outer.get("l1.0.hits"), 20.0);
        assert_eq!(outer.get("l1.0.misses"), 4.0);
    }

    #[test]
    fn sum_prefix_sums_matching_keys() {
        let mut s = Stats::new();
        s.set("dram.reads", 5.0);
        s.set("dram.writes", 7.0);
        s.set("noc.flits", 100.0);
        assert_eq!(s.sum_prefix("dram."), 12.0);
        assert_eq!(s.sum_prefix("nope"), 0.0);
    }

    #[test]
    fn display_is_sorted_and_nonempty() {
        let mut s = Stats::new();
        s.set("b", 2.5);
        s.set("a", 1.0);
        let text = s.to_string();
        let a = text.find("a ").unwrap();
        let b = text.find("b ").unwrap();
        assert!(a < b);
        assert!(text.contains("2.5000"));
        assert!(text.contains('1'));
    }

    #[test]
    fn iter_matches_contents() {
        let mut s = Stats::new();
        s.set("x", 1.0);
        s.set("y", 2.0);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![("x", 1.0), ("y", 2.0)]);
        let v2: Vec<_> = (&s).into_iter().collect();
        assert_eq!(v, v2);
    }

    #[test]
    fn interned_ids_are_stable_and_allocation_free_on_repeat() {
        let a = stat_id("test.interned.alpha");
        let b = stat_id("test.interned.beta");
        assert_ne!(a, b);
        assert_eq!(a, stat_id("test.interned.alpha"));
        assert_eq!(a.name(), "test.interned.alpha");
        let mut s = Stats::new();
        s.add_id(a, 1.0);
        s.add_id(a, 2.0);
        s.set_id(b, 9.0);
        assert_eq!(s.get_id(a), 3.0);
        assert_eq!(s.get_id(b), 9.0);
        assert_eq!(s.get("test.interned.alpha"), 3.0);
    }

    #[test]
    fn string_api_routes_to_interned_slot() {
        let id = stat_id("test.routed.hits");
        let mut s = Stats::new();
        s.add("test.routed.hits", 5.0);
        assert_eq!(s.get_id(id), 5.0);
        s.set("test.routed.hits", 2.0);
        assert_eq!(s.get_id(id), 2.0);
        assert!(s.contains("test.routed.hits"));
        assert!(
            s.values.is_empty(),
            "registered names must not hit the string map"
        );
    }

    #[test]
    fn views_union_both_tiers_sorted() {
        let id = stat_id("test.union.m");
        let mut s = Stats::new();
        s.add_id(id, 7.0);
        s.set("test.union.a", 1.0);
        s.set("test.union.z", 2.0);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(
            v,
            vec![
                ("test.union.a", 1.0),
                ("test.union.m", 7.0),
                ("test.union.z", 2.0)
            ]
        );
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.sum_prefix("test.union."), 10.0);
        let text = s.to_string();
        assert!(text.contains("test.union.m"));
    }

    #[test]
    fn merge_prefixed_carries_interned_entries() {
        let id = stat_id("test.carry.count");
        let mut inner = Stats::new();
        inner.add_id(id, 4.0);
        inner.set("dynamic", 1.0);
        let mut outer = Stats::new();
        outer.merge_prefixed("core0", &inner);
        assert_eq!(outer.get("core0.test.carry.count"), 4.0);
        assert_eq!(outer.get("core0.dynamic"), 1.0);
    }

    #[test]
    fn snapshot_round_trips_both_tiers_by_name() {
        use ccsvm_snap::{SnapReader, SnapWriter, Snapshot};
        let id = stat_id("test.snap.interned");
        let mut s = Stats::new();
        s.add_id(id, 6.0);
        s.set("test.snap.dynamic", 2.5);
        let mut w = SnapWriter::new();
        s.save(&mut w);
        let bytes = w.into_vec();
        let mut restored = Stats::new();
        restored.set("stale", 1.0); // load must clear pre-existing entries
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.get_id(id), 6.0, "registered names re-intern");
    }

    #[test]
    fn logical_equality_across_tiers() {
        let id = stat_id("test.eq.k");
        let mut by_id = Stats::new();
        by_id.add_id(id, 2.0);
        let mut by_str = Stats::new();
        by_str.add("test.eq.k", 2.0);
        assert_eq!(by_id, by_str);
        by_str.add("other", 1.0);
        assert_ne!(by_id, by_str);
    }
}
