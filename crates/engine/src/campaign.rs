//! Campaign plan algebra (DESIGN §14): a fault plan as a first-class,
//! *shrinkable* value.
//!
//! The fault-campaign engine sweeps fault domain × intensity cells and, when
//! a cell fails its contract, delta-debugs the plan down to a minimal
//! reproducer. That needs plans to be values with two operations: `apply`
//! (project onto a [`FaultConfig`]) and `shrink_candidates` (enumerate
//! strictly simpler plans — one domain removed, or one intensity halved).
//! Both are pure, so re-running a candidate under the same seed is
//! deterministic and the greedy shrink loop terminates at a local minimum.

use crate::fault::FaultConfig;
use crate::time::Time;

/// One independently removable/halvable fault axis of a campaign plan. Each
/// maps to exactly one rate knob of [`FaultConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignDomain {
    /// NoC link drops with retransmission ([`FaultConfig::noc`]).
    NocDrop,
    /// Correctable single-bit DRAM ECC flips ([`FaultConfig::dram`]).
    DramSingleBit,
    /// Uncorrectable double-bit DRAM ECC flips (poison the block).
    DramDoubleBit,
    /// Transient TLB-walk failures ([`FaultConfig::tlb`]).
    TlbTransient,
    /// Bank→L1 snoop-probe loss ([`FaultConfig::snoop_probe`]).
    SnoopProbe,
    /// L1→bank write-update acknowledgement loss ([`FaultConfig::upd_ack`]).
    UpdAck,
}

impl CampaignDomain {
    /// Every campaign domain, in canonical (manifest) order.
    pub const ALL: [CampaignDomain; 6] = [
        CampaignDomain::NocDrop,
        CampaignDomain::DramSingleBit,
        CampaignDomain::DramDoubleBit,
        CampaignDomain::TlbTransient,
        CampaignDomain::SnoopProbe,
        CampaignDomain::UpdAck,
    ];

    /// Stable manifest/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            CampaignDomain::NocDrop => "noc-drop",
            CampaignDomain::DramSingleBit => "dram-single",
            CampaignDomain::DramDoubleBit => "dram-double",
            CampaignDomain::TlbTransient => "tlb-transient",
            CampaignDomain::SnoopProbe => "snoop-probe",
            CampaignDomain::UpdAck => "upd-ack",
        }
    }

    /// Parses a manifest/CLI name.
    pub fn parse(s: &str) -> Option<CampaignDomain> {
        CampaignDomain::ALL.into_iter().find(|d| d.name() == s)
    }
}

/// A shrinkable fault plan: `(domain, intensity)` entries plus the
/// solicitation-round recovery knobs the lossy domains rely on. Intensities
/// are the per-event probabilities written into the matching
/// [`FaultConfig`] rate fields.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSpec {
    /// Enabled fault axes with their intensities. Order is preserved (it is
    /// part of the plan's printed identity) but has no simulation effect:
    /// every domain draws from its own decorrelated stream.
    pub entries: Vec<(CampaignDomain, f64)>,
    /// Solicitation-round timeout installed on the L2 banks; `None` leaves
    /// recovery off (lossy domains then wedge into a watchdog deadlock).
    pub timeout: Option<Time>,
    /// Resend budget per transaction before a typed abort.
    pub retry_budget: u32,
}

impl PlanSpec {
    /// A plan with the given entries and standard recovery knobs.
    pub fn new(entries: Vec<(CampaignDomain, f64)>, timeout: Option<Time>) -> PlanSpec {
        PlanSpec {
            entries,
            timeout,
            retry_budget: 8,
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Projects the plan onto a fault configuration (leaving the seed and
    /// watchdog knobs to the caller).
    pub fn apply(&self, fc: &mut FaultConfig) {
        for &(domain, rate) in &self.entries {
            match domain {
                CampaignDomain::NocDrop => fc.noc.drop_rate = rate,
                CampaignDomain::DramSingleBit => fc.dram.single_bit_rate = rate,
                CampaignDomain::DramDoubleBit => fc.dram.double_bit_rate = rate,
                CampaignDomain::TlbTransient => fc.tlb.transient_rate = rate,
                CampaignDomain::SnoopProbe => fc.snoop_probe.drop_rate = rate,
                CampaignDomain::UpdAck => fc.upd_ack.drop_rate = rate,
            }
        }
        fc.dir.timeout = self.timeout;
        fc.dir.retry_budget = self.retry_budget;
    }

    /// Strictly simpler candidate plans for one delta-debugging step: each
    /// candidate removes one entry, or halves one entry's intensity (halving
    /// below `floor` removes the entry instead, so every candidate is
    /// strictly smaller and the greedy loop terminates).
    pub fn shrink_candidates(&self, floor: f64) -> Vec<PlanSpec> {
        let mut out = Vec::new();
        for i in 0..self.entries.len() {
            let mut removed = self.clone();
            removed.entries.remove(i);
            out.push(removed);
        }
        for i in 0..self.entries.len() {
            let halved_rate = self.entries[i].1 / 2.0;
            if halved_rate >= floor {
                let mut halved = self.clone();
                halved.entries[i].1 = halved_rate;
                out.push(halved);
            }
        }
        out
    }

    /// Deterministic one-line description for manifests and labels, e.g.
    /// `noc-drop=0.02+snoop-probe=0.1/timeout=5us` or `(none)`.
    pub fn describe(&self) -> String {
        if self.entries.is_empty() {
            return "(none)".to_string();
        }
        let body: Vec<String> = self
            .entries
            .iter()
            .map(|(d, r)| format!("{}={r}", d.name()))
            .collect();
        match self.timeout {
            Some(t) => format!("{}/timeout={}us", body.join("+"), t.as_ps() / 1_000_000),
            None => body.join("+"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in CampaignDomain::ALL {
            assert_eq!(CampaignDomain::parse(d.name()), Some(d));
        }
        assert_eq!(CampaignDomain::parse("bogus"), None);
    }

    #[test]
    fn apply_projects_every_domain() {
        let plan = PlanSpec::new(
            CampaignDomain::ALL.iter().map(|&d| (d, 0.125)).collect(),
            Some(Time::from_us(5)),
        );
        let mut fc = FaultConfig::default();
        plan.apply(&mut fc);
        assert_eq!(fc.noc.drop_rate, 0.125);
        assert_eq!(fc.dram.single_bit_rate, 0.125);
        assert_eq!(fc.dram.double_bit_rate, 0.125);
        assert_eq!(fc.tlb.transient_rate, 0.125);
        assert_eq!(fc.snoop_probe.drop_rate, 0.125);
        assert_eq!(fc.upd_ack.drop_rate, 0.125);
        assert_eq!(fc.dir.timeout, Some(Time::from_us(5)));
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler_and_terminate() {
        let mut plan = PlanSpec::new(
            vec![
                (CampaignDomain::NocDrop, 0.04),
                (CampaignDomain::SnoopProbe, 0.08),
            ],
            Some(Time::from_us(5)),
        );
        // Greedy descent always picking the first candidate must hit the
        // empty plan: every step removes an entry or halves an intensity.
        let mut steps = 0;
        while !plan.is_empty() {
            let cands = plan.shrink_candidates(0.01);
            assert!(!cands.is_empty());
            for c in &cands {
                let smaller = c.entries.len() < plan.entries.len()
                    || c.entries
                        .iter()
                        .zip(&plan.entries)
                        .any(|(a, b)| a.1 < b.1);
                assert!(smaller, "candidate {c:?} is not simpler than {plan:?}");
            }
            plan = cands.into_iter().next().unwrap();
            steps += 1;
            assert!(steps < 64, "shrink descent failed to terminate");
        }
    }

    #[test]
    fn describe_is_deterministic() {
        let plan = PlanSpec::new(
            vec![(CampaignDomain::SnoopProbe, 0.1)],
            Some(Time::from_us(5)),
        );
        assert_eq!(plan.describe(), "snoop-probe=0.1/timeout=5us");
        assert_eq!(PlanSpec::new(vec![], None).describe(), "(none)");
    }
}
