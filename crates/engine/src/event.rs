//! Deterministic timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Time;

/// A deterministic priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events with equal timestamps pop
/// in the order they were pushed (FIFO). This makes whole-simulation replay
/// bit-for-bit deterministic regardless of `BinaryHeap` internals.
///
/// # Examples
///
/// ```
/// use ccsvm_engine::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(2), "b");
/// q.push(Time::from_ns(1), "a");
/// q.push(Time::from_ns(2), "c"); // same time as "b", pushed later
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(1), 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(4), "d");
        q.push(Time::from_ns(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Time::from_ns(2), "b");
        q.push(Time::from_ns(3), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }
}

#[cfg(all(test, feature = "slow-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue drains in non-decreasing time order, FIFO within a time,
        /// for arbitrary push sequences.
        #[test]
        fn drain_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_ps(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expected.sort(); // stable order == (time, push index)
            let mut got = Vec::new();
            while let Some((t, i)) = q.pop() {
                got.push((t.as_ps(), i));
            }
            prop_assert_eq!(got, expected);
        }
    }
}
