//! Deterministic timestamped event queue.
//!
//! Two implementations share one contract (pop in non-decreasing time order,
//! FIFO among equal timestamps):
//!
//! * [`EventQueue`] — the production two-level calendar queue: a ring of
//!   per-tick FIFO buckets for the near future plus an overflow heap for the
//!   far future. Pushes into the active window are O(1); pops scan one small
//!   bucket. Discrete-event simulators schedule almost everything within a
//!   few hundred nanoseconds of "now" (cache hits, NoC hops, DRAM bursts),
//!   so nearly all traffic stays in the ring and never pays a heap sift.
//! * [`ReferenceEventQueue`] — the original `BinaryHeap` with an explicit
//!   (time, seq) ordering. It is kept as the executable specification: the
//!   differential tests below drive both queues with identical operation
//!   sequences and assert identical drain order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Time;

/// Bucket width: 2^10 ps ≈ 1 ns, finer than every clock period in the
/// modelled chip (2.9 GHz CPU = 345 ps is the fastest tick).
const BUCKET_SHIFT: u32 = 10;
/// Ring size: 1024 buckets × 1 ns ≈ 1.05 µs window, comfortably past the
/// longest common latency (DRAM ≈ 100 ns); only rare long timers (directory
/// timeouts, the watchdog) land in the overflow heap.
const NUM_BUCKETS: usize = 1024;
/// Picoseconds covered by the ring window.
const SPAN: u64 = (NUM_BUCKETS as u64) << BUCKET_SHIFT;

/// Per-entry verdict from the [`EventQueue::scan_extract`] callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanControl {
    /// Leave the entry queued and keep scanning.
    Skip,
    /// Remove the entry — it is returned to the caller — and keep scanning.
    Take,
    /// Leave the entry queued and end the scan.
    Stop,
}

/// A deterministic priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events with equal timestamps pop
/// in the order they were pushed (FIFO). This makes whole-simulation replay
/// bit-for-bit deterministic regardless of container internals. The
/// structure is a calendar queue (Brown 1988) specialised for the
/// simulator: the window never rotates mid-flight, it *jumps* to the next
/// populated era whenever the ring drains, which keeps the mapping from
/// time to bucket a pair of shifts.
///
/// Invariants:
///
/// * Every ring event lives in a bucket index ≥ `cursor`; buckets below the
///   cursor are empty.
/// * Events in bucket `b > cursor` have time ≥ the bucket's start, which
///   exceeds the time of everything in the cursor bucket. Hence the global
///   minimum (time, seq) is always inside the cursor bucket (or, if the
///   ring is empty, at the top of the overflow heap — overflow times are ≥
///   the window end, i.e. later than the entire ring).
/// * Pushes that land before the cursor (re-scheduling at "now" after
///   earlier same-tick pops, or an out-of-window past time) are clamped
///   *into* the cursor bucket; the min-scan on pop still yields the exact
///   (time, seq) order, so clamping never reorders anything.
///
/// # Examples
///
/// ```
/// use ccsvm_engine::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(2), "b");
/// q.push(Time::from_ns(1), "a");
/// q.push(Time::from_ns(2), "c"); // same time as "b", pushed later
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future ring: per-bucket FIFO vectors of (time, seq, event).
    buckets: Vec<Vec<(Time, u64, E)>>,
    /// One bit per bucket; lets the pop path skip runs of empty buckets
    /// with `trailing_zeros` instead of probing vectors.
    occupied: [u64; NUM_BUCKETS / 64],
    /// Start of the ring window in ps, always a multiple of `SPAN`.
    window_start: u64,
    /// Lowest possibly-nonempty bucket index.
    cursor: usize,
    /// Events in the ring.
    ring_len: usize,
    /// Far future: everything at or beyond `window_start + SPAN`.
    overflow: BinaryHeap<Entry<E>>,
    /// Next push sequence number (FIFO tiebreak).
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; NUM_BUCKETS / 64],
            window_start: 0,
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let ps = at.as_ps();
        if self.ring_len == 0 && self.overflow.is_empty() {
            // Empty queue: re-anchor the window around the new event so a
            // long-idle jump (e.g. resuming after a 100 µs timeout) does not
            // funnel everything through the overflow heap.
            self.window_start = align_down(ps);
            self.cursor = 0;
        }
        if ps >= self.window_start + SPAN {
            self.overflow.push(Entry {
                time: at,
                seq,
                event,
            });
            return;
        }
        let idx = if ps < self.window_start {
            self.cursor
        } else {
            (((ps - self.window_start) >> BUCKET_SHIFT) as usize).max(self.cursor)
        };
        self.buckets[idx].push((at, seq, event));
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.ring_len += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.ring_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.refill_from_overflow();
        }
        let idx = self
            .first_occupied()
            .expect("ring_len > 0 implies an occupied bucket");
        self.cursor = idx;
        let bucket = &mut self.buckets[idx];
        let mut best = 0;
        for i in 1..bucket.len() {
            let (bt, bs, _) = bucket[best];
            let (t, s, _) = bucket[i];
            if (t, s) < (bt, bs) {
                best = i;
            }
        }
        let (t, _, event) = bucket.swap_remove(best);
        if bucket.is_empty() {
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        self.ring_len -= 1;
        Some((t, event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    /// The full (time, push-seq) key of the earliest pending event. Sequence
    /// numbers are monotone over pushes, so `peek_key() < k` is exactly the
    /// "serial execution would dispatch the head before the event with key
    /// `k`" test the speculative commit drain needs (events extracted by
    /// [`EventQueue::scan_extract`] keep their original keys).
    pub fn peek_key(&self) -> Option<(Time, u64)> {
        if self.ring_len == 0 {
            return self.overflow.peek().map(|e| (e.time, e.seq));
        }
        let idx = self
            .first_occupied()
            .expect("ring_len > 0 implies an occupied bucket");
        self.buckets[idx].iter().map(|&(t, s, _)| (t, s)).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pending events in exact drain order — (time, seq) ascending —
    /// without disturbing the queue. This is the snapshot view: a restore
    /// pushes the events back in this order into a fresh queue, which
    /// renumbers sequence tiebreaks from zero but preserves their *relative*
    /// FIFO order, so the rebuilt queue drains identically.
    pub fn ordered_entries(&self) -> Vec<(Time, &E)> {
        let mut v: Vec<(Time, u64, &E)> = Vec::with_capacity(self.len());
        for bucket in &self.buckets {
            for (t, s, e) in bucket {
                v.push((*t, *s, e));
            }
        }
        for e in &self.overflow {
            v.push((e.time, e.seq, &e.event));
        }
        v.sort_by_key(|&(t, s, _)| (t, s));
        v.into_iter().map(|(t, _, e)| (t, e)).collect()
    }

    /// Scans pending ring events in exact drain order — earliest (time, seq)
    /// first — handing each to `decide`, which may leave it queued
    /// ([`ScanControl::Skip`]), remove it ([`ScanControl::Take`]), or end the
    /// scan ([`ScanControl::Stop`]). Taken events are returned with their
    /// original (time, seq) keys, in drain order. At most `max_scan` entries
    /// are visited; the scan also ends at the ring/overflow boundary
    /// (overflow holds only far-future timers, beyond any epoch horizon).
    ///
    /// Drain-order correctness rests on two invariants of the ring: buckets
    /// at indices ≥ `cursor` are strictly time-ordered *between* buckets
    /// (clamped past-pushes only ever target the cursor bucket, and the
    /// cursor is monotone between window jumps), so visiting buckets in
    /// index order with a per-bucket (time, seq) sort yields the global
    /// order; and untaken entries keep their bucket, so a later `pop` or
    /// `scan_extract` still sees them at the right position.
    pub fn scan_extract(
        &mut self,
        max_scan: usize,
        mut decide: impl FnMut(Time, &E) -> ScanControl,
    ) -> Vec<(Time, u64, E)> {
        let mut out: Vec<(Time, u64, E)> = Vec::new();
        if self.ring_len == 0 {
            return out;
        }
        let mut visited = 0usize;
        let mut order: Vec<usize> = Vec::new();
        let mut taken: Vec<usize> = Vec::new();
        let mut idx = self.cursor;
        'buckets: while let Some(b) = self.first_occupied_from(idx) {
            let bucket = &mut self.buckets[b];
            order.clear();
            order.extend(0..bucket.len());
            order.sort_by_key(|&i| (bucket[i].0, bucket[i].1));
            taken.clear();
            let mut stop = false;
            for &i in &order {
                if visited == max_scan {
                    stop = true;
                    break;
                }
                visited += 1;
                match decide(bucket[i].0, &bucket[i].2) {
                    ScanControl::Skip => {}
                    ScanControl::Take => taken.push(i),
                    ScanControl::Stop => {
                        stop = true;
                        break;
                    }
                }
            }
            if !taken.is_empty() {
                // swap_remove from the highest position down so earlier
                // taken positions stay valid, then restore drain order.
                let first = out.len();
                taken.sort_unstable_by(|a, b| b.cmp(a));
                for &i in &taken {
                    out.push(bucket.swap_remove(i));
                }
                out[first..].sort_by_key(|&(t, s, _)| (t, s));
                self.ring_len -= taken.len();
                if bucket.is_empty() {
                    self.occupied[b / 64] &= !(1 << (b % 64));
                }
            }
            if stop {
                break 'buckets;
            }
            idx = b + 1;
        }
        out
    }

    /// First occupied bucket at or after the cursor, via the bitmap.
    fn first_occupied(&self) -> Option<usize> {
        self.first_occupied_from(self.cursor)
    }

    /// First occupied bucket at or after `from`, via the bitmap.
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        if from >= NUM_BUCKETS {
            return None;
        }
        let mut word = from / 64;
        // Mask off bits below `from` in its word.
        let mut bits = self.occupied[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == self.occupied.len() {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Ring is empty, overflow is not: jump the window to the overflow
    /// minimum's era and move every now-in-window event into the ring.
    fn refill_from_overflow(&mut self) {
        let head = self
            .overflow
            .peek()
            .expect("refill needs overflow events")
            .time;
        self.window_start = align_down(head.as_ps());
        self.cursor = 0;
        let end = self.window_start + SPAN;
        while let Some(e) = self.overflow.peek() {
            if e.time.as_ps() >= end {
                break;
            }
            let Entry { time, seq, event } = self.overflow.pop().expect("peeked");
            let idx = ((time.as_ps() - self.window_start) >> BUCKET_SHIFT) as usize;
            self.buckets[idx].push((time, seq, event));
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.ring_len += 1;
        }
    }
}

fn align_down(ps: u64) -> u64 {
    ps & !(SPAN - 1)
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The original `BinaryHeap`-backed deterministic queue, retained as the
/// executable specification for differential tests and as a benchmark
/// reference. Semantics are identical to [`EventQueue`]; only the cost
/// model differs (O(log n) sift per push/pop, no windowing).
#[derive(Debug)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> ReferenceEventQueue<E> {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        ReferenceEventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(1), 7);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_ns(1)));
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(4), "d");
        q.push(Time::from_ns(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Time::from_ns(2), "b");
        q.push(Time::from_ns(3), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }

    #[test]
    fn far_future_goes_through_overflow() {
        let mut q = EventQueue::new();
        // Watchdog-style long timer way beyond the ring window, plus
        // near-term traffic.
        q.push(Time::from_ms(10), "watchdog");
        q.push(Time::from_ns(3), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(Time::from_ms(10)));
        assert_eq!(q.pop().unwrap().1, "watchdog");
        assert!(q.is_empty());
    }

    #[test]
    fn window_jump_preserves_order_and_fifo() {
        let mut q = EventQueue::new();
        // Several distinct eras, each far beyond the previous window, with
        // same-time bursts inside each era.
        for era in 0..5u64 {
            let base = era * 7 * SPAN;
            for i in 0..10u64 {
                q.push(Time::from_ps(base + 512), era * 100 + i);
            }
            q.push(Time::from_ps(base), era * 100 + 50);
        }
        let mut got = Vec::new();
        while let Some((_, v)) = q.pop() {
            got.push(v);
        }
        let mut want = Vec::new();
        for era in 0..5u64 {
            want.push(era * 100 + 50);
            want.extend((0..10).map(|i| era * 100 + i));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn push_into_past_is_clamped_not_lost() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(100), "later");
        q.push(Time::from_ns(200), "latest");
        assert_eq!(q.pop().unwrap().1, "later");
        // Cursor has advanced past the ns-5 bucket; a push behind it must
        // still pop before everything scheduled later.
        q.push(Time::from_ns(5), "past");
        assert_eq!(q.peek_time(), Some(Time::from_ns(5)));
        assert_eq!(q.pop(), Some((Time::from_ns(5), "past")));
        assert_eq!(q.pop().unwrap().1, "latest");
    }

    #[test]
    fn empty_queue_reanchors_window() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(1), 1);
        assert_eq!(q.pop(), Some((Time::from_ns(1), 1)));
        // Queue now empty; a push eons later must not be misfiled.
        q.push(Time::from_ms(500), 2);
        q.push(Time::from_ms(500) + Time::from_ps(1), 3);
        assert_eq!(q.pop(), Some((Time::from_ms(500), 2)));
        assert_eq!(q.pop().unwrap().1, 3);
    }

    /// Snapshot view: `ordered_entries` must list pending events in exact
    /// drain order, and a queue rebuilt by re-pushing them must drain
    /// identically to the original — including same-timestamp FIFO runs,
    /// clamped past-pushes, and overflow-era events.
    #[test]
    fn ordered_entries_rebuild_drains_identically() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(100), 0);
        q.push(Time::from_ns(100), 1); // FIFO pair
        q.push(Time::from_ms(10), 2); // overflow era
        q.push(Time::from_ns(50), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        q.push(Time::from_ns(1), 4); // clamped behind the cursor
        q.push(Time::from_ns(100), 5); // extends the FIFO run

        let mut rebuilt = EventQueue::new();
        for (t, &e) in q.ordered_entries() {
            rebuilt.push(t, e);
        }
        assert_eq!(rebuilt.len(), q.len());
        loop {
            let (a, b) = (q.pop(), rebuilt.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_key_matches_pop_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), "b");
        q.push(Time::from_ns(7), "c");
        q.push(Time::from_ns(3), "a");
        q.push(Time::from_ms(10), "overflow");
        while let Some(key) = q.peek_key() {
            let (t, _) = q.pop().expect("peeked");
            assert_eq!(key.0, t);
            if let Some(next) = q.peek_key() {
                assert!(key < next, "keys must be strictly increasing");
            }
        }
        assert!(q.is_empty());
    }

    /// `scan_extract` visits ring entries in exact drain order, removes only
    /// the taken ones, and the survivors still pop in the right order —
    /// including clamped past-pushes sharing the cursor bucket with
    /// naturally-filed entries.
    #[test]
    fn scan_extract_takes_in_drain_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(100), 0u64);
        q.push(Time::from_ns(300), 1);
        q.push(Time::from_ns(100), 2); // FIFO pair with 0
        q.push(Time::from_ns(200), 3);
        q.push(Time::from_ns(150), 4);
        assert_eq!(q.pop().unwrap().1, 0); // advance the cursor
        q.push(Time::from_ns(120), 5); // clamped into the cursor bucket
        q.push(Time::from_ms(10), 6); // overflow: never scanned

        let mut seen = Vec::new();
        let taken = q.scan_extract(usize::MAX, |t, &e| {
            seen.push((t, e));
            if e % 2 == 0 {
                ScanControl::Take
            } else {
                ScanControl::Skip
            }
        });
        // Visit order is drain order over the ring.
        assert_eq!(
            seen,
            vec![
                (Time::from_ns(100), 2),
                (Time::from_ns(120), 5),
                (Time::from_ns(150), 4),
                (Time::from_ns(200), 3),
                (Time::from_ns(300), 1),
            ]
        );
        let got: Vec<u64> = taken.iter().map(|&(_, _, e)| e).collect();
        assert_eq!(got, vec![2, 4]);
        // Taken keys are strictly increasing and usable as drain fences.
        assert!(taken.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![5, 3, 1, 6]);
    }

    #[test]
    fn scan_extract_respects_stop_and_budget() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(Time::from_ns(i), i);
        }
        // Budget of 3: only the first three entries are visited.
        let taken = q.scan_extract(3, |_, _| ScanControl::Take);
        assert_eq!(taken.len(), 3);
        assert_eq!(q.len(), 7);
        // Stop at the first entry ≥ 6ns: 6..10 survive untouched.
        let taken = q.scan_extract(usize::MAX, |t, _| {
            if t >= Time::from_ns(6) {
                ScanControl::Stop
            } else {
                ScanControl::Take
            }
        });
        assert_eq!(taken.len(), 3);
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![6, 7, 8, 9]);
    }

    /// Differential: interleaving scan_extract with pushes and pops, then
    /// re-pushing everything taken, must leave the calendar queue draining
    /// exactly like the reference heap fed the same surviving schedule.
    #[test]
    fn scan_extract_differential_with_reinsertion() {
        let mut rng = crate::SplitMix64::new(0xEC40);
        for round in 0..50u64 {
            let mut q = EventQueue::new();
            for n in 0..60u64 {
                let r = rng.next_u64();
                q.push(Time::from_ps(r % 3000), n);
                if r.is_multiple_of(5) {
                    q.pop();
                }
            }
            let sel = rng.next_u64();
            let taken = q.scan_extract(40, |_, &e| match (e ^ sel) % 3 {
                0 => ScanControl::Take,
                1 => ScanControl::Skip,
                _ => ScanControl::Skip,
            });
            // Survivors must drain in nondecreasing (time, key-order); the
            // taken set re-pushed at its original times must land after
            // every pending earlier-keyed event of equal time (fresh seqs),
            // which is exactly what serial re-execution of a rolled-back
            // epoch member does.
            for (t, _, e) in taken {
                q.push(t, e);
            }
            let mut last = None;
            while let Some((t, _)) = q.pop() {
                if let Some(prev) = last {
                    assert!(t >= prev, "round {round}: time went backwards");
                }
                last = Some(t);
            }
        }
    }

    /// Satellite: differential test — identical operation sequences on the
    /// calendar queue and the reference heap drain identically, including
    /// heavy same-timestamp bursts and interleaved push/pop.
    #[test]
    fn differential_vs_reference_heap() {
        let mut cal = EventQueue::new();
        let mut reference = ReferenceEventQueue::new();
        let mut rng = crate::SplitMix64::new(0xD1FF);
        let mut pending = 0u32;
        for step in 0..20_000u64 {
            let r = rng.next_u64();
            if pending > 0 && r.is_multiple_of(3) {
                assert_eq!(cal.pop(), reference.pop(), "step {step}");
                pending -= 1;
            } else {
                let t = match r % 10 {
                    // Heavy same-timestamp bursts at a handful of ticks.
                    0..=4 => Time::from_ps((r >> 8) % 4 * 1000),
                    // Near-future spread within the window.
                    5..=7 => Time::from_ps((r >> 8) % (SPAN / 2)),
                    // Mid-window and overflow range, forcing jumps.
                    8 => Time::from_ps((r >> 8) % (4 * SPAN)),
                    _ => Time::from_ps((r >> 8) % (100 * SPAN)),
                };
                cal.push(t, step);
                reference.push(t, step);
                pending += 1;
            }
            assert_eq!(cal.len(), reference.len(), "step {step}");
            assert_eq!(cal.peek_time(), reference.peek_time(), "step {step}");
        }
        loop {
            let (a, b) = (cal.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

#[cfg(all(test, feature = "slow-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The queue drains in non-decreasing time order, FIFO within a time,
        /// for arbitrary push sequences.
        #[test]
        fn drain_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_ps(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expected.sort(); // stable order == (time, push index)
            let mut got = Vec::new();
            while let Some((t, i)) = q.pop() {
                got.push((t.as_ps(), i));
            }
            prop_assert_eq!(got, expected);
        }

        /// Differential drain order vs the reference heap under arbitrary
        /// interleavings of pushes (across eras and bursts) and pops.
        #[test]
        fn differential_matches_reference(
            ops in proptest::collection::vec(
                prop_oneof![
                    (0u64..200_000_000).prop_map(Some), // push at t (spans many windows)
                    Just(None),                         // pop
                ],
                0..400,
            )
        ) {
            let mut cal = EventQueue::new();
            let mut reference = ReferenceEventQueue::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Some(t) => {
                        cal.push(Time::from_ps(*t), i);
                        reference.push(Time::from_ps(*t), i);
                    }
                    None => prop_assert_eq!(cal.pop(), reference.pop()),
                }
                prop_assert_eq!(cal.len(), reference.len());
                prop_assert_eq!(cal.peek_time(), reference.peek_time());
            }
            loop {
                let (a, b) = (cal.pop(), reference.pop());
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
        }
    }
}
