//! Deterministic fault injection and forward-progress tracking.
//!
//! A [`FaultPlan`] turns one seed into independent per-domain
//! [`SplitMix64`] streams, so every fault a run experiences is a pure
//! function of `(FaultConfig, simulated activity)` — never wall-clock — and
//! replaying the same configuration reproduces the same faults bit-for-bit.
//! Enabling faults in one domain (say, NoC drops) does not perturb the draw
//! sequence of any other domain.
//!
//! The fault taxonomy mirrors the hardware this simulator models:
//!
//! * **NoC** ([`NocFaultConfig`]) — a message is "dropped" on a link and
//!   retransmitted by link-level retry; the model charges a capped
//!   exponential backoff delay rather than actually losing the flit, so
//!   delivery stays guaranteed and bounded.
//! * **DRAM** ([`DramFaultConfig`]) — bit flips on the read path, filtered
//!   through a SECDED ECC model: single-bit errors are corrected and
//!   counted; double-bit errors are detected but uncorrectable and poison
//!   the block.
//! * **TLB walks** ([`TlbFaultConfig`]) — a completed hardware page-table
//!   walk transiently fails (the PTE read is discarded before it reaches the
//!   TLB) and the instruction retries after a penalty.
//! * **Solicitation-round timeouts** ([`DirTimeoutConfig`]) — an ordering
//!   point transaction waiting on responses (directory invalidation/fetch
//!   acks, snoop probe responses, write-update acks) that exceeds a timeout
//!   NACKs and re-solicits the missing responses, up to a retry budget.
//! * **Snoop-probe / update-ack loss** ([`ProbeLossConfig`]) — a bank→L1
//!   snoop probe or an L1→bank write-update acknowledgement is silently
//!   discarded; the solicitation-round timeout recovers by re-probing.
//!
//! The [`Watchdog`] is the other half of the robustness story: it tracks the
//! machine's last forward progress so the run loop can abort with a
//! structured diagnostic instead of spinning forever when a protocol bug (or
//! an injected, unrecoverable fault) wedges the system.

use crate::rng::SplitMix64;
use crate::time::Time;

/// NoC link-fault knobs: each hop-traversal of a message may be "dropped"
/// and retransmitted with capped exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocFaultConfig {
    /// Per-message probability that a link drops it and retries (0 = off).
    pub drop_rate: f64,
    /// Maximum retransmissions charged per message.
    pub max_retries: u32,
    /// Backoff charged for the first retransmission; doubles per retry.
    pub backoff: Time,
    /// Cap on the per-retry backoff (exponential growth stops here).
    pub backoff_cap: Time,
}

impl Default for NocFaultConfig {
    fn default() -> Self {
        NocFaultConfig {
            drop_rate: 0.0,
            max_retries: 8,
            backoff: Time::from_ns(50),
            backoff_cap: Time::from_ns(800),
        }
    }
}

/// DRAM read-path bit-flip rates, filtered through SECDED ECC.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramFaultConfig {
    /// Per-block-read probability of a correctable single-bit flip.
    pub single_bit_rate: f64,
    /// Per-block-read probability of an uncorrectable double-bit flip
    /// (poisons the block).
    pub double_bit_rate: f64,
}

/// Transient TLB-walk failure knobs (CPU cores).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TlbFaultConfig {
    /// Probability that a completed page-table walk fails transiently and
    /// the instruction retries (0 = off).
    pub transient_rate: f64,
    /// Stall charged to the core per transient failure.
    pub retry_penalty: Time,
}

impl Default for TlbFaultConfig {
    fn default() -> Self {
        TlbFaultConfig {
            transient_rate: 0.0,
            retry_penalty: Time::from_ns(200),
        }
    }
}

/// Seeded loss of coherence solicitations on the snooping paths: a bank→L1
/// `Snoop` probe delivery (the `SnoopProbe` domain) or an L1→bank response
/// answering an active write-update round (the `UpdAck` domain) is silently
/// discarded. Both losses are recoverable by the ordering point's
/// solicitation-round timeout (it re-probes exactly the still-pending
/// ports), so plans that enable either domain should also set
/// [`DirTimeoutConfig::timeout`] — without it the lost round wedges and the
/// watchdog reports a typed deadlock instead.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProbeLossConfig {
    /// Per-delivery drop probability (0 = off).
    pub drop_rate: f64,
    /// Cap on total drops per run (0 = unlimited). Lets tests and campaign
    /// plans inject an exact number of losses deterministically.
    pub max_drops: u64,
}

/// Solicitation-round timeout knobs, shared by every coherence protocol's
/// ordering point (directory invalidation/fetch rounds, snoop probe
/// collection, Dragon write-update rounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirTimeoutConfig {
    /// How long an ordering-point transaction may wait on solicited
    /// responses before NACKing and re-soliciting them. `None` disables the
    /// mechanism. Must comfortably exceed the worst-case NoC round trip:
    /// the timeout detects *lost* messages, not slow ones.
    pub timeout: Option<Time>,
    /// How many times one transaction may re-solicit before the run aborts
    /// with `RetryBudgetExhausted`.
    pub retry_budget: u32,
}

impl Default for DirTimeoutConfig {
    fn default() -> Self {
        DirTimeoutConfig {
            timeout: None,
            retry_budget: 8,
        }
    }
}

/// Forward-progress watchdog knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Whether the machine schedules watchdog ticks at all.
    pub enabled: bool,
    /// Simulated time between watchdog observations.
    pub period: Time,
    /// Consecutive zero-progress periods before the run is declared
    /// deadlocked.
    pub quanta: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            period: Time::from_ms(1),
            quanta: 8,
        }
    }
}

/// Complete fault-injection configuration. `Default` is the production
/// setting: every fault source off, watchdog on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed from which every fault stream is derived.
    pub seed: u64,
    /// NoC retransmission faults.
    pub noc: NocFaultConfig,
    /// DRAM ECC faults.
    pub dram: DramFaultConfig,
    /// Transient TLB-walk faults.
    pub tlb: TlbFaultConfig,
    /// Directory NACK+retry timeouts.
    pub dir: DirTimeoutConfig,
    /// Forward-progress watchdog.
    pub watchdog: WatchdogConfig,
    /// Test knob: swallow the k-th (1-based) directory→L1 data delivery,
    /// simulating an unrecoverably lost completion. Used by the watchdog
    /// regression tests.
    pub drop_data_delivery: Option<u64>,
    /// Test knob: swallow the k-th (1-based) L1→directory response and
    /// every later response for the same block — a dead responder. With
    /// directory timeouts enabled this exhausts the retry budget.
    pub blackhole_resp: Option<u64>,
    /// Test knob: swallow exactly the k-th (1-based) L1→directory response.
    /// A single lost message; recoverable when directory timeouts are on.
    pub drop_one_resp: Option<u64>,
    /// Seeded bank→L1 snoop-probe loss (snooping protocols only; probes
    /// don't exist under the directory protocol, so the domain is inert
    /// there).
    pub snoop_probe: ProbeLossConfig,
    /// Seeded loss of L1→bank responses answering a write-update round
    /// (Dragon only; the bank ignores update-round response payloads, so the
    /// loss is always recoverable by re-probing).
    pub upd_ack: ProbeLossConfig,
}

/// An independently-seeded fault domain. `Tlb(i)` gives each CPU core its
/// own stream so per-core injection is order-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDomain {
    /// NoC link retransmissions.
    Noc,
    /// DRAM ECC bit flips.
    Dram,
    /// Transient TLB-walk failures for CPU core `i`.
    Tlb(u32),
    /// Bank→L1 snoop-probe loss (snooping protocols).
    SnoopProbe,
    /// L1→bank write-update acknowledgement loss (Dragon).
    UpdAck,
}

/// A seeded, deterministic fault schedule: hands out decorrelated
/// per-domain RNG streams derived from [`FaultConfig::seed`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds the plan for a configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan { cfg }
    }

    /// The configuration the plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// A fresh RNG stream for one fault domain. Streams for different
    /// domains (and different cores within `Tlb`) are decorrelated by
    /// running the seed through one SplitMix64 output step per salt.
    pub fn stream(&self, domain: FaultDomain) -> SplitMix64 {
        let (salt, index) = match domain {
            FaultDomain::Noc => (0x6E6F_635F_6C69_6E6B, 0),
            FaultDomain::Dram => (0x6472_616D_5F65_6363, 0),
            FaultDomain::Tlb(i) => (0x746C_625F_7761_6C6B, u64::from(i) + 1),
            FaultDomain::SnoopProbe => (0x736E_6F6F_705F_7072, 0),
            FaultDomain::UpdAck => (0x7570_645F_6163_6B73, 0),
        };
        let mut mixer = SplitMix64::new(self.cfg.seed ^ salt);
        let base = mixer.next_u64();
        SplitMix64::new(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// Tracks the machine's last forward progress. The run loop feeds it a
/// monotone progress counter (instructions retired + completions delivered)
/// at each watchdog period; [`Watchdog::observe`] returns how many
/// consecutive periods have passed with no progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Watchdog {
    last_progress: u64,
    last_change: Time,
    stale: u32,
}

impl Watchdog {
    /// A watchdog that has just seen progress at time zero.
    pub fn new() -> Watchdog {
        Watchdog {
            last_progress: 0,
            last_change: Time::ZERO,
            stale: 0,
        }
    }

    /// Records an observation of the progress counter at time `now`.
    /// Returns the number of consecutive observations (including this one)
    /// with no forward progress; 0 when the counter moved.
    pub fn observe(&mut self, now: Time, progress: u64) -> u32 {
        if progress != self.last_progress {
            self.last_progress = progress;
            self.last_change = now;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale
    }

    /// The time of the last observation that showed forward progress.
    pub fn last_progress_at(&self) -> Time {
        self.last_change
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

/// Full-fidelity codec for replay bundles: a captured failure must replay
/// under the exact fault schedule (rates, seeds, test knobs) that produced
/// it. Not used by machine snapshots, which re-derive the config.
impl ccsvm_snap::Snapshot for FaultConfig {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        w.put_u64(self.seed);
        w.put_f64(self.noc.drop_rate);
        w.put_u32(self.noc.max_retries);
        w.put_u64(self.noc.backoff.as_ps());
        w.put_u64(self.noc.backoff_cap.as_ps());
        w.put_f64(self.dram.single_bit_rate);
        w.put_f64(self.dram.double_bit_rate);
        w.put_f64(self.tlb.transient_rate);
        w.put_u64(self.tlb.retry_penalty.as_ps());
        match self.dir.timeout {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t.as_ps());
            }
            None => w.put_bool(false),
        }
        w.put_u32(self.dir.retry_budget);
        w.put_bool(self.watchdog.enabled);
        w.put_u64(self.watchdog.period.as_ps());
        w.put_u32(self.watchdog.quanta);
        for knob in [
            self.drop_data_delivery,
            self.blackhole_resp,
            self.drop_one_resp,
        ] {
            match knob {
                Some(k) => {
                    w.put_bool(true);
                    w.put_u64(k);
                }
                None => w.put_bool(false),
            }
        }
        for loss in [self.snoop_probe, self.upd_ack] {
            w.put_f64(loss.drop_rate);
            w.put_u64(loss.max_drops);
        }
    }

    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.seed = r.get_u64()?;
        self.noc.drop_rate = r.get_f64()?;
        self.noc.max_retries = r.get_u32()?;
        self.noc.backoff = Time::from_ps(r.get_u64()?);
        self.noc.backoff_cap = Time::from_ps(r.get_u64()?);
        self.dram.single_bit_rate = r.get_f64()?;
        self.dram.double_bit_rate = r.get_f64()?;
        self.tlb.transient_rate = r.get_f64()?;
        self.tlb.retry_penalty = Time::from_ps(r.get_u64()?);
        self.dir.timeout = if r.get_bool()? {
            Some(Time::from_ps(r.get_u64()?))
        } else {
            None
        };
        self.dir.retry_budget = r.get_u32()?;
        self.watchdog.enabled = r.get_bool()?;
        self.watchdog.period = Time::from_ps(r.get_u64()?);
        self.watchdog.quanta = r.get_u32()?;
        for knob in [
            &mut self.drop_data_delivery,
            &mut self.blackhole_resp,
            &mut self.drop_one_resp,
        ] {
            *knob = if r.get_bool()? {
                Some(r.get_u64()?)
            } else {
                None
            };
        }
        for loss in [&mut self.snoop_probe, &mut self.upd_ack] {
            loss.drop_rate = r.get_f64()?;
            loss.max_drops = r.get_u64()?;
        }
        Ok(())
    }
}

impl ccsvm_snap::Snapshot for Watchdog {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        w.put_u64(self.last_progress);
        w.put_u64(self.last_change.as_ps());
        w.put_u32(self.stale);
    }
    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.last_progress = r.get_u64()?;
        self.last_change = Time::from_ps(r.get_u64()?);
        self.stale = r.get_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_all_off_watchdog_on() {
        let cfg = FaultConfig::default();
        assert_eq!(cfg.noc.drop_rate, 0.0);
        assert_eq!(cfg.dram.single_bit_rate, 0.0);
        assert_eq!(cfg.dram.double_bit_rate, 0.0);
        assert_eq!(cfg.tlb.transient_rate, 0.0);
        assert_eq!(cfg.dir.timeout, None);
        assert!(cfg.watchdog.enabled);
        assert!(cfg.drop_data_delivery.is_none());
        assert_eq!(cfg.snoop_probe.drop_rate, 0.0);
        assert_eq!(cfg.upd_ack.drop_rate, 0.0);
    }

    #[test]
    fn streams_are_deterministic_and_domain_independent() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 42,
            ..FaultConfig::default()
        });
        let a1: Vec<u64> = {
            let mut s = plan.stream(FaultDomain::Noc);
            (0..8).map(|_| s.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut s = plan.stream(FaultDomain::Noc);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(a1, a2, "same domain, same seed: identical stream");

        let b: Vec<u64> = {
            let mut s = plan.stream(FaultDomain::Dram);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_ne!(a1, b, "different domains decorrelate");

        let t0: u64 = plan.stream(FaultDomain::Tlb(0)).next_u64();
        let t1: u64 = plan.stream(FaultDomain::Tlb(1)).next_u64();
        assert_ne!(t0, t1, "per-core TLB streams decorrelate");

        let sp: u64 = plan.stream(FaultDomain::SnoopProbe).next_u64();
        let ua: u64 = plan.stream(FaultDomain::UpdAck).next_u64();
        assert_ne!(sp, ua, "snoop-probe and upd-ack streams decorrelate");
        assert_ne!(sp, a1[0], "snoop-probe decorrelates from NoC");

        let other = FaultPlan::new(FaultConfig {
            seed: 43,
            ..FaultConfig::default()
        });
        let c: Vec<u64> = {
            let mut s = other.stream(FaultDomain::Noc);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_ne!(a1, c, "different seeds diverge");
    }

    #[test]
    fn fault_config_codec_round_trips_probe_loss() {
        use ccsvm_snap::{SnapReader, SnapWriter, Snapshot};
        let mut cfg = FaultConfig {
            seed: 99,
            ..FaultConfig::default()
        };
        cfg.dir.timeout = Some(Time::from_us(5));
        cfg.snoop_probe = ProbeLossConfig {
            drop_rate: 0.25,
            max_drops: 3,
        };
        cfg.upd_ack = ProbeLossConfig {
            drop_rate: 0.5,
            max_drops: 0,
        };
        let mut w = SnapWriter::new();
        cfg.save(&mut w);
        let bytes = w.into_vec();
        let mut restored = FaultConfig::default();
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored, cfg);
    }

    #[test]
    fn watchdog_snapshot_round_trips_staleness() {
        use ccsvm_snap::{SnapReader, SnapWriter, Snapshot};
        let mut wd = Watchdog::new();
        wd.observe(Time::from_ns(10), 5);
        wd.observe(Time::from_ns(20), 5);
        let mut w = SnapWriter::new();
        wd.save(&mut w);
        let bytes = w.into_vec();
        let mut restored = Watchdog::new();
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(restored, wd);
        // Both continue identically: one more stale period, then a reset.
        assert_eq!(
            restored.observe(Time::from_ns(30), 5),
            wd.observe(Time::from_ns(30), 5)
        );
        assert_eq!(restored.observe(Time::from_ns(40), 9), 0);
        assert_eq!(restored.last_progress_at(), Time::from_ns(40));
    }

    #[test]
    fn watchdog_counts_stale_periods_and_resets() {
        let mut wd = Watchdog::new();
        assert_eq!(wd.observe(Time::from_ns(10), 5), 0);
        assert_eq!(wd.observe(Time::from_ns(20), 5), 1);
        assert_eq!(wd.observe(Time::from_ns(30), 5), 2);
        assert_eq!(wd.last_progress_at(), Time::from_ns(10));
        assert_eq!(wd.observe(Time::from_ns(40), 6), 0, "progress resets");
        assert_eq!(wd.last_progress_at(), Time::from_ns(40));
        assert_eq!(wd.observe(Time::from_ns(50), 6), 1);
    }
}
