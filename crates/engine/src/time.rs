//! Simulated time and clock domains.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) simulated time, in picoseconds.
///
/// Picoseconds give sub-cycle resolution for every clock domain in the paper's
/// Table 2 (2.9 GHz CPUs ≈ 345 ps/cycle, 600 MHz MTTOPs ≈ 1667 ps/cycle) while
/// still covering ~213 days of simulated time in a `u64`.
///
/// # Examples
///
/// ```
/// use ccsvm_engine::Time;
/// let t = Time::from_ns(100);
/// assert_eq!(t.as_ps(), 100_000);
/// assert_eq!((t + t).as_ns(), 200.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// The zero instant / zero duration.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; useful as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in nanoseconds (lossy).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in microseconds (lossy).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in milliseconds (lossy).
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in seconds (lossy).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; returns [`Time::ZERO`] on underflow.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Addition with an overflow debug-assert (mirroring the multiply
    /// assert in the machine's `times()` helper): a wrapping sum of two
    /// in-range times means a mis-configured cost somewhere, and silently
    /// saturating would warp simulated time. Release builds saturate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sum overflows `u64` picoseconds.
    #[inline]
    pub fn plus(self, rhs: Time) -> Time {
        let sum = self.0.checked_add(rhs.0);
        debug_assert!(
            sum.is_some(),
            "time addition overflowed: {self:?} + {rhs:?}"
        );
        Time(sum.unwrap_or(u64::MAX))
    }
}

impl Add for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics in debug builds if the sum overflows; see [`Time::plus`].
    #[inline]
    fn add(self, rhs: Time) -> Time {
        self.plus(rhs)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`Time::saturating_sub`] when underflow is expected.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(rhs.0 <= self.0, "time underflow: {self:?} - {rhs:?}");
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// A clock domain: converts cycle counts into [`Time`] durations.
///
/// # Examples
///
/// ```
/// use ccsvm_engine::Clock;
/// let mttop = Clock::from_mhz(600.0);
/// assert_eq!(mttop.cycles(3).as_ps(), 5001); // 1667 ps/cycle
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Clock {
    period_ps: u64,
}

impl Clock {
    /// Creates a clock from a frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not a positive, finite frequency representable with a
    /// picosecond-or-longer period.
    pub fn from_hz(hz: f64) -> Clock {
        assert!(hz.is_finite() && hz > 0.0, "invalid clock frequency {hz}");
        let period = (1e12 / hz).round();
        assert!(period >= 1.0, "frequency {hz} Hz exceeds 1 THz resolution");
        Clock {
            period_ps: period as u64,
        }
    }

    /// Creates a clock from a frequency in megahertz.
    pub fn from_mhz(mhz: f64) -> Clock {
        Clock::from_hz(mhz * 1e6)
    }

    /// Creates a clock from a frequency in gigahertz.
    pub fn from_ghz(ghz: f64) -> Clock {
        Clock::from_hz(ghz * 1e9)
    }

    /// The period of one cycle.
    #[inline]
    pub fn period(self) -> Time {
        Time(self.period_ps)
    }

    /// Duration of `n` cycles.
    #[inline]
    pub fn cycles(self, n: u64) -> Time {
        Time(self.period_ps.saturating_mul(n))
    }

    /// How many *complete* cycles fit in `t`.
    #[inline]
    pub fn cycles_in(self, t: Time) -> u64 {
        t.0 / self.period_ps
    }

    /// The frequency of this clock in hertz (lossy).
    pub fn hz(self) -> f64 {
        1e12 / self.period_ps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ns(5);
        let b = Time::from_ns(3);
        assert_eq!(a + b, Time::from_ns(8));
        assert_eq!(a - b, Time::from_ns(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_ns(8));
        c -= b;
        assert_eq!(c, a);
    }

    /// Satellite (PR 4): addition overflow is a loud debug-assert, not a
    /// silent saturation — mirroring the multiply assert in the machine's
    /// `times()` helper.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "time addition overflowed"))]
    fn time_add_overflow_is_guarded() {
        let _ = Time::MAX + Time::from_ns(1);
    }

    /// In release builds (no debug assertions) the overflow saturates so a
    /// production sweep degrades instead of aborting.
    #[cfg(not(debug_assertions))]
    #[test]
    fn time_add_saturates_in_release() {
        assert_eq!(Time::MAX + Time::from_ns(1), Time::MAX);
        assert_eq!(Time::MAX.plus(Time::from_ns(1)), Time::MAX);
    }

    #[test]
    fn time_sum() {
        let total: Time = (1..=4).map(Time::from_ns).sum();
        assert_eq!(total, Time::from_ns(10));
    }

    #[test]
    fn time_ordering_and_minmax() {
        let a = Time::from_ns(1);
        let b = Time::from_ns(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn time_display_units() {
        assert_eq!(Time::from_ps(5).to_string(), "5ps");
        assert_eq!(Time::from_ns(5).to_string(), "5.000ns");
        assert_eq!(Time::from_us(5).to_string(), "5.000us");
        assert_eq!(Time::from_ms(5).to_string(), "5.000ms");
        assert_eq!(Time::from_ms(5000).to_string(), "5.000s");
    }

    #[test]
    fn clock_periods_match_paper_table2() {
        // 2.9 GHz CPU: ~345 ps. 600 MHz MTTOP: ~1667 ps.
        assert_eq!(Clock::from_ghz(2.9).period().as_ps(), 345);
        assert_eq!(Clock::from_mhz(600.0).period().as_ps(), 1667);
    }

    #[test]
    fn clock_cycle_conversions() {
        let c = Clock::from_ghz(1.0); // 1000 ps period
        assert_eq!(c.cycles(7), Time::from_ns(7));
        assert_eq!(c.cycles_in(Time::from_ns(7)), 7);
        assert_eq!(c.cycles_in(Time::from_ps(6_999)), 6);
        assert!((c.hz() - 1e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid clock frequency")]
    fn clock_rejects_zero() {
        let _ = Clock::from_hz(0.0);
    }
}
