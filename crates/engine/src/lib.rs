//! Deterministic discrete-event simulation core for the `ccsvm` simulator.
//!
//! This crate provides the substrate every other simulator crate builds on:
//!
//! * [`Time`] — simulated time in picoseconds, with saturating arithmetic.
//! * [`Clock`] — a frequency domain that converts cycle counts to [`Time`].
//! * [`EventQueue`] — a deterministic priority queue of timestamped events.
//!   Ties are broken by an insertion sequence number so that a given set of
//!   `push` calls always drains in the same order, independent of heap
//!   internals. Determinism is a hard requirement: every experiment in the
//!   paper reproduction must be bit-for-bit repeatable.
//! * [`Stats`] — an ordered name → value table used for run reports.
//! * [`SplitMix64`] — a tiny seeded RNG for components that need pseudo-random
//!   behaviour (e.g. workload generators) without pulling `rand` into the
//!   simulator core.
//! * [`FaultPlan`] / [`Watchdog`] — seeded, replay-deterministic fault
//!   injection (NoC retransmissions, DRAM ECC flips, transient TLB-walk
//!   failures, directory timeouts) and forward-progress tracking.
//!
//! # Examples
//!
//! ```
//! use ccsvm_engine::{Clock, EventQueue, Time};
//!
//! let cpu = Clock::from_ghz(2.9);
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(cpu.cycles(10), "ten cpu cycles");
//! q.push(Time::ZERO, "now");
//! assert_eq!(q.pop().unwrap().1, "now");
//! assert_eq!(q.pop().unwrap().1, "ten cpu cycles");
//! assert!(q.pop().is_none());
//! ```

pub mod campaign;
mod event;
mod fault;
pub mod fxmap;
mod rng;
pub mod sanitizer;
mod spec;
mod stats;
mod time;

pub use campaign::{CampaignDomain, PlanSpec};
pub use event::{EventQueue, ReferenceEventQueue, ScanControl};
pub use spec::SpecStats;
pub use fault::{
    DirTimeoutConfig, DramFaultConfig, FaultConfig, FaultDomain, FaultPlan, NocFaultConfig,
    ProbeLossConfig, TlbFaultConfig, Watchdog, WatchdogConfig,
};
pub use fxmap::{fx_map_with_capacity, FxHashMap, FxHashSet};
pub use rng::SplitMix64;
pub use sanitizer::{
    EvRecord, EvRing, InvariantId, InvariantMask, Mutation, MutationKind, SanitizerConfig,
    Violation,
};
pub use stats::{stat_id, StatId, Stats};
pub use time::{Clock, Time};
