//! Speculative epoch executor telemetry (DESIGN §12).
//!
//! Host-side counters describing how the cross-timestamp epoch pipeline
//! behaved: how many epochs formed, how many members committed clean versus
//! rolled back and re-executed serially, and how often the bounded undo
//! journal overflowed into a full pre-image snapshot. Deliberately a plain
//! struct outside [`Stats`](crate::Stats) — speculation must never perturb
//! simulated results, so its telemetry must never enter a `RunReport`.

/// Counters for the speculative epoch executor. All host-side telemetry:
/// never serialized into snapshots and never part of a run report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Multi-member epochs executed speculatively.
    pub epochs: u64,
    /// Members claimed into those epochs (each one live MTTOP batch event).
    pub members: u64,
    /// Members whose speculative execution committed unchanged.
    pub committed: u64,
    /// Members rolled back (footprint conflict or ordering hazard) and
    /// re-executed serially at their original key.
    pub rolled_back: u64,
    /// Members extracted into an epoch but already stale (superseded batch
    /// schedule) by their commit slot — discarded exactly as serial would.
    pub stale: u64,
    /// Rollbacks that took the snapshot-restore slow path because the
    /// bounded undo journal overflowed mid-speculation.
    pub overflows: u64,
    /// Epoch-wide rollbacks forced by a non-memory event (or a poison/abort
    /// transition) draining before the last member committed.
    pub rollback_all: u64,
    /// Live MTTOP batch events dispatched in total (epoch members or not);
    /// the denominator for epoch coverage.
    pub batches_total: u64,
}

impl SpecStats {
    /// Fraction of live MTTOP batches that committed speculatively, in
    /// [0, 1]. The headline "epoch coverage" number in the perf artifact.
    pub fn coverage(&self) -> f64 {
        if self.batches_total == 0 {
            0.0
        } else {
            self.committed as f64 / self.batches_total as f64
        }
    }

    /// Fraction of claimed members that committed (vs rolled back/stale),
    /// in [0, 1]; 1.0 when no epoch ever formed.
    pub fn commit_rate(&self) -> f64 {
        if self.members == 0 {
            1.0
        } else {
            self.committed as f64 / self.members as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_and_partial() {
        let mut s = SpecStats::default();
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.commit_rate(), 1.0);
        s.batches_total = 8;
        s.members = 6;
        s.committed = 3;
        assert_eq!(s.coverage(), 0.375);
        assert_eq!(s.commit_rate(), 0.5);
    }
}
