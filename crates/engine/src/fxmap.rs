//! A fast, deterministic hasher for the simulator's block-addressed hot
//! maps (MSHRs, directory transactions, sparse DRAM frames).
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with per-process
//! random keys — HashDoS protection the simulator does not need: every key
//! it hashes is an internally-generated block number or flight ID, not
//! attacker-controlled input. This module provides the rustc/firefox "Fx"
//! multiply-rotate hash as a drop-in `BuildHasher`, implemented here so the
//! workspace stays free of external dependencies.
//!
//! Two properties matter for the simulator:
//!
//! * **Speed**: one rotate + xor + multiply per 8-byte word, no key setup,
//!   so a `u64`-keyed probe is a handful of cycles instead of SipHash's
//!   several dozen.
//! * **Determinism**: no random seed, so a map's internal layout is
//!   identical on every run. (Simulation *results* must not depend on map
//!   iteration order anyway — see DESIGN.md — but a fixed layout means
//!   even accidental order-dependence cannot flake across runs.)
//!
//! # Examples
//!
//! ```
//! use ccsvm_engine::fxmap::FxHashMap;
//! let mut mshrs: FxHashMap<u64, &str> = FxHashMap::default();
//! mshrs.insert(0x40, "pending");
//! assert_eq!(mshrs.get(&0x40), Some(&"pending"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Creates an [`FxHashMap`] pre-sized for `capacity` entries, for tables
/// whose maximum occupancy is known from config (e.g. MSHR count), so the
/// hot path never rehashes.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher (as used by rustc): word-at-a-time
/// `hash = (hash.rotl(5) ^ word) * SEED`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(v: u64) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(0x40), hash_of(0x40));
        assert_ne!(hash_of(0x40), hash_of(0x80));
    }

    #[test]
    fn spreads_block_aligned_keys() {
        // Block numbers are sequential small integers; the multiply must
        // spread them across the whole 64-bit range so high bits (which
        // HashMap uses for bucket selection) differ.
        let hashes: Vec<u64> = (0..64u64).map(hash_of).collect();
        let mut top_bytes: Vec<u8> = hashes.iter().map(|h| (h >> 56) as u8).collect();
        top_bytes.sort_unstable();
        top_bytes.dedup();
        assert!(top_bytes.len() > 32, "top bytes collide: {top_bytes:?}");
    }

    #[test]
    fn map_roundtrip_and_capacity() {
        let mut m: FxHashMap<u64, u32> = fx_map_with_capacity(16);
        assert!(m.capacity() >= 16);
        for i in 0..100u64 {
            m.insert(i * 64, i as u32);
        }
        for i in 0..100u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn byte_stream_matches_word_stream() {
        // `write` on an 8-byte LE buffer must agree with `write_u64`, so a
        // `u64` hashed via any code path lands in the same bucket.
        let mut a = FxHasher::default();
        a.write(&0xDEAD_BEEF_u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn set_works() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(1);
        s.insert(1);
        assert_eq!(s.len(), 1);
    }
}
