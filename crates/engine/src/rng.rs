//! A tiny deterministic RNG for simulator-internal pseudo-randomness.

/// SplitMix64: a small, fast, high-quality 64-bit PRNG.
///
/// Used for guest-visible pseudo-randomness (e.g. the LCG-style input
/// initialization the paper's benchmarks perform with `rand()`) and anywhere
/// the simulator needs repeatable "random" choices without depending on the
/// `rand` crate in the hot path.
///
/// # Examples
///
/// ```
/// use ccsvm_engine::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The current stream position, for checkpointing. Restoring via
    /// [`SplitMix64::set_state`] resumes the exact draw sequence.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a stream position captured by [`SplitMix64::state`].
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    /// The next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for the
        // simulator's purposes and the result stays deterministic.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl ccsvm_snap::Snapshot for SplitMix64 {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        w.put_u64(self.state);
    }
    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.state = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(123);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn snapshot_resumes_exact_stream() {
        use ccsvm_snap::{SnapReader, SnapWriter, Snapshot};
        let mut a = SplitMix64::new(99);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let bytes = w.into_vec();
        let mut b = SplitMix64::new(0);
        b.load(&mut SnapReader::new(&bytes)).unwrap();
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SplitMix64::new(2024);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }
}
