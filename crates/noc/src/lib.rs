//! 2D torus network-on-chip model for the CCSVM chip.
//!
//! The paper's microarchitecture (§3.1, Table 2) connects CPU cores, MTTOP
//! cores, the banked shared L2/directory, the MIFD, and the memory controllers
//! over a 2D **torus** with 12 GB/s links (Figure 1 draws it as a mesh for
//! clarity; it is a torus).
//!
//! This crate models:
//!
//! * the torus [`Topology`] with wraparound links,
//! * deterministic **dimension-order (X then Y) routing** that picks the
//!   shorter wrap direction per dimension,
//! * per-directed-link **serialization latency** (`bytes / bandwidth`) with
//!   link occupancy tracking, so concurrent messages contend for links, and
//! * per-hop router/link latency.
//!
//! The network does not own an event queue: [`Network::send`] computes the
//! delivery time of a message and the caller (the machine model) schedules the
//! delivery event. This keeps the NoC reusable by both the CCSVM machine and
//! the APU baseline.
//!
//! # Examples
//!
//! ```
//! use ccsvm_engine::Time;
//! use ccsvm_noc::{Network, NocConfig, NodeId, Topology};
//!
//! let topo = Topology::torus(4, 4);
//! let mut net = Network::new(topo, NocConfig::paper_default());
//! let arrive = net.send(Time::ZERO, NodeId(0), NodeId(5), 72);
//! assert!(arrive > Time::ZERO);
//! ```

use ccsvm_engine::{stat_id, NocFaultConfig, SplitMix64, Stats, Time};

/// Identifies a node (router) on the torus.
///
/// Node `NodeId(i)` sits at coordinates `(i % cols, i / cols)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// The shape of the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    cols: usize,
    rows: usize,
}

impl Topology {
    /// A `cols × rows` 2D torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn torus(cols: usize, rows: usize) -> Topology {
        assert!(cols > 0 && rows > 0, "torus dimensions must be positive");
        Topology { cols, rows }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Whether the topology has no nodes (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Columns in the torus.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows in the torus.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(node.0 < self.len(), "node {node:?} out of range");
        (node.0 % self.cols, node.0 / self.cols)
    }

    /// The node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.cols && y < self.rows, "({x},{y}) out of range");
        NodeId(y * self.cols + x)
    }

    /// Signed step (+1 / -1 with wraparound) and distance along one dimension,
    /// choosing the shorter direction (ties go to the positive direction).
    fn step(from: usize, to: usize, size: usize) -> (isize, usize) {
        let fwd = (to + size - from) % size;
        let bwd = (from + size - to) % size;
        if fwd <= bwd {
            (1, fwd)
        } else {
            (-1, bwd)
        }
    }

    /// Minimal hop count between two nodes under dimension-order torus routing.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        Topology::step(sx, dx, self.cols).1 + Topology::step(sy, dy, self.rows).1
    }

    /// The full route from `src` to `dst` (inclusive of both endpoints) under
    /// dimension-order (X then Y) routing with shortest wrap direction.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = vec![self.node_at(x, y)];
        let (xdir, xdist) = Topology::step(x, dx, self.cols);
        for _ in 0..xdist {
            x = Topology::wrap(x, xdir, self.cols);
            path.push(self.node_at(x, y));
        }
        let (ydir, ydist) = Topology::step(y, dy, self.rows);
        for _ in 0..ydist {
            y = Topology::wrap(y, ydir, self.rows);
            path.push(self.node_at(x, y));
        }
        path
    }

    fn wrap(v: usize, dir: isize, size: usize) -> usize {
        if dir > 0 {
            (v + 1) % size
        } else {
            (v + size - 1) % size
        }
    }
}

/// Timing parameters for the interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocConfig {
    /// Link bandwidth in bytes per nanosecond (12 GB/s ⇒ 12.0).
    pub link_bytes_per_ns: f64,
    /// Fixed per-hop router + link traversal latency.
    pub hop_latency: Time,
    /// Fixed overhead at injection/ejection (NI latency).
    pub endpoint_latency: Time,
}

impl NocConfig {
    /// The paper's Table 2 interconnect: 12 GB/s links; 1 ns per hop and 0.5 ns
    /// endpoint overhead (typical for an on-chip router at uncore speed).
    pub fn paper_default() -> NocConfig {
        NocConfig {
            link_bytes_per_ns: 12.0,
            hop_latency: Time::from_ps(1_000),
            endpoint_latency: Time::from_ps(500),
        }
    }

    /// Serialization delay for a message of `bytes` on one link.
    pub fn serialization(&self, bytes: usize) -> Time {
        assert!(
            self.link_bytes_per_ns > 0.0,
            "link bandwidth must be positive"
        );
        Time::from_ps((bytes as f64 * 1_000.0 / self.link_bytes_per_ns).ceil() as u64)
    }
}

/// Installed fault-injection state: knobs, a dedicated RNG stream, and
/// retransmission counters. Absent (`None` in [`Network`]) unless faults are
/// enabled, so the healthy path stays branch-cheap and bit-identical.
#[derive(Clone, Debug, PartialEq)]
struct NocFaults {
    cfg: NocFaultConfig,
    rng: SplitMix64,
    /// Total link-level retransmissions charged.
    retransmissions: u64,
    /// Messages that experienced at least one retransmission.
    faulted_messages: u64,
}

/// The interconnect: topology + link occupancy + traffic statistics.
///
/// See the [crate docs](crate) for the modeling approach.
#[derive(Clone, Debug)]
pub struct Network {
    topo: Topology,
    config: NocConfig,
    /// `link_free[node][dir]`: earliest time the directed link leaving `node`
    /// in direction `dir` (0=+X, 1=-X, 2=+Y, 3=-Y) is idle.
    link_free: Vec<[Time; 4]>,
    messages: u64,
    total_bytes: u64,
    total_hops: u64,
    /// Message-conservation audit counters (DESIGN §9, NOC-CONSERVE): uncore
    /// events the caller injected (`sent`), delivered (`delivered`), and
    /// intentionally discarded under a fault plan (`sanctioned`). Always
    /// maintained — counting is cheap and keeps snapshot images identical
    /// whether or not the sanitizer evaluates them.
    audit_sent: u64,
    audit_delivered: u64,
    audit_sanctioned: u64,
    faults: Option<NocFaults>,
}

impl Network {
    /// Creates a network over `topo` with timing `config`.
    pub fn new(topo: Topology, config: NocConfig) -> Network {
        Network {
            topo,
            config,
            link_free: vec![[Time::ZERO; 4]; topo.len()],
            messages: 0,
            total_bytes: 0,
            total_hops: 0,
            audit_sent: 0,
            audit_delivered: 0,
            audit_sanctioned: 0,
            faults: None,
        }
    }

    /// Records `n` uncore events entering the network layer.
    pub fn note_sent(&mut self, n: u64) {
        self.audit_sent += n;
    }

    /// Records one uncore event delivered to its destination.
    pub fn note_delivered(&mut self) {
        self.audit_delivered += 1;
    }

    /// Records one uncore event intentionally discarded by a fault plan
    /// (a *sanctioned* loss, exempt from NOC-CONSERVE).
    pub fn note_sanctioned(&mut self) {
        self.audit_sanctioned += 1;
    }

    /// The audit counters `(sent, delivered, sanctioned)` for the
    /// NOC-CONSERVE check; `sent` must equal `delivered + sanctioned +
    /// still-queued` at any quiescent point.
    pub fn audit_counters(&self) -> (u64, u64, u64) {
        (self.audit_sent, self.audit_delivered, self.audit_sanctioned)
    }

    /// Enables link-fault injection: each message may be "dropped" and
    /// retransmitted with capped exponential backoff, drawn from `rng`.
    /// Delivery is still guaranteed (link-level retry), only delayed and
    /// counted, so higher layers need no loss handling.
    pub fn install_faults(&mut self, cfg: NocFaultConfig, rng: SplitMix64) {
        self.faults = Some(NocFaults {
            cfg,
            rng,
            retransmissions: 0,
            faulted_messages: 0,
        });
    }

    /// The topology this network routes over.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The timing configuration.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// Sends `bytes` from `src` to `dst` starting at time `now`, reserving
    /// link time along the route, and returns the delivery time at `dst`.
    ///
    /// A `src == dst` message (e.g. a core talking to its co-located L2 bank)
    /// pays only the endpoint latency.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn send(&mut self, now: Time, src: NodeId, dst: NodeId, bytes: usize) -> Time {
        let route = self.topo.route(src, dst);
        let ser = self.config.serialization(bytes);
        let mut t = now + self.config.endpoint_latency;
        if let Some(f) = &mut self.faults {
            // Link-level retry: each draw below drop_rate charges one
            // retransmission with exponential backoff, capped per retry and
            // bounded in count. Modeled as extra latency before injection;
            // retransmitted flits are not re-charged against link occupancy.
            let mut retries = 0u32;
            while retries < f.cfg.max_retries && f.rng.next_f64() < f.cfg.drop_rate {
                let backoff = Time::from_ps(
                    (f.cfg.backoff.as_ps() << retries.min(20)).min(f.cfg.backoff_cap.as_ps()),
                );
                t += backoff;
                retries += 1;
            }
            if retries > 0 {
                f.retransmissions += u64::from(retries);
                f.faulted_messages += 1;
            }
        }
        for pair in route.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            let dir = self.direction(from, to);
            let link = &mut self.link_free[from.0][dir];
            let depart = t.max(*link);
            *link = depart + ser;
            t = depart + ser + self.config.hop_latency;
        }
        self.messages += 1;
        self.total_bytes += bytes as u64;
        self.total_hops += (route.len() - 1) as u64;
        t + self.config.endpoint_latency
    }

    /// Direction index of the link from `from` to its neighbour `to`.
    fn direction(&self, from: NodeId, to: NodeId) -> usize {
        let (fx, fy) = self.topo.coords(from);
        let (tx, ty) = self.topo.coords(to);
        if fy == ty {
            if (fx + 1) % self.topo.cols() == tx {
                0 // +X
            } else {
                1 // -X
            }
        } else if (fy + 1) % self.topo.rows() == ty {
            2 // +Y
        } else {
            3 // -Y
        }
    }

    /// Traffic statistics: message count, total payload bytes, total hops.
    /// Fault counters appear only when fault injection is installed, keeping
    /// healthy-run reports identical to a build without the fault layer.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("messages"), self.messages as f64);
        s.set_id(stat_id("bytes"), self.total_bytes as f64);
        s.set_id(stat_id("hops"), self.total_hops as f64);
        if let Some(f) = &self.faults {
            s.set_id(stat_id("retransmissions"), f.retransmissions as f64);
            s.set_id(stat_id("faulted_messages"), f.faulted_messages as f64);
        }
        s
    }

    /// Number of directed links still reserved past `now` (diagnostic for
    /// the watchdog dump).
    pub fn busy_links(&self, now: Time) -> usize {
        self.link_free
            .iter()
            .flat_map(|dirs| dirs.iter())
            .filter(|&&free| free > now)
            .count()
    }

    /// The furthest-in-the-future link reservation (diagnostic for the
    /// watchdog dump): how deep the worst link backlog runs past `now`.
    pub fn max_backlog(&self, now: Time) -> Time {
        self.link_free
            .iter()
            .flat_map(|dirs| dirs.iter())
            .map(|&free| free.saturating_sub(now))
            .max()
            .unwrap_or(Time::ZERO)
    }
}

/// Mutable run-state only: link reservations, traffic counters, and the
/// fault stream position. Topology and timing config are construction-time
/// and re-derived by rebuilding from the same `SystemConfig`; the fault
/// *knobs* likewise arrive via [`Network::install_faults`] before `load`,
/// which restores only the RNG cursor and counters into them.
impl ccsvm_snap::Snapshot for Network {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        w.put_usize(self.link_free.len());
        for dirs in &self.link_free {
            for t in dirs {
                w.put_u64(t.as_ps());
            }
        }
        w.put_u64(self.messages);
        w.put_u64(self.total_bytes);
        w.put_u64(self.total_hops);
        w.put_u64(self.audit_sent);
        w.put_u64(self.audit_delivered);
        w.put_u64(self.audit_sanctioned);
        w.put_bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            w.put_u64(f.rng.state());
            w.put_u64(f.retransmissions);
            w.put_u64(f.faulted_messages);
        }
    }
    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        let n = r.get_usize()?;
        if n != self.link_free.len() {
            return Err(ccsvm_snap::SnapError::Corrupt {
                what: format!(
                    "noc link table has {n} nodes, machine has {}",
                    self.link_free.len()
                ),
            });
        }
        for dirs in &mut self.link_free {
            for t in dirs.iter_mut() {
                *t = Time::from_ps(r.get_u64()?);
            }
        }
        self.messages = r.get_u64()?;
        self.total_bytes = r.get_u64()?;
        self.total_hops = r.get_u64()?;
        self.audit_sent = r.get_u64()?;
        self.audit_delivered = r.get_u64()?;
        self.audit_sanctioned = r.get_u64()?;
        let has_faults = r.get_bool()?;
        if has_faults != self.faults.is_some() {
            return Err(ccsvm_snap::SnapError::Corrupt {
                what: "noc fault-injection presence differs from config".to_string(),
            });
        }
        if let Some(f) = &mut self.faults {
            f.rng.set_state(r.get_u64()?);
            f.retransmissions = r.get_u64()?;
            f.faulted_messages = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = Topology::torus(4, 5);
        assert_eq!(t.len(), 20);
        for i in 0..t.len() {
            let (x, y) = t.coords(NodeId(i));
            assert_eq!(t.node_at(x, y), NodeId(i));
        }
    }

    #[test]
    fn hops_uses_wraparound() {
        let t = Topology::torus(4, 4);
        // (0,0) -> (3,0): 1 hop backwards around the wrap, not 3 forwards.
        assert_eq!(t.hops(t.node_at(0, 0), t.node_at(3, 0)), 1);
        // (0,0) -> (2,2): 2 + 2 hops.
        assert_eq!(t.hops(t.node_at(0, 0), t.node_at(2, 2)), 4);
        assert_eq!(t.hops(NodeId(5), NodeId(5)), 0);
    }

    #[test]
    fn route_is_x_then_y_and_length_matches_hops() {
        let t = Topology::torus(4, 4);
        let src = t.node_at(0, 0);
        let dst = t.node_at(2, 1);
        let route = t.route(src, dst);
        assert_eq!(route.len(), t.hops(src, dst) + 1);
        assert_eq!(route[0], src);
        assert_eq!(*route.last().unwrap(), dst);
        // X moves first: second node differs in X only.
        let (x1, y1) = t.coords(route[1]);
        assert_eq!(y1, 0);
        assert_eq!(x1, 1);
    }

    #[test]
    fn self_route_is_trivial() {
        let t = Topology::torus(3, 3);
        assert_eq!(t.route(NodeId(4), NodeId(4)), vec![NodeId(4)]);
    }

    #[test]
    fn serialization_latency_matches_bandwidth() {
        let cfg = NocConfig::paper_default();
        // 72 bytes at 12 B/ns = 6 ns.
        assert_eq!(cfg.serialization(72), Time::from_ns(6));
        assert_eq!(cfg.serialization(0), Time::ZERO);
    }

    #[test]
    fn send_latency_grows_with_distance() {
        let t = Topology::torus(4, 4);
        let mut net = Network::new(t, NocConfig::paper_default());
        let near = net.send(Time::ZERO, t.node_at(0, 0), t.node_at(1, 0), 8);
        let mut net2 = Network::new(t, NocConfig::paper_default());
        let far = net2.send(Time::ZERO, t.node_at(0, 0), t.node_at(2, 2), 8);
        assert!(far > near);
    }

    #[test]
    fn local_delivery_pays_only_endpoints() {
        let t = Topology::torus(4, 4);
        let mut net = Network::new(t, NocConfig::paper_default());
        let arrive = net.send(Time::from_ns(10), NodeId(3), NodeId(3), 64);
        assert_eq!(arrive, Time::from_ns(10) + Time::from_ns(1));
    }

    #[test]
    fn links_contend() {
        let t = Topology::torus(4, 1);
        let cfg = NocConfig {
            link_bytes_per_ns: 1.0, // 1 byte/ns: big serialization delays
            hop_latency: Time::ZERO,
            endpoint_latency: Time::ZERO,
        };
        let mut net = Network::new(t, cfg);
        let a = net.send(Time::ZERO, NodeId(0), NodeId(1), 100);
        // Same link immediately afterwards: must wait for the first message.
        let b = net.send(Time::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(a, Time::from_ns(100));
        assert_eq!(b, Time::from_ns(200));
        // Opposite-direction link is free.
        let c = net.send(Time::ZERO, NodeId(1), NodeId(0), 100);
        assert_eq!(c, Time::from_ns(100));
    }

    #[test]
    fn stats_accumulate() {
        let t = Topology::torus(4, 4);
        let mut net = Network::new(t, NocConfig::paper_default());
        net.send(Time::ZERO, NodeId(0), NodeId(1), 8);
        net.send(Time::ZERO, NodeId(0), NodeId(2), 72);
        let s = net.stats();
        assert_eq!(s.get("messages"), 2.0);
        assert_eq!(s.get("bytes"), 80.0);
        assert_eq!(s.get("hops"), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        Topology::torus(2, 2).coords(NodeId(4));
    }
}

#[cfg(all(test, feature = "slow-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Routes always reach the destination, have hop-count length, and
        /// every step moves between torus neighbours.
        #[test]
        fn routes_are_valid(cols in 1usize..8, rows in 1usize..8,
                            s in 0usize..64, d in 0usize..64) {
            let t = Topology::torus(cols, rows);
            let src = NodeId(s % t.len());
            let dst = NodeId(d % t.len());
            let route = t.route(src, dst);
            prop_assert_eq!(route[0], src);
            prop_assert_eq!(*route.last().unwrap(), dst);
            prop_assert_eq!(route.len(), t.hops(src, dst) + 1);
            for w in route.windows(2) {
                let (ax, ay) = t.coords(w[0]);
                let (bx, by) = t.coords(w[1]);
                let xd = (ax as isize - bx as isize).rem_euclid(cols as isize);
                let yd = (ay as isize - by as isize).rem_euclid(rows as isize);
                let x_neighbour = ay == by && (xd == 1 || xd == cols as isize - 1);
                let y_neighbour = ax == bx && (yd == 1 || yd == rows as isize - 1);
                prop_assert!(x_neighbour || y_neighbour, "non-neighbour step");
            }
        }

        /// Hop count is bounded by the torus diameter and symmetric.
        #[test]
        fn hops_bounded_and_symmetric(cols in 1usize..8, rows in 1usize..8,
                                      s in 0usize..64, d in 0usize..64) {
            let t = Topology::torus(cols, rows);
            let src = NodeId(s % t.len());
            let dst = NodeId(d % t.len());
            let h = t.hops(src, dst);
            prop_assert!(h <= cols / 2 + rows / 2);
            prop_assert_eq!(h, t.hops(dst, src));
        }

        /// Delivery time is monotone in send time on an otherwise-idle net.
        #[test]
        fn delivery_monotone(start in 0u64..1000) {
            let t = Topology::torus(4, 4);
            let mut n1 = Network::new(t, NocConfig::paper_default());
            let mut n2 = Network::new(t, NocConfig::paper_default());
            let a = n1.send(Time::from_ns(start), NodeId(0), NodeId(9), 72);
            let b = n2.send(Time::from_ns(start + 1), NodeId(0), NodeId(9), 72);
            prop_assert!(b > a);
        }
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use ccsvm_snap::{SnapReader, SnapWriter, Snapshot};

    /// Mid-run snapshot of a faulty network: the restored copy must issue
    /// identical delivery times (same link backlogs, same RNG stream) and
    /// identical stats from then on.
    #[test]
    fn network_round_trip_resumes_identically() {
        let topo = Topology::torus(4, 4);
        let cfg = NocFaultConfig {
            drop_rate: 0.4,
            ..NocFaultConfig::default()
        };
        let mut net = Network::new(topo, NocConfig::paper_default());
        net.install_faults(cfg, SplitMix64::new(11));
        for i in 0..60u64 {
            net.send(
                Time::from_ns(i),
                NodeId((i % 16) as usize),
                NodeId(((i * 7 + 1) % 16) as usize),
                72,
            );
        }
        let mut w = SnapWriter::new();
        net.save(&mut w);
        let bytes = w.into_vec();

        let mut restored = Network::new(topo, NocConfig::paper_default());
        restored.install_faults(cfg, SplitMix64::new(0xDEAD)); // seed overwritten by load
        restored.load(&mut SnapReader::new(&bytes)).unwrap();
        for i in 60..120u64 {
            let t = Time::from_ns(i);
            let (src, dst) = (
                NodeId((i % 16) as usize),
                NodeId(((i * 7 + 1) % 16) as usize),
            );
            assert_eq!(net.send(t, src, dst, 72), restored.send(t, src, dst, 72));
        }
        assert_eq!(net.stats(), restored.stats());
    }

    #[test]
    fn fault_presence_mismatch_is_typed_error() {
        let topo = Topology::torus(2, 2);
        let mut net = Network::new(topo, NocConfig::paper_default());
        net.install_faults(NocFaultConfig::default(), SplitMix64::new(1));
        let mut w = SnapWriter::new();
        net.save(&mut w);
        let bytes = w.into_vec();
        let mut plain = Network::new(topo, NocConfig::paper_default());
        assert!(matches!(
            plain.load(&mut SnapReader::new(&bytes)),
            Err(ccsvm_snap::SnapError::Corrupt { .. })
        ));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    #[test]
    fn disabled_faults_do_not_change_timing_or_stats() {
        let topo = Topology::torus(4, 4);
        let mut plain = Network::new(topo, NocConfig::paper_default());
        let mut faulty = Network::new(topo, NocConfig::paper_default());
        faulty.install_faults(
            NocFaultConfig {
                drop_rate: 0.0,
                ..NocFaultConfig::default()
            },
            SplitMix64::new(7),
        );
        for i in 0..50u64 {
            let t = Time::from_ns(i * 3);
            let (src, dst) = (
                NodeId((i % 16) as usize),
                NodeId(((i * 5 + 3) % 16) as usize),
            );
            assert_eq!(plain.send(t, src, dst, 72), faulty.send(t, src, dst, 72));
        }
        // Fault counter keys appear only when installed; values stay zero at
        // rate 0 so the timing above matched.
        assert_eq!(faulty.stats().get("retransmissions"), 0.0);
        assert!(!plain.stats().contains("retransmissions"));
    }

    #[test]
    fn retransmissions_delay_bounded_and_replay_deterministically() {
        let topo = Topology::torus(4, 4);
        let cfg = NocFaultConfig {
            drop_rate: 0.5,
            max_retries: 4,
            backoff: Time::from_ns(10),
            backoff_cap: Time::from_ns(40),
        };
        let run = |seed: u64| {
            let mut net = Network::new(topo, NocConfig::paper_default());
            net.install_faults(cfg, SplitMix64::new(seed));
            let deliveries: Vec<Time> = (0..200u64)
                .map(|i| {
                    net.send(
                        Time::from_ns(i * 2),
                        NodeId((i % 16) as usize),
                        NodeId(((i * 7 + 1) % 16) as usize),
                        72,
                    )
                })
                .collect();
            (deliveries, net.stats().get("retransmissions"))
        };
        let (a, ra) = run(1);
        let (b, rb) = run(1);
        assert_eq!(a, b, "same seed: identical deliveries");
        assert_eq!(ra, rb);
        assert!(ra > 0.0, "at 50% drop rate some retransmissions must occur");
        let (c, _) = run(2);
        assert_ne!(a, c, "different seeds diverge");

        // Worst-case added delay is bounded: max_retries * backoff_cap.
        let mut clean = Network::new(topo, NocConfig::paper_default());
        let mut faulty = Network::new(topo, NocConfig::paper_default());
        faulty.install_faults(cfg, SplitMix64::new(3));
        for i in 0..100u64 {
            let t = Time::from_ns(i * 2);
            let (src, dst) = (
                NodeId((i % 16) as usize),
                NodeId(((i * 3 + 2) % 16) as usize),
            );
            let base = clean.send(t, src, dst, 72);
            let delayed = faulty.send(t, src, dst, 72);
            assert!(delayed >= base);
            assert!(delayed <= base + Time::from_ns(4 * 40));
        }
    }
}
