//! End-to-end MOESI protocol tests: drive the full `MemorySystem` (L1s +
//! directory banks + DRAM) over a real torus NoC with a local event queue.

use ccsvm_engine::{EventQueue, Time};
use ccsvm_mem::{
    Access, AccessResult, AtomicOp, BankConfig, CacheConfig, Completion, DramConfig, L1Config,
    MemConfig, MemEvent, MemorySystem, PhysAddr, PortId, ProtocolKind, WritePolicy,
};
use ccsvm_noc::{Network, NocConfig, NodeId, Topology};

/// A driver around the memory system with its own event queue.
struct Harness {
    mem: MemorySystem,
    net: Network,
    queue: EventQueue<MemEvent>,
    now: Time,
    token: u64,
}

impl Harness {
    /// `n_l1` cores, `n_banks` banks, deliberately tiny caches so evictions
    /// and recalls happen constantly.
    fn tiny(n_l1: usize, n_banks: usize) -> Harness {
        Harness::tiny_proto(n_l1, n_banks, ProtocolKind::Directory)
    }

    /// Like [`Harness::tiny`], under a chosen coherence protocol.
    fn tiny_proto(n_l1: usize, n_banks: usize, protocol: ProtocolKind) -> Harness {
        Harness::build(n_l1, n_banks, 2, 2, 2, 2, WritePolicy::WriteBack, protocol)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        n_l1: usize,
        n_banks: usize,
        l1_sets: usize,
        l1_ways: usize,
        l2_sets: usize,
        l2_ways: usize,
        policy: WritePolicy,
        protocol: ProtocolKind,
    ) -> Harness {
        let topo = Topology::torus(4, 4);
        let l1s = (0..n_l1)
            .map(|i| L1Config {
                node: NodeId(i % topo.len()),
                cache: CacheConfig {
                    sets: l1_sets,
                    ways: l1_ways,
                },
                hit_time: Time::from_ps(690),
                max_mshrs: 4,
                write_policy: policy,
            })
            .collect();
        let banks = (0..n_banks)
            .map(|i| BankConfig {
                node: NodeId((8 + i) % topo.len()),
                cache: CacheConfig {
                    sets: l2_sets,
                    ways: l2_ways,
                },
                latency: Time::from_ps(3450),
            })
            .collect();
        Harness {
            mem: MemorySystem::new(MemConfig {
                l1s,
                banks,
                dram: DramConfig::paper_default(),
                ctrl_bytes: 8,
                data_bytes: 72,
                protocol,
            }),
            net: Network::new(topo, NocConfig::paper_default()),
            queue: EventQueue::new(),
            now: Time::ZERO,
            token: 0,
        }
    }

    /// Issues an access; returns either the hit value or `None` (pending).
    fn issue(&mut self, port: usize, access: Access) -> (u64, Option<u64>) {
        self.token += 1;
        let token = self.token;
        let now = self.now;
        let (queue, mem, net) = (&mut self.queue, &mut self.mem, &mut self.net);
        let mut sched = |t: Time, e: MemEvent| queue.push(t, e);
        match mem.access(now, net, &mut sched, PortId(port), token, access) {
            AccessResult::Hit { finish, value } => {
                self.now = self.now.max(finish);
                (token, Some(value))
            }
            AccessResult::Pending => (token, None),
            AccessResult::Retry => panic!("unexpected MSHR exhaustion in test"),
            AccessResult::Poisoned => panic!("unexpected ECC poison in test"),
        }
    }

    /// Drains all events, returning completions.
    fn drain(&mut self) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some((t, ev)) = self.queue.pop() {
            assert!(t >= self.now || t == self.now, "time went backwards");
            self.now = self.now.max(t);
            let (queue, mem, net) = (&mut self.queue, &mut self.mem, &mut self.net);
            let mut sched = |at: Time, e: MemEvent| queue.push(at, e);
            mem.handle(t, net, &mut sched, ev, &mut done);
        }
        assert!(self.mem.quiescent(), "memory system not quiescent");
        done
    }

    /// Blocking read: issue and run to completion.
    fn read(&mut self, port: usize, addr: u64) -> u64 {
        let (token, hit) = self.issue(
            port,
            Access::Read {
                paddr: PhysAddr(addr),
                size: 8,
            },
        );
        match hit {
            Some(v) => v,
            None => {
                let done = self.drain();
                done.iter()
                    .find(|c| c.token == token)
                    .expect("read completion")
                    .value
            }
        }
    }

    /// Blocking write.
    fn write(&mut self, port: usize, addr: u64, value: u64) {
        let (token, hit) = self.issue(
            port,
            Access::Write {
                paddr: PhysAddr(addr),
                size: 8,
                value,
            },
        );
        if hit.is_none() {
            let done = self.drain();
            assert!(done.iter().any(|c| c.token == token), "write completion");
        }
    }

    /// Blocking atomic; returns the old value.
    fn rmw(&mut self, port: usize, addr: u64, op: AtomicOp) -> u64 {
        let (token, hit) = self.issue(
            port,
            Access::Rmw {
                paddr: PhysAddr(addr),
                size: 8,
                op,
            },
        );
        match hit {
            Some(v) => v,
            None => {
                let done = self.drain();
                done.iter()
                    .find(|c| c.token == token)
                    .expect("rmw completion")
                    .value
            }
        }
    }
}

#[test]
fn read_of_cold_memory_is_zero() {
    let mut h = Harness::tiny(2, 2);
    assert_eq!(h.read(0, 0x100), 0);
}

#[test]
fn write_then_read_same_core() {
    let mut h = Harness::tiny(2, 2);
    h.write(0, 0x40, 0xDEAD_BEEF);
    assert_eq!(h.read(0, 0x40), 0xDEAD_BEEF);
}

#[test]
fn producer_consumer_across_cores() {
    let mut h = Harness::tiny(4, 2);
    h.write(0, 0x80, 42);
    // Core 1 must see core 0's modified data (directory Fetch from owner).
    assert_eq!(h.read(1, 0x80), 42);
    // And core 0's copy stays readable (M -> O downgrade).
    assert_eq!(h.read(0, 0x80), 42);
}

#[test]
fn write_invalidates_sharers() {
    let mut h = Harness::tiny(3, 2);
    h.write(0, 0x40, 1);
    assert_eq!(h.read(1, 0x40), 1);
    assert_eq!(h.read(2, 0x40), 1);
    // Core 1 upgrades; cores 0 (owner) and 2 (sharer) must be invalidated.
    h.write(1, 0x40, 2);
    assert_eq!(h.read(0, 0x40), 2);
    assert_eq!(h.read(2, 0x40), 2);
    assert_eq!(h.read(1, 0x40), 2);
}

#[test]
fn exclusive_grant_when_unshared() {
    let mut h = Harness::tiny(2, 1);
    assert_eq!(h.read(0, 0x40), 0);
    // Directory granted E on an unshared GetS: the subsequent write must be
    // an L1 hit (silent E->M), i.e. complete with no new coherence traffic.
    let (_, hit) = h.issue(
        0,
        Access::Write {
            paddr: PhysAddr(0x40),
            size: 8,
            value: 7,
        },
    );
    assert!(hit.is_some(), "write after E grant should hit locally");
    h.drain();
    assert_eq!(h.read(1, 0x40), 7);
}

#[test]
fn atomics_are_atomic_under_contention() {
    let mut h = Harness::tiny(4, 2);
    // Issue 4 concurrent fetch-and-adds (no draining in between).
    let mut tokens = Vec::new();
    for port in 0..4 {
        let (tok, hit) = h.issue(
            port,
            Access::Rmw {
                paddr: PhysAddr(0x200),
                size: 8,
                op: AtomicOp::Add { value: 1 },
            },
        );
        assert!(hit.is_none() || port == 0, "only first could possibly hit");
        tokens.push((tok, hit));
    }
    let done = h.drain();
    // Old values observed must be a permutation of {0,1,2,3}.
    let mut olds: Vec<u64> = tokens
        .iter()
        .map(|(tok, hit)| {
            hit.unwrap_or_else(|| done.iter().find(|c| c.token == *tok).expect("done").value)
        })
        .collect();
    olds.sort();
    assert_eq!(olds, vec![0, 1, 2, 3]);
    assert_eq!(h.read(0, 0x200), 4);
}

#[test]
fn cas_success_and_failure() {
    let mut h = Harness::tiny(2, 1);
    h.write(0, 0x40, 5);
    let old = h.rmw(
        1,
        0x40,
        AtomicOp::Cas {
            expected: 5,
            value: 9,
        },
    );
    assert_eq!(old, 5);
    assert_eq!(h.read(0, 0x40), 9);
    let old = h.rmw(
        0,
        0x40,
        AtomicOp::Cas {
            expected: 5,
            value: 100,
        },
    );
    assert_eq!(old, 9, "failed CAS returns current value");
    assert_eq!(h.read(1, 0x40), 9, "failed CAS must not write");
}

#[test]
fn l1_eviction_writes_back_dirty_data() {
    // L1: 2 sets x 2 ways: writing more distinct blocks than the L1 holds
    // forces dirty evictions. The evicted data must reach another core.
    let mut h = Harness::tiny(2, 2);
    for i in 0..6u64 {
        h.write(0, i * 64, 10 + i);
    }
    for i in 0..6u64 {
        assert_eq!(h.read(1, i * 64), 10 + i);
    }
}

#[test]
fn l2_recall_preserves_data() {
    // L2: 2 banks x (2 sets x 2 ways) = 8 blocks capacity; L1s are 2x2 too.
    // Stream enough distinct dirty blocks to force inclusive-L2 recalls.
    let mut h = Harness::tiny(2, 2);
    for i in 0..32u64 {
        h.write(0, i * 64, 1000 + i);
    }
    for i in 0..32u64 {
        assert_eq!(h.read(1, i * 64), 1000 + i, "block {i}");
    }
}

#[test]
fn many_cores_shared_then_recall() {
    let mut h = Harness::tiny(8, 2);
    h.write(0, 0x40, 77);
    for p in 0..8 {
        assert_eq!(h.read(p, 0x40), 77);
    }
    // Force the L2 to recall the widely-shared block.
    for i in 1..16u64 {
        h.write(0, i * 64 + 0x400, i);
    }
    for p in 0..8 {
        assert_eq!(h.read(p, 0x40), 77, "after recall, core {p}");
    }
}

#[test]
fn backdoor_read_sees_dirty_l1_data() {
    let mut h = Harness::tiny(2, 2);
    h.write(0, 0x40, 0xABCD);
    let mut buf = [0u8; 8];
    h.mem.backdoor_read(PhysAddr(0x40), &mut buf);
    assert_eq!(u64::from_le_bytes(buf), 0xABCD);
}

#[test]
fn backdoor_write_then_coherent_read() {
    let mut h = Harness::tiny(2, 2);
    h.mem
        .backdoor_write(PhysAddr(0x1000), &123u64.to_le_bytes());
    assert_eq!(h.read(1, 0x1000), 123);
}

#[test]
fn peek_and_poke_follow_permissions() {
    let mut h = Harness::tiny(2, 2);
    assert_eq!(h.mem.peek(PortId(0), PhysAddr(0x40), 8), None);
    h.write(0, 0x40, 5);
    assert_eq!(h.mem.peek(PortId(0), PhysAddr(0x40), 8), Some(5));
    assert!(h.mem.poke(PortId(0), PhysAddr(0x48), 8, 6));
    assert_eq!(h.read(1, 0x48), 6, "poked data must be coherent");
    // Core 1 now shares the block: core 0 is O, poke must fail.
    assert!(!h.mem.poke(PortId(0), PhysAddr(0x48), 8, 7));
    assert_eq!(h.mem.peek(PortId(1), PhysAddr(0x48), 8), Some(6));
}

#[test]
fn sub_word_accesses() {
    let mut h = Harness::tiny(1, 1);
    h.write(0, 0x40, 0x1122_3344_5566_7788);
    let (_, v) = h.issue(
        0,
        Access::Read {
            paddr: PhysAddr(0x42),
            size: 2,
        },
    );
    assert_eq!(v.unwrap(), 0x5566);
    let (_, _) = h.issue(
        0,
        Access::Write {
            paddr: PhysAddr(0x40),
            size: 1,
            value: 0xFF,
        },
    );
    assert_eq!(h.read(0, 0x40), 0x1122_3344_5566_77FF);
}

#[test]
fn write_through_policy_stays_coherent() {
    let mut h = Harness::build(
        4,
        2,
        2,
        2,
        4,
        4,
        WritePolicy::WriteThrough,
        ProtocolKind::Directory,
    );
    h.write(0, 0x40, 1);
    assert_eq!(h.read(1, 0x40), 1);
    h.write(1, 0x40, 2);
    assert_eq!(h.read(0, 0x40), 2);
    for i in 0..16u64 {
        h.write(2, i * 64, i * 3);
    }
    for i in 0..16u64 {
        assert_eq!(h.read(3, i * 64), i * 3);
    }
}

#[test]
fn dram_access_counting() {
    let mut h = Harness::tiny(1, 1);
    h.write(0, 0x40, 1);
    let after_first = h.mem.dram_accesses();
    assert!(after_first >= 1, "cold miss fetched from DRAM");
    h.write(0, 0x40, 2); // hit: no new DRAM traffic
    h.drain();
    assert_eq!(h.mem.dram_accesses(), after_first);
    h.mem.reset_dram_counters();
    assert_eq!(h.mem.dram_accesses(), 0);
}

#[test]
fn stats_cover_components() {
    let mut h = Harness::tiny(2, 2);
    h.write(0, 0x40, 1);
    h.read(1, 0x40);
    let s = h.mem.stats();
    assert!(s.get("l1.0.stores") >= 1.0);
    assert!(s.get("l1.1.loads") >= 1.0);
    assert!(s.sum_prefix("l2.") > 0.0);
    assert!(s.get("dram.reads") >= 1.0);
}

#[test]
fn directory_tracks_owner_and_sharers() {
    let mut h = Harness::tiny(3, 1);
    h.write(0, 0x40, 1);
    assert_eq!(h.mem.dir_owner(1), Some(PortId(0)));
    h.read(1, 0x40);
    assert_eq!(h.mem.dir_owner(1), Some(PortId(0)), "owner keeps O");
    assert_eq!(h.mem.dir_sharers(1), 1 << 1);
    h.write(2, 0x40, 2);
    assert_eq!(h.mem.dir_owner(1), Some(PortId(2)));
    assert_eq!(h.mem.dir_sharers(1), 0);
}

/// Sequentially-driven random traffic against a flat shadow memory, with
/// tiny caches so evictions/recalls/upgrades happen constantly.
#[test]
fn randomized_sequential_equivalence() {
    use ccsvm_engine::SplitMix64;
    for seed in 0..8 {
        let mut h = Harness::tiny(4, 2);
        let mut rng = SplitMix64::new(seed);
        let mut shadow = std::collections::HashMap::new();
        for _ in 0..400 {
            let port = (rng.next_below(4)) as usize;
            let addr = rng.next_below(48) * 8; // 48 words over 6 blocks/bank
            match rng.next_below(3) {
                0 => {
                    let v = rng.next_u64();
                    h.write(port, addr, v);
                    shadow.insert(addr, v);
                }
                1 => {
                    let expect = shadow.get(&addr).copied().unwrap_or(0);
                    assert_eq!(h.read(port, addr), expect, "seed {seed} addr {addr:#x}");
                }
                _ => {
                    let old = h.rmw(port, addr, AtomicOp::Inc);
                    let expect = shadow.get(&addr).copied().unwrap_or(0);
                    assert_eq!(old, expect, "seed {seed} rmw old");
                    shadow.insert(addr, expect.wrapping_add(1));
                }
            }
        }
    }
}

/// Concurrent random traffic: all cores fire at once; every atomic increment
/// must be counted exactly once.
#[test]
fn concurrent_increments_from_all_cores() {
    let mut h = Harness::tiny(8, 2);
    let per_core = 5;
    let mut pending = 0;
    for round in 0..per_core {
        for port in 0..8 {
            let (_, hit) = h.issue(
                port,
                Access::Rmw {
                    paddr: PhysAddr(0x300),
                    size: 8,
                    op: AtomicOp::Add { value: 1 },
                },
            );
            if hit.is_none() {
                pending += 1;
            }
        }
        // Drain between rounds (each core has one outstanding op at a time).
        let done = h.drain();
        assert_eq!(done.len(), pending, "round {round}");
        pending = 0;
    }
    assert_eq!(h.read(0, 0x300), 8 * per_core);
}

// ---------------------------------------------------------------------------
// Cross-protocol tests: the same access sequences must produce the same
// architectural results under directory MOESI, snooping MESI, and Dragon
// write-update — only the traffic differs. Each run finishes with a full
// sanitizer sweep under the protocol's own invariant mask.

fn swept(h: Harness) {
    assert_eq!(h.mem.check_all(h.now), None, "sanitizer sweep");
    assert!(h.mem.quiescent());
}

#[test]
fn all_protocols_producer_consumer() {
    for kind in ProtocolKind::ALL {
        let mut h = Harness::tiny_proto(4, 2, kind);
        h.write(0, 0x80, 42);
        assert_eq!(h.read(1, 0x80), 42, "{kind}");
        assert_eq!(h.read(0, 0x80), 42, "{kind}: producer keeps a copy");
        swept(h);
    }
}

#[test]
fn all_protocols_write_propagates_to_sharers() {
    for kind in ProtocolKind::ALL {
        let mut h = Harness::tiny_proto(3, 2, kind);
        h.write(0, 0x40, 1);
        assert_eq!(h.read(1, 0x40), 1, "{kind}");
        assert_eq!(h.read(2, 0x40), 1, "{kind}");
        // MESI/directory invalidate the other copies; Dragon patches them in
        // place. Either way every core must observe the new value.
        h.write(1, 0x40, 2);
        assert_eq!(h.read(0, 0x40), 2, "{kind}");
        assert_eq!(h.read(2, 0x40), 2, "{kind}");
        assert_eq!(h.read(1, 0x40), 2, "{kind}");
        swept(h);
    }
}

#[test]
fn all_protocols_atomics_under_contention() {
    for kind in ProtocolKind::ALL {
        let mut h = Harness::tiny_proto(4, 2, kind);
        let mut tokens = Vec::new();
        for port in 0..4 {
            let (tok, hit) = h.issue(
                port,
                Access::Rmw {
                    paddr: PhysAddr(0x200),
                    size: 8,
                    op: AtomicOp::Add { value: 1 },
                },
            );
            tokens.push((tok, hit));
        }
        let done = h.drain();
        let mut olds: Vec<u64> = tokens
            .iter()
            .map(|(tok, hit)| {
                hit.unwrap_or_else(|| done.iter().find(|c| c.token == *tok).expect("done").value)
            })
            .collect();
        olds.sort();
        assert_eq!(olds, vec![0, 1, 2, 3], "{kind}");
        assert_eq!(h.read(0, 0x200), 4, "{kind}");
        swept(h);
    }
}

#[test]
fn all_protocols_eviction_writeback() {
    for kind in ProtocolKind::ALL {
        let mut h = Harness::tiny_proto(2, 2, kind);
        for i in 0..32u64 {
            h.write(0, i * 64, 1000 + i);
        }
        for i in 0..32u64 {
            assert_eq!(h.read(1, i * 64), 1000 + i, "{kind} block {i}");
        }
        swept(h);
    }
}

#[test]
fn all_protocols_write_through_policy() {
    for kind in ProtocolKind::ALL {
        let mut h = Harness::build(4, 2, 2, 2, 4, 4, WritePolicy::WriteThrough, kind);
        h.write(0, 0x40, 1);
        assert_eq!(h.read(1, 0x40), 1, "{kind}");
        h.write(1, 0x40, 2);
        assert_eq!(h.read(0, 0x40), 2, "{kind}");
        for i in 0..16u64 {
            h.write(2, i * 64, i * 3);
        }
        for i in 0..16u64 {
            assert_eq!(h.read(3, i * 64), i * 3, "{kind}");
        }
        swept(h);
    }
}

#[test]
fn all_protocols_randomized_sequential_equivalence() {
    use ccsvm_engine::SplitMix64;
    for kind in ProtocolKind::ALL {
        for seed in 0..8 {
            let mut h = Harness::tiny_proto(4, 2, kind);
            let mut rng = SplitMix64::new(seed);
            let mut shadow = std::collections::HashMap::new();
            for step in 0..400 {
                let port = (rng.next_below(4)) as usize;
                let addr = rng.next_below(48) * 8;
                match rng.next_below(3) {
                    0 => {
                        let v = rng.next_u64();
                        h.write(port, addr, v);
                        shadow.insert(addr, v);
                    }
                    1 => {
                        let expect = shadow.get(&addr).copied().unwrap_or(0);
                        assert_eq!(
                            h.read(port, addr),
                            expect,
                            "{kind} seed {seed} step {step} addr {addr:#x}"
                        );
                    }
                    _ => {
                        let old = h.rmw(port, addr, AtomicOp::Inc);
                        let expect = shadow.get(&addr).copied().unwrap_or(0);
                        assert_eq!(old, expect, "{kind} seed {seed} step {step} rmw old");
                        shadow.insert(addr, expect.wrapping_add(1));
                    }
                }
                let at = h.now;
                assert_eq!(
                    h.mem.check_all(at),
                    None,
                    "{kind} seed {seed} step {step}: invariant sweep"
                );
            }
        }
    }
}

#[test]
fn all_protocols_concurrent_increments() {
    for kind in ProtocolKind::ALL {
        let mut h = Harness::tiny_proto(8, 2, kind);
        let per_core = 5;
        let mut pending = 0;
        for round in 0..per_core {
            for port in 0..8 {
                let (_, hit) = h.issue(
                    port,
                    Access::Rmw {
                        paddr: PhysAddr(0x300),
                        size: 8,
                        op: AtomicOp::Add { value: 1 },
                    },
                );
                if hit.is_none() {
                    pending += 1;
                }
            }
            let done = h.drain();
            assert_eq!(done.len(), pending, "{kind} round {round}");
            pending = 0;
        }
        assert_eq!(h.read(0, 0x300), 8 * per_core, "{kind}");
        swept(h);
    }
}

#[test]
fn mesi_snoop_invalidates_on_write() {
    let mut h = Harness::tiny_proto(2, 2, ProtocolKind::MesiSnoop);
    h.write(0, 0x40, 1);
    assert_eq!(h.read(1, 0x40), 1);
    h.write(0, 0x40, 2);
    // Invalidation protocol: the other copy must be gone, not patched.
    assert_eq!(h.mem.peek(PortId(1), PhysAddr(0x40), 8), None);
    assert_eq!(h.read(1, 0x40), 2);
    swept(h);
}

#[test]
fn dragon_updates_sharers_in_place() {
    let mut h = Harness::tiny_proto(3, 2, ProtocolKind::Dragon);
    h.write(0, 0x40, 1);
    assert_eq!(h.read(1, 0x40), 1);
    assert_eq!(h.read(2, 0x40), 1);
    h.write(0, 0x40, 2);
    // Update protocol: the sharers' copies are patched in place — still
    // resident and already holding the new value, with no re-fetch.
    assert_eq!(h.mem.peek(PortId(1), PhysAddr(0x40), 8), Some(2));
    assert_eq!(h.mem.peek(PortId(2), PhysAddr(0x40), 8), Some(2));
    swept(h);
}

#[test]
fn dragon_sub_word_updates_patch_only_their_bytes() {
    let mut h = Harness::tiny_proto(2, 2, ProtocolKind::Dragon);
    h.write(0, 0x40, 0x1122_3344_5566_7788);
    assert_eq!(h.read(1, 0x40), 0x1122_3344_5566_7788);
    let (_, hit) = h.issue(
        0,
        Access::Write {
            paddr: PhysAddr(0x42),
            size: 2,
            value: 0xAABB,
        },
    );
    if hit.is_none() {
        h.drain();
    }
    assert_eq!(
        h.mem.peek(PortId(1), PhysAddr(0x40), 8),
        Some(0x1122_3344_AABB_7788),
        "sharer patched exactly the written half-word"
    );
    swept(h);
}

#[test]
fn snoop_protocols_leave_no_directory_state() {
    for kind in [ProtocolKind::MesiSnoop, ProtocolKind::Dragon] {
        let mut h = Harness::tiny_proto(2, 1, kind);
        h.write(0, 0x40, 7);
        assert_eq!(h.read(1, 0x40), 7);
        assert_eq!(h.mem.dir_owner(1), None, "{kind}: no owner registration");
        assert_eq!(h.mem.dir_sharers(1), 0, "{kind}: no sharer mask");
        swept(h);
    }
}
