//! Protocol-generic solicitation-round recovery state (DESIGN §14).
//!
//! Every coherence protocol's ordering point runs *solicitation rounds*: the
//! bank sends a set of requests (directory invalidations/fetches/recalls,
//! snoop probes, write-update pushes) and waits for every answer before the
//! transaction can advance. When the fabric may drop messages, each round is
//! guarded by a timeout + bounded-resend loop. [`RetryRound`] is that loop's
//! per-transaction state, extracted from the directory path so the snooping
//! MESI and Dragon ordering points share byte-identical machinery:
//!
//! * an **epoch** counter, bumped on every resend, carried by the armed
//!   timeout event so a raced timeout from a superseded round is recognised
//!   as stale and ignored;
//! * a **resend count** checked against the configured budget — exhaustion
//!   turns into a typed [`Outcome::RetryBudgetExhausted`] abort rather than a
//!   silent wedge.
//!
//! The snapshot byte layout (`u64` epoch + `u32` count) is exactly the layout
//! the pre-extraction `Tx` fields used, so the machine-section format is
//! unchanged by the refactor itself.
//!
//! [`Outcome::RetryBudgetExhausted`]: https://docs.rs/ccsvm-core

use ccsvm_snap::{SnapError, SnapReader, SnapWriter};

/// Timeout/resend bookkeeping for one in-flight transaction's current
/// solicitation round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct RetryRound {
    /// Current solicitation round. Bumped on every resend so a stale timeout
    /// event (armed for a superseded round) can be recognised and dropped.
    epoch: u64,
    /// Resends already spent on this transaction, across all its rounds.
    nacks: u32,
}

impl RetryRound {
    /// Fresh state for a newly arrived transaction: round 0, no resends.
    pub(crate) fn new() -> RetryRound {
        RetryRound { epoch: 0, nacks: 0 }
    }

    /// The round a timeout event must carry to be considered live.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a timeout armed for `epoch` refers to the current round.
    pub(crate) fn is_current(&self, epoch: u64) -> bool {
        self.epoch == epoch
    }

    /// Spends one resend from `budget`. Returns the new round's epoch, or
    /// `None` if the budget is exhausted (→ typed abort, caller's job).
    pub(crate) fn spend(&mut self, budget: u32) -> Option<u64> {
        if self.nacks >= budget {
            return None;
        }
        self.nacks += 1;
        self.epoch += 1;
        Some(self.epoch)
    }

    /// Serialises in the legacy `Tx` field order: epoch then resend count.
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.epoch);
        w.put_u32(self.nacks);
    }

    /// Counterpart of [`RetryRound::save`].
    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<RetryRound, SnapError> {
        Ok(RetryRound {
            epoch: r.get_u64()?,
            nacks: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_bumps_epoch_until_budget_exhausted() {
        let mut r = RetryRound::new();
        assert_eq!(r.epoch(), 0);
        assert!(r.is_current(0));
        assert_eq!(r.spend(2), Some(1));
        assert!(r.is_current(1) && !r.is_current(0));
        assert_eq!(r.spend(2), Some(2));
        assert_eq!(r.spend(2), None);
        // Exhaustion is sticky and does not advance the round.
        assert_eq!(r.spend(2), None);
        assert!(r.is_current(2));
    }

    #[test]
    fn codec_round_trips() {
        let mut r = RetryRound::new();
        r.spend(10);
        r.spend(10);
        r.spend(10);
        let mut w = SnapWriter::new();
        r.save(&mut w);
        let bytes = w.into_vec();
        let mut rd = SnapReader::new(&bytes);
        let back = RetryRound::load(&mut rd).unwrap();
        assert_eq!(back, r);
    }
}
