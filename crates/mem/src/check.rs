//! Coherence sanitizer checks over the memory hierarchy (DESIGN §9).
//!
//! All checks are **read-only** over quiescent-per-block state, so enabling
//! them never perturbs simulated time, message ordering, or the `RunReport`.
//! Blocks with an active directory transaction (or a queued conflicting
//! request) are deliberately skipped: the blocking directory makes every
//! invariant hold at transaction boundaries, while mid-transaction state is
//! legitimately inconsistent (e.g. an invalidation is still in flight).
//!
//! Invariants checked here:
//!
//! * **MEM-SWMR** — at most one L1 holds a block in a writable state (M/E),
//!   and a writable copy excludes every other valid copy.
//! * **MEM-DIR-AGREE** — every valid L1 copy is accounted for by the home
//!   directory entry (owner or sharer-mask bit). Only the L1→directory
//!   direction is checked: the directory may conservatively list caches that
//!   silently dropped a clean block, but it must never be *unaware* of one.
//! * **MEM-DATA-VALUE** — all valid copies of a block hold identical bytes,
//!   and when the directory records no owner (Unowned/Shared) they also match
//!   the inclusive L2 copy.
//! * **MEM-MSG-CONSERVE** — in strict mode (directory timeouts disabled) a
//!   response arriving at a bank must be one the bank is actually waiting
//!   for; anything else is a duplicated or misrouted message.

use ccsvm_engine::{InvariantId, Time, Violation};

use crate::l1::L1State;
use crate::msg::{BlockData, MemEvent, MemEventKind};
use crate::protocol::protocol;
use crate::system::{MemorySystem, PortId};

fn violation(id: InvariantId, at: Time, detail: String) -> Option<Violation> {
    Some(Violation {
        invariant: id,
        at,
        detail,
    })
}

impl MemorySystem {
    /// Pre-delivery check of a single memory event (MEM-MSG-CONSERVE).
    ///
    /// Returns a violation when a directory bank receives a response it is
    /// not waiting for. Only meaningful in strict mode: with directory
    /// timeouts enabled the protocol deliberately tolerates duplicate and
    /// stale responses (NACK/retry recovery), so the check stands down.
    pub fn check_event(&self, at: Time, ev: &MemEvent) -> Option<Violation> {
        if self.dir_timeout.is_some() {
            return None; // lenient mode sanctions duplicates/stale responses
        }
        if let MemEventKind::RespArrive(bank, resp) = &ev.0 {
            if !self.banks[bank.0].expects_resp(resp) {
                return violation(
                    InvariantId::MemMsgConserve,
                    at,
                    format!(
                        "bank {} received unexpected response {resp:?}: no \
                         transaction or recall is waiting for it (duplicated \
                         or misrouted message)",
                        bank.0
                    ),
                );
            }
        }
        None
    }

    /// Checks SWMR, directory agreement, and the data-value invariant for
    /// one block — each gated on whether the configured protocol *defines*
    /// it (see [`crate::protocol::CoherenceProtocol::invariants`]). Skips
    /// blocks with an active transaction at the home bank.
    pub fn check_block(&self, at: Time, block: u64) -> Option<Violation> {
        let home = self.home(block);
        if self.banks[home].busy_on(block) {
            return None; // mid-transaction: transient disagreement is legal
        }
        if !self.protocol.uses_directory()
            && self
                .l1s
                .iter()
                .any(|l1| l1.mshr_on(block) || l1.evicting(block))
        {
            // Without the blocking directory the bank's transaction window
            // does not cover the whole round: a grant or `UpdDone` may still
            // be in flight to the requester after the bank retired its
            // transaction. Any outstanding L1 MSHR or writeback on the block
            // marks it mid-round.
            return None;
        }
        let mask = protocol(self.protocol).invariants();
        // Gather every valid L1 copy.
        let mut copies: Vec<(PortId, L1State, Option<BlockData>)> = Vec::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            let (st, data) = l1.probe(block);
            if st != L1State::I {
                copies.push((PortId(i), st, data));
            }
        }

        // MEM-SWMR: at most one writable copy, and it excludes all others.
        // (Not a Dragon invariant: update rounds leave the Sm owner and Sc
        // sharers all valid by design.)
        if mask.contains(InvariantId::MemSwmr) {
            let writable: Vec<PortId> = copies
                .iter()
                .filter(|(_, st, _)| matches!(st, L1State::M | L1State::E))
                .map(|&(p, _, _)| p)
                .collect();
            if writable.len() > 1 {
                return violation(
                    InvariantId::MemSwmr,
                    at,
                    format!(
                        "block {block:#x}: {} L1s hold writable (M/E) copies: {:?}",
                        writable.len(),
                        writable
                    ),
                );
            }
            if writable.len() == 1 && copies.len() > 1 {
                let others: Vec<PortId> = copies
                    .iter()
                    .filter(|&&(p, _, _)| p != writable[0])
                    .map(|&(p, _, _)| p)
                    .collect();
                return violation(
                    InvariantId::MemSwmr,
                    at,
                    format!(
                        "block {block:#x}: port {} holds a writable copy but \
                         ports {others:?} also hold valid copies",
                        writable[0].0
                    ),
                );
            }
        }

        // MEM-DIR-AGREE: every valid L1 copy is known to the home directory.
        // Only defined where there *is* a directory.
        let record = self.banks[home].dir_record(block);
        if mask.contains(InvariantId::MemDirAgree) {
            for &(p, st, _) in &copies {
                let ok = match record {
                    // Inclusive L2: an L1 copy of a non-resident block is
                    // unaccountable.
                    None => false,
                    Some((owner, sharers)) => match st {
                        L1State::M | L1State::E | L1State::O => owner == Some(p),
                        // An S copy is legal as a recorded sharer, or as the
                        // registered owner (upgrade grant in flight).
                        L1State::S => sharers & (1u32 << p.0) != 0 || owner == Some(p),
                        L1State::I => unreachable!(),
                    },
                };
                if !ok {
                    return violation(
                        InvariantId::MemDirAgree,
                        at,
                        format!(
                            "block {block:#x}: port {} holds {st:?} but home bank \
                             {home} directory entry is {record:?}",
                            p.0
                        ),
                    );
                }
            }
        }

        // MEM-DATA-VALUE. Poisoned blocks carry deliberately untrustworthy
        // bytes, so they are exempt.
        if self.poisoned.contains(&block) || !mask.contains(InvariantId::MemDataValue) {
            return None;
        }
        let valid: Vec<(PortId, BlockData)> = copies
            .iter()
            .filter_map(|&(p, _, d)| d.map(|d| (p, d)))
            .collect();
        if let Some(&(p0, d0)) = valid.first() {
            for &(p, d) in &valid[1..] {
                if d != d0 {
                    return violation(
                        InvariantId::MemDataValue,
                        at,
                        format!(
                            "block {block:#x}: ports {} and {} hold valid \
                             copies with different bytes",
                            p0.0, p.0
                        ),
                    );
                }
            }
            // The L2 copy is authoritative only when no L1 owns the block:
            // under the directory that is a recorded-ownerless entry; under
            // the snooping protocols it is the absence of any M/E/O copy
            // (while a dirty copy lives, the non-inclusive L2 is legally
            // stale until writeback).
            let l2_authoritative = if self.protocol.uses_directory() {
                matches!(record, Some((None, _)))
            } else {
                !copies
                    .iter()
                    .any(|(_, st, _)| matches!(st, L1State::M | L1State::E | L1State::O))
            };
            if l2_authoritative {
                if let Some(l2) = self.banks[home].probe(block) {
                    if l2 != d0 {
                        return violation(
                            InvariantId::MemDataValue,
                            at,
                            format!(
                                "block {block:#x}: port {} holds bytes that \
                                 differ from the unowned L2 copy",
                                p0.0
                            ),
                        );
                    }
                }
            }
        }
        None
    }

    /// Sweeps every block with at least one valid L1 copy through
    /// [`MemorySystem::check_block`]. Used for the end-of-run / on-abort
    /// full check.
    pub fn check_all(&self, at: Time) -> Option<Violation> {
        let mut blocks = std::collections::BTreeSet::new();
        for l1 in &self.l1s {
            for (b, _) in l1.resident_blocks() {
                blocks.insert(b);
            }
        }
        for b in blocks {
            if let Some(v) = self.check_block(at, b) {
                return Some(v);
            }
        }
        None
    }

    /// Test-only protocol corruption: clears the registered owner of
    /// `block` at its home bank (see [`crate::msg`] for the companion
    /// message-level mutations). Returns `false` if the block has no owner.
    pub fn test_corrupt_dir_owner(&mut self, block: u64) -> bool {
        let home = self.home(block);
        self.banks[home].test_corrupt_owner(block)
    }
}
