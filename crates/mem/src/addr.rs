//! Physical addresses and cache-block arithmetic.

use std::fmt;

/// Size of a cache block in bytes (Table 2 systems use 64 B lines).
pub const BLOCK_BYTES: u64 = 64;

/// A physical memory address.
///
/// Newtype so physical and virtual addresses (the `ccsvm-vm` crate's `VirtAddr`)
/// cannot be confused — the whole point of the paper is who translates what.
///
/// # Examples
///
/// ```
/// use ccsvm_mem::{block_of, offset_in_block, PhysAddr};
/// let a = PhysAddr(0x1234);
/// assert_eq!(block_of(a), 0x1234 / 64);
/// assert_eq!(offset_in_block(a), 0x34 % 64);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The block number containing `addr`.
#[inline]
pub fn block_of(addr: PhysAddr) -> u64 {
    addr.0 / BLOCK_BYTES
}

/// The byte offset of `addr` within its block.
#[inline]
pub fn offset_in_block(addr: PhysAddr) -> usize {
    (addr.0 % BLOCK_BYTES) as usize
}

/// The base address of block number `block`.
#[inline]
pub fn block_base(block: u64) -> PhysAddr {
    PhysAddr(block * BLOCK_BYTES)
}

pub(crate) use block_base as base_of_block;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_math() {
        assert_eq!(block_of(PhysAddr(0)), 0);
        assert_eq!(block_of(PhysAddr(63)), 0);
        assert_eq!(block_of(PhysAddr(64)), 1);
        assert_eq!(offset_in_block(PhysAddr(64)), 0);
        assert_eq!(offset_in_block(PhysAddr(127)), 63);
        assert_eq!(block_base(3), PhysAddr(192));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhysAddr(0x40).to_string(), "0x40");
        assert_eq!(format!("{:?}", PhysAddr(0x40)), "PA(0x40)");
    }

    #[test]
    fn offset_adds() {
        assert_eq!(PhysAddr(8).offset(8), PhysAddr(16));
    }
}
