//! Coherent memory hierarchy for the CCSVM chip (paper §3.2.2, Table 2).
//!
//! This crate implements the paper's "standard, unoptimized MOESI directory
//! protocol in which the directory state is embedded in the L2 blocks":
//!
//! * [`CacheArray`] — a generic set-associative array with true LRU and real
//!   64-byte data blocks (data lives *in* the caches; DRAM is backing store).
//! * L1 controllers — write-back, write-allocate, MOESI states, MSHRs with
//!   same-block merging, eviction buffers for writeback races, and atomic
//!   read-modify-writes performed **at the L1 after acquiring exclusive
//!   coherence access** (the paper's §3.2.4 microarchitecture choice).
//! * Directory banks — the banked, inclusive, shared L2 with the directory
//!   embedded in its blocks. One transaction per block is active at a time
//!   (a *blocking* directory); conflicting requests queue in arrival order,
//!   which yields a total order of writes per location (SWMR) and, together
//!   with in-order blocking cores, sequential consistency (§3.2.3).
//! * [`Dram`] — fixed-latency (100 ns) off-chip memory with a per-channel
//!   bandwidth model and the access counters behind the paper's Figure 9.
//! * [`MemorySystem`] — the composition: it routes coherence messages over a
//!   [`ccsvm_noc::Network`] supplied by the caller and exposes a small
//!   port-based API ([`MemorySystem::access`] / [`MemorySystem::handle`])
//!   that core models drive.
//!
//! The crate is machine-agnostic: both the CCSVM chip and the CPU side of the
//! APU baseline instantiate it with different configurations.

mod addr;
mod bank;
mod cache;
mod check;
mod dram;
mod l1;
mod msg;
mod port;
mod protocol;
mod recover;
mod system;

pub use addr::{block_of, offset_in_block, PhysAddr, BLOCK_BYTES};
pub use cache::{CacheArray, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use l1::{L1Config, WritePolicy};
pub use msg::{ring_kind_name, AtomicOp, BankId, MemEvent};
pub use port::{CorePort, PortLog};
pub use protocol::{protocol, CoherenceProtocol, ProtocolKind};
pub use system::{Access, AccessResult, BankConfig, Completion, MemConfig, MemorySystem, PortId};
