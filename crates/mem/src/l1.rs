//! Private L1 cache controller: MOESI states, MSHRs, eviction buffers.
//!
//! Each core (CPU or MTTOP) owns one L1 data cache that is a full peer in the
//! directory protocol — the paper's deliberately *symmetric* design ("our
//! cache coherence protocol does not treat MTTOP cores differently from CPU
//! cores"). Write-back, write-allocate; atomics acquire M and execute in the
//! L1 (§3.2.4). A write-through mode exists solely for the §6.1 ablation.

use ccsvm_engine::{fx_map_with_capacity, stat_id, FxHashMap, FxHashSet, Stats, Time};
use ccsvm_noc::NodeId;

use crate::addr::{block_of, offset_in_block, PhysAddr};
use crate::cache::{CacheArray, CacheConfig, SetImage};
use crate::dram::word_from_block;
use crate::msg::{BlockData, DirToL1, Grant, L1ToDir, ReqKind, Request, SnoopKind, UpdWord};
use crate::protocol::ProtocolKind;
use crate::system::{Access, PortId};

/// Store policy of an L1 (the paper assumes write-back; write-through exists
/// for the §6.1 "current GPUs have write-through caches" ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Dirty data stays in the L1 until eviction or a fetch (the paper's
    /// CCSVM design).
    #[default]
    WriteBack,
    /// Every completed store immediately pushes the whole block to the L2
    /// (keeping a shared copy), modelling a GPU-style write-through L1.
    WriteThrough,
}

/// Configuration of one L1 cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L1Config {
    /// NoC node this cache (and its core) sits at.
    pub node: NodeId,
    /// Geometry.
    pub cache: CacheConfig,
    /// Load-to-use hit latency.
    pub hit_time: Time,
    /// Maximum outstanding distinct-block misses.
    pub max_mshrs: usize,
    /// Store policy.
    pub write_policy: WritePolicy,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum L1State {
    #[default]
    I,
    S,
    E,
    O,
    M,
}

impl L1State {
    fn readable(self) -> bool {
        self != L1State::I
    }
    fn dirty(self) -> bool {
        matches!(self, L1State::M | L1State::O)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    state: L1State,
}

#[derive(Clone, Debug)]
struct Waiter {
    token: u64,
    access: Access,
}

#[derive(Clone, Debug)]
struct Mshr {
    /// Whether a GetM has been sent (vs only GetS).
    wants_m: bool,
    waiters: Vec<Waiter>,
}

#[derive(Clone, Debug)]
struct EvictEntry {
    data: BlockData,
    dirty: bool,
}

/// Undo journal for one speculative epoch member (DESIGN §12).
///
/// Captured at `spec_begin` and discarded at `spec_commit`: begin-time copies
/// of the LRU tick, the access counters and the three miss-tracking maps,
/// plus set-granular first-touch pre-images of the cache array, capped at
/// `budget` sets. When the cap is exceeded the journal falls back to the
/// snapshot machinery: `full` holds a whole-L1 snapshot taken at overflow
/// time, and rollback loads it *then* re-applies the pre-overflow images on
/// top (the journaled sets are mid-speculation in that snapshot; the images
/// rewind them the rest of the way; every other set was still untouched when
/// the snapshot was taken).
///
/// No directory message is ever delivered to a speculating L1 — the epoch
/// scheduler rolls the member back first — so the maps and counters can only
/// change under the member's own core-side accesses, and restoring the
/// begin-time copies wholesale is exact.
#[derive(Debug, Default)]
struct SpecState {
    /// Sets with a captured pre-image (or, past the budget, sets that
    /// tripped the overflow path).
    touched: FxHashSet<u64>,
    /// First-touch pre-images, in capture order (restore order is
    /// irrelevant: one image per set).
    images: Vec<SetImage<Line>>,
    /// Maximum images before overflow.
    budget: usize,
    overflowed: bool,
    /// Whole-L1 snapshot bytes, captured at the moment of overflow.
    full: Vec<u8>,
    tick0: u64,
    counters0: [u64; 11],
    mshrs0: FxHashMap<u64, Mshr>,
    evict0: FxHashMap<u64, EvictEntry>,
    reserved0: FxHashMap<u64, usize>,
}

/// Result of a core-side access attempt.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum L1Access {
    Hit { value: u64 },
    Pending,
    Retry,
}

/// Outbound traffic produced by an L1 action.
#[derive(Debug, Default)]
pub(crate) struct L1Out {
    pub requests: Vec<Request>,
    pub responses: Vec<L1ToDir>,
    pub completions: Vec<(u64, u64, u64)>, // (token, value, block)
}

impl L1Out {
    pub(crate) fn clear(&mut self) {
        self.requests.clear();
        self.responses.clear();
        self.completions.clear();
    }
}

#[derive(Debug)]
pub(crate) struct L1 {
    pub id: PortId,
    pub config: L1Config,
    /// Which coherence protocol this controller speaks (config-derived, not
    /// serialized). Selects the request vocabulary on misses and the
    /// reactions to ordering-point probes.
    protocol: ProtocolKind,
    array: CacheArray<Line>,
    mshrs: FxHashMap<u64, Mshr>,
    evict_buf: FxHashMap<u64, EvictEntry>,
    /// Ways reserved per set for in-flight fills, so a fill can always
    /// install without evicting a line that itself has a pending miss.
    reserved: FxHashMap<u64, usize>,
    /// `CCSVM_RETRY_TRACE` sampled once at construction: the check sits on
    /// the retry path, and `std::env::var` takes a lock plus an allocation
    /// per call.
    retry_trace: bool,
    /// Tolerate duplicate directory messages (set when directory timeouts
    /// are enabled: a NACK-resent Fetch can arrive after the original
    /// response already gave the block away). Off by default so protocol
    /// bugs still trip the strict assertions.
    lenient: bool,
    /// Active undo journal while this L1 executes a speculative epoch
    /// member; `None` during committed execution.
    spec: Option<Box<SpecState>>,
    /// Retired journals kept for reuse so `spec_begin` on the hot epoch
    /// path does not allocate. Boxed on purpose: journals shuttle between
    /// here and `spec` as the same allocation, never re-boxed.
    #[allow(clippy::vec_box)]
    spec_free: Vec<Box<SpecState>>,
    // counters
    loads: u64,
    stores: u64,
    atomics: u64,
    hits: u64,
    misses: u64,
    merged_misses: u64,
    retries: u64,
    writebacks: u64,
    invalidations: u64,
    fetches: u64,
    spurious_fetches: u64,
}

impl L1 {
    pub fn new(id: PortId, config: L1Config, protocol: ProtocolKind) -> L1 {
        assert!(config.max_mshrs > 0, "need at least one MSHR");
        L1 {
            id,
            config,
            protocol,
            array: CacheArray::new(config.cache),
            mshrs: fx_map_with_capacity(config.max_mshrs),
            evict_buf: fx_map_with_capacity(config.max_mshrs),
            reserved: fx_map_with_capacity(config.max_mshrs),
            retry_trace: std::env::var("CCSVM_RETRY_TRACE").is_ok(),
            lenient: false,
            spec: None,
            spec_free: Vec::new(),
            loads: 0,
            stores: 0,
            atomics: 0,
            hits: 0,
            misses: 0,
            merged_misses: 0,
            retries: 0,
            writebacks: 0,
            invalidations: 0,
            fetches: 0,
            spurious_fetches: 0,
        }
    }

    /// Switches to lenient handling of duplicate directory messages (see
    /// the field docs); used when directory timeouts are enabled.
    pub fn set_lenient(&mut self) {
        self.lenient = true;
    }

    fn counters(&self) -> [u64; 11] {
        [
            self.loads,
            self.stores,
            self.atomics,
            self.hits,
            self.misses,
            self.merged_misses,
            self.retries,
            self.writebacks,
            self.invalidations,
            self.fetches,
            self.spurious_fetches,
        ]
    }

    fn set_counters(&mut self, c: [u64; 11]) {
        [
            self.loads,
            self.stores,
            self.atomics,
            self.hits,
            self.misses,
            self.merged_misses,
            self.retries,
            self.writebacks,
            self.invalidations,
            self.fetches,
            self.spurious_fetches,
        ] = c;
    }

    /// Opens an undo journal: until `spec_commit`/`spec_rollback`, every
    /// core-side mutation is revertible. `budget` caps the number of
    /// set-granular pre-images before the journal falls back to a full
    /// snapshot (see [`SpecState`]).
    pub fn spec_begin(&mut self, budget: usize) {
        debug_assert!(self.spec.is_none(), "nested speculation on {:?}", self.id);
        let mut spec = self.spec_free.pop().unwrap_or_default();
        spec.touched.clear();
        spec.images.clear();
        spec.full.clear();
        spec.budget = budget.max(1);
        spec.overflowed = false;
        spec.tick0 = self.array.tick();
        spec.counters0 = self.counters();
        spec.mshrs0.clone_from(&self.mshrs);
        spec.evict0.clone_from(&self.evict_buf);
        spec.reserved0.clone_from(&self.reserved);
        self.spec = Some(spec);
    }

    /// Whether an undo journal is currently open.
    pub fn spec_active(&self) -> bool {
        self.spec.is_some()
    }

    /// Whether the open journal has overflowed into the snapshot path.
    #[cfg(test)]
    pub fn spec_overflowed(&self) -> bool {
        self.spec.as_ref().is_some_and(|s| s.overflowed)
    }

    /// Keeps the speculative execution: the journal is discarded and the
    /// current state becomes committed.
    pub fn spec_commit(&mut self) {
        let spec = self.spec.take().expect("spec_commit without spec_begin");
        self.spec_free.push(spec);
    }

    /// Reverts every mutation since `spec_begin`, byte-exactly (snapshot
    /// streams taken before and after a begin/execute/rollback cycle are
    /// identical). Returns `true` when the overflow slow path was taken.
    pub fn spec_rollback(&mut self) -> bool {
        let mut spec = self.spec.take().expect("spec_rollback without spec_begin");
        let overflowed = spec.overflowed;
        if overflowed {
            let mut r = ccsvm_snap::SnapReader::new(&spec.full);
            ccsvm_snap::Snapshot::load(self, &mut r)
                .expect("overflow snapshot was written by this L1");
        }
        for img in &spec.images {
            self.array.restore_set(img);
        }
        self.array.set_tick(spec.tick0);
        self.set_counters(spec.counters0);
        std::mem::swap(&mut self.mshrs, &mut spec.mshrs0);
        std::mem::swap(&mut self.evict_buf, &mut spec.evict0);
        std::mem::swap(&mut self.reserved, &mut spec.reserved0);
        self.spec_free.push(spec);
        overflowed
    }

    /// First-touch hook: captures a pre-image of `block`'s set before any
    /// path below may mutate it. No-op when no journal is open.
    fn spec_touch(&mut self, block: u64) {
        let Some(mut spec) = self.spec.take() else {
            return;
        };
        let set = self.array.set_of(block);
        if spec.touched.insert(set) {
            if spec.images.len() < spec.budget {
                spec.images.push(self.array.snapshot_set(set));
            } else if !spec.overflowed {
                spec.overflowed = true;
                let mut w = ccsvm_snap::SnapWriter::new();
                ccsvm_snap::Snapshot::save(self, &mut w);
                spec.full = w.into_vec();
            }
        }
        self.spec = Some(spec);
    }

    /// Replays the counter effects of re-attempting an access that returned
    /// [`L1Access::Retry`] earlier in the same core batch. MSHRs, eviction
    /// buffers and way reservations drain only via message deliveries that
    /// happen between core batches, so within one batch the retry outcome is
    /// invariant: the controller run can be skipped, but its counters (and
    /// the sampled retry trace) must advance exactly as a real attempt would.
    pub fn count_doomed_retry(&mut self, access: Access) {
        match access {
            Access::Read { .. } => self.loads += 1,
            Access::Write { .. } => self.stores += 1,
            Access::Rmw { .. } => self.atomics += 1,
        }
        self.retries += 1;
        if self.retry_trace && self.retries.is_multiple_of(10000) {
            // Recompute the cause for the trace line: the state the decision
            // reads is frozen for the rest of the batch, so this matches what
            // a real re-attempt would have printed.
            if self.mshrs.len() >= self.config.max_mshrs {
                eprintln!(
                    "RETRY mshr-full port={:?} mshrs={:?}",
                    self.id,
                    self.mshrs.keys().collect::<Vec<_>>()
                );
            } else {
                let block = block_of(access.addr());
                eprintln!(
                    "RETRY reserve-fail port={:?} block={block} set={} reserved={:?}",
                    self.id,
                    self.array.set_of(block),
                    self.reserved
                );
            }
        }
    }

    fn read_word(&self, addr: PhysAddr, size: usize) -> u64 {
        let data = self.array.data(block_of(addr));
        word_from_block(&data, addr, size)
    }

    fn write_word(&mut self, addr: PhysAddr, size: usize, value: u64) {
        let block = block_of(addr);
        let off = offset_in_block(addr);
        self.array.write(block, off, &value.to_le_bytes()[..size]);
    }

    /// Attempts `access`; on a miss, allocates/merges an MSHR and emits
    /// coherence requests into `out`.
    pub fn access(&mut self, access: Access, token: u64, out: &mut L1Out) -> L1Access {
        let (addr, size) = (access.addr(), access.size());
        debug_assert!(
            offset_in_block(addr) + size <= crate::BLOCK_BYTES as usize,
            "access straddles a block: {addr:?} size {size}"
        );
        match access {
            Access::Read { .. } => self.loads += 1,
            Access::Write { .. } => self.stores += 1,
            Access::Rmw { .. } => self.atomics += 1,
        }
        let block = block_of(addr);
        // Every array mutation below (LRU touch, data write, eviction,
        // install reservation) stays within this block's set.
        self.spec_touch(block);
        // One tag lookup resolves the way; the hit paths below reuse the
        // index instead of re-scanning the set per read/write/meta touch.
        // LRU tick behaviour is unchanged: one touch for a read hit, two for
        // a write hit (`lookup` + the old `lookup_mut`).
        let idx = self.array.lookup_idx(block);
        let state = idx.map_or(L1State::I, |i| self.array.meta_at(i).state);
        let needs_m = !matches!(access, Access::Read { .. });

        // Hit paths.
        if state.readable() && !needs_m {
            self.hits += 1;
            let i = idx.expect("readable implies resident");
            return L1Access::Hit {
                value: word_from_block(self.array.data_at(i), addr, size),
            };
        }
        if needs_m && matches!(state, L1State::M | L1State::E) {
            self.hits += 1;
            let i = idx.expect("writable implies resident");
            let off = offset_in_block(addr);
            let data = self.array.data_at_mut(i);
            let value = match access {
                Access::Read { .. } => unreachable!("needs_m excludes reads"),
                Access::Write { value, .. } => {
                    data[off..off + size].copy_from_slice(&value.to_le_bytes()[..size]);
                    value
                }
                Access::Rmw { op, .. } => {
                    let mut v = [0u8; 8];
                    v[..size].copy_from_slice(&data[off..off + size]);
                    let old = u64::from_le_bytes(v);
                    data[off..off + size]
                        .copy_from_slice(&op.apply(old).to_le_bytes()[..size]);
                    old
                }
            };
            self.array.touch_at(i);
            self.array.meta_at_mut(i).state = L1State::M;
            self.maybe_write_through(block, out);
            return L1Access::Hit { value };
        }

        // Miss: merge into an existing MSHR for this block if present.
        if let Some(mshr) = self.mshrs.get_mut(&block) {
            self.merged_misses += 1;
            let needs_upgrade = needs_m && !mshr.wants_m;
            mshr.waiters.push(Waiter { token, access });
            if needs_upgrade {
                // Escalate: the in-flight GetS won't satisfy this writer. The
                // fill handler issues the GetM after the GetS data arrives (the
                // directory is already processing / will process our GetS).
            }
            return L1Access::Pending;
        }
        if self.mshrs.len() >= self.config.max_mshrs {
            self.retries += 1;
            if self.retry_trace && self.retries.is_multiple_of(10000) {
                eprintln!(
                    "RETRY mshr-full port={:?} mshrs={:?}",
                    self.id,
                    self.mshrs.keys().collect::<Vec<_>>()
                );
            }
            return L1Access::Retry;
        }
        // Upgrades (block resident in S/O) complete in the existing way; only
        // misses that will install into a new way need a reservation.
        if state == L1State::I && !self.reserve_way(block, out) {
            self.retries += 1;
            if self.retry_trace && self.retries.is_multiple_of(10000) {
                eprintln!(
                    "RETRY reserve-fail port={:?} block={block} set={} reserved={:?}",
                    self.id,
                    self.array.set_of(block),
                    self.reserved
                );
            }
            return L1Access::Retry;
        }
        self.misses += 1;
        self.mshrs.insert(
            block,
            Mshr {
                wants_m: needs_m,
                waiters: vec![Waiter { token, access }],
            },
        );
        out.requests.push(Request {
            kind: self.miss_request_kind(state, access),
            from: self.id,
            block,
            data: None,
            retain: false,
        });
        L1Access::Pending
    }

    /// The coherence request a miss (or upgrade) on a line in `state` sends,
    /// in the configured protocol's vocabulary.
    fn miss_request_kind(&self, state: L1State, access: Access) -> ReqKind {
        let needs_m = !matches!(access, Access::Read { .. });
        match self.protocol {
            ProtocolKind::Directory => {
                if needs_m {
                    ReqKind::GetM
                } else {
                    ReqKind::GetS
                }
            }
            ProtocolKind::MesiSnoop => {
                if needs_m {
                    ReqKind::BusRdX
                } else {
                    ReqKind::BusRd
                }
            }
            ProtocolKind::Dragon => match access {
                Access::Read { .. } => ReqKind::BusRd,
                // Atomics acquire exclusivity: a write-update round cannot
                // serialize a read-modify-write against racing updates.
                Access::Rmw { .. } => ReqKind::BusRdX,
                Access::Write { paddr, size, value } => {
                    if matches!(state, L1State::S | L1State::O) {
                        // Write to a shared block: broadcast the word.
                        ReqKind::BusUpd(UpdWord {
                            off: offset_in_block(paddr) as u8,
                            size: size as u8,
                            value,
                        })
                    } else {
                        // No copy: read-for-write, then update (or write
                        // locally when granted E) from the fill drain.
                        ReqKind::BusRd
                    }
                }
            },
        }
    }

    /// Reserves a way in `block`'s set for an in-flight fill, evicting a
    /// victim if necessary. Victims with pending misses (upgrades in flight)
    /// are never evicted. Returns `false` if no way can be freed right now.
    fn reserve_way(&mut self, block: u64, out: &mut L1Out) -> bool {
        let set = self.array.set_of(block);
        let reserved = self.reserved.entry(set).or_insert(0);
        if self.array.free_ways(block) > *reserved {
            *reserved += 1;
            return true;
        }
        let victim = self
            .array
            .victims_lru(block)
            .into_iter()
            .find(|v| !self.mshrs.contains_key(v));
        let Some(victim) = victim else {
            return false;
        };
        *self.reserved.get_mut(&set).expect("entry") += 1;
        self.evict(victim, out);
        true
    }

    /// An invalidation removed `block` while it had a pending upgrade MSHR:
    /// the eventual fill will now install into a new way, so the way this
    /// removal just freed becomes the MSHR's reservation.
    fn claim_freed_way(&mut self, block: u64) {
        if self.mshrs.contains_key(&block) {
            *self.reserved.entry(self.array.set_of(block)).or_insert(0) += 1;
        }
    }

    /// Evicts `victim`, emitting a writeback/eviction notice.
    fn evict(&mut self, victim: u64, out: &mut L1Out) {
        let (line, data) = self.array.remove(victim).expect("victim resident");
        match line.state {
            L1State::M | L1State::O => {
                self.writebacks += 1;
                self.evict_buf
                    .insert(victim, EvictEntry { data, dirty: true });
                out.requests.push(Request {
                    kind: ReqKind::PutDirty,
                    from: self.id,
                    block: victim,
                    data: Some(data),
                    retain: false,
                });
            }
            // Snooping protocols: clean evictions are silent (there is no
            // directory registration to retire). Memory is current for every
            // clean state, and in-flight dirty writebacks keep answering
            // snoops from the eviction buffer until their PutAck.
            L1State::E | L1State::S if !self.protocol.uses_directory() => {}
            L1State::E => {
                // Clean, but we are the registered owner: the directory may
                // still Fetch us, so buffer the data until PutAck.
                self.evict_buf
                    .insert(victim, EvictEntry { data, dirty: false });
                out.requests.push(Request {
                    kind: ReqKind::PutClean,
                    from: self.id,
                    block: victim,
                    data: None,
                    retain: false,
                });
            }
            L1State::S => {
                out.requests.push(Request {
                    kind: ReqKind::PutClean,
                    from: self.id,
                    block: victim,
                    data: None,
                    retain: false,
                });
            }
            L1State::I => unreachable!("invalid line resident in array"),
        }
    }

    fn perform_write(&mut self, access: Access) -> u64 {
        match access {
            Access::Read { .. } => unreachable!("perform_write on read"),
            Access::Write { paddr, size, value } => {
                self.write_word(paddr, size, value);
                value
            }
            Access::Rmw { paddr, size, op } => {
                let old = self.read_word(paddr, size);
                self.write_word(paddr, size, op.apply(old));
                old
            }
        }
    }

    fn maybe_write_through(&mut self, block: u64, out: &mut L1Out) {
        if self.config.write_policy != WritePolicy::WriteThrough {
            return;
        }
        // Push the whole dirty block to the L2. The line stays in M (we remain
        // the registered owner); the modelled cost of write-through is the
        // per-store data traffic, which this captures.
        let data = self.array.data(block);
        self.writebacks += 1;
        out.requests.push(Request {
            kind: ReqKind::PutDirty,
            from: self.id,
            block,
            data: Some(data),
            retain: true,
        });
    }

    /// Handles a directory → L1 message.
    pub fn on_dir_msg(&mut self, msg: DirToL1, out: &mut L1Out) {
        debug_assert!(
            self.spec.is_none(),
            "directory message delivered to speculating L1 {:?}: the epoch \
             scheduler must roll the member back before dispatching",
            self.id
        );
        match msg {
            DirToL1::Data { block, grant, data } => self.on_fill(block, grant, data, out),
            DirToL1::AckM { block } => {
                debug_assert!(
                    self.array.peek(block).is_some(),
                    "AckM for non-resident block {block}"
                );
                self.array.lookup_mut(block).expect("resident").state = L1State::M;
                self.drain_waiters(block, out);
            }
            DirToL1::Inv { block } => {
                self.invalidations += 1;
                let removed = self.array.remove(block);
                if removed.is_some() {
                    self.claim_freed_way(block);
                }
                let data = match removed {
                    Some((line, data)) if line.state.dirty() => Some(data),
                    _ => None,
                };
                out.responses.push(L1ToDir::InvResp {
                    from: self.id,
                    block,
                    data,
                });
            }
            DirToL1::Fetch { block } => {
                self.fetches += 1;
                if let Some(line) = self.array.peek_mut(block) {
                    let dirty = line.state.dirty();
                    line.state = L1State::O;
                    let data = self.array.data(block);
                    out.responses.push(L1ToDir::FetchResp {
                        from: self.id,
                        block,
                        data,
                        dirty,
                    });
                } else if let Some(e) = self.evict_buf.get(&block) {
                    out.responses.push(L1ToDir::FetchResp {
                        from: self.id,
                        block,
                        data: e.data,
                        dirty: e.dirty,
                    });
                } else {
                    // Only reachable in lenient mode: a NACK-resent Fetch
                    // arrived after this L1 already answered and dropped the
                    // block. Stay silent — the data cannot be resent — and
                    // let the original answer (or the retry budget) decide.
                    assert!(
                        self.lenient,
                        "Fetch for block neither resident nor evicting"
                    );
                    self.spurious_fetches += 1;
                }
            }
            DirToL1::FetchInv { block } => {
                self.fetches += 1;
                if let Some((line, data)) = self.array.remove(block) {
                    self.claim_freed_way(block);
                    out.responses.push(L1ToDir::FetchResp {
                        from: self.id,
                        block,
                        data,
                        dirty: line.state.dirty(),
                    });
                } else if let Some(e) = self.evict_buf.get(&block) {
                    out.responses.push(L1ToDir::FetchResp {
                        from: self.id,
                        block,
                        data: e.data,
                        dirty: e.dirty,
                    });
                } else {
                    assert!(
                        self.lenient,
                        "FetchInv for block neither resident nor evicting"
                    );
                    self.spurious_fetches += 1;
                }
            }
            DirToL1::PutAck { block } => {
                self.evict_buf.remove(&block);
            }
            DirToL1::Snoop { block, kind } => self.on_snoop(block, kind, out),
            DirToL1::UpdDone { block, sharers } => self.on_upd_done(block, sharers, out),
        }
    }

    /// Answers an ordering-point probe (snooping protocols). Every probe gets
    /// exactly one `SnoopResp`; `had` reports a live copy (resident line or a
    /// dirty writeback still in the eviction buffer), and `data` rides along
    /// whenever one existed so the ordering point can source cache-to-cache.
    fn on_snoop(&mut self, block: u64, kind: SnoopKind, out: &mut L1Out) {
        let (had, dirty, data) = match kind {
            SnoopKind::Rd => {
                if let Some(i) = self.array.peek_idx(block) {
                    self.fetches += 1;
                    let state = self.array.meta_at(i).state;
                    let dirty = state.dirty();
                    // Another cache reads: demote a writable copy to shared.
                    // MESI: M/E → S (the ordering point writes the dirty data
                    // back, so every surviving copy is clean). Dragon: the
                    // dirty owner keeps ownership as Sm (`O`), E → Sc (`S`) —
                    // memory is *not* updated on cache-to-cache supply.
                    let demoted = match (self.protocol, state) {
                        (ProtocolKind::Dragon, L1State::M) => L1State::O,
                        (ProtocolKind::Dragon, L1State::E) => L1State::S,
                        (ProtocolKind::Dragon, s) => s,
                        (_, L1State::M | L1State::E) => L1State::S,
                        (_, s) => s,
                    };
                    self.array.meta_at_mut(i).state = demoted;
                    (true, dirty, Some(self.array.data(block)))
                } else if let Some(e) = self.evict_buf.get(&block) {
                    (e.dirty, e.dirty, e.dirty.then_some(e.data))
                } else {
                    (false, false, None)
                }
            }
            SnoopKind::RdX => {
                if let Some((line, data)) = self.array.remove(block) {
                    self.invalidations += 1;
                    self.claim_freed_way(block);
                    (true, line.state.dirty(), Some(data))
                } else if let Some(e) = self.evict_buf.get(&block) {
                    (e.dirty, e.dirty, e.dirty.then_some(e.data))
                } else {
                    (false, false, None)
                }
            }
            SnoopKind::Upd(word) => {
                // Dragon write-update: patch a live shared copy in place; an
                // Sm owner demotes to Sc (the writer becomes the owner). A
                // copy that raced to M/E via the invalidating RdX path does
                // not apply — the writer was invalidated by that same round
                // and will re-read before retrying its store.
                match self.array.peek_idx(block) {
                    Some(i)
                        if matches!(self.array.meta_at(i).state, L1State::S | L1State::O) =>
                    {
                        self.array.meta_at_mut(i).state = L1State::S;
                        word.apply(self.array.data_at_mut(i));
                        (true, false, None)
                    }
                    _ => (false, false, None),
                }
            }
        };
        out.responses.push(L1ToDir::SnoopResp {
            from: self.id,
            block,
            had,
            dirty,
            data,
        });
    }

    /// Dragon: the ordering point serialized our write-update round. Apply
    /// the store that headed the round, take ownership (Sm when sharers
    /// acknowledged live copies, M when we are now alone), and keep draining.
    fn on_upd_done(&mut self, block: u64, sharers: bool, out: &mut L1Out) {
        let state = self.array.peek(block).map_or(L1State::I, |l| l.state);
        if !state.readable() {
            // A racing RdX invalidated our copy after the round was issued:
            // re-read first (the invalidation's `claim_freed_way` converted
            // the freed way into our fill reservation), then the fill drain
            // retries the store.
            out.requests.push(Request {
                kind: ReqKind::BusRd,
                from: self.id,
                block,
                data: None,
                retain: false,
            });
            return;
        }
        let mshr = self.mshrs.get_mut(&block).expect("UpdDone without MSHR");
        let w = mshr.waiters.remove(0);
        debug_assert!(
            matches!(w.access, Access::Write { .. }),
            "update round headed by a non-store"
        );
        let value = self.perform_write(w.access);
        self.array.lookup_mut(block).expect("resident").state =
            if sharers { L1State::O } else { L1State::M };
        out.completions.push((w.token, value, block));
        self.maybe_write_through(block, out);
        self.drain_waiters(block, out);
    }

    fn on_fill(&mut self, block: u64, grant: Grant, data: BlockData, out: &mut L1Out) {
        let state = match grant {
            Grant::S => L1State::S,
            Grant::E => L1State::E,
            Grant::M => L1State::M,
        };
        // Snooping protocols grant data even on upgrades (a `BusRdX` from S
        // answers with `Data{M}`, dissolving the upgrade/invalidate race the
        // directory resolves with `AckM`): install in place, no reservation
        // was taken for a resident line.
        if !self.protocol.uses_directory() {
            if let Some(i) = self.array.peek_idx(block) {
                // A dirty resident copy is the block's most current version
                // (Dragon: the Sm owner re-serializing through `BusRdX` for an
                // atomic) — the fill's bytes may be a stale L2 copy, so only
                // the permission upgrade applies.
                if !self.array.meta_at(i).state.dirty() {
                    self.array.set_data(block, data);
                }
                self.array.meta_at_mut(i).state = state;
                self.drain_waiters(block, out);
                return;
            }
        }
        let set = self.array.set_of(block);
        let r = self
            .reserved
            .get_mut(&set)
            .expect("fill without reservation");
        *r -= 1;
        if *r == 0 {
            self.reserved.remove(&set);
        }
        let evicted = self.array.insert(block, Line { state }, data);
        debug_assert!(evicted.is_none(), "reservation failed to hold a way");
        self.drain_waiters(block, out);
    }

    /// Completes as many waiters as the current state allows; escalates to a
    /// GetM if writers remain with only read permission.
    fn drain_waiters(&mut self, block: u64, out: &mut L1Out) {
        let Some(mut mshr) = self.mshrs.remove(&block) else {
            return;
        };
        let mut remaining = Vec::new();
        for w in mshr.waiters.drain(..) {
            let state = self.array.peek(block).map_or(L1State::I, |l| l.state);
            match w.access {
                Access::Read { paddr, size } => {
                    debug_assert!(state.readable(), "fill left block unreadable");
                    out.completions.push((
                        w.token,
                        {
                            let d = self.array.data(block);
                            word_from_block(&d, paddr, size)
                        },
                        block,
                    ));
                }
                Access::Write { .. } | Access::Rmw { .. } => {
                    if matches!(state, L1State::M | L1State::E) {
                        let value = self.perform_write(w.access);
                        self.array.lookup_mut(block).expect("resident").state = L1State::M;
                        out.completions.push((w.token, value, block));
                        self.maybe_write_through(block, out);
                    } else {
                        remaining.push(w);
                    }
                }
            }
        }
        if !remaining.is_empty() {
            // Escalate in the protocol's vocabulary: GetM (directory) /
            // BusRdX (snooping MESI) for the whole batch, or — Dragon — an
            // update round for the store at the head of the queue (each
            // UpdDone drains back through here for the next one).
            let state = self.array.peek(block).map_or(L1State::I, |l| l.state);
            let kind = self.miss_request_kind(state, remaining[0].access);
            self.mshrs.insert(
                block,
                Mshr {
                    wants_m: true,
                    waiters: remaining,
                },
            );
            out.requests.push(Request {
                kind,
                from: self.id,
                block,
                data: None,
                retain: false,
            });
        }
    }

    /// Untimed read of a resident block (used for coalesced lane accesses and
    /// the backdoor). Returns `None` when the block is not readable here.
    pub fn peek_word(&self, addr: PhysAddr, size: usize) -> Option<u64> {
        let block = block_of(addr);
        let i = self.array.peek_idx(block)?;
        if !self.array.meta_at(i).state.readable() {
            return None;
        }
        Some(word_from_block(self.array.data_at(i), addr, size))
    }

    /// Untimed write to a block held in M or E (E silently upgrades to M).
    /// Returns `false` when the cache lacks write permission.
    pub fn poke_word(&mut self, addr: PhysAddr, size: usize, value: u64) -> bool {
        let block = block_of(addr);
        self.spec_touch(block);
        match self.array.peek_idx(block) {
            Some(i) if matches!(self.array.meta_at(i).state, L1State::M | L1State::E) => {
                self.array.meta_at_mut(i).state = L1State::M;
                let off = offset_in_block(addr);
                self.array.data_at_mut(i)[off..off + size]
                    .copy_from_slice(&value.to_le_bytes()[..size]);
                true
            }
            _ => false,
        }
    }

    /// Functionally overwrites bytes of a resident block (any valid state),
    /// for the machine's coherent backdoor. Returns `false` if not resident.
    pub fn backdoor_patch(&mut self, block: u64, off: usize, bytes: &[u8]) -> bool {
        self.spec_touch(block);
        match self.array.peek(block) {
            Some(line) if line.state.readable() => {
                self.array.write(block, off, bytes);
                true
            }
            _ => false,
        }
    }

    /// State of `block` for tests/assertions and the coherent backdoor.
    pub fn probe(&self, block: u64) -> (L1State, Option<BlockData>) {
        match self.array.peek(block) {
            Some(line) => (line.state, Some(self.array.data(block))),
            None => (L1State::I, None),
        }
    }

    /// Whether this L1 has any outstanding misses or evictions in flight.
    pub fn quiescent(&self) -> bool {
        self.mshrs.is_empty() && self.evict_buf.is_empty()
    }

    /// Blocks resident in any valid state, with their states (the
    /// sanitizer's whole-cache sweep).
    pub fn resident_blocks(&self) -> Vec<(u64, L1State)> {
        self.array.iter().map(|(b, line)| (b, line.state)).collect()
    }

    /// Whether this L1 has an in-flight miss (MSHR) on `block`. The
    /// snooping-protocol sanitizer checks stand down on such blocks: between
    /// a sharer applying an update and the writer's `UpdDone` (or between an
    /// invalidating probe and its grant) the copies legitimately disagree.
    pub fn mshr_on(&self, block: u64) -> bool {
        self.mshrs.contains_key(&block)
    }

    /// Whether this L1 holds `block` in its eviction buffer (a writeback in
    /// flight that still answers snoops until its PutAck).
    pub fn evicting(&self, block: u64) -> bool {
        self.evict_buf.contains_key(&block)
    }

    /// Blocks with an in-flight miss (MSHR allocated), sorted — the
    /// per-port "outstanding accesses" line of the watchdog's diagnostic
    /// dump.
    pub fn outstanding_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.mshrs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("loads"), self.loads as f64);
        s.set_id(stat_id("stores"), self.stores as f64);
        s.set_id(stat_id("atomics"), self.atomics as f64);
        s.set_id(stat_id("hits"), self.hits as f64);
        s.set_id(stat_id("misses"), self.misses as f64);
        s.set_id(stat_id("merged_misses"), self.merged_misses as f64);
        s.set_id(stat_id("retries"), self.retries as f64);
        s.set_id(stat_id("writebacks"), self.writebacks as f64);
        s.set_id(stat_id("invalidations"), self.invalidations as f64);
        s.set_id(stat_id("fetches"), self.fetches as f64);
        if self.lenient {
            s.set_id(stat_id("spurious_fetches"), self.spurious_fetches as f64);
        }
        s
    }
}

impl L1State {
    fn snap_tag(self) -> u8 {
        match self {
            L1State::I => 0,
            L1State::S => 1,
            L1State::E => 2,
            L1State::O => 3,
            L1State::M => 4,
        }
    }

    fn from_snap_tag(tag: u8) -> Result<L1State, ccsvm_snap::SnapError> {
        Ok(match tag {
            0 => L1State::I,
            1 => L1State::S,
            2 => L1State::E,
            3 => L1State::O,
            4 => L1State::M,
            t => {
                return Err(ccsvm_snap::SnapError::Corrupt {
                    what: format!("unknown L1 state tag {t:#04x}"),
                })
            }
        })
    }
}

/// Mutable run-state only. `id`/`config` are construction-time;
/// `retry_trace` is env-derived and `lenient` config-derived (reinstalled by
/// the machine before `load`). Hash maps serialize sorted by block so the
/// byte stream is independent of insertion history.
impl ccsvm_snap::Snapshot for L1 {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        // Holds both for machine checkpoints (epochs fully resolve before a
        // pause) and for the overflow capture in `spec_touch` (which takes
        // the journal out of `self` before saving).
        debug_assert!(self.spec.is_none(), "snapshot of a speculating L1");
        self.array
            .save_with(w, |line, w| w.put_u8(line.state.snap_tag()));

        let mut blocks: Vec<u64> = self.mshrs.keys().copied().collect();
        blocks.sort_unstable();
        w.put_usize(blocks.len());
        for b in blocks {
            let mshr = &self.mshrs[&b];
            w.put_u64(b);
            w.put_bool(mshr.wants_m);
            w.put_usize(mshr.waiters.len());
            for waiter in &mshr.waiters {
                w.put_u64(waiter.token);
                waiter.access.save(w);
            }
        }

        let mut blocks: Vec<u64> = self.evict_buf.keys().copied().collect();
        blocks.sort_unstable();
        w.put_usize(blocks.len());
        for b in blocks {
            let e = &self.evict_buf[&b];
            w.put_u64(b);
            w.put_raw(&e.data);
            w.put_bool(e.dirty);
        }

        let mut sets: Vec<u64> = self.reserved.keys().copied().collect();
        sets.sort_unstable();
        w.put_usize(sets.len());
        for s in sets {
            w.put_u64(s);
            w.put_usize(self.reserved[&s]);
        }

        for c in [
            self.loads,
            self.stores,
            self.atomics,
            self.hits,
            self.misses,
            self.merged_misses,
            self.retries,
            self.writebacks,
            self.invalidations,
            self.fetches,
            self.spurious_fetches,
        ] {
            w.put_u64(c);
        }
    }

    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.array.load_with(r, |r| {
            Ok(Line {
                state: L1State::from_snap_tag(r.get_u8()?)?,
            })
        })?;

        self.mshrs.clear();
        for _ in 0..r.get_usize()? {
            let block = r.get_u64()?;
            let wants_m = r.get_bool()?;
            let n_waiters = r.get_count(1)?;
            let mut waiters = Vec::with_capacity(n_waiters);
            for _ in 0..n_waiters {
                waiters.push(Waiter {
                    token: r.get_u64()?,
                    access: Access::load(r)?,
                });
            }
            self.mshrs.insert(block, Mshr { wants_m, waiters });
        }

        self.evict_buf.clear();
        for _ in 0..r.get_usize()? {
            let block = r.get_u64()?;
            let mut data = [0u8; crate::BLOCK_BYTES as usize];
            r.get_raw(&mut data)?;
            let dirty = r.get_bool()?;
            self.evict_buf.insert(block, EvictEntry { data, dirty });
        }

        self.reserved.clear();
        for _ in 0..r.get_usize()? {
            let set = r.get_u64()?;
            let count = r.get_usize()?;
            self.reserved.insert(set, count);
        }

        for c in [
            &mut self.loads,
            &mut self.stores,
            &mut self.atomics,
            &mut self.hits,
            &mut self.misses,
            &mut self.merged_misses,
            &mut self.retries,
            &mut self.writebacks,
            &mut self.invalidations,
            &mut self.fetches,
            &mut self.spurious_fetches,
        ] {
            *c = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::msg::Grant;

    fn test_l1() -> L1 {
        L1::new(
            PortId(0),
            L1Config {
                node: NodeId(0),
                cache: CacheConfig { sets: 4, ways: 2 },
                hit_time: Time::from_ps(690),
                max_mshrs: 4,
                write_policy: WritePolicy::WriteBack,
            },
            ProtocolKind::Directory,
        )
    }

    fn snap_bytes(l1: &L1) -> Vec<u8> {
        let mut w = ccsvm_snap::SnapWriter::new();
        ccsvm_snap::Snapshot::save(l1, &mut w);
        w.into_vec()
    }

    /// Miss on `block` and deliver the fill, leaving it resident in `grant`.
    fn install(l1: &mut L1, block: u64, grant: Grant) {
        let mut out = L1Out::default();
        let r = l1.access(
            Access::Read {
                paddr: PhysAddr(block * crate::BLOCK_BYTES),
                size: 8,
            },
            0xB000 + block,
            &mut out,
        );
        assert_eq!(r, L1Access::Pending);
        let mut data = [0u8; crate::BLOCK_BYTES as usize];
        data[..8].copy_from_slice(&(0xD00D_0000 + block).to_le_bytes());
        l1.on_dir_msg(DirToL1::Data { block, grant, data }, &mut out);
    }

    /// Speculative mutations across several sets: write hits, an eviction
    /// (set pressure), a fresh miss, a doomed retry and a poke.
    fn churn(l1: &mut L1, out: &mut L1Out) {
        let w = |block: u64| Access::Write {
            paddr: PhysAddr(block * crate::BLOCK_BYTES),
            size: 8,
            value: 0xFEED + block,
        };
        assert!(matches!(l1.access(w(1), 1, out), L1Access::Hit { .. }));
        assert!(matches!(l1.access(w(5), 2, out), L1Access::Hit { .. }));
        // Set 1 holds blocks 1 and 5; a third conflicting miss evicts.
        assert_eq!(l1.access(w(9), 3, out), L1Access::Pending);
        // Fresh miss in an untouched set.
        assert_eq!(
            l1.access(
                Access::Read {
                    paddr: PhysAddr(2 * crate::BLOCK_BYTES),
                    size: 4
                },
                4,
                out
            ),
            L1Access::Pending
        );
        l1.count_doomed_retry(w(9));
        l1.poke_word(PhysAddr(crate::BLOCK_BYTES + 16), 8, 0xCAFE);
    }

    #[test]
    fn spec_rollback_restores_snapshot_bytes() {
        let mut l1 = test_l1();
        for (b, g) in [(1, Grant::M), (5, Grant::E), (3, Grant::S)] {
            install(&mut l1, b, g);
        }
        let bytes0 = snap_bytes(&l1);

        // Journaled path: generous budget, no overflow.
        let mut out = L1Out::default();
        l1.spec_begin(8);
        churn(&mut l1, &mut out);
        assert!(!l1.spec_overflowed());
        assert!(!l1.spec_rollback());
        assert_eq!(snap_bytes(&l1), bytes0, "journaled rollback must be exact");

        // Overflow path: budget of one image, same churn.
        let mut out = L1Out::default();
        l1.spec_begin(1);
        churn(&mut l1, &mut out);
        assert!(l1.spec_overflowed());
        assert!(l1.spec_rollback());
        assert_eq!(snap_bytes(&l1), bytes0, "overflow rollback must be exact");
    }

    #[test]
    fn spec_commit_matches_unspeculated_twin() {
        let mut spec = test_l1();
        let mut plain = test_l1();
        for l1 in [&mut spec, &mut plain] {
            for (b, g) in [(1, Grant::M), (5, Grant::E), (3, Grant::S)] {
                install(l1, b, g);
            }
        }
        let mut out_s = L1Out::default();
        let mut out_p = L1Out::default();
        spec.spec_begin(2);
        churn(&mut spec, &mut out_s);
        spec.spec_commit();
        churn(&mut plain, &mut out_p);
        assert_eq!(snap_bytes(&spec), snap_bytes(&plain));
        assert_eq!(format!("{out_s:?}"), format!("{out_p:?}"));
    }
}
