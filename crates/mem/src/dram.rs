//! Off-chip DRAM model: sparse backing store + fixed latency + channel
//! bandwidth, with the access counters behind the paper's Figure 9.

use ccsvm_engine::{stat_id, DramFaultConfig, FxHashMap, SplitMix64, Stats, Time};

use crate::addr::{offset_in_block, PhysAddr, BLOCK_BYTES};
use crate::msg::BlockData;

const PAGE_BYTES: u64 = 4096;

/// SECDED ECC fault model on the read path, present only when fault
/// injection is installed. Single-bit flips are corrected (the stored data
/// is untouched — SECDED recovers it — and the event is counted);
/// double-bit flips are detected but uncorrectable: the block is marked
/// poisoned and the requester sees `AccessResult::Poisoned` instead of
/// silently consuming corrupt data.
#[derive(Clone, Debug, PartialEq)]
struct DramFaults {
    cfg: DramFaultConfig,
    rng: SplitMix64,
    corrected: u64,
    poisoned_events: u64,
}

/// DRAM timing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Fixed access latency (Table 2: 100 ns for the CCSVM system, 72 ns for
    /// the APU).
    pub latency: Time,
    /// Channel bandwidth in bytes per nanosecond (DDR3-1600 ≈ 12.8).
    pub bytes_per_ns: f64,
    /// Number of independent channels (one per L2 bank by default).
    pub channels: usize,
}

impl DramConfig {
    /// The paper's CCSVM system DRAM: 100 ns, DDR3-class bandwidth, one
    /// channel per L2 bank.
    pub fn paper_default() -> DramConfig {
        DramConfig {
            latency: Time::from_ns(100),
            bytes_per_ns: 12.8,
            channels: 4,
        }
    }
}

/// Off-chip memory: functional backing store plus timing/counters.
///
/// Storage is sparse (4 KiB frames allocated on first touch), so a simulated
/// 2 GB DRAM costs only what the workload actually touches.
///
/// # Examples
///
/// ```
/// use ccsvm_mem::{Dram, DramConfig, PhysAddr};
/// let mut d = Dram::new(DramConfig::paper_default());
/// d.write_bytes(PhysAddr(0x1000), &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// d.read_bytes(PhysAddr(0x1000), &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    pages: FxHashMap<u64, Box<[u8; PAGE_BYTES as usize]>>,
    channel_free: Vec<Time>,
    reads: u64,
    writes: u64,
    faults: Option<DramFaults>,
}

impl Dram {
    /// Creates an empty DRAM.
    pub fn new(config: DramConfig) -> Dram {
        assert!(config.channels > 0, "need at least one channel");
        Dram {
            config,
            pages: FxHashMap::default(),
            channel_free: vec![Time::ZERO; config.channels],
            reads: 0,
            writes: 0,
            faults: None,
        }
    }

    /// Enables the SECDED ECC fault model with its own RNG stream.
    pub fn install_faults(&mut self, cfg: DramFaultConfig, rng: SplitMix64) {
        self.faults = Some(DramFaults {
            cfg,
            rng,
            corrected: 0,
            poisoned_events: 0,
        });
    }

    /// The timing configuration.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    fn page_mut(&mut self, frame: u64) -> &mut [u8; PAGE_BYTES as usize] {
        self.pages
            .entry(frame)
            .or_insert_with(|| Box::new([0; PAGE_BYTES as usize]))
    }

    /// Functional (untimed) byte read; unallocated memory reads as zero.
    pub fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr.0 + i as u64;
            *b = self
                .pages
                .get(&(a / PAGE_BYTES))
                .map_or(0, |p| p[(a % PAGE_BYTES) as usize]);
        }
    }

    /// Functional (untimed) byte write.
    pub fn write_bytes(&mut self, addr: PhysAddr, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.0 + i as u64;
            self.page_mut(a / PAGE_BYTES)[(a % PAGE_BYTES) as usize] = b;
        }
    }

    /// Timed read of block `block` on the channel for `channel_key`:
    /// returns the completion time, the data, and whether ECC declared the
    /// block poisoned (uncorrectable double-bit error); counts one DRAM
    /// access. The stored data is never corrupted: a single-bit flip is
    /// corrected by SECDED before the data leaves the controller, and a
    /// double-bit flip is *detected*, so the block is tagged rather than
    /// corrupt data silently returned.
    pub fn timed_read_block(
        &mut self,
        now: Time,
        channel_key: usize,
        block: u64,
    ) -> (Time, BlockData, bool) {
        if std::env::var("CCSVM_DRAM_TRACE").is_ok() {
            eprintln!("DRAMRD {block}");
        }
        self.reads += 1;
        let done = self.reserve(now, channel_key);
        let mut data = [0u8; BLOCK_BYTES as usize];
        self.read_bytes(crate::addr::base_of_block(block), &mut data);
        let mut poisoned = false;
        if let Some(f) = &mut self.faults {
            let u = f.rng.next_f64();
            if u < f.cfg.double_bit_rate {
                f.poisoned_events += 1;
                poisoned = true;
            } else if u < f.cfg.double_bit_rate + f.cfg.single_bit_rate {
                f.corrected += 1;
            }
        }
        (done, data, poisoned)
    }

    /// Timed writeback of a block; returns completion time and counts one
    /// DRAM access.
    pub fn timed_write_block(
        &mut self,
        now: Time,
        channel_key: usize,
        block: u64,
        data: &BlockData,
    ) -> Time {
        self.writes += 1;
        let done = self.reserve(now, channel_key);
        self.write_bytes(crate::addr::base_of_block(block), data);
        done
    }

    /// Timed bulk transfer of `bytes` (used by the APU's DMA model); returns
    /// completion time and counts `ceil(bytes / 64)` accesses in the given
    /// direction.
    pub fn timed_bulk(
        &mut self,
        now: Time,
        channel_key: usize,
        bytes: u64,
        is_write: bool,
    ) -> Time {
        let blocks = bytes.div_ceil(BLOCK_BYTES);
        if is_write {
            self.writes += blocks;
        } else {
            self.reads += blocks;
        }
        let ch = channel_key % self.channel_free.len();
        let start = now.max(self.channel_free[ch]) + self.config.latency;
        let xfer = Time::from_ps((bytes as f64 * 1_000.0 / self.config.bytes_per_ns).ceil() as u64);
        let done = start + xfer;
        self.channel_free[ch] = done;
        done
    }

    fn reserve(&mut self, now: Time, channel_key: usize) -> Time {
        let ch = channel_key % self.channel_free.len();
        let xfer =
            Time::from_ps((BLOCK_BYTES as f64 * 1_000.0 / self.config.bytes_per_ns).ceil() as u64);
        let start = now.max(self.channel_free[ch]);
        let done = start + self.config.latency + xfer;
        self.channel_free[ch] = start + xfer; // pipelined: occupancy is the burst
        done
    }

    /// Total accesses (reads + writes) — the paper's Figure 9 metric.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Read / write counters. ECC counters appear only when the fault model
    /// is installed, keeping healthy-run reports unchanged.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("reads"), self.reads as f64);
        s.set_id(stat_id("writes"), self.writes as f64);
        s.set_id(stat_id("accesses"), self.accesses() as f64);
        if let Some(f) = &self.faults {
            s.set_id(stat_id("ecc_corrected"), f.corrected as f64);
            s.set_id(stat_id("ecc_poisoned"), f.poisoned_events as f64);
        }
        s
    }

    /// Resets access counters (e.g. after warm-up or input loading).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

// ---------------------------------------------------------------------------
// Snapshot codec. Any change here is a snapshot schema change (bump
// `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

impl ccsvm_snap::Snapshot for Dram {
    fn save(&self, w: &mut ccsvm_snap::SnapWriter) {
        // Frames sorted so the byte stream is independent of hash-map
        // insertion history.
        let mut frames: Vec<u64> = self.pages.keys().copied().collect();
        frames.sort_unstable();
        w.put_usize(frames.len());
        for f in frames {
            w.put_u64(f);
            w.put_raw(&self.pages[&f][..]);
        }
        w.put_usize(self.channel_free.len());
        for &t in &self.channel_free {
            w.put_u64(t.as_ps());
        }
        w.put_u64(self.reads);
        w.put_u64(self.writes);
        match &self.faults {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                w.put_u64(f.rng.state());
                w.put_u64(f.corrected);
                w.put_u64(f.poisoned_events);
            }
        }
    }

    fn load(&mut self, r: &mut ccsvm_snap::SnapReader<'_>) -> Result<(), ccsvm_snap::SnapError> {
        self.pages.clear();
        for _ in 0..r.get_usize()? {
            let frame = r.get_u64()?;
            let mut page = Box::new([0u8; PAGE_BYTES as usize]);
            r.get_raw(&mut page[..])?;
            self.pages.insert(frame, page);
        }
        let channels = r.get_usize()?;
        if channels != self.channel_free.len() {
            return Err(ccsvm_snap::SnapError::Corrupt {
                what: format!(
                    "snapshot has {channels} DRAM channels, config builds {}",
                    self.channel_free.len()
                ),
            });
        }
        for t in &mut self.channel_free {
            *t = Time::from_ps(r.get_u64()?);
        }
        self.reads = r.get_u64()?;
        self.writes = r.get_u64()?;
        let has_faults = r.get_bool()?;
        match (&mut self.faults, has_faults) {
            (Some(f), true) => {
                f.rng.set_state(r.get_u64()?);
                f.corrected = r.get_u64()?;
                f.poisoned_events = r.get_u64()?;
            }
            (None, false) => {}
            _ => {
                return Err(ccsvm_snap::SnapError::Corrupt {
                    what: "dram fault-injection presence differs from config".into(),
                })
            }
        }
        Ok(())
    }
}

/// Helper to read an 8-byte little-endian word out of a block image.
pub(crate) fn word_from_block(data: &BlockData, addr: PhysAddr, size: usize) -> u64 {
    let off = offset_in_block(addr);
    let mut v = [0u8; 8];
    v[..size].copy_from_slice(&data[off..off + size]);
    u64::from_le_bytes(v)
}

/// Helper to write an 8-byte little-endian word into a block image.
#[cfg(test)]
pub(crate) fn word_to_block(data: &mut BlockData, addr: PhysAddr, size: usize, value: u64) {
    let off = offset_in_block(addr);
    data[off..off + size].copy_from_slice(&value.to_le_bytes()[..size]);
    debug_assert_eq!(
        crate::addr::block_of(addr),
        crate::addr::block_of(PhysAddr(addr.0 + size as u64 - 1))
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_rw_sparse() {
        let mut d = Dram::new(DramConfig::paper_default());
        let mut buf = [9u8; 4];
        d.read_bytes(PhysAddr(0xdead_0000), &mut buf);
        assert_eq!(buf, [0; 4]); // untouched memory is zero
        d.write_bytes(PhysAddr(0xFFF), &[1, 2]); // straddles a page boundary
        let mut two = [0u8; 2];
        d.read_bytes(PhysAddr(0xFFF), &mut two);
        assert_eq!(two, [1, 2]);
    }

    #[test]
    fn timed_read_counts_and_delays() {
        let mut d = Dram::new(DramConfig::paper_default());
        d.write_bytes(PhysAddr(64), &[7]);
        let (done, data, poisoned) = d.timed_read_block(Time::ZERO, 0, 1);
        assert!(!poisoned);
        assert!(done >= Time::from_ns(100));
        assert_eq!(data[0], 7);
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.stats().get("reads"), 1.0);
    }

    #[test]
    fn timed_write_roundtrip() {
        let mut d = Dram::new(DramConfig::paper_default());
        let mut blk = [0u8; 64];
        blk[3] = 0xAB;
        let done = d.timed_write_block(Time::from_ns(5), 1, 2, &blk);
        assert!(done > Time::from_ns(5));
        let mut buf = [0u8; 1];
        d.read_bytes(PhysAddr(2 * 64 + 3), &mut buf);
        assert_eq!(buf[0], 0xAB);
        assert_eq!(d.stats().get("writes"), 1.0);
    }

    #[test]
    fn channel_contention_serializes() {
        let cfg = DramConfig {
            latency: Time::from_ns(100),
            bytes_per_ns: 6.4, // 64B burst = 10 ns
            channels: 1,
        };
        let mut d = Dram::new(cfg);
        let (a, _, _) = d.timed_read_block(Time::ZERO, 0, 0);
        let (b, _, _) = d.timed_read_block(Time::ZERO, 0, 1);
        assert_eq!(a, Time::from_ns(110));
        // Second burst starts after the first burst's occupancy (10ns), fully
        // pipelined behind the latency.
        assert_eq!(b, Time::from_ns(120));
    }

    #[test]
    fn bulk_counts_blocks() {
        let mut d = Dram::new(DramConfig::paper_default());
        d.timed_bulk(Time::ZERO, 0, 100, true);
        assert_eq!(d.stats().get("writes"), 2.0); // ceil(100/64)
        d.reset_counters();
        assert_eq!(d.accesses(), 0);
    }

    #[test]
    fn ecc_corrects_singles_poisons_doubles_deterministically() {
        let cfg = DramFaultConfig {
            single_bit_rate: 0.3,
            double_bit_rate: 0.1,
        };
        let run = |seed: u64| {
            let mut d = Dram::new(DramConfig::paper_default());
            d.write_bytes(PhysAddr(0), &[5]);
            d.install_faults(cfg, SplitMix64::new(seed));
            let mut poisons = Vec::new();
            for i in 0..200u64 {
                let (_, data, poisoned) = d.timed_read_block(Time::ZERO, 0, i % 8);
                if i % 8 == 0 {
                    assert_eq!(data[0], 5, "corrected reads return true data");
                }
                if poisoned {
                    poisons.push(i);
                }
            }
            (
                poisons,
                d.stats().get("ecc_corrected"),
                d.stats().get("ecc_poisoned"),
            )
        };
        let (p1, c1, d1) = run(11);
        let (p2, c2, d2) = run(11);
        assert_eq!(
            (&p1, c1, d1),
            (&p2, c2, d2),
            "same seed replays bit-for-bit"
        );
        assert!(c1 > 0.0 && d1 > 0.0, "rates high enough to observe both");
        assert_eq!(d1 as usize, p1.len());
        let (p3, _, _) = run(12);
        assert_ne!(p1, p3, "different seeds diverge");
    }

    #[test]
    fn word_block_helpers() {
        let mut blk = [0u8; 64];
        word_to_block(&mut blk, PhysAddr(8), 8, 0x1122334455667788);
        assert_eq!(word_from_block(&blk, PhysAddr(8), 8), 0x1122334455667788);
        assert_eq!(word_from_block(&blk, PhysAddr(8), 4), 0x55667788);
        word_to_block(&mut blk, PhysAddr(16), 2, 0xFFFF_0001);
        assert_eq!(word_from_block(&blk, PhysAddr(16), 2), 1);
    }
}
