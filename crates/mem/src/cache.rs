//! Generic set-associative cache array with true LRU and real block data.

use crate::addr::BLOCK_BYTES;

/// Geometry of a cache array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two is *not* required; indexing is
    /// modulo).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A config from a total capacity in bytes and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a multiple of `ways * 64` bytes.
    pub fn from_capacity(bytes: usize, ways: usize) -> CacheConfig {
        let line = BLOCK_BYTES as usize;
        assert!(
            bytes > 0 && bytes.is_multiple_of(ways * line),
            "capacity {bytes} not divisible into {ways}-way sets of {line}B lines"
        );
        CacheConfig {
            sets: bytes / (ways * line),
            ways,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * BLOCK_BYTES as usize
    }
}

/// Sentinel tag for an invalid way. A real block number is `addr >> 6`,
/// which cannot reach `u64::MAX` for any physical address the simulator can
/// produce.
const TAG_INVALID: u64 = u64::MAX;

/// A set-associative array of 64-byte blocks carrying metadata `M`.
///
/// Used for L1 caches (`M` = MOESI state), the shared L2 (`M` = directory
/// entry + dirty bit), and the APU GPU's write-through caches.
///
/// # Examples
///
/// ```
/// use ccsvm_mem::{CacheArray, CacheConfig};
/// let mut c: CacheArray<bool> = CacheArray::new(CacheConfig { sets: 2, ways: 2 });
/// assert!(c.lookup(10).is_none());
/// let evicted = c.insert(10, false, [0u8; 64]);
/// assert!(evicted.is_none());
/// assert!(c.lookup(10).is_some());
/// ```
/// Storage is struct-of-arrays: the tag scan in `find` runs on every access
/// of every cache in the machine, and a dense `tags` vector keeps one set's
/// tags in a single cache line instead of striding across ~100-byte
/// way structs.
#[derive(Clone, Debug)]
pub struct CacheArray<M> {
    config: CacheConfig,
    /// Block number per way, or `TAG_INVALID`.
    tags: Vec<u64>,
    /// LRU timestamp per way (monotone counter value at last touch).
    lru: Vec<u64>,
    /// Protocol metadata per way (state bits, dirty bit, sharer set...).
    metas: Vec<M>,
    /// Cached bytes per way.
    data: Vec<[u8; BLOCK_BYTES as usize]>,
    tick: u64,
    /// Low block bits skipped when computing the set index (a banked shared
    /// cache selects the bank with those bits, so indexing with them again
    /// would leave most sets unused).
    index_shift: u32,
    /// `sets - 1` when `sets` is a power of two, else `u64::MAX` as a
    /// "divide instead" sentinel — `set_of` sits on every access's tag
    /// lookup, and `h & mask` is an order of magnitude cheaper than `h %
    /// sets` (identical result for power-of-two set counts).
    set_mask: u64,
    /// Precomputed XOR-fold width for `hash_index`.
    fold_w: u32,
}

/// Pre-image of one cache set, captured by [`CacheArray::snapshot_set`] and
/// reinstated by [`CacheArray::restore_set`] when a speculative epoch member
/// rolls back.
#[derive(Clone, Debug)]
pub struct SetImage<M> {
    set: u64,
    tags: Vec<u64>,
    lru: Vec<u64>,
    metas: Vec<M>,
    data: Vec<[u8; BLOCK_BYTES as usize]>,
}

/// An evicted block returned by [`CacheArray::insert`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evicted<M> {
    /// Block number that was displaced.
    pub block: u64,
    /// Its metadata at eviction time.
    pub meta: M,
    /// Its data at eviction time.
    pub data: [u8; BLOCK_BYTES as usize],
}

impl<M> CacheArray<M> {
    /// Creates an empty (all-invalid) array.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(config: CacheConfig) -> CacheArray<M>
    where
        M: Default + Clone,
    {
        CacheArray::with_index_shift(config, 0)
    }

    /// Creates an array whose set index skips the low `index_shift` block
    /// bits (use `log2(n_banks)` for a bank of an interleaved shared cache).
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn with_index_shift(config: CacheConfig, index_shift: u32) -> CacheArray<M>
    where
        M: Default + Clone,
    {
        assert!(config.sets > 0 && config.ways > 0, "degenerate cache");
        let n = config.sets * config.ways;
        CacheArray {
            config,
            tags: vec![TAG_INVALID; n],
            lru: vec![0; n],
            metas: vec![M::default(); n],
            data: vec![[0; BLOCK_BYTES as usize]; n],
            tick: 0,
            index_shift,
            set_mask: if config.sets.is_power_of_two() {
                (config.sets - 1) as u64
            } else {
                u64::MAX
            },
            fold_w: usize::BITS - (config.sets.max(2) - 1).leading_zeros(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let set = self.set_of(block) as usize;
        set * self.config.ways..(set + 1) * self.config.ways
    }

    /// XOR-folded set index: mixes tag bits into the index so power-of-two
    /// strides (page-aligned hot lines such as per-thread stack tops) spread
    /// across all sets — the hashed indexing real caches use. The fold width
    /// matches the index width so the lowest tag bits (which vary fastest
    /// across page-strided footprints) land in the index.
    fn hash_index(&self, block: u64) -> u64 {
        let x = block >> self.index_shift;
        let w = self.fold_w;
        x ^ (x >> w) ^ (x >> (2 * w)) ^ (x >> (3 * w))
    }

    fn find(&self, block: u64) -> Option<usize> {
        debug_assert_ne!(block, TAG_INVALID);
        self.set_range(block).find(|&i| self.tags[i] == block)
    }

    /// Shared access to a resident block's metadata, touching LRU.
    pub fn lookup(&mut self, block: u64) -> Option<&M> {
        let i = self.lookup_idx(block)?;
        Some(&self.metas[i])
    }

    /// Mutable access to a resident block's metadata, touching LRU.
    pub fn lookup_mut(&mut self, block: u64) -> Option<&mut M> {
        let i = self.lookup_idx(block)?;
        Some(&mut self.metas[i])
    }

    /// Resolves `block` to its way index, touching LRU exactly like
    /// [`CacheArray::lookup`]. The `_at` accessors below then operate on that
    /// way without re-running the set scan — the hot hit path does exactly
    /// one tag lookup per access instead of one per read/write/meta touch.
    pub fn lookup_idx(&mut self, block: u64) -> Option<usize> {
        let i = self.find(block)?;
        self.tick += 1;
        self.lru[i] = self.tick;
        Some(i)
    }

    /// Resolves `block` to its way index without disturbing LRU.
    pub fn peek_idx(&self, block: u64) -> Option<usize> {
        self.find(block)
    }

    /// Touches LRU on way `i` (one tick, same as a `lookup` would charge).
    pub fn touch_at(&mut self, i: usize) {
        self.tick += 1;
        self.lru[i] = self.tick;
    }

    /// Metadata of way `i` (from `lookup_idx`/`peek_idx`).
    pub fn meta_at(&self, i: usize) -> &M {
        &self.metas[i]
    }

    /// Mutable metadata of way `i` without an LRU touch.
    pub fn meta_at_mut(&mut self, i: usize) -> &mut M {
        &mut self.metas[i]
    }

    /// Block data of way `i`.
    pub fn data_at(&self, i: usize) -> &[u8; BLOCK_BYTES as usize] {
        &self.data[i]
    }

    /// Mutable block data of way `i`.
    pub fn data_at_mut(&mut self, i: usize) -> &mut [u8; BLOCK_BYTES as usize] {
        &mut self.data[i]
    }

    /// Metadata access without disturbing LRU (for snoops/invalidations).
    pub fn peek(&self, block: u64) -> Option<&M> {
        self.find(block).map(|i| &self.metas[i])
    }

    /// Mutable metadata access without disturbing LRU.
    pub fn peek_mut(&mut self, block: u64) -> Option<&mut M> {
        self.find(block).map(move |i| &mut self.metas[i])
    }

    /// Reads bytes from a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident or the range exceeds the block.
    pub fn read(&self, block: u64, offset: usize, buf: &mut [u8]) {
        let i = self.find(block).expect("read of non-resident block");
        buf.copy_from_slice(&self.data[i][offset..offset + buf.len()]);
    }

    /// Writes bytes into a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident or the range exceeds the block.
    pub fn write(&mut self, block: u64, offset: usize, bytes: &[u8]) {
        let i = self.find(block).expect("write of non-resident block");
        self.data[i][offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Copy of a resident block's full data.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn data(&self, block: u64) -> [u8; BLOCK_BYTES as usize] {
        let i = self.find(block).expect("data of non-resident block");
        self.data[i]
    }

    /// Replaces the full data of a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn set_data(&mut self, block: u64, data: [u8; BLOCK_BYTES as usize]) {
        let i = self.find(block).expect("set_data of non-resident block");
        self.data[i] = data;
    }

    /// Whether inserting `block` would evict a valid block (i.e. its set is
    /// full and `block` is absent).
    pub fn would_evict(&self, block: u64) -> Option<u64> {
        if self.find(block).is_some() {
            return None;
        }
        let mut victim: Option<(u64, u64)> = None; // (lru, block)
        for i in self.set_range(block) {
            match self.tags[i] {
                TAG_INVALID => return None,
                b => {
                    let lru = self.lru[i];
                    if victim.is_none_or(|(vl, _)| lru < vl) {
                        victim = Some((lru, b));
                    }
                }
            }
        }
        victim.map(|(_, b)| b)
    }

    /// All resident blocks in `block`'s set, least-recently-used first.
    /// Callers that can't evict a particular victim (e.g. a directory bank
    /// whose victim has an active transaction) walk this list in order.
    pub fn victims_lru(&self, block: u64) -> Vec<u64> {
        let mut v: Vec<(u64, u64)> = self
            .set_range(block)
            .filter(|&i| self.tags[i] != TAG_INVALID)
            .map(|i| (self.lru[i], self.tags[i]))
            .collect();
        v.sort();
        v.into_iter().map(|(_, b)| b).collect()
    }

    /// Whether `block`'s set has an invalid (free) way.
    pub fn has_free_way(&self, block: u64) -> bool {
        self.find(block).is_some() || self.set_range(block).any(|i| self.tags[i] == TAG_INVALID)
    }

    /// Number of invalid (free) ways in `block`'s set.
    pub fn free_ways(&self, block: u64) -> usize {
        self.set_range(block)
            .filter(|&i| self.tags[i] == TAG_INVALID)
            .count()
    }

    /// The set index `block` maps to.
    pub fn set_of(&self, block: u64) -> u64 {
        let h = self.hash_index(block);
        if self.set_mask != u64::MAX {
            h & self.set_mask
        } else {
            h % self.config.sets as u64
        }
    }

    /// Installs `block`, evicting the LRU way of its set if necessary.
    ///
    /// Returns the displaced block, if any. If `block` is already resident its
    /// metadata and data are replaced in place.
    pub fn insert(
        &mut self,
        block: u64,
        meta: M,
        data: [u8; BLOCK_BYTES as usize],
    ) -> Option<Evicted<M>>
    where
        M: Clone,
    {
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.find(block) {
            self.metas[i] = meta;
            self.data[i] = data;
            self.lru[i] = tick;
            return None;
        }
        // Prefer an invalid way; otherwise evict true-LRU.
        let mut slot = None;
        let mut lru_slot = None;
        for i in self.set_range(block) {
            if self.tags[i] == TAG_INVALID {
                slot = Some(i);
                break;
            }
            if lru_slot.is_none_or(|j: usize| self.lru[i] < self.lru[j]) {
                lru_slot = Some(i);
            }
        }
        let (i, evicted) = match slot {
            Some(i) => (i, None),
            None => {
                let i = lru_slot.expect("set has ways");
                (
                    i,
                    Some(Evicted {
                        block: self.tags[i],
                        meta: self.metas[i].clone(),
                        data: self.data[i],
                    }),
                )
            }
        };
        self.tags[i] = block;
        self.lru[i] = tick;
        self.metas[i] = meta;
        self.data[i] = data;
        evicted
    }

    /// Removes `block` from the array, returning its metadata and data.
    pub fn remove(&mut self, block: u64) -> Option<(M, [u8; BLOCK_BYTES as usize])>
    where
        M: Default,
    {
        let i = self.find(block)?;
        self.tags[i] = TAG_INVALID;
        let meta = std::mem::take(&mut self.metas[i]);
        Some((meta, self.data[i]))
    }

    /// Iterates over all resident blocks as `(block, &meta)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &M)> {
        self.tags
            .iter()
            .zip(&self.metas)
            .filter(|(&t, _)| t != TAG_INVALID)
            .map(|(&t, m)| (t, m))
    }

    /// Serializes the array (tags, LRU ticks, metadata, block data) with a
    /// caller-supplied metadata codec. Geometry is construction-time state
    /// and is only recorded as a way count for validation.
    pub fn save_with(
        &self,
        w: &mut ccsvm_snap::SnapWriter,
        save_meta: impl Fn(&M, &mut ccsvm_snap::SnapWriter),
    ) {
        w.put_u64(self.tick);
        w.put_usize(self.tags.len());
        // Sparse: an invalid way's lru/meta/data can never influence the
        // simulation (victim selection and lookup both filter on the tag, and
        // `insert` overwrites the whole way), so only resident blocks are
        // written. This keeps images proportional to the touched working set
        // rather than to cache capacity.
        for i in 0..self.tags.len() {
            match self.tags[i] {
                TAG_INVALID => w.put_bool(false),
                b => {
                    w.put_bool(true);
                    w.put_u64(b);
                    w.put_u64(self.lru[i]);
                    save_meta(&self.metas[i], w);
                    w.put_raw(&self.data[i]);
                }
            }
        }
    }

    /// Restores state written by [`CacheArray::save_with`] into an array of
    /// identical geometry.
    pub fn load_with(
        &mut self,
        r: &mut ccsvm_snap::SnapReader<'_>,
        load_meta: impl Fn(&mut ccsvm_snap::SnapReader<'_>) -> Result<M, ccsvm_snap::SnapError>,
    ) -> Result<(), ccsvm_snap::SnapError>
    where
        M: Default,
    {
        self.tick = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.tags.len() {
            return Err(ccsvm_snap::SnapError::Corrupt {
                what: format!("cache array has {n} ways, machine has {}", self.tags.len()),
            });
        }
        for i in 0..n {
            if r.get_bool()? {
                self.tags[i] = r.get_u64()?;
                self.lru[i] = r.get_u64()?;
                self.metas[i] = load_meta(r)?;
                r.get_raw(&mut self.data[i])?;
            } else {
                self.tags[i] = TAG_INVALID;
                self.lru[i] = 0;
                self.metas[i] = M::default();
                self.data[i] = [0; BLOCK_BYTES as usize];
            }
        }
        Ok(())
    }

    /// Current LRU tick. Together with [`CacheArray::set_tick`] this lets a
    /// speculative executor rewind the recency clock on rollback — LRU
    /// ordering is part of snapshot bytes, so an unrewound tick would leak
    /// speculation into later eviction decisions.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Restores the LRU tick (rollback of speculative touches).
    pub fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// Pre-image of set `set` — everything an access can mutate in that set
    /// (tags, LRU stamps, metadata, data) — for the speculative undo journal
    /// (DESIGN §12). Captured at first speculative touch of the set.
    pub fn snapshot_set(&self, set: u64) -> SetImage<M>
    where
        M: Clone,
    {
        let r = set as usize * self.config.ways..(set as usize + 1) * self.config.ways;
        SetImage {
            set,
            tags: self.tags[r.clone()].to_vec(),
            lru: self.lru[r.clone()].to_vec(),
            metas: self.metas[r.clone()].to_vec(),
            data: self.data[r].to_vec(),
        }
    }

    /// Restores a set captured by [`CacheArray::snapshot_set`], byte-exactly.
    pub fn restore_set(&mut self, img: &SetImage<M>)
    where
        M: Clone,
    {
        let r = img.set as usize * self.config.ways..(img.set as usize + 1) * self.config.ways;
        self.tags[r.clone()].clone_from_slice(&img.tags);
        self.lru[r.clone()].clone_from_slice(&img.lru);
        self.metas[r.clone()].clone_from_slice(&img.metas);
        self.data[r].clone_from_slice(&img.data);
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }

    /// Whether the array holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sets: usize, ways: usize) -> CacheConfig {
        CacheConfig { sets, ways }
    }

    #[test]
    fn capacity_math() {
        let c = CacheConfig::from_capacity(64 * 1024, 4);
        assert_eq!(c.sets, 256);
        assert_eq!(c.capacity(), 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_capacity_panics() {
        CacheConfig::from_capacity(100, 4);
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c: CacheArray<u8> = CacheArray::new(cfg(4, 2));
        assert!(c.is_empty());
        assert!(c.insert(5, 7, [1; 64]).is_none());
        assert_eq!(c.lookup(5), Some(&7));
        assert_eq!(c.peek(5), Some(&7));
        *c.lookup_mut(5).unwrap() = 9;
        let (meta, data) = c.remove(5).unwrap();
        assert_eq!(meta, 9);
        assert_eq!(data[0], 1);
        assert!(c.lookup(5).is_none());
        assert!(c.remove(5).is_none());
    }

    /// First `n` blocks that share block 0's (hashed) set.
    fn conflicting<M: Default + Clone>(c: &CacheArray<M>, n: usize) -> Vec<u64> {
        let set0 = c.set_of(0);
        (0u64..100_000)
            .filter(|&b| c.set_of(b) == set0)
            .take(n)
            .collect()
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: CacheArray<()> = CacheArray::new(cfg(4, 2));
        let b = conflicting(&c, 3);
        c.insert(b[0], (), [0; 64]);
        c.insert(b[1], (), [0; 64]);
        c.lookup(b[0]); // b0 is now MRU; b1 is LRU
        assert_eq!(c.would_evict(b[2]), Some(b[1]));
        let e = c.insert(b[2], (), [0; 64]).unwrap();
        assert_eq!(e.block, b[1]);
        assert!(c.peek(b[0]).is_some());
        assert!(c.peek(b[2]).is_some());
    }

    #[test]
    fn insert_existing_replaces_in_place() {
        let mut c: CacheArray<u8> = CacheArray::new(cfg(2, 1));
        c.insert(2, 1, [1; 64]);
        assert!(c.insert(2, 2, [2; 64]).is_none());
        assert_eq!(c.peek(2), Some(&2));
        assert_eq!(c.data(2)[0], 2);
    }

    #[test]
    fn would_evict_none_when_room() {
        let mut c: CacheArray<()> = CacheArray::new(cfg(1, 2));
        c.insert(0, (), [0; 64]);
        assert_eq!(c.would_evict(1), None); // free way
        assert_eq!(c.would_evict(0), None); // already resident
    }

    #[test]
    fn hashed_index_spreads_page_strides() {
        // Page-strided hot blocks (64 blocks apart) must spread over many
        // sets instead of aliasing into a handful.
        let c: CacheArray<()> = CacheArray::new(cfg(64, 4));
        let sets: std::collections::HashSet<u64> =
            (0..64u64).map(|k| c.set_of(63 + 64 * k)).collect();
        assert!(sets.len() >= 32, "only {} distinct sets", sets.len());
    }

    #[test]
    fn read_write_data() {
        let mut c: CacheArray<()> = CacheArray::new(cfg(1, 1));
        c.insert(3, (), [0; 64]);
        c.write(3, 8, &42u64.to_le_bytes());
        let mut buf = [0u8; 8];
        c.read(3, 8, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 42);
        let mut full = c.data(3);
        full[0] = 0xFF;
        c.set_data(3, full);
        assert_eq!(c.data(3)[0], 0xFF);
    }

    #[test]
    fn iter_and_len() {
        let mut c: CacheArray<u8> = CacheArray::new(cfg(4, 2));
        c.insert(1, 10, [0; 64]);
        c.insert(2, 20, [0; 64]);
        let mut items: Vec<_> = c.iter().map(|(b, m)| (b, *m)).collect();
        items.sort();
        assert_eq!(items, vec![(1, 10), (2, 20)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c: CacheArray<()> = CacheArray::new(cfg(1, 2));
        c.insert(0, (), [0; 64]);
        c.insert(1, (), [0; 64]);
        c.peek(0); // must NOT promote 0
        assert_eq!(c.would_evict(2), Some(0));
        c.lookup(0); // promotes 0
        assert_eq!(c.would_evict(2), Some(1));
    }

    #[test]
    fn set_of_is_stable_and_in_range() {
        let c: CacheArray<()> = CacheArray::new(cfg(64, 4));
        for b in 0..1000u64 {
            let s = c.set_of(b);
            assert!(s < 64);
            assert_eq!(s, c.set_of(b));
        }
    }

    /// Set pre-image round trip: mutate a set every way an access can
    /// (insert with eviction, data write, LRU touch, remove), restore, and
    /// require the whole array — including the recency clock — back
    /// byte-exact.
    #[test]
    fn set_image_restores_exactly() {
        let mut c: CacheArray<u8> = CacheArray::new(cfg(4, 2));
        let b = conflicting(&c, 3);
        c.insert(b[0], 1, [1; 64]);
        c.insert(b[1], 2, [2; 64]);
        let set = c.set_of(b[0]);
        let tick0 = c.tick();
        let img = c.snapshot_set(set);

        c.insert(b[2], 3, [3; 64]); // evicts LRU
        c.write(b[2], 0, &[9]);
        let i = c.lookup_idx(b[1]).unwrap();
        c.touch_at(i);
        c.remove(b[1]);

        c.restore_set(&img);
        c.set_tick(tick0);
        assert_eq!(c.tick(), tick0);
        assert_eq!(c.peek(b[0]), Some(&1));
        assert_eq!(c.peek(b[1]), Some(&2));
        assert!(c.peek(b[2]).is_none());
        assert_eq!(c.data(b[0]), [1; 64]);
        assert_eq!(c.data(b[1]), [2; 64]);
        // LRU order is restored too: b0 (older) is the eviction victim again.
        assert_eq!(c.would_evict(b[2]), Some(b[0]));
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn read_missing_panics() {
        let c: CacheArray<()> = CacheArray::new(cfg(1, 1));
        let mut buf = [0u8; 1];
        c.read(9, 0, &mut buf);
    }
}

#[cfg(all(test, feature = "slow-tests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        /// The array never holds more blocks per set than its associativity,
        /// and data written to resident blocks reads back unless evicted.
        #[test]
        fn associativity_respected(ops in proptest::collection::vec((0u64..32, any::<u8>()), 1..200)) {
            let config = CacheConfig { sets: 4, ways: 2 };
            let mut c: CacheArray<()> = CacheArray::new(config);
            let mut shadow: HashMap<u64, u8> = HashMap::new();
            for (block, val) in ops {
                if c.peek(block).is_none() {
                    if let Some(e) = c.insert(block, (), [0; 64]) {
                        shadow.remove(&e.block);
                    }
                }
                c.write(block, 0, &[val]);
                shadow.insert(block, val);
                // Set population bound (hashed indexing).
                for set in 0..config.sets as u64 {
                    let n = c.iter().filter(|(b, _)| c.set_of(*b) == set).count();
                    prop_assert!(n <= config.ways);
                }
            }
            for (block, val) in shadow {
                if c.peek(block).is_some() {
                    let mut buf = [0u8; 1];
                    c.read(block, 0, &mut buf);
                    prop_assert_eq!(buf[0], val);
                }
            }
        }
    }
}
