//! The pluggable coherence-protocol boundary.
//!
//! The memory system supports three per-block coherence protocols; which one
//! a machine runs is part of its configuration (and therefore of the config
//! hash snapshots are keyed on):
//!
//! * **Directory MOESI** (`directory`) — the paper's protocol: a blocking
//!   directory embedded in the banked L2 orders transactions per block,
//!   invalidation-based, with an owned (O) state so dirty sharing does not
//!   force writebacks. The L2 is inclusive; installs may recall L1 copies.
//! * **Snooping MESI** (`mesi-snoop`) — bus-ordered broadcast over the
//!   existing NoC. The block's home bank acts as the per-block bus ordering
//!   point: `BusRd`/`BusRdX` transactions broadcast `Snoop` probes to every
//!   other L1 and collect `SnoopResp`s before granting, with cache-to-cache
//!   supply (dirty supplier preferred). The L2 is a plain non-inclusive
//!   victim of the traffic — no directory state, no recalls.
//! * **Dragon write-update** (`dragon`) — stores to shared blocks broadcast
//!   the written word (`BusUpd`) instead of invalidating: sharers patch their
//!   copies in place and the writer becomes the owner (Sm). The classic
//!   Dragon states map onto the existing L1 state enum as Sc=`S`, Sm=`O`,
//!   E=`E`, M=`M`. Read-modify-writes use the invalidating `BusRdX` path
//!   (updates cannot serialize an atomic's read-modify-write against racing
//!   updates, so exclusivity is acquired instead).
//!
//! [`CoherenceProtocol`] carries what the rest of the stack needs to know
//! about a protocol without seeing its state machine: its identity/CLI
//! naming, its message vocabulary (for docs and diagnostics), and — the part
//! the sanitizer consumes — which DESIGN §9 invariants are *defined* under
//! it. SWMR is deliberately not an invariant under Dragon (multiple dirty
//! copies are the protocol working as designed), and the directory-agreement
//! invariant only exists where there is a directory; the sanitizer gates on
//! [`CoherenceProtocol::invariants`] rather than being silently disabled.
//!
//! The state machines themselves live next to the structures they drive:
//! the directory protocol in `bank.rs`/`l1.rs` (unchanged), the snooping
//! protocols' bank-side ordering point also in `bank.rs` and their L1-side
//! reactions in `l1.rs`, all dispatched on [`ProtocolKind`].

use ccsvm_engine::{InvariantId, InvariantMask};

/// Which coherence protocol a machine runs. Part of the memory system's
/// configuration: it participates in the config hash, so snapshots taken
/// under one protocol cannot silently restore into another.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Blocking directory MOESI embedded in the L2 banks (the paper's).
    #[default]
    Directory,
    /// Snooping MESI with the home bank as per-block bus ordering point.
    MesiSnoop,
    /// Dragon write-update (Sc/Sm/E/M; stores broadcast updates).
    Dragon,
}

impl ProtocolKind {
    /// All protocols, in CLI/documentation order.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::Directory,
        ProtocolKind::MesiSnoop,
        ProtocolKind::Dragon,
    ];

    /// The CLI / config-file name (`directory`, `mesi-snoop`, `dragon`).
    pub fn as_str(self) -> &'static str {
        match self {
            ProtocolKind::Directory => "directory",
            ProtocolKind::MesiSnoop => "mesi-snoop",
            ProtocolKind::Dragon => "dragon",
        }
    }

    /// Parses a CLI / config-file name.
    pub fn parse(s: &str) -> Option<ProtocolKind> {
        Some(match s {
            "directory" => ProtocolKind::Directory,
            "mesi-snoop" => ProtocolKind::MesiSnoop,
            "dragon" => ProtocolKind::Dragon,
            _ => None?,
        })
    }

    /// Whether this protocol runs the L2-embedded blocking directory
    /// (inclusive L2, recalls, Fetch/Inv indirections, NACK timeouts).
    pub fn uses_directory(self) -> bool {
        matches!(self, ProtocolKind::Directory)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the rest of the simulator may know about a coherence protocol:
/// identity, vocabulary, and which sanitizer invariants are defined under
/// it. Obtain one with [`protocol`].
pub trait CoherenceProtocol {
    /// The protocol's configuration identity.
    fn kind(&self) -> ProtocolKind;

    /// Human-readable name (matches [`ProtocolKind::as_str`]).
    fn name(&self) -> &'static str {
        self.kind().as_str()
    }

    /// The DESIGN §9 invariants that are *defined* for this protocol. The
    /// sanitizer checks exactly this set — an invariant absent here is not
    /// an invariant of the protocol (not a disabled check).
    fn invariants(&self) -> InvariantMask;

    /// The L1 stable states, in the protocol's own naming.
    fn l1_states(&self) -> &'static [&'static str];

    /// The protocol's message vocabulary (requests, probes, responses), for
    /// diagnostics and the DESIGN §13 catalogue.
    fn messages(&self) -> &'static [&'static str];
}

/// The paper's blocking directory MOESI.
struct DirectoryMoesi;

impl CoherenceProtocol for DirectoryMoesi {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Directory
    }

    fn invariants(&self) -> InvariantMask {
        InvariantMask::all()
    }

    fn l1_states(&self) -> &'static [&'static str] {
        &["I", "S", "E", "O", "M"]
    }

    fn messages(&self) -> &'static [&'static str] {
        &[
            "GetS", "GetM", "PutDirty", "PutClean", "Data", "AckM", "Inv", "Fetch", "FetchInv",
            "PutAck", "InvResp", "FetchResp",
        ]
    }
}

/// Snooping MESI over the NoC, bank-ordered.
struct MesiSnoop;

impl CoherenceProtocol for MesiSnoop {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::MesiSnoop
    }

    fn invariants(&self) -> InvariantMask {
        // No directory ⇒ nothing for the L2 record to agree with.
        InvariantMask::all().without(InvariantId::MemDirAgree)
    }

    fn l1_states(&self) -> &'static [&'static str] {
        &["I", "S", "E", "M"]
    }

    fn messages(&self) -> &'static [&'static str] {
        &[
            "BusRd", "BusRdX", "PutDirty", "Snoop(Rd)", "Snoop(RdX)", "SnoopResp", "Data",
            "PutAck",
        ]
    }
}

/// Dragon write-update.
struct DragonUpdate;

impl CoherenceProtocol for DragonUpdate {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Dragon
    }

    fn invariants(&self) -> InvariantMask {
        // No directory, and SWMR is *not* a Dragon invariant: an update
        // round leaves the writer in Sm with other readable copies alive —
        // that is the protocol's whole point, not a bug.
        InvariantMask::all()
            .without(InvariantId::MemDirAgree)
            .without(InvariantId::MemSwmr)
    }

    fn l1_states(&self) -> &'static [&'static str] {
        &["I", "Sc", "Sm", "E", "M"]
    }

    fn messages(&self) -> &'static [&'static str] {
        &[
            "BusRd",
            "BusRdX",
            "BusUpd",
            "PutDirty",
            "Snoop(Rd)",
            "Snoop(RdX)",
            "Snoop(Upd)",
            "SnoopResp",
            "UpdDone",
            "Data",
            "PutAck",
        ]
    }
}

/// Returns the protocol descriptor for `kind`.
pub fn protocol(kind: ProtocolKind) -> &'static dyn CoherenceProtocol {
    match kind {
        ProtocolKind::Directory => &DirectoryMoesi,
        ProtocolKind::MesiSnoop => &MesiSnoop,
        ProtocolKind::Dragon => &DragonUpdate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.as_str()), Some(kind));
            assert_eq!(protocol(kind).name(), kind.as_str());
            assert_eq!(protocol(kind).kind(), kind);
        }
        assert_eq!(ProtocolKind::parse("moesi"), None);
    }

    #[test]
    fn invariant_masks_differ_where_the_protocols_do() {
        let dir = protocol(ProtocolKind::Directory).invariants();
        let snoop = protocol(ProtocolKind::MesiSnoop).invariants();
        let dragon = protocol(ProtocolKind::Dragon).invariants();
        assert_eq!(dir, InvariantMask::all());
        assert!(snoop.contains(InvariantId::MemSwmr));
        assert!(!snoop.contains(InvariantId::MemDirAgree));
        assert!(!dragon.contains(InvariantId::MemSwmr));
        assert!(!dragon.contains(InvariantId::MemDirAgree));
        for m in [dir, snoop, dragon] {
            assert!(m.contains(InvariantId::MemDataValue));
            assert!(m.contains(InvariantId::MemMsgConserve));
            assert!(m.contains(InvariantId::NocConserve));
            assert!(m.contains(InvariantId::VmTlbPt));
            assert!(m.contains(InvariantId::VmStaleShoot));
        }
    }

}
