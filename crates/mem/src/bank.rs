//! A banked shared-L2 slice with the coherence directory embedded in its
//! blocks (paper §3.1/§3.2.2: "the shared L2 cache is banked and co-located
//! with a banked directory that holds state used for cache coherence").
//!
//! The directory is *blocking*: one transaction per block is active at a
//! time; conflicting requests queue in arrival order. All indirections go
//! through the directory (owners send fetched data here, sharers ack
//! invalidations here), which gives a total order of coherence transactions
//! per block — the SWMR invariant the paper relies on (§3.2.2).
//!
//! The L2 is **inclusive**: every block cached in any L1 is present here, so
//! an L2 miss means no L1 holds the block (as in Nehalem, which the paper
//! cites). Installing a block may therefore require a *recall*: invalidating
//! and fetching back the victim's L1 copies before it can be written back.

use std::collections::VecDeque;

use ccsvm_engine::{fx_map_with_capacity, stat_id, FxHashMap, Stats};

use crate::cache::{CacheArray, CacheConfig};
use crate::msg::{BankId, BlockData, DirToL1, Grant, L1ToDir, ReqKind, Request, SnoopKind};
use crate::protocol::ProtocolKind;
use crate::recover::RetryRound;
use crate::system::PortId;

/// Directory state for one L2 block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum DirState {
    /// No L1 holds the block; the L2 data is the freshest on-chip copy.
    #[default]
    Unowned,
    /// One or more L1s hold the block in S; L2 data is valid.
    Shared(u32),
    /// `owner` holds the block in M/E/O (L2 data may be stale); `sharers`
    /// may hold S copies (valid only when the owner is in O).
    Owned { owner: PortId, sharers: u32 },
}

fn bit(p: PortId) -> u32 {
    debug_assert!(p.0 < 32, "directory sharer mask supports 32 L1s");
    1 << p.0
}

fn ports(mask: u32) -> impl Iterator<Item = PortId> {
    (0..32).filter(move |i| mask & (1 << i) != 0).map(PortId)
}

#[derive(Clone, Copy, Debug, Default)]
struct L2Meta {
    dir: DirState,
    dirty: bool,
    /// In the `Owned` state: the L2 copy is still current (the owner holds O
    /// and cannot have written since the last fetch/writeback). Lets GetS be
    /// served from the L2 without re-fetching the owner — the reason MOESI
    /// has an O state at all.
    fresh: bool,
}

#[derive(Clone, Debug, PartialEq)]
enum Phase {
    /// Queued for the bank's fixed access latency.
    Start,
    /// Waiting for a free, non-busy victim way.
    NeedFill,
    /// Recalling a victim's L1 copies.
    AwaitRecall,
    /// Waiting for DRAM read data.
    AwaitDram,
    /// Waiting for invalidation acks and/or an owner fetch.
    AwaitInvFetch,
    /// Snooping protocols: waiting for every other L1's `SnoopResp` to a
    /// broadcast probe (the bank is the per-block bus ordering point).
    AwaitSnoop,
}

#[derive(Clone, Debug)]
struct Recall {
    victim: u64,
    /// Ports whose `InvResp` for the victim is still outstanding. Mask-based
    /// (not a count) so a NACK-resent invalidation racing its original
    /// response cannot double-decrement.
    pending_inv: u32,
    /// The owner whose `FetchInv` response is still outstanding.
    fetch_from: Option<PortId>,
    dirty: bool,
    data: BlockData,
}

#[derive(Clone, Debug)]
struct Tx {
    req: Request,
    phase: Phase,
    /// Ports whose `InvResp` is still outstanding (mask; see [`Recall`]).
    pending_inv: u32,
    /// The owner whose `Fetch`/`FetchInv` response is still outstanding.
    fetch_from: Option<PortId>,
    /// Whether the outstanding fetch is a `FetchInv` (needed to resend it).
    fetch_inv: bool,
    /// Requestor already holds a valid copy (upgrade ⇒ AckM instead of Data).
    upgrade: bool,
    /// Data fetched from DRAM, kept across an install-time recall.
    fill_data: Option<BlockData>,
    recall: Option<Recall>,
    /// Protocol-generic solicitation-round recovery state: the epoch stamped
    /// into armed timeouts and the bounded resend budget spent so far.
    retry: RetryRound,
    /// Snooping protocols: ports whose `SnoopResp` is still outstanding.
    pending_snoop: u32,
    /// Whether any snooped L1 reported a live copy.
    snoop_had: bool,
    /// Whether the recorded supplier copy was dirty (authoritative).
    snoop_dirty: bool,
    /// Best cache-to-cache supply so far (dirty supplier beats clean).
    snoop_data: Option<BlockData>,
}

/// Side effects of a bank step, applied by the `MemorySystem`.
#[derive(Debug, Default)]
pub(crate) struct BankOut {
    /// Messages to deliver to L1s.
    pub sends: Vec<(PortId, DirToL1)>,
    /// Block to fetch from DRAM (schedule `DramReadDone`).
    pub dram_read: Option<u64>,
    /// Posted (fire-and-forget) writebacks to DRAM.
    pub dram_writes: Vec<(u64, BlockData)>,
    /// Blocks whose transaction finished; their wait queues should drain.
    pub finished: Vec<u64>,
    /// The transaction for this block couldn't find an evictable way; retry
    /// `ready` after another bank latency.
    pub retry: Option<u64>,
    /// `(demand block, epoch)` pairs whose transaction entered (or re-entered)
    /// a response-waiting phase; the system arms a `DirTimeout` for each when
    /// directory timeouts are enabled, and ignores them otherwise.
    pub arm: Vec<(u64, u64)>,
}

/// What a fired directory timeout did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TimeoutAction {
    /// The transaction moved on (or the epoch advanced): nothing to do.
    Stale,
    /// Missing responses were re-solicited and a fresh timeout armed.
    Resent,
    /// The retry budget is spent; the run should abort.
    Exhausted,
}

#[derive(Debug)]
pub(crate) struct Bank {
    #[allow(dead_code)] // identity is useful in Debug dumps
    pub id: BankId,
    /// Which coherence protocol this bank orders (config-derived, not
    /// serialized). Directory mode runs the embedded blocking directory;
    /// snooping modes make the bank the per-block bus ordering point and
    /// demote the L2 to a plain non-inclusive cache.
    protocol: ProtocolKind,
    /// Bit mask of every L1 port (snooping broadcast domain).
    all_ports: u32,
    array: CacheArray<L2Meta>,
    tx: FxHashMap<u64, Tx>,
    /// victim block → demand block whose transaction is recalling it.
    recall_owner: FxHashMap<u64, u64>,
    waiting: FxHashMap<u64, VecDeque<Request>>,
    /// Tolerate duplicate/stale responses (set when directory timeouts are
    /// enabled: a NACK resend can race the original response). Off by
    /// default so protocol bugs still trip the strict assertions.
    lenient: bool,
    // counters
    gets: u64,
    getm: u64,
    puts: u64,
    hits: u64,
    misses: u64,
    recalls: u64,
    timeouts: u64,
    nack_resends: u64,
    stale_resps: u64,
}

impl Bank {
    pub fn new(
        id: BankId,
        cache: CacheConfig,
        index_shift: u32,
        protocol: ProtocolKind,
        n_ports: usize,
    ) -> Bank {
        debug_assert!(n_ports <= 32, "port mask supports 32 L1s");
        Bank {
            id,
            protocol,
            all_ports: if n_ports >= 32 {
                u32::MAX
            } else {
                (1u32 << n_ports) - 1
            },
            array: CacheArray::with_index_shift(cache, index_shift),
            // One transaction per block can be active at a time, and every
            // active transaction came through some L1 MSHR, so a few dozen
            // slots cover the whole chip without rehashing.
            tx: fx_map_with_capacity(64),
            recall_owner: fx_map_with_capacity(64),
            waiting: fx_map_with_capacity(64),
            lenient: false,
            gets: 0,
            getm: 0,
            puts: 0,
            hits: 0,
            misses: 0,
            recalls: 0,
            timeouts: 0,
            nack_resends: 0,
            stale_resps: 0,
        }
    }

    /// Switches the bank to lenient response handling (directory timeouts
    /// enabled: resends may race originals, so duplicates must be ignored
    /// rather than asserted against).
    pub fn set_lenient(&mut self) {
        self.lenient = true;
    }

    fn busy(&self, block: u64) -> bool {
        self.tx.contains_key(&block) || self.recall_owner.contains_key(&block)
    }

    /// Accepts a request: returns `true` if the caller should schedule a
    /// `BankReady` after the bank latency, `false` if it was queued behind an
    /// active transaction on the same block.
    pub fn req_arrive(&mut self, req: Request) -> bool {
        let block = req.block;
        if self.busy(block) {
            self.waiting.entry(block).or_default().push_back(req);
            return false;
        }
        self.tx.insert(
            block,
            Tx {
                req,
                phase: Phase::Start,
                pending_inv: 0,
                fetch_from: None,
                fetch_inv: false,
                upgrade: false,
                fill_data: None,
                recall: None,
                retry: RetryRound::new(),
                pending_snoop: 0,
                snoop_had: false,
                snoop_dirty: false,
                snoop_data: None,
            },
        );
        true
    }

    /// The bank latency elapsed; start (or retry) processing `block`.
    pub fn ready(&mut self, block: u64, out: &mut BankOut) {
        let tx = self.tx.get(&block).expect("ready without transaction");
        match tx.phase {
            Phase::Start => self.dispatch(block, out),
            Phase::NeedFill => self.try_fill(block, out),
            ref p => unreachable!("ready in phase {p:?}"),
        }
    }

    fn dispatch(&mut self, block: u64, out: &mut BankOut) {
        let req = self.tx.get(&block).expect("tx").req.clone();
        match req.kind {
            ReqKind::GetS => {
                self.gets += 1;
                if self.array.lookup(block).is_some() {
                    self.hits += 1;
                    self.dispatch_gets_hit(block, req.from, out);
                } else {
                    self.misses += 1;
                    self.tx.get_mut(&block).expect("tx").phase = Phase::NeedFill;
                    self.try_fill(block, out);
                }
            }
            ReqKind::GetM => {
                self.getm += 1;
                if self.array.lookup(block).is_some() {
                    self.hits += 1;
                    self.dispatch_getm_hit(block, req.from, out);
                } else {
                    self.misses += 1;
                    self.tx.get_mut(&block).expect("tx").phase = Phase::NeedFill;
                    self.try_fill(block, out);
                }
            }
            ReqKind::PutDirty => {
                self.puts += 1;
                if self.protocol.uses_directory() {
                    self.handle_put_dirty(block, &req, out);
                } else {
                    self.snoop_put_dirty(block, &req, out);
                }
                self.finish(block, out);
            }
            ReqKind::PutClean => {
                self.puts += 1;
                self.handle_put_clean(block, req.from, out);
                self.finish(block, out);
            }
            ReqKind::BusRd | ReqKind::BusRdX | ReqKind::BusUpd(_) => {
                self.dispatch_bus(block, &req, out);
            }
        }
    }

    /// Snooping-mode dispatch: broadcast the probe to every other L1 and
    /// wait for their responses; the bank's arrival order *is* the bus order
    /// for this block. The response-collection round arms the same
    /// solicitation-round timeout the directory path uses ([`RetryRound`]):
    /// probes are idempotent (an L1 answers from its current state), so a
    /// timed-out round can simply re-probe the still-pending ports.
    fn dispatch_bus(&mut self, block: u64, req: &Request, out: &mut BankOut) {
        let kind = match req.kind {
            ReqKind::BusRd => {
                self.gets += 1;
                SnoopKind::Rd
            }
            ReqKind::BusRdX => {
                self.getm += 1;
                SnoopKind::RdX
            }
            ReqKind::BusUpd(word) => {
                self.getm += 1;
                SnoopKind::Upd(word)
            }
            _ => unreachable!("dispatch_bus on a directory request"),
        };
        // Update rounds never consult the L2; reads/read-exclusives count a
        // hit when the L2 can source the data without DRAM.
        if !matches!(kind, SnoopKind::Upd(_)) {
            if self.array.lookup(block).is_some() {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
        }
        let others = self.all_ports & !bit(req.from);
        for p in ports(others) {
            out.sends.push((p, DirToL1::Snoop { block, kind }));
        }
        let tx = self.tx.get_mut(&block).expect("tx");
        tx.pending_snoop = others;
        if others == 0 {
            self.complete_bus(block, out);
        } else {
            tx.phase = Phase::AwaitSnoop;
            out.arm.push((block, tx.retry.epoch()));
        }
    }

    /// Every snoop response is in: source the data, grant, and finish.
    fn complete_bus(&mut self, block: u64, out: &mut BankOut) {
        let tx = self.tx.get(&block).expect("tx");
        let (from, kind) = (tx.req.from, tx.req.kind);
        let (had, dirty, supplied) = (tx.snoop_had, tx.snoop_dirty, tx.snoop_data);
        match kind {
            ReqKind::BusUpd(_) => {
                // The round is ordered; sharers have patched their copies.
                // The writer takes ownership (Sm when live copies remain,
                // M otherwise). Neither the L2 nor DRAM is updated — Dragon
                // defers memory until the owner's writeback.
                out.sends.push((from, DirToL1::UpdDone { block, sharers: had }));
                self.finish(block, out);
            }
            ReqKind::BusRd => {
                if let Some(data) = supplied {
                    if dirty && self.protocol == ProtocolKind::MesiSnoop {
                        // MESI has no owned state: after the M→S demotion
                        // every copy is clean, so memory must absorb the
                        // dirty data now (Illinois-style supply+writeback).
                        if self.array.peek(block).is_some() {
                            self.array.set_data(block, data);
                            self.array.peek_mut(block).expect("hit").dirty = true;
                        } else {
                            out.dram_writes.push((block, data));
                        }
                    }
                    out.sends.push((
                        from,
                        DirToL1::Data {
                            block,
                            grant: Grant::S,
                            data,
                        },
                    ));
                    self.finish(block, out);
                } else if self.array.peek(block).is_some() {
                    let data = self.array.data(block);
                    let grant = if had { Grant::S } else { Grant::E };
                    out.sends.push((from, DirToL1::Data { block, grant, data }));
                    self.finish(block, out);
                } else {
                    self.tx.get_mut(&block).expect("tx").phase = Phase::AwaitDram;
                    out.dram_read = Some(block);
                }
            }
            ReqKind::BusRdX => {
                // Every other copy was invalidated by the probe; grant M
                // with the best copy (dirty supplier > L2 > DRAM). A stale
                // L2 copy is fine: the M owner's eventual writeback
                // refreshes it, and value checks gate on dirty copies.
                if let Some(data) = supplied {
                    out.sends.push((
                        from,
                        DirToL1::Data {
                            block,
                            grant: Grant::M,
                            data,
                        },
                    ));
                    self.finish(block, out);
                } else if self.array.peek(block).is_some() {
                    let data = self.array.data(block);
                    out.sends.push((
                        from,
                        DirToL1::Data {
                            block,
                            grant: Grant::M,
                            data,
                        },
                    ));
                    self.finish(block, out);
                } else {
                    self.tx.get_mut(&block).expect("tx").phase = Phase::AwaitDram;
                    out.dram_read = Some(block);
                }
            }
            _ => unreachable!("complete_bus on a directory request"),
        }
    }

    /// Snooping-mode writeback: no directory registration to check — the
    /// freshest copy lands in the L2 when resident, else goes to DRAM.
    fn snoop_put_dirty(&mut self, block: u64, req: &Request, out: &mut BankOut) {
        let data = req.data.expect("PutDirty carries data");
        if self.array.peek(block).is_some() {
            self.array.set_data(block, data);
            self.array.peek_mut(block).expect("hit").dirty = true;
        } else {
            out.dram_writes.push((block, data));
        }
        out.sends.push((req.from, DirToL1::PutAck { block }));
    }

    fn dispatch_gets_hit(&mut self, block: u64, from: PortId, out: &mut BankOut) {
        let meta = *self.array.peek(block).expect("hit");
        match meta.dir {
            DirState::Unowned => {
                // Grant E: no other copies exist (the MOESI exclusive-clean
                // optimization present in the chips the paper cites).
                let data = self.array.data(block);
                {
                    let meta = self.array.peek_mut(block).expect("hit");
                    meta.dir = DirState::Owned {
                        owner: from,
                        sharers: 0,
                    };
                    meta.fresh = false; // E may silently upgrade to M
                }
                out.sends.push((
                    from,
                    DirToL1::Data {
                        block,
                        grant: Grant::E,
                        data,
                    },
                ));
                self.finish(block, out);
            }
            DirState::Shared(s) => {
                debug_assert_eq!(s & bit(from), 0, "sharer re-requesting GetS");
                let data = self.array.data(block);
                self.array.peek_mut(block).expect("hit").dir = DirState::Shared(s | bit(from));
                out.sends.push((
                    from,
                    DirToL1::Data {
                        block,
                        grant: Grant::S,
                        data,
                    },
                ));
                self.finish(block, out);
            }
            DirState::Owned { owner, sharers } => {
                debug_assert_ne!(owner, from, "owner re-requesting GetS");
                if self.array.peek(block).expect("hit").fresh {
                    // The owner is in O and hasn't re-acquired M: the L2 copy
                    // is current; serve the read here.
                    let data = self.array.data(block);
                    self.array.peek_mut(block).expect("hit").dir = DirState::Owned {
                        owner,
                        sharers: sharers | bit(from),
                    };
                    out.sends.push((
                        from,
                        DirToL1::Data {
                            block,
                            grant: Grant::S,
                            data,
                        },
                    ));
                    self.finish(block, out);
                    return;
                }
                out.sends.push((owner, DirToL1::Fetch { block }));
                let tx = self.tx.get_mut(&block).expect("tx");
                tx.fetch_from = Some(owner);
                tx.fetch_inv = false;
                tx.phase = Phase::AwaitInvFetch;
                out.arm.push((block, tx.retry.epoch()));
            }
        }
    }

    fn dispatch_getm_hit(&mut self, block: u64, from: PortId, out: &mut BankOut) {
        let meta = *self.array.peek(block).expect("hit");
        match meta.dir {
            DirState::Unowned => {
                let data = self.array.data(block);
                {
                    let meta = self.array.peek_mut(block).expect("hit");
                    meta.dir = DirState::Owned {
                        owner: from,
                        sharers: 0,
                    };
                    meta.fresh = false;
                }
                out.sends.push((
                    from,
                    DirToL1::Data {
                        block,
                        grant: Grant::M,
                        data,
                    },
                ));
                self.finish(block, out);
            }
            DirState::Shared(s) => {
                let others = s & !bit(from);
                let upgrade = s & bit(from) != 0;
                for p in ports(others) {
                    out.sends.push((p, DirToL1::Inv { block }));
                }
                let tx = self.tx.get_mut(&block).expect("tx");
                tx.pending_inv = others;
                tx.upgrade = upgrade;
                if others == 0 {
                    self.complete_getm(block, out);
                } else {
                    tx.phase = Phase::AwaitInvFetch;
                    out.arm.push((block, tx.retry.epoch()));
                }
            }
            DirState::Owned { owner, sharers } => {
                if owner == from {
                    // Upgrade from O: invalidate the S copies.
                    for p in ports(sharers) {
                        out.sends.push((p, DirToL1::Inv { block }));
                    }
                    let tx = self.tx.get_mut(&block).expect("tx");
                    tx.pending_inv = sharers;
                    tx.upgrade = true;
                    if sharers == 0 {
                        self.complete_getm(block, out);
                    } else {
                        tx.phase = Phase::AwaitInvFetch;
                        out.arm.push((block, tx.retry.epoch()));
                    }
                } else {
                    out.sends.push((owner, DirToL1::FetchInv { block }));
                    let others = sharers & !bit(from);
                    for p in ports(others) {
                        out.sends.push((p, DirToL1::Inv { block }));
                    }
                    let tx = self.tx.get_mut(&block).expect("tx");
                    tx.fetch_from = Some(owner);
                    tx.fetch_inv = true;
                    tx.pending_inv = others;
                    // If the requestor held an S copy under an O owner its
                    // data is current (O writes require GetM), so upgrade.
                    tx.upgrade = sharers & bit(from) != 0;
                    tx.phase = Phase::AwaitInvFetch;
                    out.arm.push((block, tx.retry.epoch()));
                }
            }
        }
    }

    fn complete_getm(&mut self, block: u64, out: &mut BankOut) {
        let tx = self.tx.get(&block).expect("tx");
        let (from, upgrade) = (tx.req.from, tx.upgrade);
        {
            let meta = self.array.peek_mut(block).expect("hit");
            meta.dir = DirState::Owned {
                owner: from,
                sharers: 0,
            };
            meta.fresh = false;
        }
        if upgrade {
            out.sends.push((from, DirToL1::AckM { block }));
        } else {
            let data = self.array.data(block);
            out.sends.push((
                from,
                DirToL1::Data {
                    block,
                    grant: Grant::M,
                    data,
                },
            ));
        }
        self.finish(block, out);
    }

    fn complete_gets(&mut self, block: u64, out: &mut BankOut) {
        let from = self.tx.get(&block).expect("tx").req.from;
        let meta = self.array.peek_mut(block).expect("hit");
        match meta.dir {
            DirState::Owned { owner, sharers } => {
                meta.dir = DirState::Owned {
                    owner,
                    sharers: sharers | bit(from),
                };
            }
            ref d => unreachable!("GetS fetch completed in state {d:?}"),
        }
        let data = self.array.data(block);
        out.sends.push((
            from,
            DirToL1::Data {
                block,
                grant: Grant::S,
                data,
            },
        ));
        self.finish(block, out);
    }

    fn handle_put_dirty(&mut self, block: u64, req: &Request, out: &mut BankOut) {
        let data = req.data.expect("PutDirty carries data");
        let stale = !matches!(
            self.array.peek(block).map(|m| m.dir),
            Some(DirState::Owned { owner, .. }) if owner == req.from
        );
        if !stale {
            self.array.set_data(block, data);
            let meta = self.array.peek_mut(block).expect("hit");
            meta.dirty = true;
            // A retaining writeback (write-through mode) leaves the sender in
            // M: it may write again, so the L2 copy must NOT serve readers.
            meta.fresh = !req.retain;
            if !req.retain {
                if let DirState::Owned { sharers, .. } = meta.dir {
                    meta.dir = if sharers == 0 {
                        DirState::Unowned
                    } else {
                        DirState::Shared(sharers)
                    };
                }
            }
        }
        out.sends.push((req.from, DirToL1::PutAck { block }));
    }

    fn handle_put_clean(&mut self, block: u64, from: PortId, out: &mut BankOut) {
        if let Some(meta) = self.array.peek_mut(block) {
            match meta.dir {
                DirState::Owned { owner, sharers } if owner == from => {
                    meta.dir = if sharers == 0 {
                        DirState::Unowned
                    } else {
                        DirState::Shared(sharers)
                    };
                }
                DirState::Owned { owner, sharers } if sharers & bit(from) != 0 => {
                    meta.dir = DirState::Owned {
                        owner,
                        sharers: sharers & !bit(from),
                    };
                }
                DirState::Shared(s) if s & bit(from) != 0 => {
                    let rest = s & !bit(from);
                    meta.dir = if rest == 0 {
                        DirState::Unowned
                    } else {
                        DirState::Shared(rest)
                    };
                }
                _ => {} // stale
            }
        }
        out.sends.push((from, DirToL1::PutAck { block }));
    }

    /// Finds a way for `block`: free way ⇒ DRAM read; evictable victim ⇒
    /// recall; everything busy ⇒ ask the system to retry later.
    fn try_fill(&mut self, block: u64, out: &mut BankOut) {
        if let Some(data) = self.tx.get(&block).and_then(|t| t.fill_data) {
            // Data already fetched (recall ran after DRAM): try installing.
            if self.array.has_free_way(block) {
                self.install_and_dispatch(block, data, out);
                return;
            }
        } else if self.array.has_free_way(block) {
            self.tx.get_mut(&block).expect("tx").phase = Phase::AwaitDram;
            out.dram_read = Some(block);
            return;
        }
        // Need to evict: pick the LRU non-busy victim.
        let victim = self
            .array
            .victims_lru(block)
            .into_iter()
            .find(|v| !self.busy(*v));
        let Some(victim) = victim else {
            out.retry = Some(block);
            return;
        };
        self.recalls += 1;
        let meta = *self.array.peek(victim).expect("victim resident");
        let data = self.array.data(victim);
        let mut recall = Recall {
            victim,
            pending_inv: 0,
            fetch_from: None,
            dirty: meta.dirty,
            data,
        };
        match meta.dir {
            DirState::Unowned => {}
            DirState::Shared(s) => {
                for p in ports(s) {
                    out.sends.push((p, DirToL1::Inv { block: victim }));
                }
                recall.pending_inv = s;
            }
            DirState::Owned { owner, sharers } => {
                out.sends.push((owner, DirToL1::FetchInv { block: victim }));
                recall.fetch_from = Some(owner);
                for p in ports(sharers) {
                    out.sends.push((p, DirToL1::Inv { block: victim }));
                }
                recall.pending_inv = sharers;
            }
        }
        let pending = recall.pending_inv != 0 || recall.fetch_from.is_some();
        self.recall_owner.insert(victim, block);
        let tx = self.tx.get_mut(&block).expect("tx");
        tx.recall = Some(recall);
        if pending {
            tx.phase = Phase::AwaitRecall;
            out.arm.push((block, tx.retry.epoch()));
        } else {
            self.finish_recall(block, out);
        }
    }

    /// The victim's copies are all collected: write it back and move on.
    fn finish_recall(&mut self, block: u64, out: &mut BankOut) {
        let tx = self.tx.get_mut(&block).expect("tx");
        let recall = tx.recall.take().expect("recall state");
        self.recall_owner.remove(&recall.victim);
        self.array.remove(recall.victim).expect("victim resident");
        if recall.dirty {
            out.dram_writes.push((recall.victim, recall.data));
        }
        out.finished.push(recall.victim); // drain requests queued on the victim
        if let Some(data) = self.tx.get(&block).and_then(|t| t.fill_data) {
            self.install_and_dispatch(block, data, out);
        } else {
            self.tx.get_mut(&block).expect("tx").phase = Phase::AwaitDram;
            out.dram_read = Some(block);
        }
    }

    /// DRAM returned `data` for `block`.
    pub fn dram_done(&mut self, block: u64, data: BlockData, out: &mut BankOut) {
        let tx = self.tx.get_mut(&block).expect("dram_done without tx");
        debug_assert_eq!(tx.phase, Phase::AwaitDram);
        if !self.protocol.uses_directory() {
            // Serve the bus transaction straight from the DRAM data. Clean
            // reads opportunistically install into the L2 when a way can be
            // freed without waiting (non-inclusive: serving uncached is
            // always legal); read-exclusives skip the install — the copy
            // would be stale the moment the M owner writes.
            let (from, kind) = (tx.req.from, tx.req.kind);
            let grant = match kind {
                ReqKind::BusRd => {
                    if tx.snoop_had {
                        Grant::S
                    } else {
                        Grant::E
                    }
                }
                ReqKind::BusRdX => Grant::M,
                ref k => unreachable!("DRAM fill for {k:?} in snooping mode"),
            };
            if matches!(kind, ReqKind::BusRd) {
                self.snoop_install(block, data, out);
            }
            out.sends.push((from, DirToL1::Data { block, grant, data }));
            self.finish(block, out);
            return;
        }
        tx.fill_data = Some(data);
        if self.array.has_free_way(block) {
            self.install_and_dispatch(block, data, out);
        } else {
            // Another transaction consumed the free way while DRAM was busy.
            tx.phase = Phase::NeedFill;
            self.try_fill(block, out);
        }
    }

    /// Snooping-mode install: free way, or evict a non-busy LRU victim
    /// (writing it back when dirty — no recall: the L2 is non-inclusive).
    /// Gives up silently when every way is busy; the requester is served
    /// uncached.
    fn snoop_install(&mut self, block: u64, data: BlockData, out: &mut BankOut) {
        if !self.array.has_free_way(block) {
            let victim = self
                .array
                .victims_lru(block)
                .into_iter()
                .find(|v| !self.busy(*v));
            let Some(victim) = victim else {
                return;
            };
            self.recalls += 1;
            let meta = *self.array.peek(victim).expect("victim resident");
            let vdata = self.array.data(victim);
            self.array.remove(victim).expect("victim resident");
            if meta.dirty {
                out.dram_writes.push((victim, vdata));
            }
        }
        let evicted = self.array.insert(block, L2Meta::default(), data);
        debug_assert!(evicted.is_none(), "install raced an occupied set");
    }

    fn install_and_dispatch(&mut self, block: u64, data: BlockData, out: &mut BankOut) {
        let evicted = self.array.insert(block, L2Meta::default(), data);
        debug_assert!(evicted.is_none(), "install raced an occupied set");
        let req = self.tx.get(&block).expect("tx").req.clone();
        match req.kind {
            ReqKind::GetS => self.dispatch_gets_hit(block, req.from, out),
            ReqKind::GetM => self.dispatch_getm_hit(block, req.from, out),
            _ => unreachable!("fill for a Put"),
        }
    }

    /// An L1 response (InvResp / FetchResp) arrived. Responses from ports
    /// that are no longer pending (possible only in lenient mode, when a
    /// NACK resend raced the original response) are counted and ignored.
    pub fn resp_arrive(&mut self, resp: L1ToDir, out: &mut BankOut) {
        if let L1ToDir::SnoopResp {
            from,
            block,
            had,
            dirty,
            data,
        } = resp
        {
            self.snoop_resp_arrive(block, from, had, dirty, data, out);
            return;
        }
        let (rblock, from) = match &resp {
            L1ToDir::InvResp { block, from, .. } | L1ToDir::FetchResp { block, from, .. } => {
                (*block, *from)
            }
            L1ToDir::SnoopResp { .. } => unreachable!("handled above"),
        };
        // Route: either a recall on the victim block, or a demand transaction.
        if let Some(&demand) = self.recall_owner.get(&rblock) {
            let tx = self.tx.get_mut(&demand).expect("recall tx");
            let recall = tx.recall.as_mut().expect("recall state");
            match resp {
                L1ToDir::InvResp { data, .. } => {
                    if recall.pending_inv & bit(from) == 0 {
                        debug_assert!(self.lenient, "duplicate recall InvResp from {from:?}");
                        self.stale_resps += 1;
                        return;
                    }
                    if let Some(d) = data {
                        recall.data = d;
                        recall.dirty = true;
                    }
                    recall.pending_inv &= !bit(from);
                }
                L1ToDir::FetchResp { data, dirty, .. } => {
                    if recall.fetch_from != Some(from) {
                        debug_assert!(self.lenient, "duplicate recall FetchResp from {from:?}");
                        self.stale_resps += 1;
                        return;
                    }
                    if dirty {
                        recall.data = data;
                        recall.dirty = true;
                    }
                    recall.fetch_from = None;
                }
                L1ToDir::SnoopResp { .. } => unreachable!("handled above"),
            }
            if recall.pending_inv == 0 && recall.fetch_from.is_none() {
                self.finish_recall(demand, out);
            }
            return;
        }
        let Some(tx) = self.tx.get_mut(&rblock) else {
            assert!(self.lenient, "response without tx");
            self.stale_resps += 1;
            return;
        };
        if tx.phase != Phase::AwaitInvFetch {
            debug_assert!(self.lenient, "response in phase {:?}", tx.phase);
            self.stale_resps += 1;
            return;
        }
        match resp {
            L1ToDir::InvResp { data, .. } => {
                let tx = self.tx.get_mut(&rblock).expect("tx");
                if tx.pending_inv & bit(from) == 0 {
                    debug_assert!(self.lenient, "duplicate InvResp from {from:?}");
                    self.stale_resps += 1;
                    return;
                }
                tx.pending_inv &= !bit(from);
                if let Some(d) = data {
                    // A racing writeback: the invalidated copy was dirty.
                    self.array.set_data(rblock, d);
                    self.array.peek_mut(rblock).expect("hit").dirty = true;
                }
            }
            L1ToDir::FetchResp { data, dirty, .. } => {
                let tx = self.tx.get_mut(&rblock).expect("tx");
                if tx.fetch_from != Some(from) {
                    debug_assert!(self.lenient, "duplicate FetchResp from {from:?}");
                    self.stale_resps += 1;
                    return;
                }
                tx.fetch_from = None;
                self.array.set_data(rblock, data);
                {
                    let meta = self.array.peek_mut(rblock).expect("hit");
                    if dirty {
                        meta.dirty = true;
                    }
                    meta.fresh = true;
                }
            }
            L1ToDir::SnoopResp { .. } => unreachable!("handled above"),
        }
        let tx = self.tx.get(&rblock).expect("tx");
        if tx.pending_inv == 0 && tx.fetch_from.is_none() {
            match tx.req.kind {
                ReqKind::GetS => self.complete_gets(rblock, out),
                ReqKind::GetM => self.complete_getm(rblock, out),
                _ => unreachable!("Put awaiting acks"),
            }
        }
    }

    /// A `SnoopResp` arrived: fold it into the waiting bus transaction.
    /// The dirty supplier's copy is authoritative; any clean supplier beats
    /// the L2/DRAM path (cache-to-cache is cheaper than a memory access).
    fn snoop_resp_arrive(
        &mut self,
        block: u64,
        from: PortId,
        had: bool,
        dirty: bool,
        data: Option<BlockData>,
        out: &mut BankOut,
    ) {
        let Some(tx) = self.tx.get_mut(&block) else {
            assert!(self.lenient, "snoop response without tx");
            self.stale_resps += 1;
            return;
        };
        if tx.phase != Phase::AwaitSnoop || tx.pending_snoop & bit(from) == 0 {
            debug_assert!(self.lenient, "unexpected snoop response from {from:?}");
            self.stale_resps += 1;
            return;
        }
        tx.pending_snoop &= !bit(from);
        if had {
            tx.snoop_had = true;
        }
        if let Some(d) = data {
            if dirty {
                tx.snoop_data = Some(d);
                tx.snoop_dirty = true;
            } else if tx.snoop_data.is_none() {
                tx.snoop_data = Some(d);
            }
        }
        if tx.pending_snoop == 0 {
            self.complete_bus(block, out);
        }
    }

    /// A `DirTimeout` armed at `epoch` fired for `block`: if the transaction
    /// still waits on responses from that round, NACK it — re-solicit every
    /// missing response and arm a fresh timeout — until `budget` resends are
    /// spent, at which point the caller aborts the run. Works for every
    /// response-collection phase of every protocol: directory inv/fetch and
    /// recall rounds, and snooping probe/update rounds (probes are
    /// idempotent, so resending to still-pending ports is always safe).
    ///
    /// `corrupt` is the test-only `CorruptResendEpoch` mutation: instead of
    /// resending, the round's epoch bookkeeping is botched so the lowest
    /// still-pending probe is abandoned and the round completes without its
    /// answer — the recovery-layer bug the sanitizer must catch.
    pub fn timeout_fired(
        &mut self,
        block: u64,
        epoch: u64,
        budget: u32,
        corrupt: bool,
        out: &mut BankOut,
    ) -> TimeoutAction {
        let Some(tx) = self.tx.get_mut(&block) else {
            return TimeoutAction::Stale;
        };
        if !tx.retry.is_current(epoch) {
            return TimeoutAction::Stale;
        }
        let resend: Vec<(PortId, DirToL1)> = match tx.phase {
            Phase::AwaitInvFetch => {
                let mut v: Vec<(PortId, DirToL1)> = ports(tx.pending_inv)
                    .map(|p| (p, DirToL1::Inv { block }))
                    .collect();
                if let Some(o) = tx.fetch_from {
                    let msg = if tx.fetch_inv {
                        DirToL1::FetchInv { block }
                    } else {
                        DirToL1::Fetch { block }
                    };
                    v.push((o, msg));
                }
                v
            }
            Phase::AwaitRecall => {
                let recall = tx.recall.as_ref().expect("recall state");
                let victim = recall.victim;
                let mut v: Vec<(PortId, DirToL1)> = ports(recall.pending_inv)
                    .map(|p| (p, DirToL1::Inv { block: victim }))
                    .collect();
                if let Some(o) = recall.fetch_from {
                    v.push((o, DirToL1::FetchInv { block: victim }));
                }
                v
            }
            Phase::AwaitSnoop => {
                let kind = match tx.req.kind {
                    ReqKind::BusRd => SnoopKind::Rd,
                    ReqKind::BusRdX => SnoopKind::RdX,
                    ReqKind::BusUpd(word) => SnoopKind::Upd(word),
                    _ => unreachable!("AwaitSnoop on a directory request"),
                };
                ports(tx.pending_snoop)
                    .map(|p| (p, DirToL1::Snoop { block, kind }))
                    .collect()
            }
            _ => return TimeoutAction::Stale,
        };
        if resend.is_empty() {
            return TimeoutAction::Stale;
        }
        self.timeouts += 1;
        let tx = self.tx.get_mut(&block).expect("tx");
        if corrupt && tx.phase == Phase::AwaitSnoop {
            let lowest = tx.pending_snoop & tx.pending_snoop.wrapping_neg();
            tx.pending_snoop &= !lowest;
            if tx.pending_snoop == 0 {
                self.complete_bus(block, out);
            } else {
                out.arm.push((block, tx.retry.epoch()));
            }
            return TimeoutAction::Resent;
        }
        let Some(next_epoch) = tx.retry.spend(budget) else {
            return TimeoutAction::Exhausted;
        };
        self.nack_resends += resend.len() as u64;
        out.sends.extend(resend);
        out.arm.push((block, next_epoch));
        TimeoutAction::Resent
    }

    /// Human-readable phase of the active transaction on `block`, if any
    /// (for the watchdog's diagnostic dump).
    pub fn tx_phase(&self, block: u64) -> Option<String> {
        self.tx.get(&block).map(|t| format!("{:?}", t.phase))
    }

    /// Whether `block` is mid snoop-collection round and `epoch` names the
    /// current (live) round — i.e. a `DirTimeout` carrying this epoch would
    /// actually resend probes rather than be dropped as stale. Used by the
    /// `CorruptResendEpoch` mutation to count candidate timeouts.
    pub fn snoop_round_current(&self, block: u64, epoch: u64) -> bool {
        self.tx
            .get(&block)
            .is_some_and(|t| t.phase == Phase::AwaitSnoop && t.retry.is_current(epoch))
    }

    /// The port the `CorruptResendEpoch` mutation would abandon on this
    /// round's next timeout: the lowest still-pending probe target.
    pub fn snoop_pending_lowest(&self, block: u64) -> Option<PortId> {
        let t = self.tx.get(&block)?;
        if t.phase != Phase::AwaitSnoop || t.pending_snoop == 0 {
            return None;
        }
        Some(PortId(t.pending_snoop.trailing_zeros() as usize))
    }

    /// Whether the active transaction on `block` is a write-update round
    /// still collecting `SnoopResp`s (the `UpdAck` fault domain's carrier).
    pub fn upd_round_active(&self, block: u64) -> bool {
        self.tx.get(&block).is_some_and(|t| {
            t.phase == Phase::AwaitSnoop && matches!(t.req.kind, ReqKind::BusUpd(_))
        })
    }

    /// Whether `block` participates in any in-flight directory activity: a
    /// demand transaction, a queued request, or a recall targeting it as a
    /// victim. While busy, directory state and L1 copies are legitimately
    /// transient, so the sanitizer's steady-state checks stand down.
    pub fn busy_on(&self, block: u64) -> bool {
        self.busy(block) || self.waiting.contains_key(&block)
    }

    /// The directory's record for `block` as `(owner, sharer mask)`, or
    /// `None` when not resident in the L2. A `Shared` block reports no owner.
    pub fn dir_record(&self, block: u64) -> Option<(Option<PortId>, u32)> {
        let meta = self.array.peek(block)?;
        Some(match meta.dir {
            DirState::Unowned => (None, 0),
            DirState::Shared(s) => (None, s),
            DirState::Owned { owner, sharers } => (Some(owner), sharers),
        })
    }

    /// Whether the bank expects the given response right now: a recall or an
    /// `AwaitInvFetch`/`AwaitRecall` transaction with this responder still
    /// pending. Mirrors the routing in [`Bank::resp_arrive`] without
    /// mutating anything; the sanitizer's pre-delivery `MEM-MSG-CONSERVE`
    /// check uses it to flag spurious/duplicated responses in strict mode.
    pub fn expects_resp(&self, resp: &L1ToDir) -> bool {
        let (rblock, from, is_fetch) = match resp {
            L1ToDir::InvResp { block, from, .. } => (*block, *from, false),
            L1ToDir::FetchResp { block, from, .. } => (*block, *from, true),
            L1ToDir::SnoopResp { block, from, .. } => {
                return self.tx.get(block).is_some_and(|tx| {
                    tx.phase == Phase::AwaitSnoop && tx.pending_snoop & bit(*from) != 0
                });
            }
        };
        if let Some(&demand) = self.recall_owner.get(&rblock) {
            let Some(recall) = self.tx.get(&demand).and_then(|t| t.recall.as_ref()) else {
                return false;
            };
            return if is_fetch {
                recall.fetch_from == Some(from)
            } else {
                recall.pending_inv & bit(from) != 0
            };
        }
        let Some(tx) = self.tx.get(&rblock) else {
            return false;
        };
        if tx.phase != Phase::AwaitInvFetch {
            return false;
        }
        if is_fetch {
            tx.fetch_from == Some(from)
        } else {
            tx.pending_inv & bit(from) != 0
        }
    }

    /// Test-only sanitizer mutation hook: erase the directory's owner
    /// registration for `block` (Owned → Unowned/Shared), leaving the L1
    /// copy unaccounted for (⇒ `MEM-DIR-AGREE`). Returns whether it applied.
    pub fn test_corrupt_owner(&mut self, block: u64) -> bool {
        match self.array.peek_mut(block) {
            Some(meta) => match meta.dir {
                DirState::Owned { sharers, .. } => {
                    meta.dir = if sharers == 0 {
                        DirState::Unowned
                    } else {
                        DirState::Shared(sharers)
                    };
                    true
                }
                _ => false,
            },
            None => false,
        }
    }

    /// Blocks with an active transaction, sorted (for diagnostics).
    pub fn active_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.tx.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn finish(&mut self, block: u64, out: &mut BankOut) {
        self.tx.remove(&block);
        out.finished.push(block);
    }

    /// Pops the next queued request for `block`, if any. The system re-enters
    /// it through [`Bank::req_arrive`].
    pub fn pop_waiting(&mut self, block: u64) -> Option<Request> {
        let q = self.waiting.get_mut(&block)?;
        let req = q.pop_front();
        if q.is_empty() {
            self.waiting.remove(&block);
        }
        req
    }

    /// Whether the bank has no transactions or queued work.
    pub fn quiescent(&self) -> bool {
        self.tx.is_empty() && self.waiting.is_empty() && self.recall_owner.is_empty()
    }

    /// Coherent view of a block for the backdoor: `Some((meta-known, data))`
    /// if resident.
    pub fn probe(&self, block: u64) -> Option<BlockData> {
        self.array.peek(block).map(|_| self.array.data(block))
    }

    /// Functionally overwrites bytes of a resident block (coherent backdoor).
    pub fn backdoor_patch(&mut self, block: u64, off: usize, bytes: &[u8]) -> bool {
        if self.array.peek(block).is_some() {
            self.array.write(block, off, bytes);
            true
        } else {
            false
        }
    }

    /// Directory thinks some L1 owns `block`.
    pub fn owner_of(&self, block: u64) -> Option<PortId> {
        match self.array.peek(block)?.dir {
            DirState::Owned { owner, .. } => Some(owner),
            _ => None,
        }
    }

    /// Sharer mask the directory records for `block` (owner excluded).
    pub fn sharers_of(&self, block: u64) -> u32 {
        match self.array.peek(block).map(|m| m.dir) {
            Some(DirState::Shared(s)) => s,
            Some(DirState::Owned { sharers, .. }) => sharers,
            _ => 0,
        }
    }

    /// Number of resident blocks (debug).
    pub fn occupancy(&self) -> usize {
        self.array.len()
    }

    /// Resident blocks (debug).
    pub fn resident(&self) -> Vec<u64> {
        self.array.iter().map(|(b, _)| b).collect()
    }

    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set_id(stat_id("gets"), self.gets as f64);
        s.set_id(stat_id("getm"), self.getm as f64);
        s.set_id(stat_id("puts"), self.puts as f64);
        s.set_id(stat_id("hits"), self.hits as f64);
        s.set_id(stat_id("misses"), self.misses as f64);
        s.set_id(stat_id("recalls"), self.recalls as f64);
        if self.lenient {
            s.set_id(stat_id("dir_timeouts"), self.timeouts as f64);
            s.set_id(stat_id("dir_nacks"), self.nack_resends as f64);
            s.set_id(stat_id("stale_resps"), self.stale_resps as f64);
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs. Tagged-union encoding as in `msg.rs`; any change here is a
// snapshot schema change (bump `ccsvm_snap::SCHEMA_VERSION` and document it
// in DESIGN.md §8).

use ccsvm_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::msg::bad_tag;

fn save_opt_port(w: &mut SnapWriter, p: Option<PortId>) {
    match p {
        Some(p) => {
            w.put_bool(true);
            w.put_usize(p.0);
        }
        None => w.put_bool(false),
    }
}

fn load_opt_port(r: &mut SnapReader<'_>) -> Result<Option<PortId>, SnapError> {
    Ok(if r.get_bool()? {
        Some(PortId(r.get_usize()?))
    } else {
        None
    })
}

impl DirState {
    fn save(self, w: &mut SnapWriter) {
        match self {
            DirState::Unowned => w.put_u8(0),
            DirState::Shared(s) => {
                w.put_u8(1);
                w.put_u32(s);
            }
            DirState::Owned { owner, sharers } => {
                w.put_u8(2);
                w.put_usize(owner.0);
                w.put_u32(sharers);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<DirState, SnapError> {
        Ok(match r.get_u8()? {
            0 => DirState::Unowned,
            1 => DirState::Shared(r.get_u32()?),
            2 => DirState::Owned {
                owner: PortId(r.get_usize()?),
                sharers: r.get_u32()?,
            },
            t => return Err(bad_tag("DirState", t)),
        })
    }
}

impl L2Meta {
    fn save(&self, w: &mut SnapWriter) {
        self.dir.save(w);
        w.put_bool(self.dirty);
        w.put_bool(self.fresh);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<L2Meta, SnapError> {
        Ok(L2Meta {
            dir: DirState::load(r)?,
            dirty: r.get_bool()?,
            fresh: r.get_bool()?,
        })
    }
}

impl Phase {
    fn snap_tag(&self) -> u8 {
        match self {
            Phase::Start => 0,
            Phase::NeedFill => 1,
            Phase::AwaitRecall => 2,
            Phase::AwaitDram => 3,
            Phase::AwaitInvFetch => 4,
            Phase::AwaitSnoop => 5,
        }
    }

    fn from_snap_tag(tag: u8) -> Result<Phase, SnapError> {
        Ok(match tag {
            0 => Phase::Start,
            1 => Phase::NeedFill,
            2 => Phase::AwaitRecall,
            3 => Phase::AwaitDram,
            4 => Phase::AwaitInvFetch,
            5 => Phase::AwaitSnoop,
            t => return Err(bad_tag("Phase", t)),
        })
    }
}

impl Recall {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.victim);
        w.put_u32(self.pending_inv);
        save_opt_port(w, self.fetch_from);
        w.put_bool(self.dirty);
        w.put_raw(&self.data);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Recall, SnapError> {
        Ok(Recall {
            victim: r.get_u64()?,
            pending_inv: r.get_u32()?,
            fetch_from: load_opt_port(r)?,
            dirty: r.get_bool()?,
            data: r.get_array()?,
        })
    }
}

impl Tx {
    fn save(&self, w: &mut SnapWriter) {
        self.req.save(w);
        w.put_u8(self.phase.snap_tag());
        w.put_u32(self.pending_inv);
        save_opt_port(w, self.fetch_from);
        w.put_bool(self.fetch_inv);
        w.put_bool(self.upgrade);
        crate::msg::save_opt_data(w, &self.fill_data);
        match &self.recall {
            Some(rc) => {
                w.put_bool(true);
                rc.save(w);
            }
            None => w.put_bool(false),
        }
        self.retry.save(w);
        w.put_u32(self.pending_snoop);
        w.put_bool(self.snoop_had);
        w.put_bool(self.snoop_dirty);
        crate::msg::save_opt_data(w, &self.snoop_data);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Tx, SnapError> {
        Ok(Tx {
            req: Request::load(r)?,
            phase: Phase::from_snap_tag(r.get_u8()?)?,
            pending_inv: r.get_u32()?,
            fetch_from: load_opt_port(r)?,
            fetch_inv: r.get_bool()?,
            upgrade: r.get_bool()?,
            fill_data: crate::msg::load_opt_data(r)?,
            recall: if r.get_bool()? {
                Some(Recall::load(r)?)
            } else {
                None
            },
            retry: RetryRound::load(r)?,
            pending_snoop: r.get_u32()?,
            snoop_had: r.get_bool()?,
            snoop_dirty: r.get_bool()?,
            snoop_data: crate::msg::load_opt_data(r)?,
        })
    }
}

impl Snapshot for Bank {
    fn save(&self, w: &mut SnapWriter) {
        // `lenient` is config-derived (reinstalled via `install_faults`
        // before load) and deliberately not serialized. Maps are sorted by
        // key so the byte stream is independent of insertion history;
        // per-block wait queues keep their FIFO order.
        self.array.save_with(w, |m, w| m.save(w));
        let mut blocks: Vec<u64> = self.tx.keys().copied().collect();
        blocks.sort_unstable();
        w.put_usize(blocks.len());
        for b in blocks {
            w.put_u64(b);
            self.tx[&b].save(w);
        }
        let mut victims: Vec<u64> = self.recall_owner.keys().copied().collect();
        victims.sort_unstable();
        w.put_usize(victims.len());
        for v in victims {
            w.put_u64(v);
            w.put_u64(self.recall_owner[&v]);
        }
        let mut queued: Vec<u64> = self.waiting.keys().copied().collect();
        queued.sort_unstable();
        w.put_usize(queued.len());
        for b in queued {
            w.put_u64(b);
            let q = &self.waiting[&b];
            w.put_usize(q.len());
            for req in q {
                req.save(w);
            }
        }
        for c in [
            self.gets,
            self.getm,
            self.puts,
            self.hits,
            self.misses,
            self.recalls,
            self.timeouts,
            self.nack_resends,
            self.stale_resps,
        ] {
            w.put_u64(c);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.array.load_with(r, L2Meta::load)?;
        self.tx.clear();
        for _ in 0..r.get_usize()? {
            let block = r.get_u64()?;
            self.tx.insert(block, Tx::load(r)?);
        }
        self.recall_owner.clear();
        for _ in 0..r.get_usize()? {
            let victim = r.get_u64()?;
            self.recall_owner.insert(victim, r.get_u64()?);
        }
        self.waiting.clear();
        for _ in 0..r.get_usize()? {
            let block = r.get_u64()?;
            let n = r.get_count(1)?;
            let mut q = VecDeque::with_capacity(n);
            for _ in 0..n {
                q.push_back(Request::load(r)?);
            }
            self.waiting.insert(block, q);
        }
        for c in [
            &mut self.gets,
            &mut self.getm,
            &mut self.puts,
            &mut self.hits,
            &mut self.misses,
            &mut self.recalls,
            &mut self.timeouts,
            &mut self.nack_resends,
            &mut self.stale_resps,
        ] {
            *c = r.get_u64()?;
        }
        Ok(())
    }
}
