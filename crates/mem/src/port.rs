//! Core-side port into the memory system with buffered uncore effects.
//!
//! [`CorePort`] borrows exactly the state a core quantum may touch — its own
//! L1 plus read-only routing configuration — so a batch step is `Send`-clean
//! and several cores can step concurrently over disjoint ports. Everything a
//! step would normally do to the shared uncore (NoC sends whose arrival
//! schedules a [`MemEvent`]) is appended to a [`PortLog`] instead; a serial
//! merge section later replays the logs in canonical order, producing the
//! exact event stream serial execution would have produced.
//!
//! [`MemorySystem::access`](crate::MemorySystem::access) itself is implemented
//! on top of a `CorePort` with an immediate replay, so the serial reference
//! path and the parallel path share one implementation of the core-side logic.

use std::collections::BTreeSet;

use ccsvm_engine::Time;
use ccsvm_noc::{Network, NodeId};

use crate::addr::{block_of, PhysAddr};
use crate::l1::{L1Access, L1Out, L1};
use crate::msg::{BankId, L1ToDir, MemEvent, MemEventKind, Request};
use crate::system::{Access, AccessResult, BankConfig, Completion};

/// One buffered uncore effect: a NoC send from `src` to `dst` of `bytes`
/// payload, injected at `at`, whose arrival schedules `ev`.
#[derive(Debug)]
struct LogEntry {
    at: Time,
    src: NodeId,
    dst: NodeId,
    bytes: usize,
    ev: MemEvent,
}

/// Ordered buffer of the uncore effects produced through one [`CorePort`].
///
/// Entries replay in push order, which matches the order the same core step
/// would have performed the sends directly — so a replay is indistinguishable
/// (in NoC state, event times and event FIFO order) from serial execution.
#[derive(Debug, Default)]
pub struct PortLog {
    entries: Vec<LogEntry>,
    /// Reusable L1 output buffer for [`CorePort::access`]. One per port and
    /// alive across batches, so the hot access path allocates nothing.
    scratch: L1Out,
}

impl PortLog {
    /// An empty log.
    pub fn new() -> PortLog {
        PortLog::default()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards the buffered sends without replaying them (capacity kept).
    /// Rollback of a speculative epoch member: its requests were never
    /// visible to the uncore, so dropping them is exact.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drains the buffered sends in order: each is injected into `net` and its
    /// arrival event handed to `sched`. The log is left empty (capacity kept).
    pub fn replay(&mut self, net: &mut Network, sched: &mut dyn FnMut(Time, MemEvent)) {
        for e in self.entries.drain(..) {
            let t = net.send(e.at, e.src, e.dst, e.bytes);
            sched(t, e.ev);
        }
    }
}

/// A single core's private view of the memory system: mutable access to its
/// own L1, shared access to routing configuration, and a [`PortLog`] that
/// buffers uncore effects. Distinct ports borrow disjoint L1s, so a
/// `Vec<CorePort>` from [`MemorySystem::core_ports`](crate::MemorySystem::core_ports)
/// can be moved to worker threads.
#[derive(Debug)]
pub struct CorePort<'a> {
    l1: &'a mut L1,
    poisoned: &'a BTreeSet<u64>,
    banks: &'a [BankConfig],
    ctrl_bytes: usize,
    data_bytes: usize,
    log: &'a mut PortLog,
}

impl<'a> CorePort<'a> {
    pub(crate) fn new(
        l1: &'a mut L1,
        poisoned: &'a BTreeSet<u64>,
        banks: &'a [BankConfig],
        ctrl_bytes: usize,
        data_bytes: usize,
        log: &'a mut PortLog,
    ) -> CorePort<'a> {
        CorePort {
            l1,
            poisoned,
            banks,
            ctrl_bytes,
            data_bytes,
            log,
        }
    }

    fn home(&self, block: u64) -> usize {
        (block % self.banks.len() as u64) as usize
    }

    fn req_bytes(&self, req: &Request) -> usize {
        if req.data.is_some() {
            self.data_bytes
        } else {
            self.ctrl_bytes
        }
    }

    fn resp_bytes(&self, resp: &L1ToDir) -> usize {
        match resp {
            L1ToDir::InvResp { data: Some(_), .. }
            | L1ToDir::FetchResp { .. }
            | L1ToDir::SnoopResp { data: Some(_), .. } => self.data_bytes,
            _ => self.ctrl_bytes,
        }
    }

    /// Buffers the NoC traffic produced by one L1 step and reports finished
    /// misses into `completions`. This is the one implementation of L1-side
    /// output routing; both [`CorePort::access`] and the system's directory
    /// message delivery go through it.
    pub(crate) fn flush(&mut self, now: Time, out: &mut L1Out, completions: &mut Vec<Completion>) {
        let node = self.l1.config.node;
        for req in out.requests.drain(..) {
            let b = self.home(req.block);
            let bytes = self.req_bytes(&req);
            self.log.entries.push(LogEntry {
                at: now,
                src: node,
                dst: self.banks[b].node,
                bytes,
                ev: MemEvent(MemEventKind::ReqArrive(req)),
            });
        }
        for resp in out.responses.drain(..) {
            let rb = match &resp {
                L1ToDir::InvResp { block, .. }
                | L1ToDir::FetchResp { block, .. }
                | L1ToDir::SnoopResp { block, .. } => *block,
            };
            let b = self.home(rb);
            let bytes = self.resp_bytes(&resp);
            self.log.entries.push(LogEntry {
                at: now,
                src: node,
                dst: self.banks[b].node,
                bytes,
                ev: MemEvent(MemEventKind::RespArrive(BankId(b), resp)),
            });
        }
        for (token, value, block) in out.completions.drain(..) {
            let poisoned = !self.poisoned.is_empty() && self.poisoned.contains(&block);
            completions.push(Completion {
                port: self.l1.id,
                token,
                value,
                poisoned,
            });
        }
    }

    /// Issues `access` on this port, buffering any miss traffic in the log.
    /// Mirrors [`MemorySystem::access`](crate::MemorySystem::access) exactly.
    pub fn access(&mut self, now: Time, token: u64, access: Access) -> AccessResult {
        // Borrow the log's scratch buffer for the duration of the L1 step;
        // `flush` drains it, so it goes back empty.
        let mut out = std::mem::take(&mut self.log.scratch);
        out.clear();
        let result = self.l1.access(access, token, &mut out);
        debug_assert!(out.completions.is_empty(), "access cannot complete others");
        // The miss leaves the L1 after the tag lookup (one hit time).
        let hit_time = self.l1.config.hit_time;
        let mut no_completions = Vec::new();
        self.flush(now + hit_time, &mut out, &mut no_completions);
        debug_assert!(no_completions.is_empty());
        self.log.scratch = out;
        match result {
            L1Access::Hit { value } => {
                if !self.poisoned.is_empty() && self.poisoned.contains(&block_of(access.addr())) {
                    return AccessResult::Poisoned;
                }
                AccessResult::Hit {
                    finish: now + hit_time,
                    value,
                }
            }
            L1Access::Pending => AccessResult::Pending,
            L1Access::Retry => AccessResult::Retry,
        }
    }

    /// Replays the counter effects of re-attempting an access that returned
    /// [`AccessResult::Retry`] earlier in the same core batch, without
    /// re-running the controller (see [`L1::count_doomed_retry`]).
    pub fn count_doomed_retry(&mut self, access: Access) {
        self.l1.count_doomed_retry(access);
    }

    /// Untimed read of a word through this port's L1, if the block is resident
    /// and readable here (SIMT lane coalescing).
    pub fn peek(&self, paddr: PhysAddr, size: usize) -> Option<u64> {
        self.l1.peek_word(paddr, size)
    }

    /// Untimed write of a word through this port's L1 if it holds the block in
    /// M or E; returns `false` otherwise.
    pub fn poke(&mut self, paddr: PhysAddr, size: usize, value: u64) -> bool {
        self.l1.poke_word(paddr, size, value)
    }

    /// L1 hit latency of this port.
    pub fn hit_time(&self) -> Time {
        self.l1.config.hit_time
    }
}
