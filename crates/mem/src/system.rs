//! The composed coherent memory system: L1s + directory banks + DRAM,
//! exchanging messages over a caller-supplied NoC.

use std::collections::BTreeSet;

use ccsvm_engine::{FaultDomain, FaultPlan, Stats, Time};
use ccsvm_noc::Network;

use crate::addr::{block_of, PhysAddr};
use crate::bank::{Bank, BankOut, TimeoutAction};
use crate::cache::CacheConfig;
use crate::dram::{Dram, DramConfig};
use crate::l1::{L1Config, L1Out, L1State, L1};
use crate::msg::{AtomicOp, BankId, DirToL1, MemEvent, MemEventKind};
use crate::port::{CorePort, PortLog};
use crate::protocol::ProtocolKind;

/// Identifies an L1 cache port (one per core).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// A memory access issued by a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Load of `size` bytes (1/2/4/8), zero-extended into a `u64`.
    Read {
        /// Physical address (must not straddle a 64 B block).
        paddr: PhysAddr,
        /// Access width in bytes.
        size: usize,
    },
    /// Store of the low `size` bytes of `value`.
    Write {
        /// Physical address.
        paddr: PhysAddr,
        /// Access width in bytes.
        size: usize,
        /// Store data.
        value: u64,
    },
    /// Atomic read-modify-write performed at the L1 with M permission
    /// (paper §3.2.4). Returns the *old* value.
    Rmw {
        /// Physical address.
        paddr: PhysAddr,
        /// Access width in bytes.
        size: usize,
        /// The operation.
        op: AtomicOp,
    },
}

impl Access {
    /// The physical address accessed.
    pub fn addr(&self) -> PhysAddr {
        match *self {
            Access::Read { paddr, .. }
            | Access::Write { paddr, .. }
            | Access::Rmw { paddr, .. } => paddr,
        }
    }

    /// The access width in bytes.
    pub fn size(&self) -> usize {
        match *self {
            Access::Read { size, .. } | Access::Write { size, .. } | Access::Rmw { size, .. } => {
                size
            }
        }
    }
}

/// Outcome of [`MemorySystem::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// L1 hit: the access completes at `finish` with `value` (loads and
    /// atomics; stores echo the stored value).
    Hit {
        /// Completion time (issue time + L1 hit latency).
        finish: Time,
        /// Load/atomic result.
        value: u64,
    },
    /// L1 miss: a [`Completion`] with the same token will be produced later.
    Pending,
    /// All MSHRs are busy; retry after a short delay.
    Retry,
    /// The accessed block was poisoned by an uncorrectable (double-bit) DRAM
    /// ECC error; the access cannot produce trustworthy data and the machine
    /// should abort the run gracefully.
    Poisoned,
}

/// A finished miss, reported from [`MemorySystem::handle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The port that issued the access.
    pub port: PortId,
    /// Caller-chosen identifier passed to [`MemorySystem::access`].
    pub token: u64,
    /// Load/atomic result (stores echo the stored value).
    pub value: u64,
    /// The filled block carries an uncorrectable ECC error; the value must
    /// not be architecturally consumed.
    pub poisoned: bool,
}

/// Configuration of one directory/L2 bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankConfig {
    /// NoC node the bank sits at.
    pub node: ccsvm_noc::NodeId,
    /// Bank geometry (per-bank share of the shared L2).
    pub cache: CacheConfig,
    /// Fixed bank access latency (tag + data + directory).
    pub latency: Time,
}

/// Configuration of the whole memory system.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// One entry per core, in `PortId` order.
    pub l1s: Vec<L1Config>,
    /// The shared-L2 banks; block `b` homes at bank `b % banks.len()`.
    pub banks: Vec<BankConfig>,
    /// Off-chip memory.
    pub dram: DramConfig,
    /// Size of a control message on the NoC (requests, acks).
    pub ctrl_bytes: usize,
    /// Size of a data-bearing message (64 B payload + header).
    pub data_bytes: usize,
    /// Which coherence protocol the hierarchy runs (see [`crate::protocol`]).
    pub protocol: ProtocolKind,
}

/// The coherent memory hierarchy. See the [crate docs](crate) for the
/// protocol description.
#[derive(Debug)]
pub struct MemorySystem {
    pub(crate) l1s: Vec<L1>,
    pub(crate) banks: Vec<Bank>,
    pub(crate) protocol: ProtocolKind,
    bank_cfg: Vec<BankConfig>,
    dram: Dram,
    ctrl_bytes: usize,
    data_bytes: usize,
    /// Blocks whose last DRAM fill carried an uncorrectable ECC error.
    pub(crate) poisoned: BTreeSet<u64>,
    /// Directory response timeout; `None` disables NACK/retry entirely.
    pub(crate) dir_timeout: Option<Time>,
    /// NACK resends allowed per transaction before the run aborts.
    dir_budget: u32,
    /// Set when a transaction spent its whole retry budget (sticky until
    /// [`MemorySystem::take_retry_exhausted`]).
    retry_exhausted: Option<(BankId, u64)>,
    /// Test-only `CorruptResendEpoch` trigger: armed by the machine just
    /// before dispatching the target `DirTimeout` and consumed synchronously
    /// by it, so it is transient by construction and never serialized.
    corrupt_next_resend: bool,
    /// Reusable log for the serial [`MemorySystem::access`] path, so the
    /// buffer-and-replay round trip allocates only once.
    scratch: PortLog,
    /// Reusable L1 output buffer for directory-message delivery, so the hot
    /// `DirArrive` path allocates nothing.
    scratch_out: L1Out,
}

impl MemorySystem {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if no L1s or banks are configured, or more than 32 L1s are
    /// requested (the directory's sharer mask width).
    pub fn new(config: MemConfig) -> MemorySystem {
        assert!(!config.l1s.is_empty(), "need at least one L1");
        assert!(config.l1s.len() <= 32, "directory supports at most 32 L1s");
        assert!(!config.banks.is_empty(), "need at least one bank");
        let n_ports = config.l1s.len();
        MemorySystem {
            l1s: config
                .l1s
                .iter()
                .enumerate()
                .map(|(i, c)| L1::new(PortId(i), *c, config.protocol))
                .collect(),
            banks: {
                let n = config.banks.len();
                assert!(n.is_power_of_two(), "bank count must be a power of two");
                (0..n)
                    .map(|i| {
                        Bank::new(
                            BankId(i),
                            config.banks[i].cache,
                            n.trailing_zeros(),
                            config.protocol,
                            n_ports,
                        )
                    })
                    .collect()
            },
            protocol: config.protocol,
            bank_cfg: config.banks,
            dram: Dram::new(config.dram),
            ctrl_bytes: config.ctrl_bytes,
            data_bytes: config.data_bytes,
            poisoned: BTreeSet::new(),
            dir_timeout: None,
            dir_budget: 0,
            retry_exhausted: None,
            corrupt_next_resend: false,
            scratch: PortLog::new(),
            scratch_out: L1Out::default(),
        }
    }

    /// Installs seeded fault injection: DRAM ECC flips when either rate is
    /// non-zero, and directory NACK/retry when a timeout is configured. With
    /// the default (all-off) plan this is a no-op and the system behaves —
    /// and reports stats — exactly as without faults.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        let cfg = plan.config();
        if cfg.dram.single_bit_rate > 0.0 || cfg.dram.double_bit_rate > 0.0 {
            self.dram
                .install_faults(cfg.dram, plan.stream(FaultDomain::Dram));
        }
        if let Some(timeout) = cfg.dir.timeout {
            self.dir_timeout = Some(timeout);
            self.dir_budget = cfg.dir.retry_budget;
            // NACK resends can race in-flight originals, so duplicate
            // responses become expected rather than protocol errors.
            for b in &mut self.banks {
                b.set_lenient();
            }
            for l1 in &mut self.l1s {
                l1.set_lenient();
            }
        }
    }

    /// Number of L1 ports.
    pub fn ports(&self) -> usize {
        self.l1s.len()
    }

    /// The coherence protocol this hierarchy runs.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// L1 hit latency of `port`.
    pub fn hit_time(&self, port: PortId) -> Time {
        self.l1s[port.0].config.hit_time
    }

    pub(crate) fn home(&self, block: u64) -> usize {
        (block % self.banks.len() as u64) as usize
    }

    fn dir_msg_bytes(&self, msg: &DirToL1) -> usize {
        match msg {
            DirToL1::Data { .. } => self.data_bytes,
            _ => self.ctrl_bytes,
        }
    }

    /// A [`CorePort`] for `port`: mutable access to that L1 only, with uncore
    /// effects buffered into `log` for a later [`PortLog::replay`].
    pub fn core_port<'a>(&'a mut self, port: PortId, log: &'a mut PortLog) -> CorePort<'a> {
        CorePort::new(
            &mut self.l1s[port.0],
            &self.poisoned,
            &self.bank_cfg,
            self.ctrl_bytes,
            self.data_bytes,
            log,
        )
    }

    /// Splits the system into one [`CorePort`] per L1 (in `PortId` order),
    /// each paired with the same-index entry of `logs`. The ports borrow
    /// disjoint L1s and are `Send`, so they can be stepped concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `logs.len() != self.ports()`.
    pub fn core_ports<'a>(&'a mut self, logs: &'a mut [PortLog]) -> Vec<CorePort<'a>> {
        assert_eq!(logs.len(), self.l1s.len(), "one log per port required");
        let poisoned: &BTreeSet<u64> = &self.poisoned;
        let banks: &[BankConfig] = &self.bank_cfg;
        let (ctrl, data) = (self.ctrl_bytes, self.data_bytes);
        self.l1s
            .iter_mut()
            .zip(logs.iter_mut())
            .map(|(l1, log)| CorePort::new(l1, poisoned, banks, ctrl, data, log))
            .collect()
    }

    /// Whether any block is currently poisoned by an uncorrectable ECC error.
    pub fn has_poisoned(&self) -> bool {
        !self.poisoned.is_empty()
    }

    // --- speculative epoch support (DESIGN §12) ---------------------------
    //
    // The epoch executor runs several MTTOP batches from *different*
    // timestamps optimistically. Each member's L1 opens an undo journal; the
    // scheduler guarantees no directory message is ever delivered to a
    // journaling L1 (it rolls the member back first), so commit/rollback are
    // purely local to the port.

    /// Opens an undo journal on `port`'s L1 (see [`crate::MemorySystem`] spec
    /// notes). `budget` caps the set-granular pre-images before the journal
    /// falls back to a full L1 snapshot.
    pub fn spec_begin(&mut self, port: PortId, budget: usize) {
        self.l1s[port.0].spec_begin(budget);
    }

    /// Whether `port`'s L1 currently has an open undo journal.
    pub fn spec_active(&self, port: PortId) -> bool {
        self.l1s[port.0].spec_active()
    }

    /// Commits `port`'s speculative execution, discarding the journal.
    pub fn spec_commit(&mut self, port: PortId) {
        self.l1s[port.0].spec_commit();
    }

    /// Rolls `port`'s L1 back to its `spec_begin` state, byte-exactly.
    /// Returns `true` when the journal had overflowed and the snapshot
    /// restore slow path was taken.
    pub fn spec_rollback(&mut self, port: PortId) -> bool {
        self.l1s[port.0].spec_rollback()
    }

    /// Whether `port` has any outstanding misses in flight. The epoch
    /// scheduler skips such ports at formation time: their fills would
    /// conflict with the speculation anyway.
    pub fn has_outstanding(&self, port: PortId) -> bool {
        !self.l1s[port.0].quiescent()
    }

    /// Issues `access` on `port`. `token` identifies the access in a later
    /// [`Completion`] if it misses.
    ///
    /// New events are scheduled through `sched`; the caller must deliver them
    /// back to [`MemorySystem::handle`] at the given times.
    ///
    /// Implemented as a [`CorePort::access`] followed by an immediate
    /// [`PortLog::replay`], so the serial path exercises exactly the code the
    /// parallel executor runs.
    pub fn access(
        &mut self,
        now: Time,
        net: &mut Network,
        sched: &mut dyn FnMut(Time, MemEvent),
        port: PortId,
        token: u64,
        access: Access,
    ) -> AccessResult {
        let mut log = std::mem::take(&mut self.scratch);
        let result = self.core_port(port, &mut log).access(now, token, access);
        log.replay(net, sched);
        self.scratch = log;
        result
    }

    /// Processes an internal event, scheduling follow-ups via `sched` and
    /// reporting finished misses into `completions`.
    pub fn handle(
        &mut self,
        now: Time,
        net: &mut Network,
        sched: &mut dyn FnMut(Time, MemEvent),
        event: MemEvent,
        completions: &mut Vec<Completion>,
    ) {
        match event.0 {
            MemEventKind::ReqArrive(req) => {
                let b = self.home(req.block);
                let block = req.block;
                if self.banks[b].req_arrive(req) {
                    let ready = now + self.bank_cfg[b].latency;
                    sched(
                        ready,
                        MemEvent(MemEventKind::BankReady {
                            bank: BankId(b),
                            block,
                        }),
                    );
                }
            }
            MemEventKind::BankReady { bank, block } => {
                let mut out = BankOut::default();
                self.banks[bank.0].ready(block, &mut out);
                self.apply_bank_out(now, bank.0, out, net, sched);
            }
            MemEventKind::DramReadDone { bank, block } => {
                let mut data = [0u8; crate::BLOCK_BYTES as usize];
                self.dram
                    .read_bytes(crate::addr::base_of_block(block), &mut data);
                let mut out = BankOut::default();
                self.banks[bank.0].dram_done(block, data, &mut out);
                self.apply_bank_out(now, bank.0, out, net, sched);
            }
            MemEventKind::RespArrive(bank, resp) => {
                let mut out = BankOut::default();
                self.banks[bank.0].resp_arrive(resp, &mut out);
                self.apply_bank_out(now, bank.0, out, net, sched);
            }
            MemEventKind::DirArrive(port, msg) => {
                let mut out = std::mem::take(&mut self.scratch_out);
                out.clear();
                self.l1s[port.0].on_dir_msg(msg, &mut out);
                self.flush_l1_out(now, port, &mut out, net, sched, completions);
                self.scratch_out = out;
            }
            MemEventKind::DirTimeout { bank, block, epoch } => {
                let budget = self.dir_budget;
                let corrupt = std::mem::take(&mut self.corrupt_next_resend);
                let mut out = BankOut::default();
                if let TimeoutAction::Exhausted =
                    self.banks[bank.0].timeout_fired(block, epoch, budget, corrupt, &mut out)
                {
                    self.retry_exhausted = Some((bank, block));
                }
                self.apply_bank_out(now, bank.0, out, net, sched);
            }
        }
    }

    fn flush_l1_out(
        &mut self,
        now: Time,
        port: PortId,
        out: &mut L1Out,
        net: &mut Network,
        sched: &mut dyn FnMut(Time, MemEvent),
        completions: &mut Vec<Completion>,
    ) {
        let mut log = std::mem::take(&mut self.scratch);
        self.core_port(port, &mut log).flush(now, out, completions);
        log.replay(net, sched);
        self.scratch = log;
    }

    fn apply_bank_out(
        &mut self,
        now: Time,
        bank: usize,
        out: BankOut,
        net: &mut Network,
        sched: &mut dyn FnMut(Time, MemEvent),
    ) {
        let bank_node = self.bank_cfg[bank].node;
        for (port, msg) in out.sends {
            let bytes = self.dir_msg_bytes(&msg);
            let t = net.send(now, bank_node, self.l1s[port.0].config.node, bytes);
            sched(t, MemEvent(MemEventKind::DirArrive(port, msg)));
        }
        if let Some(block) = out.dram_read {
            let (done, _, poisoned) = self.dram.timed_read_block(now, bank, block);
            if poisoned {
                self.poisoned.insert(block);
            }
            sched(
                done,
                MemEvent(MemEventKind::DramReadDone {
                    bank: BankId(bank),
                    block,
                }),
            );
        }
        for (block, data) in out.dram_writes {
            // Posted writeback: nothing waits on it.
            self.dram.timed_write_block(now, bank, block, &data);
        }
        for block in out.finished {
            if let Some(req) = self.banks[bank].pop_waiting(block) {
                let accepted = self.banks[bank].req_arrive(req);
                debug_assert!(accepted, "drained request immediately re-queued");
                let ready = now + self.bank_cfg[bank].latency;
                sched(
                    ready,
                    MemEvent(MemEventKind::BankReady {
                        bank: BankId(bank),
                        block,
                    }),
                );
            }
        }
        if let Some(block) = out.retry {
            let ready = now + self.bank_cfg[bank].latency;
            sched(
                ready,
                MemEvent(MemEventKind::BankReady {
                    bank: BankId(bank),
                    block,
                }),
            );
        }
        if let Some(timeout) = self.dir_timeout {
            for (block, epoch) in out.arm {
                sched(
                    now + timeout,
                    MemEvent(MemEventKind::DirTimeout {
                        bank: BankId(bank),
                        block,
                        epoch,
                    }),
                );
            }
        }
    }

    /// Untimed read of a word through `port`'s L1, if the block is resident
    /// and readable there (used to coalesce SIMT lane accesses that hit the
    /// same block as a completed access).
    pub fn peek(&self, port: PortId, paddr: PhysAddr, size: usize) -> Option<u64> {
        self.l1s[port.0].peek_word(paddr, size)
    }

    /// Untimed write of a word through `port`'s L1 if it holds the block in
    /// M or E; returns `false` otherwise.
    pub fn poke(&mut self, port: PortId, paddr: PhysAddr, size: usize, value: u64) -> bool {
        self.l1s[port.0].poke_word(paddr, size, value)
    }

    /// Functional, coherence-respecting read of arbitrary bytes: per block it
    /// prefers an owning L1's copy, then the L2, then DRAM. Intended for
    /// loading results after the machine quiesces and for tests.
    pub fn backdoor_read(&self, addr: PhysAddr, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = PhysAddr(addr.0 + i as u64);
            let block = block_of(a);
            let off = crate::addr::offset_in_block(a);
            let mut byte = None;
            for l1 in &self.l1s {
                let (state, data) = l1.probe(block);
                if matches!(state, L1State::M | L1State::O | L1State::E) {
                    byte = Some(data.expect("owned line has data")[off]);
                    break;
                }
            }
            if byte.is_none() {
                let home = self.home(block);
                byte = self.banks[home].probe(block).map(|d| d[off]);
            }
            *b = byte.unwrap_or_else(|| {
                let mut one = [0u8; 1];
                self.dram.read_bytes(a, &mut one);
                one[0]
            });
        }
    }

    /// Functional write used by loaders **before** simulation starts; bypasses
    /// timing and coherence.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any cache currently holds an affected
    /// block — use regular stores during simulation instead.
    pub fn backdoor_write(&mut self, addr: PhysAddr, bytes: &[u8]) {
        #[cfg(debug_assertions)]
        for i in (0..bytes.len()).step_by(crate::BLOCK_BYTES as usize) {
            let block = block_of(PhysAddr(addr.0 + i as u64));
            for l1 in &self.l1s {
                debug_assert!(
                    matches!(l1.probe(block).0, L1State::I),
                    "backdoor_write to cached block {block}"
                );
            }
            debug_assert!(
                self.banks[self.home(block)].probe(block).is_none(),
                "backdoor_write to L2-cached block {block}"
            );
        }
        self.dram.write_bytes(addr, bytes);
    }

    /// Functional write that stays coherent mid-run: patches **every**
    /// resident copy (all L1s, the home L2 bank) and DRAM, so any core's
    /// next read observes the value regardless of where it hits. Intended
    /// for OS shortcuts in test rigs; the real machine issues PTE stores as
    /// coherent writes instead.
    pub fn backdoor_write_coherent(&mut self, addr: PhysAddr, bytes: &[u8]) {
        let mut i = 0usize;
        while i < bytes.len() {
            let a = PhysAddr(addr.0 + i as u64);
            let block = block_of(a);
            let off = crate::addr::offset_in_block(a);
            let n = (crate::BLOCK_BYTES as usize - off).min(bytes.len() - i);
            let chunk = &bytes[i..i + n];
            for l1 in &mut self.l1s {
                l1.backdoor_patch(block, off, chunk);
            }
            let home = (block % self.banks.len() as u64) as usize;
            self.banks[home].backdoor_patch(block, off, chunk);
            self.dram.write_bytes(a, chunk);
            i += n;
        }
    }

    /// Whether every controller is idle (no MSHRs, evictions, transactions or
    /// queued requests).
    pub fn quiescent(&self) -> bool {
        self.l1s.iter().all(L1::quiescent) && self.banks.iter().all(Bank::quiescent)
    }

    /// Outstanding miss blocks per port (ports with none are omitted) — the
    /// watchdog's "who is stuck" diagnostic.
    pub fn outstanding(&self) -> Vec<(PortId, Vec<u64>)> {
        self.l1s
            .iter()
            .enumerate()
            .filter_map(|(i, l1)| {
                let blocks = l1.outstanding_blocks();
                (!blocks.is_empty()).then_some((PortId(i), blocks))
            })
            .collect()
    }

    /// Blocks with an active directory transaction, per bank (banks with none
    /// are omitted).
    pub fn dir_active(&self) -> Vec<(BankId, Vec<u64>)> {
        self.banks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let blocks = b.active_blocks();
                (!blocks.is_empty()).then_some((BankId(i), blocks))
            })
            .collect()
    }

    /// Phase of the active directory transaction on `block` at its home bank.
    pub fn dir_tx_phase(&self, block: u64) -> Option<String> {
        self.banks[self.home(block)].tx_phase(block)
    }

    /// Blocks poisoned by uncorrectable ECC errors, sorted.
    pub fn poisoned_blocks(&self) -> Vec<u64> {
        self.poisoned.iter().copied().collect()
    }

    /// Takes (and clears) the record of a transaction that exhausted its NACK
    /// retry budget, if one did.
    pub fn take_retry_exhausted(&mut self) -> Option<(BankId, u64)> {
        self.retry_exhausted.take()
    }

    /// Arms the test-only `CorruptResendEpoch` mutation: the next
    /// `DirTimeout` handled corrupts its round instead of resending.
    pub fn arm_corrupt_resend(&mut self) {
        self.corrupt_next_resend = true;
    }

    /// Whether a `DirTimeout` carrying (`bank`, `block`, `epoch`) would hit a
    /// live snoop-collection round (mutation targeting; see [`Bank`]).
    pub fn snoop_round_current(&self, bank: BankId, block: u64, epoch: u64) -> bool {
        self.banks[bank.0].snoop_round_current(block, epoch)
    }

    /// Whether the `CorruptResendEpoch` mutation is *applicable* to a
    /// `DirTimeout` carrying (`bank`, `block`, `epoch`): the round is live
    /// and the probe it would abandon targets an L1 that actually holds the
    /// block — so completing the round without that answer is guaranteed to
    /// violate coherence (a surviving copy beside an exclusive grant, or an
    /// unpatched sharer), not silently benign.
    pub fn corrupt_resend_applicable(&self, bank: BankId, block: u64, epoch: u64) -> bool {
        if !self.banks[bank.0].snoop_round_current(block, epoch) {
            return false;
        }
        self.banks[bank.0]
            .snoop_pending_lowest(block)
            .is_some_and(|p| self.l1s[p.0].probe(block).0 != crate::l1::L1State::I)
    }

    /// Whether `block`'s home bank is mid write-update round — i.e. a lost
    /// `SnoopResp` for it would be re-solicited rather than lose dirty data
    /// (the `UpdAck` fault domain's safety carrier).
    pub fn upd_round_active(&self, bank: BankId, block: u64) -> bool {
        self.banks[bank.0].upd_round_active(block)
    }

    /// Directory-reported owner of a block (tests / invariant checks).
    pub fn dir_owner(&self, block: u64) -> Option<PortId> {
        self.banks[self.home(block)].owner_of(block)
    }

    /// Directory-reported sharer mask of a block (tests / invariant checks).
    pub fn dir_sharers(&self, block: u64) -> u32 {
        self.banks[self.home(block)].sharers_of(block)
    }

    /// Total DRAM accesses so far — the paper's Figure 9 metric.
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses()
    }

    /// Resets the DRAM counters (e.g. after input loading).
    pub fn reset_dram_counters(&mut self) {
        self.dram.reset_counters();
    }

    /// Per-bank L2 occupancy and resident blocks (debug).
    pub fn l2_occupancy(&self) -> Vec<(usize, Vec<u64>)> {
        self.banks
            .iter()
            .map(|b| (b.occupancy(), b.resident()))
            .collect()
    }

    /// Aggregated statistics of every component.
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            s.merge_prefixed(&format!("l1.{i}"), &l1.stats());
        }
        for (i, b) in self.banks.iter().enumerate() {
            s.merge_prefixed(&format!("l2.{i}"), &b.stats());
        }
        s.merge_prefixed("dram", &self.dram.stats());
        s
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs. Any change here is a snapshot schema change (bump
// `ccsvm_snap::SCHEMA_VERSION` and document it in DESIGN.md §8).

use ccsvm_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Access {
    /// Appends this access to a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        match *self {
            Access::Read { paddr, size } => {
                w.put_u8(0);
                w.put_u64(paddr.0);
                w.put_usize(size);
            }
            Access::Write { paddr, size, value } => {
                w.put_u8(1);
                w.put_u64(paddr.0);
                w.put_usize(size);
                w.put_u64(value);
            }
            Access::Rmw { paddr, size, op } => {
                w.put_u8(2);
                w.put_u64(paddr.0);
                w.put_usize(size);
                op.save(w);
            }
        }
    }

    /// Reads an access previously written by [`Access::save`].
    pub fn load(r: &mut SnapReader<'_>) -> Result<Access, SnapError> {
        let tag = r.get_u8()?;
        let paddr = PhysAddr(r.get_u64()?);
        let size = r.get_usize()?;
        Ok(match tag {
            0 => Access::Read { paddr, size },
            1 => Access::Write {
                paddr,
                size,
                value: r.get_u64()?,
            },
            2 => Access::Rmw {
                paddr,
                size,
                op: AtomicOp::load(r)?,
            },
            t => return Err(crate::msg::bad_tag("Access", t)),
        })
    }
}

impl Snapshot for MemorySystem {
    fn save(&self, w: &mut SnapWriter) {
        // The serial-path scratch log is drained after every access, so it is
        // deliberately not serialized; checkpoints happen between dispatched
        // events where it is empty.
        w.put_usize(self.l1s.len());
        for l1 in &self.l1s {
            l1.save(w);
        }
        w.put_usize(self.banks.len());
        for b in &self.banks {
            b.save(w);
        }
        self.dram.save(w);
        w.put_usize(self.poisoned.len());
        for &b in &self.poisoned {
            w.put_u64(b);
        }
        match self.retry_exhausted {
            None => w.put_bool(false),
            Some((bank, block)) => {
                w.put_bool(true);
                w.put_usize(bank.0);
                w.put_u64(block);
            }
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.l1s.len() {
            return Err(SnapError::Corrupt {
                what: format!("snapshot has {n} L1s, config builds {}", self.l1s.len()),
            });
        }
        for l1 in &mut self.l1s {
            l1.load(r)?;
        }
        let n = r.get_usize()?;
        if n != self.banks.len() {
            return Err(SnapError::Corrupt {
                what: format!("snapshot has {n} banks, config builds {}", self.banks.len()),
            });
        }
        for b in &mut self.banks {
            b.load(r)?;
        }
        self.dram.load(r)?;
        self.poisoned.clear();
        for _ in 0..r.get_usize()? {
            self.poisoned.insert(r.get_u64()?);
        }
        self.retry_exhausted = if r.get_bool()? {
            Some((BankId(r.get_usize()?), r.get_u64()?))
        } else {
            None
        };
        Ok(())
    }
}
