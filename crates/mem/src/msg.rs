//! Coherence protocol messages and memory-system events.

use crate::addr::BLOCK_BYTES;
use crate::system::PortId;

/// Read-modify-write operations the MTTOP ISA provides (paper §3.2.4: the
/// OpenCL-style atomics `atomic_cas`, `atomic_add`, `atomic_inc`,
/// `atomic_dec`, plus exchange). All are performed at the L1 after acquiring
/// exclusive (M) coherence permission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Compare-and-swap: if current == `expected`, store `value`. The old
    /// value is returned either way.
    Cas {
        /// Value the location must hold for the swap to happen.
        expected: u64,
        /// Replacement value.
        value: u64,
    },
    /// Fetch-and-add of `value` (wrapping).
    Add {
        /// Addend.
        value: u64,
    },
    /// Fetch-and-increment.
    Inc,
    /// Fetch-and-decrement.
    Dec,
    /// Exchange with `value`.
    Exch {
        /// New value.
        value: u64,
    },
}

impl AtomicOp {
    /// Applies the operation to `old`, returning the new stored value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            AtomicOp::Cas { expected, value } => {
                if old == expected {
                    value
                } else {
                    old
                }
            }
            AtomicOp::Add { value } => old.wrapping_add(value),
            AtomicOp::Inc => old.wrapping_add(1),
            AtomicOp::Dec => old.wrapping_sub(1),
            AtomicOp::Exch { value } => value,
        }
    }
}

/// Identifies an L2/directory bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub usize);

/// Cache-block payload carried by data messages.
pub type BlockData = [u8; BLOCK_BYTES as usize];

/// Coherence request types an L1 sends to a directory bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Read permission (grants S, or E when unshared).
    GetS,
    /// Write permission (grants M; invalidates other copies).
    GetM,
    /// Writeback of a dirty block (from M or O).
    PutDirty,
    /// Eviction notice for a clean block (from E or S).
    PutClean,
}

/// A request message travelling L1 → directory.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Request {
    pub kind: ReqKind,
    pub from: PortId,
    pub block: u64,
    /// Dirty data for `PutDirty`.
    pub data: Option<BlockData>,
    /// For `PutDirty`: the sender keeps ownership (write-through mode) rather
    /// than dropping the block.
    pub retain: bool,
}

/// Messages travelling directory → L1.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum DirToL1 {
    /// Grant with data and an installation state.
    Data { block: u64, grant: Grant, data: BlockData },
    /// Upgrade grant (requestor already holds valid data).
    AckM { block: u64 },
    /// Invalidate a shared/owned copy; respond with `InvResp`.
    Inv { block: u64 },
    /// Owner must send current data to the directory and downgrade to O.
    Fetch { block: u64 },
    /// Owner must send current data to the directory and invalidate.
    FetchInv { block: u64 },
    /// A Put transaction finished (possibly as a stale no-op).
    PutAck { block: u64 },
}

/// Installation state granted with a data response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Grant {
    /// Shared, clean.
    S,
    /// Exclusive, clean (no other sharers existed).
    E,
    /// Modified (write permission).
    M,
}

/// Responses travelling L1 → directory.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum L1ToDir {
    /// Acknowledges an `Inv`; carries data when the L1 held the block dirty
    /// in its eviction buffer.
    InvResp {
        from: PortId,
        block: u64,
        data: Option<BlockData>,
    },
    /// Responds to `Fetch`/`FetchInv` with the owner's current data.
    FetchResp {
        from: PortId,
        block: u64,
        data: BlockData,
        dirty: bool,
    },
}

/// An internal memory-system event. The machine model wraps these in its own
/// event type and hands them back to [`crate::MemorySystem::handle`] at the
/// scheduled time.
#[derive(Clone, Debug)]
pub struct MemEvent(pub(crate) MemEventKind);

#[derive(Clone, Debug)]
pub(crate) enum MemEventKind {
    /// A request arrived at its home bank.
    ReqArrive(Request),
    /// A directory message arrived at an L1.
    DirArrive(PortId, DirToL1),
    /// An L1 response arrived back at a bank.
    RespArrive(BankId, L1ToDir),
    /// A DRAM read for `block` completed at `bank`.
    DramReadDone { bank: BankId, block: u64 },
    /// Bank finished its fixed access latency and can start working on the
    /// transaction for `block`.
    BankReady { bank: BankId, block: u64 },
    /// A directory transaction at `bank` for `block` has waited long enough
    /// on invalidation/fetch responses to NACK and re-solicit them. `epoch`
    /// identifies which solicitation round armed the timer; a re-solicit
    /// bumps the transaction's epoch, turning older timeout events stale.
    DirTimeout { bank: BankId, block: u64, epoch: u64 },
}

impl MemEvent {
    /// Whether this event delivers a directory→L1 data grant (the message
    /// that completes a miss). Exposed for fault-injection test knobs that
    /// simulate a lost completion.
    pub fn is_data_delivery(&self) -> bool {
        matches!(self.0, MemEventKind::DirArrive(_, DirToL1::Data { .. }))
    }

    /// The block of an L1→directory response event, if this is one. Exposed
    /// for fault-injection test knobs that black-hole a responder.
    pub fn resp_block(&self) -> Option<u64> {
        match &self.0 {
            MemEventKind::RespArrive(_, L1ToDir::InvResp { block, .. })
            | MemEventKind::RespArrive(_, L1ToDir::FetchResp { block, .. }) => Some(*block),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_ops_apply() {
        assert_eq!(AtomicOp::Cas { expected: 3, value: 9 }.apply(3), 9);
        assert_eq!(AtomicOp::Cas { expected: 3, value: 9 }.apply(4), 4);
        assert_eq!(AtomicOp::Add { value: 5 }.apply(10), 15);
        assert_eq!(AtomicOp::Add { value: 1 }.apply(u64::MAX), 0);
        assert_eq!(AtomicOp::Inc.apply(7), 8);
        assert_eq!(AtomicOp::Dec.apply(7), 6);
        assert_eq!(AtomicOp::Dec.apply(0), u64::MAX);
        assert_eq!(AtomicOp::Exch { value: 2 }.apply(99), 2);
    }
}
