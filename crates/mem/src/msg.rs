//! Coherence protocol messages and memory-system events.

use crate::addr::BLOCK_BYTES;
use crate::system::PortId;

/// Read-modify-write operations the MTTOP ISA provides (paper §3.2.4: the
/// OpenCL-style atomics `atomic_cas`, `atomic_add`, `atomic_inc`,
/// `atomic_dec`, plus exchange). All are performed at the L1 after acquiring
/// exclusive (M) coherence permission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Compare-and-swap: if current == `expected`, store `value`. The old
    /// value is returned either way.
    Cas {
        /// Value the location must hold for the swap to happen.
        expected: u64,
        /// Replacement value.
        value: u64,
    },
    /// Fetch-and-add of `value` (wrapping).
    Add {
        /// Addend.
        value: u64,
    },
    /// Fetch-and-increment.
    Inc,
    /// Fetch-and-decrement.
    Dec,
    /// Exchange with `value`.
    Exch {
        /// New value.
        value: u64,
    },
}

impl AtomicOp {
    /// Applies the operation to `old`, returning the new stored value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            AtomicOp::Cas { expected, value } => {
                if old == expected {
                    value
                } else {
                    old
                }
            }
            AtomicOp::Add { value } => old.wrapping_add(value),
            AtomicOp::Inc => old.wrapping_add(1),
            AtomicOp::Dec => old.wrapping_sub(1),
            AtomicOp::Exch { value } => value,
        }
    }
}

/// Identifies an L2/directory bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub usize);

/// Cache-block payload carried by data messages.
pub type BlockData = [u8; BLOCK_BYTES as usize];

/// One word-granular store broadcast by the Dragon write-update protocol:
/// instead of invalidating sharers, the writer pushes the stored bytes to
/// every valid copy through the block's home-bank ordering point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UpdWord {
    /// Byte offset of the store within its cache block.
    pub off: u8,
    /// Store width in bytes (1/2/4/8).
    pub size: u8,
    /// The stored value (little-endian, low `size` bytes significant).
    pub value: u64,
}

impl UpdWord {
    /// Applies the store to a block payload in place.
    pub fn apply(self, data: &mut BlockData) {
        let off = self.off as usize;
        let size = (self.size as usize).min(8);
        data[off..off + size].copy_from_slice(&self.value.to_le_bytes()[..size]);
    }
}

/// Coherence request types an L1 sends to a block's home bank. `GetS`..
/// `PutClean` form the directory protocol's vocabulary; `BusRd`/`BusRdX`/
/// `BusUpd` are the bus-transaction kinds of the snooping protocols, for
/// which the home bank acts as the per-block bus ordering point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Read permission (grants S, or E when unshared).
    GetS,
    /// Write permission (grants M; invalidates other copies).
    GetM,
    /// Writeback of a dirty block (from M or O).
    PutDirty,
    /// Eviction notice for a clean block (from E or S).
    PutClean,
    /// Snooping read: broadcast `Snoop(Rd)`, source data from the best
    /// supplier (dirty cache > clean cache > L2 > DRAM), grant E when no
    /// other cache held a copy.
    BusRd,
    /// Snooping read-exclusive: broadcast `Snoop(RdX)`, invalidate every
    /// other copy, grant M with data.
    BusRdX,
    /// Dragon write-update round: broadcast `Snoop(Upd)` carrying the
    /// store, collect acks, answer the writer with `UpdDone`.
    BusUpd(UpdWord),
}

/// A request message travelling L1 → directory.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Request {
    pub kind: ReqKind,
    pub from: PortId,
    pub block: u64,
    /// Dirty data for `PutDirty`.
    pub data: Option<BlockData>,
    /// For `PutDirty`: the sender keeps ownership (write-through mode) rather
    /// than dropping the block.
    pub retain: bool,
}

/// Messages travelling directory → L1.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum DirToL1 {
    /// Grant with data and an installation state.
    Data {
        block: u64,
        grant: Grant,
        data: BlockData,
    },
    /// Upgrade grant (requestor already holds valid data).
    AckM { block: u64 },
    /// Invalidate a shared/owned copy; respond with `InvResp`.
    Inv { block: u64 },
    /// Owner must send current data to the directory and downgrade to O.
    Fetch { block: u64 },
    /// Owner must send current data to the directory and invalidate.
    FetchInv { block: u64 },
    /// A Put transaction finished (possibly as a stale no-op).
    PutAck { block: u64 },
    /// Snooping protocols: the ordering point probes this L1 for `block`;
    /// respond with `SnoopResp` (and react per [`SnoopKind`]).
    Snoop { block: u64, kind: SnoopKind },
    /// Dragon: the write-update round for `block` is ordered; the writer may
    /// now apply its store locally, as Sm (owner) when other sharers
    /// acknowledged a copy, else as M.
    UpdDone { block: u64, sharers: bool },
}

/// What a snooped L1 must do besides answering [`L1ToDir::SnoopResp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum SnoopKind {
    /// Another cache reads: supply data, demote a writable copy to shared
    /// (MESI: M/E→S; Dragon: M→Sm, E→Sc).
    Rd,
    /// Another cache writes: supply dirty data and invalidate.
    RdX,
    /// Dragon write-update: apply the word to a valid copy in place
    /// (Sm demotes to Sc — the writer becomes the owner).
    Upd(UpdWord),
}

/// Installation state granted with a data response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Grant {
    /// Shared, clean.
    S,
    /// Exclusive, clean (no other sharers existed).
    E,
    /// Modified (write permission).
    M,
}

/// Responses travelling L1 → directory.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::enum_variant_names)] // they *are* all responses; the prefix names the sender
pub(crate) enum L1ToDir {
    /// Acknowledges an `Inv`; carries data when the L1 held the block dirty
    /// in its eviction buffer.
    InvResp {
        from: PortId,
        block: u64,
        data: Option<BlockData>,
    },
    /// Responds to `Fetch`/`FetchInv` with the owner's current data.
    FetchResp {
        from: PortId,
        block: u64,
        data: BlockData,
        dirty: bool,
    },
    /// Answers a [`DirToL1::Snoop`] probe. `had` reports whether this L1
    /// held a valid copy (or a dirty writeback in flight); `data` carries
    /// the copy when one existed, `dirty` whether it was modified.
    SnoopResp {
        from: PortId,
        block: u64,
        had: bool,
        dirty: bool,
        data: Option<BlockData>,
    },
}

/// An internal memory-system event. The machine model wraps these in its own
/// event type and hands them back to [`crate::MemorySystem::handle`] at the
/// scheduled time.
#[derive(Clone, Debug)]
pub struct MemEvent(pub(crate) MemEventKind);

#[derive(Clone, Debug)]
pub(crate) enum MemEventKind {
    /// A request arrived at its home bank.
    ReqArrive(Request),
    /// A directory message arrived at an L1.
    DirArrive(PortId, DirToL1),
    /// An L1 response arrived back at a bank.
    RespArrive(BankId, L1ToDir),
    /// A DRAM read for `block` completed at `bank`.
    DramReadDone { bank: BankId, block: u64 },
    /// Bank finished its fixed access latency and can start working on the
    /// transaction for `block`.
    BankReady { bank: BankId, block: u64 },
    /// A directory transaction at `bank` for `block` has waited long enough
    /// on invalidation/fetch responses to NACK and re-solicit them. `epoch`
    /// identifies which solicitation round armed the timer; a re-solicit
    /// bumps the transaction's epoch, turning older timeout events stale.
    DirTimeout {
        bank: BankId,
        block: u64,
        epoch: u64,
    },
}

impl MemEvent {
    /// Whether this event delivers a directory→L1 data grant (the message
    /// that completes a miss). Exposed for fault-injection test knobs that
    /// simulate a lost completion.
    pub fn is_data_delivery(&self) -> bool {
        matches!(self.0, MemEventKind::DirArrive(_, DirToL1::Data { .. }))
    }

    /// The L1 port this event targets, if it is a directory→L1 delivery.
    /// The epoch scheduler's conflict check: delivering *any* directory
    /// message to a speculating L1 would mutate state outside its undo
    /// journal (fills drain waiters into the core; even "read-only" probes
    /// bump counters and LRU-adjacent maps), so a `DirArrive` whose target
    /// holds an open journal forces that member's rollback first.
    pub fn dir_port(&self) -> Option<PortId> {
        match &self.0 {
            MemEventKind::DirArrive(port, _) => Some(*port),
            _ => None,
        }
    }

    /// The block of an L1→directory response event, if this is one. Exposed
    /// for fault-injection test knobs that black-hole a responder.
    pub fn resp_block(&self) -> Option<u64> {
        match &self.0 {
            MemEventKind::RespArrive(_, L1ToDir::InvResp { block, .. })
            | MemEventKind::RespArrive(_, L1ToDir::FetchResp { block, .. })
            | MemEventKind::RespArrive(_, L1ToDir::SnoopResp { block, .. }) => Some(*block),
            _ => None,
        }
    }

    /// The cache block this event concerns (the sanitizer's scoped
    /// post-event checks re-verify exactly this block's invariants).
    pub fn block(&self) -> u64 {
        match &self.0 {
            MemEventKind::ReqArrive(req) => req.block,
            MemEventKind::DirArrive(_, msg) => match msg {
                DirToL1::Data { block, .. }
                | DirToL1::AckM { block }
                | DirToL1::Inv { block }
                | DirToL1::Fetch { block }
                | DirToL1::FetchInv { block }
                | DirToL1::PutAck { block }
                | DirToL1::Snoop { block, .. }
                | DirToL1::UpdDone { block, .. } => *block,
            },
            MemEventKind::RespArrive(_, resp) => match resp {
                L1ToDir::InvResp { block, .. }
                | L1ToDir::FetchResp { block, .. }
                | L1ToDir::SnoopResp { block, .. } => *block,
            },
            MemEventKind::DramReadDone { block, .. }
            | MemEventKind::BankReady { block, .. }
            | MemEventKind::DirTimeout { block, .. } => *block,
        }
    }

    /// Whether this event delivers an L1→directory response.
    pub fn is_resp(&self) -> bool {
        matches!(self.0, MemEventKind::RespArrive(..))
    }

    /// Compact `(kind, block, endpoint)` summary for the sanitizer's
    /// recent-event ring. Kind codes match the snapshot tags; decode with
    /// [`ring_kind_name`].
    pub fn ring_summary(&self) -> (u8, u64, u64) {
        match &self.0 {
            MemEventKind::ReqArrive(req) => (0, req.block, req.from.0 as u64),
            MemEventKind::DirArrive(port, _) => (1, self.block(), port.0 as u64),
            MemEventKind::RespArrive(bank, _) => (2, self.block(), bank.0 as u64),
            MemEventKind::DramReadDone { bank, block } => (3, *block, bank.0 as u64),
            MemEventKind::BankReady { bank, block } => (4, *block, bank.0 as u64),
            MemEventKind::DirTimeout { bank, block, .. } => (5, *block, bank.0 as u64),
        }
    }

    /// Whether this event delivers a shared-grant data fill (the class the
    /// grant/payload mutations count when locating their nth target).
    pub fn is_s_grant(&self) -> bool {
        matches!(
            &self.0,
            MemEventKind::DirArrive(
                _,
                DirToL1::Data {
                    grant: Grant::S,
                    ..
                }
            )
        )
    }

    /// Test-only sanitizer mutation: upgrade a shared-grant data delivery to
    /// a modified grant (manufactures a second writable copy ⇒ `MEM-SWMR`).
    /// Returns whether this event matched.
    pub fn test_upgrade_s_grant(&mut self) -> bool {
        if let MemEventKind::DirArrive(_, DirToL1::Data { grant, .. }) = &mut self.0 {
            if *grant == Grant::S {
                *grant = Grant::M;
                return true;
            }
        }
        false
    }

    /// Test-only sanitizer mutation: flip one payload byte of a shared-grant
    /// data delivery (⇒ `MEM-DATA-VALUE`). Returns whether it matched.
    pub fn test_flip_s_fill_byte(&mut self) -> bool {
        if let MemEventKind::DirArrive(_, DirToL1::Data { grant, data, .. }) = &mut self.0 {
            if *grant == Grant::S {
                data[0] ^= 0xFF;
                return true;
            }
        }
        false
    }

    /// Whether this event delivers a snoop response that reported a live
    /// shared copy (the class [`MutationKind::CorruptSnoopShared`] counts).
    pub fn is_shared_snoop_resp(&self) -> bool {
        matches!(
            &self.0,
            MemEventKind::RespArrive(_, L1ToDir::SnoopResp { had: true, .. })
        )
    }

    /// Test-only sanitizer mutation: erase a snoop response's report of a
    /// live copy, so the ordering point grants exclusive while that sharer
    /// survives (⇒ `MEM-SWMR` under the snooping protocols). Returns whether
    /// this event matched.
    pub fn test_clear_snoop_shared(&mut self) -> bool {
        if let MemEventKind::RespArrive(
            _,
            L1ToDir::SnoopResp {
                had, dirty, data, ..
            },
        ) = &mut self.0
        {
            if *had {
                *had = false;
                *dirty = false;
                *data = None;
                return true;
            }
        }
        false
    }

    /// Whether this event delivers a Dragon write-update probe (the class
    /// [`MutationKind::CorruptUpdValue`] counts).
    pub fn is_upd_snoop(&self) -> bool {
        matches!(
            &self.0,
            MemEventKind::DirArrive(
                _,
                DirToL1::Snoop {
                    kind: SnoopKind::Upd(_),
                    ..
                }
            )
        )
    }

    /// Test-only sanitizer mutation: flip the payload of a write-update
    /// probe, so one sharer applies a different value than the writer
    /// (⇒ `MEM-DATA-VALUE` under Dragon). Returns whether it matched.
    pub fn test_corrupt_upd_value(&mut self) -> bool {
        if let MemEventKind::DirArrive(
            _,
            DirToL1::Snoop {
                kind: SnoopKind::Upd(word),
                ..
            },
        ) = &mut self.0
        {
            word.value ^= 0xFF;
            return true;
        }
        false
    }

    /// Whether this event delivers any bank→L1 snoop probe (the
    /// `SnoopProbe` fault domain's carrier — probes are idempotent, so a
    /// dropped one is always recoverable by a timeout resend).
    pub fn is_snoop_probe(&self) -> bool {
        matches!(&self.0, MemEventKind::DirArrive(_, DirToL1::Snoop { .. }))
    }

    /// For an L1→bank `SnoopResp`, the `(home bank, block)` it answers to —
    /// the `UpdAck` fault domain needs them to check whether the response
    /// belongs to a write-update round (where losing it is recoverable)
    /// before rolling the drop dice.
    pub fn snoop_resp_target(&self) -> Option<(BankId, u64)> {
        match &self.0 {
            MemEventKind::RespArrive(bank, L1ToDir::SnoopResp { block, .. }) => {
                Some((*bank, *block))
            }
            _ => None,
        }
    }

    /// For a solicitation-round timeout, its `(bank, block, epoch)` — the
    /// `CorruptResendEpoch` mutation counts timeouts that would hit a live
    /// snoop round.
    pub fn dir_timeout(&self) -> Option<(BankId, u64, u64)> {
        match &self.0 {
            MemEventKind::DirTimeout { bank, block, epoch } => Some((*bank, *block, *epoch)),
            _ => None,
        }
    }
}

/// Human-readable name for a ring-record kind code produced by
/// [`MemEvent::ring_summary`].
pub fn ring_kind_name(kind: u8) -> &'static str {
    match kind {
        0 => "ReqArrive",
        1 => "DirArrive",
        2 => "RespArrive",
        3 => "DramReadDone",
        4 => "BankReady",
        5 => "DirTimeout",
        _ => "?",
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs. Tagged-union encoding: one tag byte, then the variant's
// fields in declaration order. These are hand-rolled (no serde) and must
// stay in sync with the types above; any change here is a snapshot schema
// change (bump `ccsvm_snap::SCHEMA_VERSION`).

use ccsvm_snap::{SnapError, SnapReader, SnapWriter};

pub(crate) fn bad_tag(what: &str, tag: u8) -> SnapError {
    SnapError::Corrupt {
        what: format!("unknown {what} tag {tag:#04x}"),
    }
}

pub(crate) fn save_opt_data(w: &mut SnapWriter, data: &Option<BlockData>) {
    match data {
        Some(d) => {
            w.put_bool(true);
            w.put_raw(d);
        }
        None => w.put_bool(false),
    }
}

pub(crate) fn load_opt_data(r: &mut SnapReader<'_>) -> Result<Option<BlockData>, SnapError> {
    if r.get_bool()? {
        Ok(Some(r.get_array()?))
    } else {
        Ok(None)
    }
}

impl AtomicOp {
    /// Appends this operation to a snapshot.
    pub fn save(&self, w: &mut SnapWriter) {
        match *self {
            AtomicOp::Cas { expected, value } => {
                w.put_u8(0);
                w.put_u64(expected);
                w.put_u64(value);
            }
            AtomicOp::Add { value } => {
                w.put_u8(1);
                w.put_u64(value);
            }
            AtomicOp::Inc => w.put_u8(2),
            AtomicOp::Dec => w.put_u8(3),
            AtomicOp::Exch { value } => {
                w.put_u8(4);
                w.put_u64(value);
            }
        }
    }

    /// Reads an operation written by [`AtomicOp::save`].
    pub fn load(r: &mut SnapReader<'_>) -> Result<AtomicOp, SnapError> {
        Ok(match r.get_u8()? {
            0 => AtomicOp::Cas {
                expected: r.get_u64()?,
                value: r.get_u64()?,
            },
            1 => AtomicOp::Add {
                value: r.get_u64()?,
            },
            2 => AtomicOp::Inc,
            3 => AtomicOp::Dec,
            4 => AtomicOp::Exch {
                value: r.get_u64()?,
            },
            t => return Err(bad_tag("AtomicOp", t)),
        })
    }
}

impl UpdWord {
    fn save(self, w: &mut SnapWriter) {
        w.put_u8(self.off);
        w.put_u8(self.size);
        w.put_u64(self.value);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<UpdWord, SnapError> {
        Ok(UpdWord {
            off: r.get_u8()?,
            size: r.get_u8()?,
            value: r.get_u64()?,
        })
    }
}

impl ReqKind {
    fn save(self, w: &mut SnapWriter) {
        match self {
            ReqKind::GetS => w.put_u8(0),
            ReqKind::GetM => w.put_u8(1),
            ReqKind::PutDirty => w.put_u8(2),
            ReqKind::PutClean => w.put_u8(3),
            ReqKind::BusRd => w.put_u8(4),
            ReqKind::BusRdX => w.put_u8(5),
            ReqKind::BusUpd(word) => {
                w.put_u8(6);
                word.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<ReqKind, SnapError> {
        Ok(match r.get_u8()? {
            0 => ReqKind::GetS,
            1 => ReqKind::GetM,
            2 => ReqKind::PutDirty,
            3 => ReqKind::PutClean,
            4 => ReqKind::BusRd,
            5 => ReqKind::BusRdX,
            6 => ReqKind::BusUpd(UpdWord::load(r)?),
            t => return Err(bad_tag("ReqKind", t)),
        })
    }
}

impl Request {
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        self.kind.save(w);
        w.put_usize(self.from.0);
        w.put_u64(self.block);
        save_opt_data(w, &self.data);
        w.put_bool(self.retain);
    }

    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<Request, SnapError> {
        Ok(Request {
            kind: ReqKind::load(r)?,
            from: PortId(r.get_usize()?),
            block: r.get_u64()?,
            data: load_opt_data(r)?,
            retain: r.get_bool()?,
        })
    }
}

impl Grant {
    fn save(self, w: &mut SnapWriter) {
        w.put_u8(match self {
            Grant::S => 0,
            Grant::E => 1,
            Grant::M => 2,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Grant, SnapError> {
        Ok(match r.get_u8()? {
            0 => Grant::S,
            1 => Grant::E,
            2 => Grant::M,
            t => return Err(bad_tag("Grant", t)),
        })
    }
}

impl DirToL1 {
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        match self {
            DirToL1::Data { block, grant, data } => {
                w.put_u8(0);
                w.put_u64(*block);
                grant.save(w);
                w.put_raw(data);
            }
            DirToL1::AckM { block } => {
                w.put_u8(1);
                w.put_u64(*block);
            }
            DirToL1::Inv { block } => {
                w.put_u8(2);
                w.put_u64(*block);
            }
            DirToL1::Fetch { block } => {
                w.put_u8(3);
                w.put_u64(*block);
            }
            DirToL1::FetchInv { block } => {
                w.put_u8(4);
                w.put_u64(*block);
            }
            DirToL1::PutAck { block } => {
                w.put_u8(5);
                w.put_u64(*block);
            }
            DirToL1::Snoop { block, kind } => {
                w.put_u8(6);
                w.put_u64(*block);
                match kind {
                    SnoopKind::Rd => w.put_u8(0),
                    SnoopKind::RdX => w.put_u8(1),
                    SnoopKind::Upd(word) => {
                        w.put_u8(2);
                        word.save(w);
                    }
                }
            }
            DirToL1::UpdDone { block, sharers } => {
                w.put_u8(7);
                w.put_u64(*block);
                w.put_bool(*sharers);
            }
        }
    }

    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<DirToL1, SnapError> {
        Ok(match r.get_u8()? {
            0 => DirToL1::Data {
                block: r.get_u64()?,
                grant: Grant::load(r)?,
                data: r.get_array()?,
            },
            1 => DirToL1::AckM {
                block: r.get_u64()?,
            },
            2 => DirToL1::Inv {
                block: r.get_u64()?,
            },
            3 => DirToL1::Fetch {
                block: r.get_u64()?,
            },
            4 => DirToL1::FetchInv {
                block: r.get_u64()?,
            },
            5 => DirToL1::PutAck {
                block: r.get_u64()?,
            },
            6 => DirToL1::Snoop {
                block: r.get_u64()?,
                kind: match r.get_u8()? {
                    0 => SnoopKind::Rd,
                    1 => SnoopKind::RdX,
                    2 => SnoopKind::Upd(UpdWord::load(r)?),
                    t => return Err(bad_tag("SnoopKind", t)),
                },
            },
            7 => DirToL1::UpdDone {
                block: r.get_u64()?,
                sharers: r.get_bool()?,
            },
            t => return Err(bad_tag("DirToL1", t)),
        })
    }
}

impl L1ToDir {
    pub(crate) fn save(&self, w: &mut SnapWriter) {
        match self {
            L1ToDir::InvResp { from, block, data } => {
                w.put_u8(0);
                w.put_usize(from.0);
                w.put_u64(*block);
                save_opt_data(w, data);
            }
            L1ToDir::FetchResp {
                from,
                block,
                data,
                dirty,
            } => {
                w.put_u8(1);
                w.put_usize(from.0);
                w.put_u64(*block);
                w.put_raw(data);
                w.put_bool(*dirty);
            }
            L1ToDir::SnoopResp {
                from,
                block,
                had,
                dirty,
                data,
            } => {
                w.put_u8(2);
                w.put_usize(from.0);
                w.put_u64(*block);
                w.put_bool(*had);
                w.put_bool(*dirty);
                save_opt_data(w, data);
            }
        }
    }

    pub(crate) fn load(r: &mut SnapReader<'_>) -> Result<L1ToDir, SnapError> {
        Ok(match r.get_u8()? {
            0 => L1ToDir::InvResp {
                from: PortId(r.get_usize()?),
                block: r.get_u64()?,
                data: load_opt_data(r)?,
            },
            1 => L1ToDir::FetchResp {
                from: PortId(r.get_usize()?),
                block: r.get_u64()?,
                data: r.get_array()?,
                dirty: r.get_bool()?,
            },
            2 => L1ToDir::SnoopResp {
                from: PortId(r.get_usize()?),
                block: r.get_u64()?,
                had: r.get_bool()?,
                dirty: r.get_bool()?,
                data: load_opt_data(r)?,
            },
            t => return Err(bad_tag("L1ToDir", t)),
        })
    }
}

impl MemEvent {
    /// Appends this in-flight memory event to a snapshot (the machine
    /// serializes its pending event queue through this).
    pub fn save(&self, w: &mut SnapWriter) {
        match &self.0 {
            MemEventKind::ReqArrive(req) => {
                w.put_u8(0);
                req.save(w);
            }
            MemEventKind::DirArrive(port, msg) => {
                w.put_u8(1);
                w.put_usize(port.0);
                msg.save(w);
            }
            MemEventKind::RespArrive(bank, resp) => {
                w.put_u8(2);
                w.put_usize(bank.0);
                resp.save(w);
            }
            MemEventKind::DramReadDone { bank, block } => {
                w.put_u8(3);
                w.put_usize(bank.0);
                w.put_u64(*block);
            }
            MemEventKind::BankReady { bank, block } => {
                w.put_u8(4);
                w.put_usize(bank.0);
                w.put_u64(*block);
            }
            MemEventKind::DirTimeout { bank, block, epoch } => {
                w.put_u8(5);
                w.put_usize(bank.0);
                w.put_u64(*block);
                w.put_u64(*epoch);
            }
        }
    }

    /// Reads an event written by [`MemEvent::save`].
    pub fn load(r: &mut SnapReader<'_>) -> Result<MemEvent, SnapError> {
        Ok(MemEvent(match r.get_u8()? {
            0 => MemEventKind::ReqArrive(Request::load(r)?),
            1 => MemEventKind::DirArrive(PortId(r.get_usize()?), DirToL1::load(r)?),
            2 => MemEventKind::RespArrive(BankId(r.get_usize()?), L1ToDir::load(r)?),
            3 => MemEventKind::DramReadDone {
                bank: BankId(r.get_usize()?),
                block: r.get_u64()?,
            },
            4 => MemEventKind::BankReady {
                bank: BankId(r.get_usize()?),
                block: r.get_u64()?,
            },
            5 => MemEventKind::DirTimeout {
                bank: BankId(r.get_usize()?),
                block: r.get_u64()?,
                epoch: r.get_u64()?,
            },
            t => return Err(bad_tag("MemEvent", t)),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_ops_apply() {
        assert_eq!(
            AtomicOp::Cas {
                expected: 3,
                value: 9
            }
            .apply(3),
            9
        );
        assert_eq!(
            AtomicOp::Cas {
                expected: 3,
                value: 9
            }
            .apply(4),
            4
        );
        assert_eq!(AtomicOp::Add { value: 5 }.apply(10), 15);
        assert_eq!(AtomicOp::Add { value: 1 }.apply(u64::MAX), 0);
        assert_eq!(AtomicOp::Inc.apply(7), 8);
        assert_eq!(AtomicOp::Dec.apply(7), 6);
        assert_eq!(AtomicOp::Dec.apply(0), u64::MAX);
        assert_eq!(AtomicOp::Exch { value: 2 }.apply(99), 2);
    }

    #[test]
    fn mem_event_codec_round_trips_every_variant() {
        let events = vec![
            MemEvent(MemEventKind::ReqArrive(Request {
                kind: ReqKind::PutDirty,
                from: PortId(3),
                block: 0x40,
                data: Some([7; 64]),
                retain: true,
            })),
            MemEvent(MemEventKind::DirArrive(
                PortId(1),
                DirToL1::Data {
                    block: 2,
                    grant: Grant::E,
                    data: [9; 64],
                },
            )),
            MemEvent(MemEventKind::DirArrive(
                PortId(0),
                DirToL1::AckM { block: 5 },
            )),
            MemEvent(MemEventKind::RespArrive(
                BankId(2),
                L1ToDir::InvResp {
                    from: PortId(4),
                    block: 8,
                    data: None,
                },
            )),
            MemEvent(MemEventKind::RespArrive(
                BankId(0),
                L1ToDir::FetchResp {
                    from: PortId(2),
                    block: 1,
                    data: [3; 64],
                    dirty: false,
                },
            )),
            MemEvent(MemEventKind::ReqArrive(Request {
                kind: ReqKind::BusUpd(UpdWord {
                    off: 24,
                    size: 8,
                    value: 0xDEAD_BEEF,
                }),
                from: PortId(2),
                block: 0x80,
                data: None,
                retain: false,
            })),
            MemEvent(MemEventKind::ReqArrive(Request {
                kind: ReqKind::BusRdX,
                from: PortId(0),
                block: 0xC0,
                data: None,
                retain: false,
            })),
            MemEvent(MemEventKind::DirArrive(
                PortId(3),
                DirToL1::Snoop {
                    block: 7,
                    kind: SnoopKind::Upd(UpdWord {
                        off: 0,
                        size: 4,
                        value: 5,
                    }),
                },
            )),
            MemEvent(MemEventKind::DirArrive(
                PortId(3),
                DirToL1::Snoop {
                    block: 7,
                    kind: SnoopKind::RdX,
                },
            )),
            MemEvent(MemEventKind::DirArrive(
                PortId(1),
                DirToL1::UpdDone {
                    block: 9,
                    sharers: true,
                },
            )),
            MemEvent(MemEventKind::RespArrive(
                BankId(1),
                L1ToDir::SnoopResp {
                    from: PortId(5),
                    block: 11,
                    had: true,
                    dirty: true,
                    data: Some([0xAB; 64]),
                },
            )),
            MemEvent(MemEventKind::DramReadDone {
                bank: BankId(1),
                block: 77,
            }),
            MemEvent(MemEventKind::BankReady {
                bank: BankId(3),
                block: 88,
            }),
            MemEvent(MemEventKind::DirTimeout {
                bank: BankId(0),
                block: 99,
                epoch: 6,
            }),
        ];
        let mut w = SnapWriter::new();
        for e in &events {
            e.save(&mut w);
        }
        let bytes = w.into_vec();
        let mut r = SnapReader::new(&bytes);
        for e in &events {
            let got = MemEvent::load(&mut r).unwrap();
            assert_eq!(format!("{got:?}"), format!("{e:?}"));
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unknown_tag_is_corrupt_not_panic() {
        let mut r = SnapReader::new(&[0xFF]);
        assert!(matches!(
            MemEvent::load(&mut r),
            Err(SnapError::Corrupt { .. })
        ));
    }
}
