//! The supervisor: expands the spec, journals every transition, runs worker
//! processes with timeouts and seeded backoff retries, and degrades
//! gracefully to a partial manifest when a job exhausts its budget.
//!
//! # Crash recovery
//!
//! On start the orchestrator replays `sweep.journal` (torn tail dropped by
//! the codec) and folds it into a [`JournalState`]: done and poisoned jobs
//! are final, and every `AttemptStarted` — even one whose worker died with
//! the previous orchestrator — counts against the job's retry budget. A
//! journal that fails to *decode* (corruption past the frame checksums) is
//! quarantined with a typed error and the sweep rebuilds from the result
//! cache, which is the ground truth for "done".
//!
//! # Chaos
//!
//! [`ChaosPlan`] makes failure injection deterministic: worker kills are
//! decided per `(seed, key, attempt)` — never on a job's final attempt, so
//! every healthy job is guaranteed a clean attempt and the sweep converges —
//! and an armed orchestrator crash SIGKILLs all workers and returns
//! [`SweepOutcome::ChaosCrashed`] after a seeded number of journal appends,
//! letting the front-end restart the whole orchestrator a bounded number of
//! times. The invariant under any such schedule: the final manifest is
//! byte-identical to an uninterrupted cold run's.

use std::collections::VecDeque;
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ccsvm::config_hash;
use ccsvm_engine::SplitMix64;
use ccsvm_snap::journal::{replay, JournalWriter};
use ccsvm_snap::{fnv1a, write_file, SnapError};

use crate::cache::ReportCache;
use crate::records::{AttemptStatus, JournalState, Record};
use crate::sig;
use crate::spec::{JobSpec, SweepSpec};
use crate::worker::{self, WorkerJob, EXIT_INTERRUPTED, EXIT_OK};
use crate::SweepError;

/// Deterministic failure injection for one orchestrator run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    /// Probability a given (job, attempt) worker is chaos-killed.
    pub kill_prob: f64,
    /// Seed for all chaos decisions (independent of the sweep seed).
    pub seed: u64,
    /// Arm one orchestrator crash in this invocation.
    pub orch_crash: bool,
}

/// What a completed sweep looked like.
#[derive(Clone, Debug)]
pub struct Summary {
    /// Unique jobs in the sweep.
    pub total: usize,
    /// Jobs with a verified cache entry.
    pub done: usize,
    /// Labels of poisoned jobs (empty on a fully healthy sweep).
    pub poisoned: Vec<String>,
    /// Where the manifest was written.
    pub manifest_path: PathBuf,
    /// FNV-1a of the manifest bytes (the chaos-equality witness).
    pub manifest_fnv: u64,
    /// Orchestrator restarts observed in the journal (including this one).
    pub recoveries: u32,
    /// Highest `resumed_at_ps` over all attempts (0 = nothing ever resumed).
    pub max_resumed_at_ps: u64,
}

/// How `run_sweep` returned.
#[derive(Debug)]
pub enum SweepOutcome {
    /// Every job is done or poisoned and the manifest is on disk.
    Completed(Summary),
    /// The armed chaos crash fired; restart to continue.
    ChaosCrashed,
    /// SIGINT/SIGTERM: state journaled, workers stopped; rerun to resume.
    Interrupted,
}

/// Name of the write-ahead journal inside the sweep directory.
pub const JOURNAL_FILE: &str = "sweep.journal";
/// Name of the final manifest inside the sweep directory.
pub const MANIFEST_FILE: &str = "manifest.txt";

struct Running {
    key: u64,
    attempt: u32,
    child: Child,
    deadline: Instant,
}

struct Pending {
    job: JobSpec,
    burned: u32,
    eligible: Instant,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Chaos decision for one (job, attempt): 0 = let it live, k > 0 = the
/// worker self-SIGKILLs after its k-th checkpoint flush.
fn chaos_die_after(chaos: Option<&ChaosPlan>, key: u64, attempt: u32, max_attempts: u32) -> u32 {
    let Some(c) = chaos else { return 0 };
    if c.kill_prob <= 0.0 || attempt >= max_attempts {
        // The final attempt is always clean: guarantees convergence.
        return 0;
    }
    let mut rng = SplitMix64::new(c.seed ^ key ^ (u64::from(attempt)).wrapping_mul(GOLDEN));
    if rng.next_f64() < c.kill_prob {
        1 + rng.next_below(2) as u32
    } else {
        0
    }
}

/// Exponential backoff with seeded jitter: base 25 ms doubling per burned
/// attempt, capped at 1 s, scaled by a deterministic 0.5–1.5× jitter drawn
/// from (sweep seed, key, attempt) — so a re-run of the same sweep waits the
/// same way, but jobs don't thundering-herd each other.
fn backoff_after(spec_seed: u64, key: u64, burned: u32) -> Duration {
    let base_ms = 25u64.saturating_mul(1 << burned.min(10)).min(1_000);
    let mut rng = SplitMix64::new(spec_seed ^ key ^ u64::from(burned) ^ GOLDEN);
    let jitter = 0.5 + rng.next_f64();
    Duration::from_millis((base_ms as f64 * jitter) as u64)
}

/// Opens (or recovers) the sweep journal. A journal that exists but cannot
/// be replayed or folded is quarantined as `sweep.journal.corrupt` with the
/// typed error logged, and a fresh journal is started — the result cache
/// then re-establishes which jobs are already done.
fn open_journal(path: &Path, tag: u64) -> Result<(JournalWriter, JournalState), SweepError> {
    if !path.exists() {
        return Ok((JournalWriter::create(path, tag)?, JournalState::default()));
    }
    let recovered = replay(path).and_then(|r| {
        if r.tag != tag {
            return Err(SnapError::ConfigMismatch {
                found: r.tag,
                expected: tag,
            });
        }
        let st = JournalState::fold(&r.records)?;
        Ok((r.torn, st))
    });
    match recovered {
        Ok((torn, st)) => {
            if torn {
                eprintln!("sweepd: journal had a torn final record (crash mid-append); dropped");
            }
            let w = JournalWriter::open_append(path, tag)?;
            Ok((w, st))
        }
        Err(e) => {
            eprintln!("sweepd: journal unusable ({e}); quarantining and rebuilding from cache");
            let mut bad = path.as_os_str().to_owned();
            bad.push(".corrupt");
            std::fs::rename(path, PathBuf::from(&bad)).map_err(|err| SweepError::io(path, &err))?;
            Ok((JournalWriter::create(path, tag)?, JournalState::default()))
        }
    }
}

fn kill_all(running: &mut Vec<Running>) {
    for r in running.iter_mut() {
        let _ = r.child.kill();
        let _ = r.child.wait();
    }
    running.clear();
}

fn read_child_stdout(child: &mut Child) -> String {
    let mut out = String::new();
    if let Some(mut pipe) = child.stdout.take() {
        let _ = pipe.read_to_string(&mut out);
    }
    out
}

/// Runs (or resumes) the sweep described by `spec` in `dir`, spawning
/// `worker_exe --worker ...` child processes.
///
/// # Errors
///
/// Harness-level failures only (unwritable directory, bad spec, journal
/// append I/O). Job failures never error: they retry, then poison.
pub fn run_sweep(
    spec: &SweepSpec,
    dir: &Path,
    worker_exe: &Path,
    chaos: Option<&ChaosPlan>,
) -> Result<SweepOutcome, SweepError> {
    sig::install_shutdown_handler();
    std::fs::create_dir_all(dir).map_err(|e| SweepError::io(dir, &e))?;
    let (jobs, dups) = spec.expand()?;
    let cfg_hash = config_hash(&spec.preset_config()?);
    let cache = ReportCache::new(dir.join("cache"))?;
    let (mut journal, state) = open_journal(&dir.join(JOURNAL_FILE), spec.tag())?;
    let append = |journal: &mut JournalWriter, rec: &Record| -> Result<(), SweepError> {
        journal.append(&rec.encode()).map_err(SweepError::from)
    };

    // Recovery point: after this record, the journal proves how far the
    // previous incarnation got.
    let prior_done = state.done.len() as u32;
    append(
        &mut journal,
        &Record::Recovered {
            done: prior_done,
            pending: jobs.len() as u32 - prior_done.min(jobs.len() as u32),
        },
    )?;

    // Plan: journal the universe, satisfy what the cache already has.
    let mut done: std::collections::BTreeSet<u64> = state.done.clone();
    let mut poisoned: std::collections::BTreeSet<u64> = state.poisoned.clone();
    let mut max_resumed = state.resumed_at.values().copied().max().unwrap_or(0);
    let now = Instant::now();
    let mut pending: VecDeque<Pending> = VecDeque::new();
    for job in &jobs {
        if done.contains(&job.key) || poisoned.contains(&job.key) {
            continue;
        }
        append(
            &mut journal,
            &Record::Planned {
                key: job.key,
                label: job.label.clone(),
            },
        )?;
        match cache.lookup(job.key, cfg_hash) {
            Ok(Some(_)) => {
                append(&mut journal, &Record::SkippedCached { key: job.key })?;
                append(&mut journal, &Record::Done { key: job.key })?;
                done.insert(job.key);
            }
            Ok(None) => {
                let burned = state.attempts.get(&job.key).copied().unwrap_or(0);
                pending.push_back(Pending {
                    job: job.clone(),
                    burned,
                    eligible: now,
                });
            }
            Err(e) => {
                // Typed miss: log, quarantine, re-run the job.
                eprintln!(
                    "sweepd: cache entry for {} invalid ({e}); quarantined, will re-run",
                    job.label
                );
                cache.quarantine(job.key);
                let burned = state.attempts.get(&job.key).copied().unwrap_or(0);
                pending.push_back(Pending {
                    job: job.clone(),
                    burned,
                    eligible: now,
                });
            }
        }
    }
    for label in &dups {
        append(
            &mut journal,
            &Record::SkippedDuplicate {
                key: 0,
                label: label.clone(),
            },
        )?;
    }

    // Armed orchestrator crash: fire after a seeded number of *post-plan*
    // appends, so each restart makes scheduling progress before dying.
    let crash_after = chaos.filter(|c| c.orch_crash).map(|c| {
        let mut rng = SplitMix64::new(c.seed ^ GOLDEN);
        journal.appended() + 2 + rng.next_below(8)
    });

    let mut running: Vec<Running> = Vec::new();
    let timeout = Duration::from_millis(spec.timeout_ms);

    while !pending.is_empty() || !running.is_empty() {
        if sig::shutdown_requested() {
            append(&mut journal, &Record::Interrupted)?;
            for r in running.iter_mut() {
                sig::send_signal(r.child.id() as i32, sig::SIGTERM);
            }
            // Give workers a moment to flush their final checkpoint.
            std::thread::sleep(Duration::from_millis(300));
            kill_all(&mut running);
            return Ok(SweepOutcome::Interrupted);
        }
        if let Some(limit) = crash_after {
            if journal.appended() >= limit {
                kill_all(&mut running);
                return Ok(SweepOutcome::ChaosCrashed);
            }
        }

        // Spawn while there is capacity and an eligible job.
        while running.len() < spec.inflight.max(1) {
            let now = Instant::now();
            let Some(idx) = pending.iter().position(|p| p.eligible <= now) else {
                break;
            };
            let mut p = pending.remove(idx).expect("idx in range");
            let attempt = p.burned + 1;
            let die_after = chaos_die_after(chaos, p.job.key, attempt, spec.max_attempts);
            let wjob = WorkerJob {
                dir: dir.to_path_buf(),
                label: p.job.label.clone(),
                key: p.job.key,
                preset: p.job.preset.clone(),
                protocol: p.job.protocol,
                workload: p.job.workload.clone(),
                size: p.job.size,
                seed: p.job.seed,
                checkpoint_every_ps: spec.checkpoint_every_ps,
                die_after_checkpoints: die_after,
                final_attempt: attempt >= spec.max_attempts,
            };
            append(
                &mut journal,
                &Record::AttemptStarted {
                    key: p.job.key,
                    attempt,
                },
            )?;
            let spawned = Command::new(worker_exe)
                .arg("--worker")
                .args(wjob.to_args())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn();
            match spawned {
                Ok(child) => running.push(Running {
                    key: p.job.key,
                    attempt,
                    child,
                    deadline: Instant::now() + timeout,
                }),
                Err(e) => {
                    eprintln!("sweepd: spawn failed for {}: {e}", p.job.label);
                    append(
                        &mut journal,
                        &Record::AttemptEnded {
                            key: p.job.key,
                            attempt,
                            status: AttemptStatus::SpawnFailed,
                            resumed_at_ps: 0,
                        },
                    )?;
                    p.burned = attempt;
                    retire_or_requeue(spec, &mut journal, &mut pending, &mut poisoned, p, false)?;
                }
            }
        }

        // Reap finished and timed-out workers.
        let mut i = 0;
        while i < running.len() {
            let timed_out = Instant::now() > running[i].deadline;
            let status = match running[i].child.try_wait() {
                Ok(Some(st)) => Some(st),
                Ok(None) if timed_out => {
                    let _ = running[i].child.kill();
                    let _ = running[i].child.wait();
                    None
                }
                Ok(None) => {
                    i += 1;
                    continue;
                }
                Err(_) => None,
            };
            let mut r = running.remove(i);
            let stdout = read_child_stdout(&mut r.child);
            let resumed_at_ps = worker::marker_value(&stdout, "resumed_at_ps")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            max_resumed = max_resumed.max(resumed_at_ps);
            let bundled = worker::marker_value(&stdout, "bundle").as_deref() == Some("1");
            let verdict = match status {
                None if timed_out => AttemptStatus::Timeout,
                None => AttemptStatus::Killed,
                Some(st) => match st.code() {
                    Some(EXIT_OK) => {
                        // Trust but verify: the cache entry is the result.
                        match cache.lookup(r.key, cfg_hash) {
                            Ok(Some(_)) => AttemptStatus::Completed,
                            Ok(None) => AttemptStatus::Abnormal,
                            Err(e) => {
                                eprintln!(
                                    "sweepd: worker said done but cache invalid ({e}); retrying"
                                );
                                cache.quarantine(r.key);
                                AttemptStatus::Abnormal
                            }
                        }
                    }
                    Some(EXIT_INTERRUPTED) => AttemptStatus::Interrupted,
                    Some(_) => AttemptStatus::Abnormal,
                    None => AttemptStatus::Killed,
                },
            };
            append(
                &mut journal,
                &Record::AttemptEnded {
                    key: r.key,
                    attempt: r.attempt,
                    status: verdict,
                    resumed_at_ps,
                },
            )?;
            if verdict == AttemptStatus::Completed {
                append(&mut journal, &Record::Done { key: r.key })?;
                done.insert(r.key);
            } else {
                let job = jobs
                    .iter()
                    .find(|j| j.key == r.key)
                    .expect("running job is in the plan")
                    .clone();
                let p = Pending {
                    job,
                    burned: r.attempt,
                    eligible: Instant::now() + backoff_after(spec.seed, r.key, r.attempt),
                };
                retire_or_requeue(spec, &mut journal, &mut pending, &mut poisoned, p, bundled)?;
            }
        }

        std::thread::sleep(Duration::from_millis(2));
    }

    // Everything resolved: emit the manifest and close the journal.
    let manifest = render_manifest(spec, &jobs, &dups, &done, &poisoned, &cache, cfg_hash)?;
    let manifest_path = dir.join(MANIFEST_FILE);
    write_file(&manifest_path, manifest.as_bytes())?;
    let manifest_fnv = fnv1a(manifest.as_bytes());
    append(&mut journal, &Record::SweepClosed { manifest_fnv })?;
    let poisoned_labels: Vec<String> = jobs
        .iter()
        .filter(|j| poisoned.contains(&j.key))
        .map(|j| j.label.clone())
        .collect();
    Ok(SweepOutcome::Completed(Summary {
        total: jobs.len(),
        done: done.len(),
        poisoned: poisoned_labels,
        manifest_path,
        manifest_fnv,
        recoveries: state.recoveries + 1,
        max_resumed_at_ps: max_resumed,
    }))
}

/// Requeues a failed job with backoff, or poisons it once the budget is gone.
fn retire_or_requeue(
    spec: &SweepSpec,
    journal: &mut JournalWriter,
    pending: &mut VecDeque<Pending>,
    poisoned: &mut std::collections::BTreeSet<u64>,
    p: Pending,
    bundled: bool,
) -> Result<(), SweepError> {
    if p.burned >= spec.max_attempts {
        eprintln!(
            "sweepd: {} exhausted {} attempts; poisoned (bundle: {})",
            p.job.label,
            spec.max_attempts,
            if bundled { "captured" } else { "none" }
        );
        journal.append(
            &Record::Poisoned {
                key: p.job.key,
                bundled,
            }
            .encode(),
        )?;
        poisoned.insert(p.job.key);
    } else {
        pending.push_back(p);
    }
    Ok(())
}

/// Renders the deterministic results manifest. Rows are in spec expansion
/// order; every field is derived from the spec or from cache bytes, never
/// from wall-clock, attempt counts, or chaos history — that is what makes
/// the chaos-equality invariant possible.
fn render_manifest(
    spec: &SweepSpec,
    jobs: &[JobSpec],
    dups: &[String],
    done: &std::collections::BTreeSet<u64>,
    poisoned: &std::collections::BTreeSet<u64>,
    cache: &ReportCache,
    cfg_hash: u64,
) -> Result<String, SweepError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# sweepd manifest v1");
    let _ = writeln!(
        out,
        "# spec tag {:016x} preset {} protocol {}",
        spec.tag(),
        spec.preset,
        spec.protocol
    );
    for job in jobs {
        if poisoned.contains(&job.key) {
            let _ = writeln!(
                out,
                "job {} key={:016x} status=poisoned bundle=bundles/{:016x}.bundle",
                job.label, job.key, job.key
            );
            continue;
        }
        if !done.contains(&job.key) {
            return Err(SweepError::Worker(format!(
                "manifest requested before {} resolved",
                job.label
            )));
        }
        let report = cache
            .lookup(job.key, cfg_hash)?
            .ok_or_else(|| SweepError::Worker(format!("{}: done but not cached", job.label)))?;
        let _ = writeln!(
            out,
            "job {} key={:016x} status=done time_ps={} exit={} dram={} report_fnv={:016x}",
            job.label,
            job.key,
            report.time.as_ps(),
            report.exit_code,
            report.dram_accesses,
            fnv1a(&report.to_bytes()),
        );
    }
    for label in dups {
        let _ = writeln!(out, "dup {label}");
    }
    let _ = writeln!(
        out,
        "total={} done={} poisoned={}",
        jobs.len(),
        done.len(),
        poisoned.len()
    );
    Ok(out)
}

impl SweepSpec {
    /// The `SystemConfig` this sweep runs under.
    pub fn preset_config(&self) -> Result<ccsvm::SystemConfig, SweepError> {
        let mut cfg = ccsvm::SystemConfig::by_preset(&self.preset)
            .ok_or_else(|| SweepError::Spec(format!("unknown preset {:?}", self.preset)))?;
        cfg.protocol = self.protocol;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_decisions_are_deterministic_and_spare_the_final_attempt() {
        let c = ChaosPlan {
            kill_prob: 1.0,
            seed: 7,
            orch_crash: false,
        };
        let a = chaos_die_after(Some(&c), 42, 1, 3);
        let b = chaos_die_after(Some(&c), 42, 1, 3);
        assert_eq!(a, b);
        assert!(a >= 1, "kill_prob=1.0 must kill non-final attempts");
        assert_eq!(
            chaos_die_after(Some(&c), 42, 3, 3),
            0,
            "final attempt is clean"
        );
        assert_eq!(chaos_die_after(None, 42, 1, 3), 0);
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let a1 = backoff_after(1, 9, 1);
        assert_eq!(a1, backoff_after(1, 9, 1));
        // Jitter is 0.5–1.5x, so 4 doublings always dominate one step.
        assert!(backoff_after(1, 9, 5) > backoff_after(1, 9, 1));
        assert!(backoff_after(1, 9, 30) <= Duration::from_millis(1_500));
    }
}
