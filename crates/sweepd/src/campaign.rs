//! Deterministic fault-campaign engine (DESIGN §14).
//!
//! A campaign sweeps fault domain × protocol × workload × `sim_threads`
//! cells from one seed and enforces the **no-silent-wedge contract**: every
//! cell must end in a typed [`Outcome`] — never a panic (caught and recorded
//! per cell), never a hang (the preset's watchdog and `max_sim_time` bound
//! every run). A cell whose outcome its plan cannot justify is *failing*;
//! failing cells are delta-debugged with [`PlanSpec::shrink_candidates`]
//! down to a minimal plan that still reproduces the same failure signature,
//! then captured as a [`ReplayBundle`](ccsvm::ReplayBundle) via
//! [`run_with_triage`] and immediately re-verified in-process with
//! [`replay_bundle`].
//!
//! Everything is keyed off the campaign seed: cells, shrink probes, and
//! replays are deterministic, so the manifest written to `<dir>/manifest.txt`
//! is byte-identical across re-runs. Completed cell reports are stored in
//! the sweep [`ReportCache`], which also dedupes the shrink loop's repeated
//! probes of identical candidate plans.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use ccsvm::{
    config_hash, replay_bundle, run_with_triage, Machine, Mutation, MutationKind, Outcome,
    ProtocolKind, RunReport, SystemConfig, Time,
};
use ccsvm_engine::{CampaignDomain, PlanSpec};
use ccsvm_snap::fnv1a;

use crate::cache::ReportCache;
use crate::spec::source_for;
use crate::SweepError;

/// Campaign manifest file name (under the campaign directory).
pub const MANIFEST_FILE: &str = "manifest.txt";

/// A sharing-heavy two-CPU workload: the campaign's mutation cell needs
/// cross-L1 solicitation rounds for the recovery-layer mutation to have a
/// carrier, which the embarrassingly parallel generators don't provide.
const PINGPONG_SRC: &str = "global results: int;
     fn worker(arg: int) -> int {
         atomic_add(&results, arg);
         return 0;
     }
     _CPU_ fn main() -> int {
         results = 0;
         let t1 = spawn_cthread(worker, 5);
         if (t1 < 0) { return -1; }
         while (results != 5) { }
         return results;
     }";

/// Generates the XC source for a campaign workload: everything
/// [`source_for`] knows, plus `pingpong` (the sharing workload above).
pub fn campaign_source(workload: &str, size: u64, seed: u64) -> Result<String, SweepError> {
    if workload == "pingpong" {
        return Ok(PINGPONG_SRC.into());
    }
    source_for(workload, size, seed)
}

/// A fault campaign: the sweep axes, the per-cell plan shape, and the
/// shrinking/replay policy.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Config preset every cell runs on. `tiny_campaign` caps
    /// `max_sim_time` at 1 ms: enough headroom for solicitation-round
    /// recovery (each dropped probe costs one recovery timeout), while a
    /// genuinely wedged cell is still over in under a host-second.
    pub preset: String,
    /// Campaign seed: feeds every cell's `fault.seed`.
    pub seed: u64,
    /// Protocol axis.
    pub protocols: Vec<ProtocolKind>,
    /// Workload axis (names for [`campaign_source`]).
    pub workloads: Vec<String>,
    /// Problem size for the generated workloads.
    pub size: u64,
    /// `sim_threads` axis (host-only knob; reports must not care).
    pub sim_threads: Vec<usize>,
    /// Fault-domain axis: each grid cell runs a single-domain plan.
    pub domains: Vec<CampaignDomain>,
    /// Intensity (per-event probability) of each grid cell's domain.
    pub intensity: f64,
    /// Solicitation-round recovery timeout installed in every plan.
    pub timeout: Time,
    /// Resend budget per transaction before the typed abort.
    pub retry_budget: u32,
    /// Run the seeded-mutation cell (a known-bad recovery layer under a
    /// multi-domain plan) to exercise shrinking and replay end to end.
    pub mutation_cell: bool,
    /// Shrinking floor: halving an intensity below this removes the entry.
    pub shrink_floor: f64,
    /// Checkpoint cadence for the triage capture of failing cells.
    pub checkpoint_every: Time,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            preset: "tiny_campaign".into(),
            seed: 11,
            protocols: ProtocolKind::ALL.to_vec(),
            workloads: vec!["vecadd".into(), "matmul".into()],
            size: 8,
            sim_threads: vec![1],
            domains: CampaignDomain::ALL.to_vec(),
            intensity: 0.05,
            timeout: Time::from_us(5),
            retry_budget: 8,
            mutation_cell: true,
            shrink_floor: 0.01,
            checkpoint_every: Time::from_us(2),
        }
    }
}

/// How one cell ended, under the no-silent-wedge contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// A typed outcome the cell's plan justifies.
    Ok,
    /// A typed outcome the plan does *not* justify (wedge, violation, or an
    /// unprovoked abort) — the campaign shrinks and captures these.
    Failing,
    /// The simulator panicked; the message is recorded, the campaign goes
    /// on. Always a bug.
    Panicked,
}

/// One executed campaign cell.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Stable label, `{protocol}-{workload}-{domain}-t{threads}`.
    pub label: String,
    pub protocol: ProtocolKind,
    pub workload: String,
    pub sim_threads: usize,
    /// The plan the cell ran under.
    pub plan: PlanSpec,
    /// The run report (`None` when the cell panicked).
    pub report: Option<RunReport>,
    /// Panic payload when the cell panicked.
    pub panic: Option<String>,
    pub status: CellStatus,
}

/// Shrink + replay record for one failing cell.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// Label of the failing cell.
    pub label: String,
    /// The failure signature being preserved (outcome, plus invariant ID
    /// for sanitizer aborts; `panic` for panics).
    pub signature: String,
    /// Greedy shrink steps taken.
    pub steps: u32,
    /// The minimal plan still reproducing the signature.
    pub minimal: PlanSpec,
    /// Replay bundle path, when triage captured one.
    pub bundle: Option<PathBuf>,
    /// Whether the in-process replay of the bundle reproduced the failure
    /// cycle- and invariant-exactly (`None` when no bundle was captured).
    pub reproduced: Option<bool>,
}

/// Everything a finished campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    pub cells: Vec<CellReport>,
    pub shrinks: Vec<ShrinkReport>,
    pub ok: usize,
    pub failing: usize,
    pub panicked: usize,
    /// The deterministic manifest written under the campaign directory.
    pub manifest_path: PathBuf,
}

/// Stable manifest name for an [`Outcome`].
pub fn outcome_name(o: Outcome) -> &'static str {
    match o {
        Outcome::Completed => "completed",
        Outcome::Deadlock => "deadlock",
        Outcome::Poisoned => "poisoned",
        Outcome::RetryBudgetExhausted => "retry-budget-exhausted",
        Outcome::InvariantViolation => "invariant-violation",
    }
}

/// Whether `outcome` is one the plan can justify. Poison is only legitimate
/// when the plan injects uncorrectable ECC errors; a retry-budget abort only
/// when it injects message loss the recovery layer retries against. Wedges
/// and invariant violations are never acceptable.
pub fn acceptable(plan: &PlanSpec, outcome: Outcome) -> bool {
    let has = |pred: fn(CampaignDomain) -> bool| plan.entries.iter().any(|&(d, _)| pred(d));
    match outcome {
        Outcome::Completed => true,
        Outcome::Poisoned => has(|d| d == CampaignDomain::DramDoubleBit),
        Outcome::RetryBudgetExhausted => has(|d| {
            matches!(
                d,
                CampaignDomain::NocDrop | CampaignDomain::SnoopProbe | CampaignDomain::UpdAck
            )
        }),
        Outcome::Deadlock | Outcome::InvariantViolation => false,
    }
}

/// The result of one in-process cell execution.
enum CellRun {
    Report(Box<RunReport>),
    Panic(String),
}

impl CellRun {
    /// The failure signature shrinking preserves: the outcome name, plus
    /// the invariant ID for sanitizer aborts, or `panic`.
    fn signature(&self) -> String {
        match self {
            CellRun::Panic(_) => "panic".into(),
            CellRun::Report(r) => {
                let inv = r
                    .diagnostic
                    .as_ref()
                    .and_then(|d| d.violation.as_ref())
                    .map(|v| v.invariant.as_str());
                match inv {
                    Some(id) => format!("{}:{id}", outcome_name(r.outcome)),
                    None => outcome_name(r.outcome).to_string(),
                }
            }
        }
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

impl CampaignSpec {
    /// Builds one cell's full config: preset + protocol + threads + the
    /// plan projected onto the fault config, sanitizer always on.
    fn cell_config(
        &self,
        protocol: ProtocolKind,
        sim_threads: usize,
        plan: &PlanSpec,
        mutate: Option<Mutation>,
    ) -> Result<SystemConfig, SweepError> {
        let mut cfg = SystemConfig::by_preset(&self.preset)
            .ok_or_else(|| SweepError::Spec(format!("unknown preset {:?}", self.preset)))?;
        cfg.protocol = protocol;
        cfg.sim_threads = sim_threads;
        cfg.sanitizer.enabled = true;
        cfg.sanitizer.mutate = mutate;
        cfg.fault.seed = self.seed;
        plan.apply(&mut cfg.fault);
        Ok(cfg)
    }
}

/// Runs one cell in-process, converting any panic into a typed [`CellRun`].
/// Completed reports round-trip through the cache (`sim_threads` is mixed
/// into the key by hand — `config_hash` deliberately normalizes it away).
fn run_cell(cache: &ReportCache, cfg: &SystemConfig, source: &str) -> Result<CellRun, SweepError> {
    let hash = config_hash(cfg);
    let mut buf = hash.to_le_bytes().to_vec();
    buf.extend_from_slice(source.as_bytes());
    buf.push(0xfa);
    buf.extend_from_slice(&(cfg.sim_threads as u64).to_le_bytes());
    let key = fnv1a(&buf);
    match cache.lookup(key, hash) {
        Ok(Some(report)) => return Ok(CellRun::Report(Box::new(report))),
        Ok(None) => {}
        Err(_) => cache.quarantine(key),
    }
    let prog = ccsvm_xthreads::build(source)
        .map_err(|e| SweepError::Spec(format!("campaign workload failed to compile: {e}")))?;
    let run_cfg = cfg.clone();
    match catch_unwind(AssertUnwindSafe(move || Machine::new(run_cfg, prog).run())) {
        Ok(report) => {
            cache.store(key, hash, &report)?;
            Ok(CellRun::Report(Box::new(report)))
        }
        Err(p) => Ok(CellRun::Panic(panic_message(p))),
    }
}

/// Greedy delta-debugging: repeatedly replace the plan with the first
/// strictly-simpler candidate that still reproduces `signature`, until no
/// candidate does. Terminates because every candidate removes an entry or
/// halves an intensity (with halvings below the floor becoming removals).
fn shrink_plan(
    spec: &CampaignSpec,
    cache: &ReportCache,
    protocol: ProtocolKind,
    source: &str,
    mutate: Option<Mutation>,
    plan: &PlanSpec,
    signature: &str,
) -> Result<(PlanSpec, u32), SweepError> {
    let mut current = plan.clone();
    let mut steps = 0u32;
    loop {
        let mut advanced = false;
        for cand in current.shrink_candidates(spec.shrink_floor) {
            let cfg = spec.cell_config(protocol, 1, &cand, mutate)?;
            if run_cell(cache, &cfg, source)?.signature() == signature {
                current = cand;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Ok((current, steps));
        }
    }
}

/// Captures a replay bundle for a failing cell under its minimal plan and
/// verifies it in-process. Returns `(bundle_path, reproduced)`; both `None`
/// when the failing run produced no bundle (or panicked during capture —
/// recorded as unreproduced rather than killing the campaign).
fn capture_and_replay(
    spec: &CampaignSpec,
    dir: &Path,
    label: &str,
    protocol: ProtocolKind,
    source: &str,
    mutate: Option<Mutation>,
    minimal: &PlanSpec,
) -> Result<(Option<PathBuf>, Option<bool>), SweepError> {
    let cfg = spec.cell_config(protocol, 1, minimal, mutate)?;
    let preset = spec.preset.clone();
    let src = source.to_string();
    let every = spec.checkpoint_every;
    let triaged = catch_unwind(AssertUnwindSafe(move || {
        run_with_triage(&cfg, &preset, &src, every)
    }));
    let bundle = match triaged {
        Ok(Ok(t)) => t.bundle,
        Ok(Err(e)) => return Err(SweepError::Spec(format!("triage of {label} failed: {e}"))),
        Err(_) => None, // the failure is a panic; nothing to bundle
    };
    let Some(bundle) = bundle else {
        return Ok((None, None));
    };
    let bundles = dir.join("bundles");
    std::fs::create_dir_all(&bundles).map_err(|e| SweepError::io(&bundles, &e))?;
    let path = bundles.join(format!("{label}.ccbundle"));
    bundle.write(&path).map_err(SweepError::Snap)?;
    let reproduced = replay_bundle(&bundle)
        .map(|(_, ok)| ok)
        .map_err(|e| SweepError::Spec(format!("replay of {label} failed: {e}")))?;
    Ok((Some(path), Some(reproduced)))
}

/// Runs the whole campaign into `dir`: the grid, the optional mutation
/// cell, shrinking + capture for every failing cell, and the deterministic
/// manifest. Never aborts on a failing *cell* — only on infrastructure
/// errors (bad spec, I/O).
pub fn run_campaign(spec: &CampaignSpec, dir: &Path) -> Result<CampaignSummary, SweepError> {
    if spec.protocols.is_empty()
        || spec.workloads.is_empty()
        || spec.domains.is_empty()
        || spec.sim_threads.is_empty()
    {
        return Err(SweepError::Spec("empty campaign axis".into()));
    }
    std::fs::create_dir_all(dir).map_err(|e| SweepError::io(dir, &e))?;
    let cache = ReportCache::new(dir.join("cache")).map_err(SweepError::Snap)?;

    let mut cells = Vec::new();
    // One cell per protocol × workload × domain × sim_threads, each with a
    // single-domain plan at the campaign intensity.
    for &protocol in &spec.protocols {
        for workload in &spec.workloads {
            let source = campaign_source(workload, spec.size, spec.seed)?;
            for &domain in &spec.domains {
                for &threads in &spec.sim_threads {
                    let mut plan =
                        PlanSpec::new(vec![(domain, spec.intensity)], Some(spec.timeout));
                    plan.retry_budget = spec.retry_budget;
                    let cfg = spec.cell_config(protocol, threads, &plan, None)?;
                    let run = run_cell(&cache, &cfg, &source)?;
                    let label = format!(
                        "{}-{}-{}-t{}",
                        protocol.as_str(),
                        workload,
                        domain.name(),
                        threads
                    );
                    cells.push(classify(label, protocol, workload, threads, plan, run, None));
                }
            }
        }
    }

    // The mutation cell: a known-bad recovery layer (CorruptResendEpoch)
    // under a deliberately fat multi-domain plan, so shrinking has real
    // work to do — the expected minimal plan is the probe-loss entry alone.
    let mutation = Mutation {
        kind: MutationKind::CorruptResendEpoch,
        nth: 1,
    };
    if spec.mutation_cell {
        let mut plan = PlanSpec::new(
            vec![
                (CampaignDomain::NocDrop, 0.02),
                (CampaignDomain::DramSingleBit, 0.2),
                (CampaignDomain::SnoopProbe, 0.2),
            ],
            Some(spec.timeout),
        );
        plan.retry_budget = 32;
        let source = campaign_source("pingpong", spec.size, spec.seed)?;
        let cfg = spec.cell_config(ProtocolKind::MesiSnoop, 1, &plan, Some(mutation))?;
        let run = run_cell(&cache, &cfg, &source)?;
        cells.push(classify(
            "mutation-corrupt-resend".into(),
            ProtocolKind::MesiSnoop,
            "pingpong",
            1,
            plan,
            run,
            Some(mutation),
        ));
    }

    // Shrink + capture every failing cell.
    let mut shrinks = Vec::new();
    for cell in cells.iter().filter(|c| c.status != CellStatus::Ok) {
        let mutate = (cell.label == "mutation-corrupt-resend").then_some(mutation);
        let source = campaign_source(&cell.workload, spec.size, spec.seed)?;
        let signature = match (&cell.report, &cell.panic) {
            (Some(r), _) => CellRun::Report(Box::new(r.clone())).signature(),
            (None, Some(p)) => CellRun::Panic(p.clone()).signature(),
            (None, None) => unreachable!("cell carries a report or a panic"),
        };
        let (minimal, steps) = shrink_plan(
            spec,
            &cache,
            cell.protocol,
            &source,
            mutate,
            &cell.plan,
            &signature,
        )?;
        let (bundle, reproduced) = capture_and_replay(
            spec,
            dir,
            &cell.label,
            cell.protocol,
            &source,
            mutate,
            &minimal,
        )?;
        shrinks.push(ShrinkReport {
            label: cell.label.clone(),
            signature,
            steps,
            minimal,
            bundle,
            reproduced,
        });
    }

    let ok = cells.iter().filter(|c| c.status == CellStatus::Ok).count();
    let panicked = cells
        .iter()
        .filter(|c| c.status == CellStatus::Panicked)
        .count();
    let failing = cells.len() - ok;
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest = render_manifest(spec, &cells, &shrinks, dir);
    ccsvm_snap::write_file(&manifest_path, manifest.as_bytes()).map_err(SweepError::Snap)?;
    Ok(CampaignSummary {
        cells,
        shrinks,
        ok,
        failing,
        panicked,
        manifest_path,
    })
}

#[allow(clippy::too_many_arguments)]
fn classify(
    label: String,
    protocol: ProtocolKind,
    workload: &str,
    sim_threads: usize,
    plan: PlanSpec,
    run: CellRun,
    mutate: Option<Mutation>,
) -> CellReport {
    let (report, panic, status) = match run {
        CellRun::Panic(msg) => (None, Some(msg), CellStatus::Panicked),
        // A mutated cell is *supposed* to fail: it is always routed through
        // shrinking + capture, and its contract (an invariant violation
        // whose bundle replays) is checked by the campaign's caller.
        CellRun::Report(r) => {
            let status = if mutate.is_none() && acceptable(&plan, r.outcome) {
                CellStatus::Ok
            } else {
                CellStatus::Failing
            };
            (Some(*r), None, status)
        }
    };
    CellReport {
        label,
        protocol,
        workload: workload.to_string(),
        sim_threads,
        plan,
        report,
        panic,
        status,
    }
}

/// Renders the deterministic campaign manifest. Bundle paths are written
/// relative to the campaign directory so the manifest is machine-portable.
fn render_manifest(
    spec: &CampaignSpec,
    cells: &[CellReport],
    shrinks: &[ShrinkReport],
    dir: &Path,
) -> String {
    let mut out = String::new();
    out.push_str("ccsvm-campaign v1\n");
    out.push_str(&format!(
        "preset={} seed={} intensity={} timeout={}us budget={}\n",
        spec.preset,
        spec.seed,
        spec.intensity,
        spec.timeout.as_ps() / 1_000_000,
        spec.retry_budget
    ));
    for c in cells {
        let (outcome, exit, invariant) = match &c.report {
            None => ("panic".to_string(), "-".to_string(), "-".to_string()),
            Some(r) => (
                outcome_name(r.outcome).to_string(),
                format!("{}", r.exit_code),
                r.diagnostic
                    .as_ref()
                    .and_then(|d| d.violation.as_ref())
                    .map(|v| v.invariant.as_str().to_string())
                    .unwrap_or_else(|| "-".to_string()),
            ),
        };
        let status = match c.status {
            CellStatus::Ok => "ok",
            CellStatus::Failing => "failing",
            CellStatus::Panicked => "panicked",
        };
        out.push_str(&format!(
            "cell {} plan={} outcome={outcome} exit={exit} invariant={invariant} status={status}\n",
            c.label,
            c.plan.describe()
        ));
    }
    for s in shrinks {
        out.push_str(&format!(
            "shrink {} signature={} steps={} minimal={}\n",
            s.label,
            s.signature,
            s.steps,
            s.minimal.describe()
        ));
        let bundle = s
            .bundle
            .as_ref()
            .and_then(|p| p.strip_prefix(dir).ok())
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "-".to_string());
        let reproduced = match s.reproduced {
            Some(true) => "yes",
            Some(false) => "no",
            None => "-",
        };
        out.push_str(&format!(
            "replay {} bundle={bundle} reproduced={reproduced}\n",
            s.label
        ));
    }
    let ok = cells.iter().filter(|c| c.status == CellStatus::Ok).count();
    let panicked = cells
        .iter()
        .filter(|c| c.status == CellStatus::Panicked)
        .count();
    out.push_str(&format!(
        "total={} ok={ok} failing={} panicked={panicked}\n",
        cells.len(),
        cells.len() - ok
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ccsvm-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn acceptability_matches_the_plan() {
        let lossy = PlanSpec::new(
            vec![(CampaignDomain::SnoopProbe, 0.1)],
            Some(Time::from_us(5)),
        );
        assert!(acceptable(&lossy, Outcome::Completed));
        assert!(acceptable(&lossy, Outcome::RetryBudgetExhausted));
        assert!(!acceptable(&lossy, Outcome::Poisoned));
        assert!(!acceptable(&lossy, Outcome::Deadlock));
        assert!(!acceptable(&lossy, Outcome::InvariantViolation));
        let ecc = PlanSpec::new(vec![(CampaignDomain::DramDoubleBit, 0.1)], None);
        assert!(acceptable(&ecc, Outcome::Poisoned));
        assert!(!acceptable(&ecc, Outcome::RetryBudgetExhausted));
    }

    #[test]
    fn small_grid_completes_with_typed_outcomes_and_a_stable_manifest() {
        let spec = CampaignSpec {
            protocols: vec![ProtocolKind::Directory, ProtocolKind::MesiSnoop],
            workloads: vec!["vecadd".into()],
            domains: vec![CampaignDomain::NocDrop, CampaignDomain::SnoopProbe],
            mutation_cell: false,
            ..CampaignSpec::default()
        };
        let dir = tmpdir("grid");
        let a = run_campaign(&spec, &dir).unwrap();
        assert_eq!(a.cells.len(), 4);
        assert_eq!(a.ok, 4, "manifest: {:?}", a.cells);
        assert_eq!(a.panicked, 0);
        let first = std::fs::read(&a.manifest_path).unwrap();
        // Re-running (now fully cache-hit) renders the identical manifest.
        let b = run_campaign(&spec, &dir).unwrap();
        assert_eq!(std::fs::read(&b.manifest_path).unwrap(), first);
        let text = String::from_utf8(first).unwrap();
        assert!(text.starts_with("ccsvm-campaign v1\n"));
        assert!(text.contains("total=4 ok=4 failing=0 panicked=0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutation_cell_shrinks_to_probe_loss_and_replays() {
        let spec = CampaignSpec {
            protocols: vec![ProtocolKind::MesiSnoop],
            workloads: vec!["vecadd".into()],
            domains: vec![CampaignDomain::NocDrop],
            mutation_cell: true,
            ..CampaignSpec::default()
        };
        let dir = tmpdir("mutation");
        let summary = run_campaign(&spec, &dir).unwrap();
        assert_eq!(summary.panicked, 0);
        let cell = summary
            .cells
            .iter()
            .find(|c| c.label == "mutation-corrupt-resend")
            .expect("mutation cell ran");
        assert_eq!(cell.status, CellStatus::Failing);
        let r = cell.report.as_ref().expect("typed outcome, not a panic");
        assert_eq!(r.outcome, Outcome::InvariantViolation);
        let shrink = summary
            .shrinks
            .iter()
            .find(|s| s.label == "mutation-corrupt-resend")
            .expect("failing cell was shrunk");
        assert!(shrink.steps >= 1, "fat plan must shrink at least one step");
        // The minimal plan must keep the probe-loss carrier (the mutation
        // only fires on a timed-out solicitation round) and must be
        // strictly simpler than the original three-domain plan.
        assert!(
            shrink
                .minimal
                .entries
                .iter()
                .any(|&(d, _)| d == CampaignDomain::SnoopProbe),
            "minimal plan lost its carrier: {}",
            shrink.minimal.describe()
        );
        assert!(shrink.minimal.entries.len() < 3);
        assert_eq!(
            shrink.reproduced,
            Some(true),
            "bundle replay must reproduce cycle- and invariant-exactly"
        );
        let bundle = shrink.bundle.as_ref().expect("bundle written");
        assert!(bundle.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
