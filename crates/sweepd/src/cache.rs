//! Result cache: completed `RunReport`s keyed by job key.
//!
//! The cache is the sweep's ground truth for "exactly once": a job is done
//! iff a *valid* entry exists. Entries are written atomically (temp +
//! rename, via `ccsvm_snap::write_file`) and, because runs are
//! deterministic, any two writes for the same key produce identical bytes —
//! so concurrent or repeated writes are idempotent, never conflicting.
//!
//! A corrupt, truncated, schema-drifted, or wrong-config entry is a **typed
//! miss**: [`ReportCache::lookup`] returns the `SnapError`, the caller logs
//! it, [`ReportCache::quarantine`] moves the bad file aside, and the job
//! simply re-runs. No failure mode panics or silently trusts bad bytes.

use std::path::{Path, PathBuf};

use ccsvm::RunReport;
use ccsvm_snap::{fnv1a, read_file, write_file, SnapError, SnapReader, SnapWriter};

/// Cache entry magic.
pub const CACHE_MAGIC: [u8; 8] = *b"CCSVRPRT";
/// Bump when the envelope layout changes.
pub const CACHE_VERSION: u32 = 1;

/// A directory of `{key:016x}.rpt` files.
#[derive(Clone, Debug)]
pub struct ReportCache {
    dir: PathBuf,
}

impl ReportCache {
    /// Opens (creating if needed) the cache directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<ReportCache, SnapError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SnapError::Io(format!("{}: {e}", dir.display())))?;
        Ok(ReportCache { dir })
    }

    /// Path of the entry for `key`.
    pub fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.rpt"))
    }

    /// Encodes the envelope: magic, version, config hash, key, then the
    /// canonical report bytes with a trailing FNV-1a of everything before it.
    fn encode(key: u64, config_hash: u64, report: &RunReport) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_raw(&CACHE_MAGIC);
        w.put_u32(CACHE_VERSION);
        w.put_u64(config_hash);
        w.put_u64(key);
        w.put_bytes(&report.to_bytes());
        let mut bytes = w.into_vec();
        let digest = fnv1a(&bytes);
        bytes.extend_from_slice(&digest.to_le_bytes());
        bytes
    }

    /// Atomically stores `report` under `key`.
    pub fn store(&self, key: u64, config_hash: u64, report: &RunReport) -> Result<(), SnapError> {
        write_file(
            &self.path(key),
            &ReportCache::encode(key, config_hash, report),
        )
    }

    /// Looks up `key`. `Ok(None)` = no entry; `Err` = an entry exists but is
    /// invalid (treat as a miss after logging/quarantining); `Ok(Some)` = a
    /// verified report.
    pub fn lookup(&self, key: u64, config_hash: u64) -> Result<Option<RunReport>, SnapError> {
        let path = self.path(key);
        if !path.exists() {
            return Ok(None);
        }
        let bytes = read_file(&path)?;
        let mut r = SnapReader::new(&bytes);
        let magic = r.get_array::<8>()?;
        if magic != CACHE_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != CACHE_VERSION {
            return Err(SnapError::SchemaMismatch {
                found: version,
                expected: CACHE_VERSION,
            });
        }
        let got_cfg = r.get_u64()?;
        if got_cfg != config_hash {
            return Err(SnapError::ConfigMismatch {
                found: got_cfg,
                expected: config_hash,
            });
        }
        let got_key = r.get_u64()?;
        if got_key != key {
            return Err(SnapError::Corrupt {
                what: format!("cache entry claims key {got_key:016x}, expected {key:016x}"),
            });
        }
        let report_bytes = r.get_bytes()?.to_vec();
        let body_len = bytes.len() - r.remaining();
        let digest = r.get_u64()?;
        if r.remaining() != 0 {
            return Err(SnapError::Corrupt {
                what: format!("{} trailing bytes after cache entry", r.remaining()),
            });
        }
        if digest != fnv1a(&bytes[..body_len]) {
            return Err(SnapError::Corrupt {
                what: "cache entry checksum mismatch".into(),
            });
        }
        RunReport::from_bytes(&report_bytes).map(Some)
    }

    /// Moves a bad entry aside as `{key}.rpt.bad` so the next attempt's
    /// store isn't fighting a poisoned file; best-effort.
    pub fn quarantine(&self, key: u64) {
        let path = self.path(key);
        let mut bad = path.as_os_str().to_owned();
        bad.push(".bad");
        let _ = std::fs::rename(&path, Path::new(&bad));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsvm::{config_hash, Machine, SystemConfig};

    fn report_and_hash() -> (RunReport, u64) {
        let cfg = SystemConfig::tiny();
        let h = config_hash(&cfg);
        let program = ccsvm_workloads::build("_CPU_ fn main() -> int { print_int(7); return 0; }");
        let mut m = Machine::new(cfg, program);
        (m.run(), h)
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = std::env::temp_dir().join(format!("sweepd-cache-rt-{}", std::process::id()));
        let cache = ReportCache::new(&dir).unwrap();
        let (report, h) = report_and_hash();
        assert!(cache.lookup(42, h).unwrap().is_none());
        cache.store(42, h, &report).unwrap();
        let back = cache.lookup(42, h).unwrap().expect("hit");
        assert_eq!(back.printed, report.printed);
        assert_eq!(back.time, report.time);
        assert_eq!(back.to_bytes(), report.to_bytes());
        // Stores are idempotent: same key, same bytes.
        let bytes_a = read_file(&cache.path(42)).unwrap();
        cache.store(42, h, &report).unwrap();
        assert_eq!(bytes_a, read_file(&cache.path(42)).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_entries_are_typed_misses_never_panics() {
        let dir = std::env::temp_dir().join(format!("sweepd-cache-bad-{}", std::process::id()));
        let cache = ReportCache::new(&dir).unwrap();
        let (report, h) = report_and_hash();
        cache.store(1, h, &report).unwrap();
        let good = read_file(&cache.path(1)).unwrap();

        // Wrong config hash.
        assert!(matches!(
            cache.lookup(1, h ^ 1),
            Err(SnapError::ConfigMismatch { .. })
        ));
        // Truncation at every offset: typed error or (for len 0 it's still
        // a read of an empty file -> Truncated), never Ok(Some) and never a
        // panic.
        for cut in 0..good.len() {
            std::fs::write(cache.path(1), &good[..cut]).unwrap();
            match cache.lookup(1, h) {
                Err(_) => {}
                Ok(hit) => panic!("truncated-to-{cut} entry produced {hit:?}"),
            }
        }
        // Single byte flips: checksum or field validation catches them all.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x41;
            std::fs::write(cache.path(1), &bad).unwrap();
            match cache.lookup(1, h) {
                Err(_) => {}
                Ok(hit) => panic!("flip at {i} produced {hit:?}"),
            }
        }
        // Quarantine moves the bad file aside -> clean miss.
        cache.quarantine(1);
        assert!(cache.lookup(1, h).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
