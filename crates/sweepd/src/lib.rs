//! `sweepd` — a crash-recoverable sweep orchestrator (DESIGN.md §10).
//!
//! The paper's evaluation is one long design-space sweep: the same machine
//! re-run across config and workload axes (figs 5–9). This crate turns that
//! from a one-shot CLI loop into a supervised, durable workload:
//!
//! * a [`SweepSpec`] expands into jobs deduplicated by a key derived from
//!   the normalized config hash + workload source ([`spec`]),
//! * every job state transition is appended to a write-ahead journal
//!   ([`records`] over `ccsvm_snap::journal`) — after any crash, replaying
//!   the surviving prefix reconstructs the sweep exactly,
//! * jobs run in child **worker processes** ([`worker`]) under a supervisor
//!   ([`orchestrator`]) with per-job wall-clock timeouts and seeded
//!   exponential-backoff-with-jitter retries,
//! * workers flush a machine checkpoint at a fixed simulated-time cadence;
//!   a retried job resumes from the newest valid image instead of cold
//!   booting (PR-4 snapshots make the resumed result bit-identical),
//! * completed jobs land in a [`cache::ReportCache`] keyed by job key —
//!   corrupt or mismatched entries are a typed, logged miss, never trusted —
//!   so re-running a finished sweep is a no-op and an interrupted one only
//!   re-simulates unfinished tails,
//! * a job that exhausts its retry budget is **poisoned**: the sweep
//!   completes, exits 0, and its manifest names the casualty next to a
//!   PR-5-style replay bundle captured on the final attempt.
//!
//! The headline invariant, enforced by the chaos harness (`bench --bin
//! sweepd -- --chaos kill=p,seed=s`) and its tests: any interleaving of
//! worker SIGKILLs and orchestrator crash-restarts yields a final results
//! manifest **byte-identical** to an uninterrupted cold run.

pub mod cache;
pub mod campaign;
pub mod orchestrator;
pub mod records;
pub mod sig;
pub mod spec;
pub mod worker;

pub use cache::ReportCache;
pub use campaign::{
    run_campaign, CampaignSpec, CampaignSummary, CellReport, CellStatus, ShrinkReport,
};
pub use orchestrator::{run_sweep, ChaosPlan, Summary, SweepOutcome};
pub use records::{AttemptStatus, JournalState, Record};
pub use spec::{JobSpec, SweepSpec};
pub use worker::{run_worker, WorkerJob, EXIT_ABNORMAL, EXIT_INTERRUPTED, EXIT_OK};

use std::path::PathBuf;

use ccsvm_snap::SnapError;

/// Typed orchestrator/worker failure. These are harness-level errors (bad
/// spec, I/O, decode); simulation-level failures are per-job outcomes that
/// poison the job without failing the sweep.
#[derive(Debug)]
pub enum SweepError {
    /// File or process I/O failed.
    Io {
        /// What was being touched.
        path: PathBuf,
        /// The underlying error message.
        err: String,
    },
    /// A journal, snapshot, cache, or bundle codec operation failed.
    Snap(SnapError),
    /// The sweep spec is unusable (unknown preset/workload, empty axes).
    Spec(String),
    /// A worker misbehaved at the harness level (unparseable handshake).
    Worker(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            SweepError::Snap(e) => write!(f, "codec: {e}"),
            SweepError::Spec(what) => write!(f, "bad sweep spec: {what}"),
            SweepError::Worker(what) => write!(f, "worker: {what}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SnapError> for SweepError {
    fn from(e: SnapError) -> SweepError {
        SweepError::Snap(e)
    }
}

impl SweepError {
    /// Wraps a file I/O error with the path it concerned.
    pub fn io(path: impl Into<PathBuf>, err: &std::io::Error) -> SweepError {
        SweepError::Io {
            path: path.into(),
            err: err.to_string(),
        }
    }
}
