//! Sweep specification and job expansion.
//!
//! A [`SweepSpec`] is the cross product of workload, size, and seed axes on
//! one config preset. Expansion dedupes jobs by [`JobSpec::key`] — the FNV-1a
//! of the normalized [`ccsvm::config_hash`] plus the full XC source — so two
//! axis points that compile to the identical simulation run once and share
//! one cache entry.

use ccsvm::{config_hash, ProtocolKind, SystemConfig};
use ccsvm_engine::Time;
use ccsvm_snap::fnv1a;
use ccsvm_workloads::{matmul, vecadd};

use crate::SweepError;

/// Built-in workload generators the sweep axes can name.
const WORKLOADS: &[&str] = &["vecadd", "matmul", "wedge"];

/// A sweep: one preset, a workload × size × seed grid, and the supervision
/// policy (retries, timeouts, checkpoint cadence).
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Config preset name (`SystemConfig::by_preset`).
    pub preset: String,
    /// Coherence protocol the whole sweep runs under (DESIGN §13). Part of
    /// the job identity: it feeds the config hash, so the same axes under a
    /// different protocol are different jobs with different cache entries.
    pub protocol: ProtocolKind,
    /// Workload generator names (see [`SweepSpec::expand`] for the set).
    pub workloads: Vec<String>,
    /// Problem sizes (meaning is per-workload; `wedge` ignores it).
    pub sizes: Vec<u64>,
    /// Input seeds.
    pub seeds: Vec<u64>,
    /// Max attempts per job before it is poisoned (>= 1).
    pub max_attempts: u32,
    /// Per-attempt wall-clock timeout in milliseconds.
    pub timeout_ms: u64,
    /// Max concurrently running workers.
    pub inflight: usize,
    /// Simulated-time checkpoint cadence for workers, in picoseconds.
    /// `0` disables mid-run checkpoints (retries then cold-boot).
    pub checkpoint_every_ps: u64,
    /// Orchestrator seed: drives backoff jitter and the chaos schedule.
    pub seed: u64,
}

impl Default for SweepSpec {
    fn default() -> SweepSpec {
        SweepSpec {
            preset: "tiny".into(),
            protocol: ProtocolKind::Directory,
            workloads: vec!["vecadd".into()],
            sizes: vec![64],
            seeds: vec![1],
            max_attempts: 3,
            timeout_ms: 120_000,
            inflight: 2,
            checkpoint_every_ps: Time::from_us(2).as_ps(),
            seed: 1,
        }
    }
}

/// One expanded, deduplicated job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Human label, `{workload}-n{size}-s{seed}` (first axis point to map
    /// to this key, when duplicates collapse).
    pub label: String,
    /// Identity: `fnv1a(config_hash(cfg) ‖ source)`. Journal records, cache
    /// entries, and chaos decisions are all keyed by this.
    pub key: u64,
    /// Preset name (workers re-derive the `SystemConfig` from it).
    pub preset: String,
    /// Coherence protocol applied on top of the preset.
    pub protocol: ProtocolKind,
    /// Workload generator name (workers re-derive the source from it).
    pub workload: String,
    /// Problem size.
    pub size: u64,
    /// Input seed.
    pub seed: u64,
    /// Full XC source for the job.
    pub source: String,
}

impl JobSpec {
    /// Rebuilds the job's `SystemConfig` from its preset name.
    pub fn config(&self) -> Result<SystemConfig, SweepError> {
        let mut cfg = SystemConfig::by_preset(&self.preset)
            .ok_or_else(|| SweepError::Spec(format!("unknown preset {:?}", self.preset)))?;
        cfg.protocol = self.protocol;
        Ok(cfg)
    }
}

/// Generates the XC source for one axis point. `wedge` is a diagnostic
/// workload that spins forever; on the `tiny_brief` preset it hits
/// `max_sim_time` and exits with a typed `Outcome::Deadlock`, which makes it
/// the canonical poison-path exerciser.
pub fn source_for(workload: &str, size: u64, seed: u64) -> Result<String, SweepError> {
    match workload {
        "vecadd" => Ok(vecadd::xthreads_source(&vecadd::VecaddParams {
            n: size,
            seed,
        })),
        "matmul" => Ok(matmul::xthreads_source(&matmul::MatmulParams::new(
            size, seed,
        ))),
        "wedge" => Ok("_CPU_ fn main() -> int {
                 let x = 0;
                 while (x < 1) { x = x * 1; }
                 return 0;
             }"
        .into()),
        other => Err(SweepError::Spec(format!(
            "unknown workload {other:?} (have {WORKLOADS:?})"
        ))),
    }
}

impl SweepSpec {
    /// A tag identifying the sweep's job universe; written into the journal
    /// header so a journal can't silently be replayed against a different
    /// sweep. Supervision knobs (retries, timeouts, inflight) are excluded:
    /// they change pacing, never which jobs exist or what they compute.
    pub fn tag(&self) -> u64 {
        let mut buf = Vec::new();
        buf.extend_from_slice(self.preset.as_bytes());
        buf.push(0xfb);
        buf.extend_from_slice(self.protocol.as_str().as_bytes());
        for w in &self.workloads {
            buf.push(0xfe);
            buf.extend_from_slice(w.as_bytes());
        }
        for &n in &self.sizes {
            buf.push(0xfd);
            buf.extend_from_slice(&n.to_le_bytes());
        }
        for &s in &self.seeds {
            buf.push(0xfc);
            buf.extend_from_slice(&s.to_le_bytes());
        }
        fnv1a(&buf)
    }

    /// Expands the axes into deduplicated jobs (stable spec order) plus the
    /// labels of axis points that collapsed into an earlier job.
    pub fn expand(&self) -> Result<(Vec<JobSpec>, Vec<String>), SweepError> {
        if self.workloads.is_empty() || self.sizes.is_empty() || self.seeds.is_empty() {
            return Err(SweepError::Spec("empty axis".into()));
        }
        if self.max_attempts == 0 {
            return Err(SweepError::Spec("max_attempts must be >= 1".into()));
        }
        let mut cfg = SystemConfig::by_preset(&self.preset)
            .ok_or_else(|| SweepError::Spec(format!("unknown preset {:?}", self.preset)))?;
        cfg.protocol = self.protocol;
        let cfg_hash = config_hash(&cfg);
        let mut jobs: Vec<JobSpec> = Vec::new();
        let mut dups = Vec::new();
        for w in &self.workloads {
            for &size in &self.sizes {
                for &seed in &self.seeds {
                    let label = format!("{w}-n{size}-s{seed}");
                    let source = source_for(w, size, seed)?;
                    let mut buf = cfg_hash.to_le_bytes().to_vec();
                    buf.extend_from_slice(source.as_bytes());
                    let key = fnv1a(&buf);
                    if jobs.iter().any(|j| j.key == key) {
                        dups.push(label);
                    } else {
                        jobs.push(JobSpec {
                            label,
                            key,
                            preset: self.preset.clone(),
                            protocol: self.protocol,
                            workload: w.clone(),
                            size,
                            seed,
                            source,
                        });
                    }
                }
            }
        }
        Ok((jobs, dups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_dedupes_by_key() {
        let spec = SweepSpec {
            preset: "tiny".into(),
            workloads: vec!["wedge".into()],
            sizes: vec![8, 16], // wedge ignores size -> identical source
            seeds: vec![1, 2],  // and seed
            ..SweepSpec::default()
        };
        let (jobs, dups) = spec.expand().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(dups.len(), 3);
        assert_eq!(jobs[0].label, "wedge-n8-s1");
    }

    #[test]
    fn distinct_points_get_distinct_keys() {
        let spec = SweepSpec {
            workloads: vec!["vecadd".into(), "matmul".into()],
            sizes: vec![8, 16],
            seeds: vec![3],
            ..SweepSpec::default()
        };
        let (jobs, dups) = spec.expand().unwrap();
        assert_eq!(jobs.len(), 4);
        assert!(dups.is_empty());
        let mut keys: Vec<u64> = jobs.iter().map(|j| j.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn bad_axes_are_typed_errors() {
        let mut spec = SweepSpec {
            workloads: vec!["no-such".into()],
            ..SweepSpec::default()
        };
        assert!(matches!(spec.expand(), Err(SweepError::Spec(_))));
        spec.workloads = vec![];
        assert!(matches!(spec.expand(), Err(SweepError::Spec(_))));
        spec.workloads = vec!["vecadd".into()];
        spec.preset = "no-such".into();
        assert!(matches!(spec.expand(), Err(SweepError::Spec(_))));
    }

    #[test]
    fn protocol_is_part_of_the_job_identity() {
        let a = SweepSpec::default();
        let b = SweepSpec {
            protocol: ProtocolKind::Dragon,
            ..SweepSpec::default()
        };
        assert_ne!(a.tag(), b.tag(), "protocol must fence the journal");
        let (ja, _) = a.expand().unwrap();
        let (jb, _) = b.expand().unwrap();
        assert_ne!(ja[0].key, jb[0].key, "protocol must split the cache key");
        assert_eq!(jb[0].config().unwrap().protocol, ProtocolKind::Dragon);
    }

    #[test]
    fn tag_tracks_axes_not_policy() {
        let a = SweepSpec::default();
        let mut b = SweepSpec {
            max_attempts: 9,
            timeout_ms: 1,
            inflight: 7,
            ..SweepSpec::default()
        };
        assert_eq!(a.tag(), b.tag());
        b.sizes = vec![65];
        assert_ne!(a.tag(), b.tag());
    }
}
