//! The worker half of sweepd: one process, one job attempt.
//!
//! A worker rebuilds its job from `k=v` argument pairs, resumes from the
//! newest valid checkpoint if one survived an earlier attempt, simulates
//! with a periodic checkpoint flush, and reports back through three narrow
//! channels the supervisor can trust even when the process dies mid-word:
//!
//! * `::sweepd:: k=v` **stdout markers** (resume point, completion),
//! * its **exit status** ([`EXIT_OK`] / [`EXIT_ABNORMAL`] /
//!   [`EXIT_INTERRUPTED`], or signal death),
//! * durable artifacts: the checkpoint file, the cache entry (written
//!   atomically *before* the completion marker), and — on the final
//!   attempt of a failing job — a replay bundle.
//!
//! Under `die_after_checkpoints > 0` (chaos mode) the worker SIGKILLs
//! itself immediately *after* the k-th checkpoint flush, which guarantees
//! the retry finds a valid image and resumes at `resumed_at_ps > 0`.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use ccsvm::{config_hash, Machine, Outcome, ProtocolKind, SystemConfig};
use ccsvm_engine::Time;

use crate::cache::ReportCache;
use crate::sig;
use crate::spec::source_for;
use crate::SweepError;

/// Job completed; report is in the cache.
pub const EXIT_OK: i32 = 0;
/// Simulation finished with a non-`Completed` outcome, or the harness hit a
/// typed error. Retryable from the supervisor's point of view.
pub const EXIT_ABNORMAL: i32 = 3;
/// Worker caught SIGINT/SIGTERM and stopped at a checkpoint boundary.
pub const EXIT_INTERRUPTED: i32 = 130;

/// Prefix of machine-readable lines on worker stdout.
pub const MARKER: &str = "::sweepd::";

/// A parsed worker invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerJob {
    /// Sweep directory (journal, cache, checkpoints, bundles live here).
    pub dir: PathBuf,
    /// Human label for logs.
    pub label: String,
    /// Job key (validated against the recomputed key before running).
    pub key: u64,
    /// Config preset name.
    pub preset: String,
    /// Coherence protocol applied on top of the preset.
    pub protocol: ProtocolKind,
    /// Workload generator name.
    pub workload: String,
    /// Problem size.
    pub size: u64,
    /// Input seed.
    pub seed: u64,
    /// Checkpoint cadence in simulated picoseconds (0 = none).
    pub checkpoint_every_ps: u64,
    /// Chaos: SIGKILL self right after this many checkpoint flushes (0 = off).
    pub die_after_checkpoints: u32,
    /// This is the job's last attempt: capture a replay bundle if it fails.
    pub final_attempt: bool,
}

impl WorkerJob {
    /// Renders the `k=v` argument list [`WorkerJob::parse_args`] accepts.
    pub fn to_args(&self) -> Vec<String> {
        vec![
            format!("dir={}", self.dir.display()),
            format!("label={}", self.label),
            format!("key={:016x}", self.key),
            format!("preset={}", self.preset),
            format!("protocol={}", self.protocol),
            format!("workload={}", self.workload),
            format!("size={}", self.size),
            format!("seed={}", self.seed),
            format!("ckpt-ps={}", self.checkpoint_every_ps),
            format!("die-after={}", self.die_after_checkpoints),
            format!("final={}", u8::from(self.final_attempt)),
        ]
    }

    /// Parses the `k=v` pairs the supervisor passed after `--worker`.
    pub fn parse_args(args: &[String]) -> Result<WorkerJob, SweepError> {
        let mut job = WorkerJob {
            dir: PathBuf::new(),
            label: String::new(),
            key: 0,
            preset: String::new(),
            protocol: ProtocolKind::Directory,
            workload: String::new(),
            size: 0,
            seed: 0,
            checkpoint_every_ps: 0,
            die_after_checkpoints: 0,
            final_attempt: false,
        };
        let bad = |what: &str, v: &str| SweepError::Worker(format!("bad {what}: {v:?}"));
        for a in args {
            let (k, v) = a
                .split_once('=')
                .ok_or_else(|| bad("worker arg (want k=v)", a))?;
            match k {
                "dir" => job.dir = PathBuf::from(v),
                "label" => job.label = v.to_string(),
                "key" => {
                    job.key = u64::from_str_radix(v, 16).map_err(|_| bad("key", v))?;
                }
                "preset" => job.preset = v.to_string(),
                "protocol" => {
                    job.protocol = ProtocolKind::parse(v).ok_or_else(|| bad("protocol", v))?;
                }
                "workload" => job.workload = v.to_string(),
                "size" => job.size = v.parse().map_err(|_| bad("size", v))?,
                "seed" => job.seed = v.parse().map_err(|_| bad("seed", v))?,
                "ckpt-ps" => {
                    job.checkpoint_every_ps = v.parse().map_err(|_| bad("ckpt-ps", v))?;
                }
                "die-after" => {
                    job.die_after_checkpoints = v.parse().map_err(|_| bad("die-after", v))?;
                }
                "final" => job.final_attempt = v == "1",
                other => return Err(bad("worker arg key", other)),
            }
        }
        if job.dir.as_os_str().is_empty() || job.preset.is_empty() || job.workload.is_empty() {
            return Err(SweepError::Worker("missing dir/preset/workload".into()));
        }
        Ok(job)
    }
}

/// Where this job's checkpoint image lives.
pub fn checkpoint_path(dir: &Path, key: u64) -> PathBuf {
    dir.join("ck").join(format!("{key:016x}.ck"))
}

/// Where this job's replay bundle lands if it poisons.
pub fn bundle_path(dir: &Path, key: u64) -> PathBuf {
    dir.join("bundles").join(format!("{key:016x}.bundle"))
}

fn emit_marker(kv: &str) {
    println!("{MARKER} {kv}");
    let _ = std::io::stdout().flush();
}

/// Runs one attempt and returns the process exit code.
///
/// # Errors
///
/// Only setup problems (bad spec, unwritable sweep dir) error out; once the
/// simulation starts, every path ends in an exit code.
pub fn run_worker(job: &WorkerJob) -> Result<i32, SweepError> {
    sig::install_shutdown_handler();
    let mut cfg = SystemConfig::by_preset(&job.preset)
        .ok_or_else(|| SweepError::Spec(format!("unknown preset {:?}", job.preset)))?;
    cfg.protocol = job.protocol;
    let cfg_hash = config_hash(&cfg);
    let source = source_for(&job.workload, job.size, job.seed)?;
    // The key is the supervisor's contract with the cache: recompute and
    // refuse to run if the argument list disagrees (a wrong key would file
    // this result under another job's identity).
    let mut buf = cfg_hash.to_le_bytes().to_vec();
    buf.extend_from_slice(source.as_bytes());
    let want = ccsvm_snap::fnv1a(&buf);
    if want != job.key {
        return Err(SweepError::Worker(format!(
            "key mismatch: args say {:016x}, job derives {want:016x}",
            job.key
        )));
    }
    let prog = ccsvm_xthreads::build(&source)
        .map_err(|e| SweepError::Worker(format!("{}: compile: {e}", job.label)))?;

    let ck_path = checkpoint_path(&job.dir, job.key);
    if let Some(parent) = ck_path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| SweepError::io(parent, &e))?;
    }

    // Resume from a prior attempt's checkpoint when one restores cleanly;
    // any typed failure (truncated, wrong config, stale schema) quarantines
    // the image and cold-boots. Never a panic, never silent trust.
    let mut machine = None;
    if ck_path.exists() {
        match Machine::restore(cfg.clone(), prog.clone(), &ck_path) {
            Ok(m) => machine = Some(m),
            Err(e) => {
                eprintln!(
                    "sweepd-worker[{}]: checkpoint unusable ({e}); cold boot",
                    job.label
                );
                let mut bad = ck_path.as_os_str().to_owned();
                bad.push(".bad");
                let _ = std::fs::rename(&ck_path, PathBuf::from(bad));
            }
        }
    }
    let resumed_at_ps = machine.as_ref().map_or(0, |m| m.now().as_ps());
    let mut machine = machine.unwrap_or_else(|| Machine::new(cfg.clone(), prog));
    emit_marker(&format!("resumed_at_ps={resumed_at_ps}"));

    let report = if job.checkpoint_every_ps == 0 {
        Some(machine.run())
    } else {
        let mut flushed: u32 = 0;
        let die_after = job.die_after_checkpoints;
        let ck = ck_path.clone();
        machine.run_with_cadence(Time::from_ps(job.checkpoint_every_ps), move |m| {
            if let Err(e) = m.checkpoint(&ck) {
                // A failed flush costs resumability, not correctness.
                eprintln!("sweepd-worker: checkpoint flush failed: {e}");
            } else {
                flushed += 1;
                if die_after > 0 && flushed >= die_after {
                    // Chaos: die as if power-cut, right where a valid
                    // checkpoint is guaranteed to exist.
                    sig::kill_self();
                }
            }
            !sig::shutdown_requested()
        })
    };

    let report = match report {
        Some(r) => r,
        None => {
            // Cooperative shutdown: the last cadence pause already flushed a
            // checkpoint; tell the supervisor this was an interruption.
            emit_marker("interrupted=1");
            return Ok(EXIT_INTERRUPTED);
        }
    };

    if report.outcome == Outcome::Completed {
        let cache = ReportCache::new(job.dir.join("cache"))?;
        // Store *before* the completion marker: if we die between the two,
        // the supervisor re-runs the job and the idempotent store rewrites
        // identical bytes.
        cache.store(job.key, cfg_hash, &report)?;
        emit_marker("completed=1");
        let _ = std::fs::remove_file(&ck_path);
        return Ok(EXIT_OK);
    }

    eprintln!(
        "sweepd-worker[{}]: outcome {:?} at {}",
        job.label, report.outcome, report.time
    );
    if job.final_attempt {
        // Last attempt of a failing job: capture the PR-5 replay bundle so
        // the poisoned manifest row points at a reproducer.
        let every = if job.checkpoint_every_ps > 0 {
            Time::from_ps(job.checkpoint_every_ps)
        } else {
            Time::from_us(10)
        };
        match ccsvm::run_with_triage(&cfg, &job.preset, &source, every) {
            Ok(t) => {
                if let Some(bundle) = t.bundle {
                    let bpath = bundle_path(&job.dir, job.key);
                    if let Some(parent) = bpath.parent() {
                        std::fs::create_dir_all(parent).map_err(|e| SweepError::io(parent, &e))?;
                    }
                    bundle.write(&bpath)?;
                    emit_marker("bundle=1");
                }
            }
            Err(e) => eprintln!("sweepd-worker[{}]: triage failed: {e}", job.label),
        }
    }
    Ok(EXIT_ABNORMAL)
}

/// Extracts `k` from the `::sweepd:: k=v` markers in captured stdout.
pub fn marker_value(stdout: &str, key: &str) -> Option<String> {
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix(MARKER) {
            if let Some((k, v)) = rest.trim().split_once('=') {
                if k == key {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_round_trip() {
        let job = WorkerJob {
            dir: PathBuf::from("/tmp/sweep"),
            label: "vecadd-n8-s1".into(),
            key: 0xdead_beef_cafe_f00d,
            preset: "tiny".into(),
            protocol: ProtocolKind::MesiSnoop,
            workload: "vecadd".into(),
            size: 8,
            seed: 1,
            checkpoint_every_ps: 2_000_000,
            die_after_checkpoints: 2,
            final_attempt: true,
        };
        let back = WorkerJob::parse_args(&job.to_args()).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn bad_args_are_typed() {
        assert!(WorkerJob::parse_args(&["nope".into()]).is_err());
        assert!(WorkerJob::parse_args(&["zork=1".into()]).is_err());
        assert!(WorkerJob::parse_args(&[]).is_err()); // missing dir/preset
    }

    #[test]
    fn marker_parsing_ignores_noise() {
        let out = "guest print\n::sweepd:: resumed_at_ps=123\njunk\n::sweepd:: completed=1\n";
        assert_eq!(marker_value(out, "resumed_at_ps").as_deref(), Some("123"));
        assert_eq!(marker_value(out, "completed").as_deref(), Some("1"));
        assert_eq!(marker_value(out, "bundle"), None);
    }
}
