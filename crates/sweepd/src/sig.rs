//! Minimal Unix signal plumbing, without the `libc` crate.
//!
//! The workspace builds from a cold cargo cache, so we declare the three
//! POSIX entry points we need (`signal`, `kill`, `getpid`) directly against
//! the C runtime that every Linux Rust binary already links. On non-Unix
//! targets everything degrades to a no-op: shutdown requests simply never
//! arrive and sweeps run uninterruptible, which is safe because the journal
//! and cache tolerate being killed at any instant anyway.

use std::sync::atomic::{AtomicBool, Ordering};

/// SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;
/// SIGKILL (unblockable kill; what the chaos harness uses).
pub const SIGKILL: i32 = 9;
/// SIGTERM (polite kill; what the supervisor sends workers on shutdown).
pub const SIGTERM: i32 = 15;

/// Set by the handler on SIGINT/SIGTERM; polled by orchestrator and worker
/// loops at their next safe pause point.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
        pub fn kill(pid: i32, sig: i32) -> i32;
        pub fn getpid() -> i32;
    }

    pub extern "C" fn on_shutdown_signal(_sig: i32) {
        // Async-signal-safe: a single relaxed store.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Installs the SIGINT/SIGTERM handler that raises the shutdown flag.
/// Call once near the top of `main`; harmless to call again.
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    unsafe {
        unix::signal(SIGINT, unix::on_shutdown_signal as *const () as usize);
        unix::signal(SIGTERM, unix::on_shutdown_signal as *const () as usize);
    }
}

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Test/internal hook: raise or clear the flag without a real signal.
pub fn set_shutdown(v: bool) {
    SHUTDOWN.store(v, Ordering::Relaxed);
}

/// Sends `sig` to `pid`. No-op off Unix.
pub fn send_signal(pid: i32, sig: i32) {
    #[cfg(unix)]
    unsafe {
        unix::kill(pid, sig);
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
    }
}

/// This process's pid (0 off Unix).
pub fn my_pid() -> i32 {
    #[cfg(unix)]
    unsafe {
        unix::getpid()
    }
    #[cfg(not(unix))]
    {
        0
    }
}

/// SIGKILLs the current process — the chaos harness's way for a worker to
/// die exactly as if the machine had lost power: no unwinding, no flushes.
pub fn kill_self() {
    send_signal(my_pid(), SIGKILL);
    // If the signal somehow didn't take (non-Unix), make death explicit.
    std::process::exit(137);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        set_shutdown(false);
        assert!(!shutdown_requested());
        set_shutdown(true);
        assert!(shutdown_requested());
        set_shutdown(false);
    }

    #[cfg(unix)]
    #[test]
    fn pid_is_positive() {
        assert!(my_pid() > 0);
    }
}
