//! Typed journal records over the raw `ccsvm_snap::journal` frames.
//!
//! Every sweep state transition is one appended record. Replaying the
//! journal's surviving prefix after a crash and folding it with
//! [`JournalState::fold`] reconstructs exactly which jobs are done, which
//! are poisoned, and how many attempts each pending job has burned — the
//! orchestrator resumes from that state instead of restarting the sweep.
//!
//! Encoding is the snap codec style: a one-byte discriminant followed by
//! fixed-width little-endian fields. Unknown discriminants and short
//! payloads decode to a typed [`SnapError`], never a panic.

use ccsvm_snap::{SnapError, SnapReader, SnapWriter};

/// How one worker attempt ended, as observed by the supervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptStatus {
    /// Worker exited 0 and its report landed in the cache.
    Completed,
    /// Worker exited nonzero: the simulation finished with a non-Completed
    /// outcome (deadlock, invariant violation) or the harness failed.
    Abnormal,
    /// Worker died on a signal (chaos SIGKILL, OOM-kill, ...).
    Killed,
    /// Supervisor killed the worker at the wall-clock timeout.
    Timeout,
    /// Worker was interrupted (SIGINT/SIGTERM) and exited cleanly.
    Interrupted,
    /// The worker process could not be spawned at all.
    SpawnFailed,
}

impl AttemptStatus {
    fn to_u8(self) -> u8 {
        match self {
            AttemptStatus::Completed => 0,
            AttemptStatus::Abnormal => 1,
            AttemptStatus::Killed => 2,
            AttemptStatus::Timeout => 3,
            AttemptStatus::Interrupted => 4,
            AttemptStatus::SpawnFailed => 5,
        }
    }

    fn from_u8(b: u8) -> Result<AttemptStatus, SnapError> {
        Ok(match b {
            0 => AttemptStatus::Completed,
            1 => AttemptStatus::Abnormal,
            2 => AttemptStatus::Killed,
            3 => AttemptStatus::Timeout,
            4 => AttemptStatus::Interrupted,
            5 => AttemptStatus::SpawnFailed,
            other => {
                return Err(SnapError::Corrupt {
                    what: format!("unknown attempt status {other}"),
                })
            }
        })
    }
}

/// One journal record. `key` is always [`crate::JobSpec::key`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Job admitted to the run queue.
    Planned {
        /// Job identity.
        key: u64,
        /// Human label for logs and the manifest.
        label: String,
    },
    /// Job satisfied by a valid cache entry; no worker will run.
    SkippedCached {
        /// Job identity.
        key: u64,
    },
    /// An axis point collapsed into an already-planned job.
    SkippedDuplicate {
        /// Key of the job it collapsed into.
        key: u64,
        /// Label of the collapsed axis point.
        label: String,
    },
    /// A worker process was (about to be) spawned.
    AttemptStarted {
        /// Job identity.
        key: u64,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The attempt's worker is gone and its exit was classified.
    AttemptEnded {
        /// Job identity.
        key: u64,
        /// 1-based attempt number.
        attempt: u32,
        /// Supervisor's classification of the exit.
        status: AttemptStatus,
        /// Simulated time the worker reported resuming from (0 = cold boot).
        resumed_at_ps: u64,
    },
    /// Job completed; its report is in the cache.
    Done {
        /// Job identity.
        key: u64,
    },
    /// Job exhausted its retry budget and was retired.
    Poisoned {
        /// Job identity.
        key: u64,
        /// Whether a replay bundle was captured on the final attempt.
        bundled: bool,
    },
    /// Orchestrator (re)started and folded the journal up to here.
    Recovered {
        /// Jobs already done at recovery.
        done: u32,
        /// Jobs still pending at recovery.
        pending: u32,
    },
    /// Orchestrator caught SIGINT/SIGTERM and is shutting down.
    Interrupted,
    /// Sweep finished; the manifest was written.
    SweepClosed {
        /// FNV-1a of the manifest bytes, for cross-run comparison.
        manifest_fnv: u64,
    },
}

impl Record {
    /// Encodes to the journal payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Record::Planned { key, label } => {
                w.put_u8(1);
                w.put_u64(*key);
                w.put_str(label);
            }
            Record::SkippedCached { key } => {
                w.put_u8(2);
                w.put_u64(*key);
            }
            Record::SkippedDuplicate { key, label } => {
                w.put_u8(3);
                w.put_u64(*key);
                w.put_str(label);
            }
            Record::AttemptStarted { key, attempt } => {
                w.put_u8(4);
                w.put_u64(*key);
                w.put_u32(*attempt);
            }
            Record::AttemptEnded {
                key,
                attempt,
                status,
                resumed_at_ps,
            } => {
                w.put_u8(5);
                w.put_u64(*key);
                w.put_u32(*attempt);
                w.put_u8(status.to_u8());
                w.put_u64(*resumed_at_ps);
            }
            Record::Done { key } => {
                w.put_u8(6);
                w.put_u64(*key);
            }
            Record::Poisoned { key, bundled } => {
                w.put_u8(7);
                w.put_u64(*key);
                w.put_u8(u8::from(*bundled));
            }
            Record::Recovered { done, pending } => {
                w.put_u8(8);
                w.put_u32(*done);
                w.put_u32(*pending);
            }
            Record::Interrupted => {
                w.put_u8(9);
            }
            Record::SweepClosed { manifest_fnv } => {
                w.put_u8(10);
                w.put_u64(*manifest_fnv);
            }
        }
        w.into_vec()
    }

    /// Decodes a journal payload. Trailing bytes are an error: records are
    /// fixed forms, not containers.
    pub fn decode(payload: &[u8]) -> Result<Record, SnapError> {
        let mut r = SnapReader::new(payload);
        let rec = match r.get_u8()? {
            1 => Record::Planned {
                key: r.get_u64()?,
                label: r.get_str()?.to_string(),
            },
            2 => Record::SkippedCached { key: r.get_u64()? },
            3 => Record::SkippedDuplicate {
                key: r.get_u64()?,
                label: r.get_str()?.to_string(),
            },
            4 => Record::AttemptStarted {
                key: r.get_u64()?,
                attempt: r.get_u32()?,
            },
            5 => Record::AttemptEnded {
                key: r.get_u64()?,
                attempt: r.get_u32()?,
                status: AttemptStatus::from_u8(r.get_u8()?)?,
                resumed_at_ps: r.get_u64()?,
            },
            6 => Record::Done { key: r.get_u64()? },
            7 => Record::Poisoned {
                key: r.get_u64()?,
                bundled: r.get_u8()? != 0,
            },
            8 => Record::Recovered {
                done: r.get_u32()?,
                pending: r.get_u32()?,
            },
            9 => Record::Interrupted,
            10 => Record::SweepClosed {
                manifest_fnv: r.get_u64()?,
            },
            other => {
                return Err(SnapError::Corrupt {
                    what: format!("unknown journal record kind {other}"),
                })
            }
        };
        if r.remaining() != 0 {
            return Err(SnapError::Corrupt {
                what: format!("{} trailing bytes after journal record", r.remaining()),
            });
        }
        Ok(rec)
    }
}

/// The sweep state a journal prefix implies.
#[derive(Clone, Debug, Default)]
pub struct JournalState {
    /// Keys with a `Done` record.
    pub done: std::collections::BTreeSet<u64>,
    /// Keys with a `Poisoned` record.
    pub poisoned: std::collections::BTreeSet<u64>,
    /// Attempts *ended* per key (an `AttemptStarted` without a matching
    /// `AttemptEnded` means the attempt died with the orchestrator and is
    /// counted as burned — its worker may have been orphan-killed).
    pub attempts: std::collections::BTreeMap<u64, u32>,
    /// Highest `resumed_at_ps` seen per key (proves checkpoint resume).
    pub resumed_at: std::collections::BTreeMap<u64, u64>,
    /// A `SweepClosed` record was seen.
    pub closed: bool,
    /// Number of `Recovered` records (orchestrator restarts observed).
    pub recoveries: u32,
}

impl JournalState {
    /// Folds decoded records into the implied sweep state. A decode failure
    /// is returned as-is — callers quarantine the journal and rebuild from
    /// the cache rather than trusting a half-understood log.
    pub fn fold(payloads: &[Vec<u8>]) -> Result<JournalState, SnapError> {
        let mut st = JournalState::default();
        for p in payloads {
            match Record::decode(p)? {
                Record::AttemptStarted { key, attempt } => {
                    let burned = st.attempts.entry(key).or_insert(0);
                    *burned = (*burned).max(attempt);
                }
                Record::AttemptEnded {
                    key,
                    attempt,
                    resumed_at_ps,
                    ..
                } => {
                    let burned = st.attempts.entry(key).or_insert(0);
                    *burned = (*burned).max(attempt);
                    if resumed_at_ps > 0 {
                        let r = st.resumed_at.entry(key).or_insert(0);
                        *r = (*r).max(resumed_at_ps);
                    }
                }
                Record::Done { key } => {
                    st.done.insert(key);
                }
                Record::Poisoned { key, .. } => {
                    st.poisoned.insert(key);
                }
                Record::Recovered { .. } => st.recoveries += 1,
                Record::SweepClosed { .. } => st.closed = true,
                Record::Planned { .. }
                | Record::SkippedCached { .. }
                | Record::SkippedDuplicate { .. }
                | Record::Interrupted => {}
            }
        }
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Planned {
                key: 0xdead_beef,
                label: "vecadd-n64-s1".into(),
            },
            Record::SkippedCached { key: 7 },
            Record::SkippedDuplicate {
                key: 7,
                label: "wedge-n16-s2".into(),
            },
            Record::AttemptStarted { key: 7, attempt: 1 },
            Record::AttemptEnded {
                key: 7,
                attempt: 1,
                status: AttemptStatus::Killed,
                resumed_at_ps: 0,
            },
            Record::AttemptEnded {
                key: 7,
                attempt: 2,
                status: AttemptStatus::Completed,
                resumed_at_ps: 123_456,
            },
            Record::Done { key: 7 },
            Record::Poisoned {
                key: 9,
                bundled: true,
            },
            Record::Recovered {
                done: 3,
                pending: 2,
            },
            Record::Interrupted,
            Record::SweepClosed {
                manifest_fnv: 0x1234_5678_9abc_def0,
            },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn trailing_bytes_and_bad_kinds_are_corrupt() {
        let mut bytes = Record::Done { key: 1 }.encode();
        bytes.push(0);
        assert!(matches!(
            Record::decode(&bytes),
            Err(SnapError::Corrupt { .. })
        ));
        assert!(matches!(
            Record::decode(&[0xff]),
            Err(SnapError::Corrupt { .. })
        ));
        assert!(Record::decode(&[]).is_err());
    }

    #[test]
    fn truncated_payloads_are_typed_errors() {
        for rec in samples() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                // Every strict prefix either fails typed or (never) panics.
                // Prefixes can accidentally decode only if the form has no
                // fields; none of ours are both valid and shorter.
                if let Ok(decoded) = Record::decode(&bytes[..cut]) {
                    panic!("prefix {cut} of {rec:?} decoded as {decoded:?}");
                }
            }
        }
    }

    #[test]
    fn fold_reconstructs_state() {
        let payloads: Vec<Vec<u8>> = samples().iter().map(Record::encode).collect();
        let st = JournalState::fold(&payloads).unwrap();
        assert!(st.done.contains(&7));
        assert!(st.poisoned.contains(&9));
        assert_eq!(st.attempts.get(&7), Some(&2));
        assert_eq!(st.resumed_at.get(&7), Some(&123_456));
        assert!(st.closed);
        assert_eq!(st.recoveries, 1);
    }
}
