//! Functional reference interpreter.
//!
//! Executes HIR over flat (untimed, untranslated) memory. This is the
//! semantic oracle: the compiler's tests run programs here, and the timing
//! cores (`ccsvm-cpu` / `ccsvm-mttop`) must agree with it on architectural
//! results.

use std::collections::HashMap;

use crate::instr::{AmoKind, Instr, Operand, Reg};
use crate::{abi, sys, Program};

/// Sparse flat byte memory (4 KiB chunks on first touch).
#[derive(Clone, Debug, Default)]
pub struct FlatMem {
    pages: HashMap<u64, Box<[u8; 4096]>>,
}

impl FlatMem {
    /// Creates empty memory (reads as zero).
    pub fn new() -> FlatMem {
        FlatMem::default()
    }

    /// Reads `size` bytes at `addr`, zero-extended.
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        let mut v = [0u8; 8];
        for (i, b) in v.iter_mut().enumerate().take(size as usize) {
            let a = addr + i as u64;
            *b = self
                .pages
                .get(&(a / 4096))
                .map_or(0, |p| p[(a % 4096) as usize]);
        }
        u64::from_le_bytes(v)
    }

    /// Writes the low `size` bytes of `value` at `addr`.
    pub fn write(&mut self, addr: u64, size: u8, value: u64) {
        let bytes = value.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate().take(size as usize) {
            let a = addr + i as u64;
            self.pages
                .entry(a / 4096)
                .or_insert_with(|| Box::new([0; 4096]))[(a % 4096) as usize] = b;
        }
    }
}

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrapKind {
    /// PC ran outside the text section.
    BadPc(usize),
    /// A syscall the host refused or doesn't implement.
    BadSyscall(u64),
    /// Instruction budget exhausted (runaway program).
    OutOfGas,
}

/// Host services backing the `syscall` instruction.
pub trait Syscalls {
    /// Handles one syscall: number in `r1`, args in `r2`…; result in `r1`.
    ///
    /// # Errors
    ///
    /// Returns a [`TrapKind`] to abort execution.
    fn syscall(
        &mut self,
        regs: &mut [u64; 32],
        mem: &mut FlatMem,
        prog: &Program,
    ) -> Result<(), TrapKind>;
}

/// Result of one [`Interp::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep going.
    Continue,
    /// The thread executed `exit` (or the exit syscall).
    Exited,
}

/// A single hardware thread's architectural state, interpreted functionally.
///
/// # Examples
///
/// ```
/// use ccsvm_isa::{assemble, FuncOs, Interp};
/// let p = assemble("main:\n li r1, 6\n mul r1, r1, 7\n exit\n").unwrap();
/// let mut mem = ccsvm_isa::FlatMem::new();
/// let mut t = Interp::new(p.entry("main"), 0);
/// t.run(&p, &mut mem, &mut FuncOs::new(), 100).unwrap();
/// assert_eq!(t.regs[1], 42);
/// ```
#[derive(Clone, Debug)]
pub struct Interp {
    /// Architectural registers (`regs[0]` stays zero).
    pub regs: [u64; 32],
    /// Program counter (index into the text).
    pub pc: usize,
    /// Retired instruction count.
    pub icount: u64,
}

impl Interp {
    /// A thread starting at `entry` using hardware context `ctx`'s stack.
    pub fn new(entry: usize, ctx: u64) -> Interp {
        let mut regs = [0u64; 32];
        regs[abi::SP.0 as usize] = abi::stack_top(ctx);
        regs[abi::FP.0 as usize] = regs[abi::SP.0 as usize];
        Interp {
            regs,
            pc: entry,
            icount: 0,
        }
    }

    fn get(&self, r: Reg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    fn set(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    fn operand(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.get(r),
            Operand::Imm(i) => i as u64,
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Traps on out-of-range PCs or refused syscalls.
    pub fn step(
        &mut self,
        prog: &Program,
        mem: &mut FlatMem,
        os: &mut dyn Syscalls,
    ) -> Result<StepOutcome, TrapKind> {
        let Some(&instr) = prog.text.get(self.pc) else {
            return Err(TrapKind::BadPc(self.pc));
        };
        self.icount += 1;
        let mut next = self.pc + 1;
        match instr {
            Instr::Alu { op, rd, ra, rb } => {
                let v = op.apply(self.get(ra), self.operand(rb));
                self.set(rd, v);
            }
            Instr::Li { rd, imm } => self.set(rd, imm as u64),
            Instr::Ld {
                rd,
                base,
                off,
                size,
            } => {
                let addr = self.get(base).wrapping_add(off as u64);
                let v = mem.read(addr, size);
                self.set(rd, v);
            }
            Instr::St {
                rs,
                base,
                off,
                size,
            } => {
                let addr = self.get(base).wrapping_add(off as u64);
                mem.write(addr, size, self.get(rs));
            }
            Instr::Amo { op, rd, addr, a, b } => {
                let address = self.get(addr);
                let old = mem.read(address, 8);
                let new = match op {
                    AmoKind::Cas => {
                        if old == self.get(a) {
                            self.get(b)
                        } else {
                            old
                        }
                    }
                    AmoKind::Add => old.wrapping_add(self.get(a)),
                    AmoKind::Inc => old.wrapping_add(1),
                    AmoKind::Dec => old.wrapping_sub(1),
                    AmoKind::Exch => self.get(a),
                };
                mem.write(address, 8, new);
                self.set(rd, old);
            }
            Instr::Br {
                cond,
                ra,
                rb,
                target,
            } => {
                if cond.test(self.get(ra), self.get(rb)) {
                    next = target;
                }
            }
            Instr::Jmp { target } => next = target,
            Instr::JmpReg { rs } => next = self.get(rs) as usize,
            Instr::Call { target } => {
                self.set(abi::RA, (self.pc + 1) as u64);
                next = target;
            }
            Instr::CallReg { rs } => {
                let t = self.get(rs) as usize;
                self.set(abi::RA, (self.pc + 1) as u64);
                next = t;
            }
            Instr::Syscall => {
                if self.regs[1] == sys::EXIT_THREAD {
                    return Ok(StepOutcome::Exited);
                }
                os.syscall(&mut self.regs, mem, prog)?;
            }
            Instr::Fence | Instr::Nop => {}
            Instr::Exit => return Ok(StepOutcome::Exited),
        }
        self.pc = next;
        Ok(StepOutcome::Continue)
    }

    /// Runs until `exit` or `max_steps`.
    ///
    /// Straight-line runs execute over decoded superblocks
    /// ([`crate::decode`]) — the same fast path the timing cores use — while
    /// every boundary instruction (branch, memory, syscall, exit) goes
    /// through [`Interp::step`], which remains the per-instruction semantic
    /// oracle. The superblock cache is local to one `run` call, so handing
    /// the same `Interp` a different program later can never observe stale
    /// decoded state.
    ///
    /// # Errors
    ///
    /// Traps as in [`Interp::step`], plus [`TrapKind::OutOfGas`] at the
    /// step budget.
    pub fn run(
        &mut self,
        prog: &Program,
        mem: &mut FlatMem,
        os: &mut dyn Syscalls,
        max_steps: u64,
    ) -> Result<(), TrapKind> {
        let mut sb = crate::decode::SbCache::new(crate::decode::SbCache::DEFAULT_CAPACITY);
        let mut gas = max_steps;
        while gas > 0 {
            let ops = sb.entry(prog, self.pc).and_then(|r| sb.ops_at(r));
            if let Some(ops) = ops {
                // Budget-capped tail of the superblock; each micro-op is one
                // retired instruction, exactly as if stepped individually.
                let n = (ops.len() as u64).min(gas) as usize;
                for op in &ops[..n] {
                    op.exec(&mut self.regs);
                }
                self.pc += n;
                self.icount += n as u64;
                gas -= n as u64;
                continue;
            }
            gas -= 1;
            if self.step(prog, mem, os)? == StepOutcome::Exited {
                return Ok(());
            }
        }
        Err(TrapKind::OutOfGas)
    }
}

/// A functional OS for testing: bump-allocator `malloc`, collected
/// `print_int`/`print_float` output, and **synchronous** MTTOP launches (each
/// thread of the task runs to completion, in tid order, inside the launch
/// syscall).
///
/// Synchronous launch means kernels that block on later CPU actions (e.g.
/// `cpu_mttop_barrier`) cannot be tested here — that is what the timing
/// machine is for. Data-parallel kernels (the common case) work fine.
#[derive(Clone, Debug, Default)]
pub struct FuncOs {
    /// Everything printed via `print_int` / `print_float`.
    pub printed: Vec<String>,
    next_heap: u64,
    next_ctx: u64,
}

impl FuncOs {
    /// Fresh OS state.
    pub fn new() -> FuncOs {
        FuncOs {
            printed: Vec::new(),
            next_heap: abi::HEAP_BASE,
            next_ctx: 64, // keep clear of CPU-thread stacks
        }
    }
}

impl Syscalls for FuncOs {
    fn syscall(
        &mut self,
        regs: &mut [u64; 32],
        mem: &mut FlatMem,
        prog: &Program,
    ) -> Result<(), TrapKind> {
        match regs[1] {
            sys::MALLOC => {
                let size = regs[2].max(1).next_multiple_of(8);
                regs[1] = self.next_heap;
                self.next_heap += size;
            }
            sys::FREE => {
                regs[1] = 0;
            }
            sys::PRINT_INT => {
                self.printed.push(format!("{}", regs[2] as i64));
                regs[1] = 0;
            }
            sys::PRINT_FLOAT => {
                self.printed.push(format!("{}", f64::from_bits(regs[2])));
                regs[1] = 0;
            }
            sys::MIFD_LAUNCH => {
                // Descriptor: {entry_pc, args_ptr, first_tid, last_tid}.
                let d = regs[2];
                let entry = mem.read(d, 8) as usize;
                let args = mem.read(d + 8, 8);
                let first = mem.read(d + 16, 8);
                let last = mem.read(d + 24, 8);
                for tid in first..=last {
                    self.next_ctx += 1;
                    let mut t = Interp::new(entry, self.next_ctx);
                    t.regs[1] = tid;
                    t.regs[2] = args;
                    if let Some(kexit) = prog.lookup("__kexit") {
                        t.regs[crate::abi::RA.0 as usize] = kexit as u64;
                    }
                    t.run(prog, mem, self, 200_000_000)?;
                }
                regs[1] = 0;
            }
            other => return Err(TrapKind::BadSyscall(other)),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn run(src: &str) -> (Interp, FlatMem, FuncOs) {
        let p = assemble(src).unwrap();
        let mut mem = FlatMem::new();
        let mut os = FuncOs::new();
        let mut t = Interp::new(p.entry("main"), 0);
        t.run(&p, &mut mem, &mut os, 1_000_000).unwrap();
        (t, mem, os)
    }

    #[test]
    fn arithmetic_and_branches() {
        // Sum 1..=10 with a loop.
        let (t, _, _) = run("main:
                li r8, 0      ; sum
                li r9, 1      ; i
             loop:
                add r8, r8, r9
                add r9, r9, 1
                li r10, 10
                bge r10, r9, loop
                mv r1, r8
                exit");
        assert_eq!(t.regs[1], 55);
    }

    #[test]
    fn memory_roundtrip_and_subword() {
        let (t, mem, _) = run("main:
                li r8, 0x1000
                li r9, 0x11223344AABBCCDD
                st8 r9, 0(r8)
                ld4 r1, 4(r8)
                ld1 r2, 0(r8)
                exit");
        assert_eq!(t.regs[1], 0x11223344);
        assert_eq!(t.regs[2], 0xDD);
        assert_eq!(mem.read(0x1000, 8), 0x11223344AABBCCDD);
    }

    #[test]
    fn calls_and_stack() {
        let (t, _, _) = run("main:
                li r1, 5
                call double
                call double
                exit
             double:
                add r1, r1, r1
                ret");
        assert_eq!(t.regs[1], 20);
    }

    #[test]
    fn recursion_factorial() {
        let (t, _, _) = run("main:
                li r1, 6
                call fact
                exit
             fact:                 ; r1 = n -> r1 = n!
                li r8, 2
                bge r1, r8, rec
                li r1, 1
                ret
             rec:
                sub r30, r30, 16
                st8 r31, 0(r30)
                st8 r1, 8(r30)
                sub r1, r1, 1
                call fact
                ld8 r9, 8(r30)
                mul r1, r1, r9
                ld8 r31, 0(r30)
                add r30, r30, 16
                ret");
        assert_eq!(t.regs[1], 720);
    }

    #[test]
    fn float_pipeline() {
        let (t, _, _) = run("main:
                lif r8, 3.0
                lif r9, 4.0
                fmul r8, r8, r8
                fmul r9, r9, r9
                fadd r8, r8, r9
                fsqrt r1, r8
                exit");
        assert_eq!(f64::from_bits(t.regs[1]), 5.0);
    }

    #[test]
    fn atomics_functional() {
        let (t, mem, _) = run("main:
                li r8, 0x2000
                li r9, 41
                st8 r9, 0(r8)
                amoinc r1, (r8)
                li r10, 42
                li r11, 99
                amocas r2, (r8), r10, r11
                exit");
        assert_eq!(t.regs[1], 41);
        assert_eq!(t.regs[2], 42);
        assert_eq!(mem.read(0x2000, 8), 99);
    }

    #[test]
    fn syscalls_malloc_print() {
        let (t, _, os) = run("main:
                li r1, 2       ; MALLOC
                li r2, 64
                syscall
                mv r8, r1      ; buffer
                li r1, 4       ; PRINT_INT
                li r2, -7
                syscall
                mv r1, r8
                exit");
        assert_eq!(os.printed, vec!["-7"]);
        assert_eq!(t.regs[1], abi::HEAP_BASE);
    }

    #[test]
    fn synchronous_launch_runs_all_threads() {
        // Kernel: out[tid] = tid * 2; launch tids 0..=7.
        let (_, mem, _) = run("main:
                li r8, 0x3000      ; descriptor
                li r9, @kernel
                st8 r9, 0(r8)
                li r9, 0x4000      ; args ptr (the out array)
                st8 r9, 8(r8)
                st8 r0, 16(r8)     ; first
                li r9, 7
                st8 r9, 24(r8)     ; last
                li r1, 1           ; MIFD_LAUNCH
                mv r2, r8
                syscall
                exit
             kernel:                ; r1 = tid, r2 = out
                mul r8, r1, 2
                mul r9, r1, 8
                add r9, r2, r9
                st8 r8, 0(r9)
                exit");
        for tid in 0..8u64 {
            assert_eq!(mem.read(0x4000 + tid * 8, 8), tid * 2, "tid {tid}");
        }
    }

    #[test]
    fn traps() {
        let p = assemble("main: jmp main\n").unwrap();
        let mut t = Interp::new(0, 0);
        let r = t.run(&p, &mut FlatMem::new(), &mut FuncOs::new(), 10);
        assert_eq!(r, Err(TrapKind::OutOfGas));

        let p = assemble("main: li r1, 77\n syscall\n").unwrap();
        let mut t = Interp::new(0, 0);
        let r = t.run(&p, &mut FlatMem::new(), &mut FuncOs::new(), 10);
        assert_eq!(r, Err(TrapKind::BadSyscall(77)));

        let p = assemble("main: nop\n").unwrap();
        let mut t = Interp::new(0, 0);
        let r = t.run(&p, &mut FlatMem::new(), &mut FuncOs::new(), 10);
        assert_eq!(r, Err(TrapKind::BadPc(1)));
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (t, _, _) = run("main:\n li r0, 99\n mv r1, r0\n exit\n");
        assert_eq!(t.regs[1], 0);
    }
}
