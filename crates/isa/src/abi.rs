//! The xthreads calling convention and address-space layout constants.

use crate::Reg;

/// Hardwired zero.
pub const ZERO: Reg = Reg(0);
/// First argument / return value.
pub const A0: Reg = Reg(1);
/// Second argument.
pub const A1: Reg = Reg(2);
/// Third argument.
pub const A2: Reg = Reg(3);
/// Fourth argument.
pub const A3: Reg = Reg(4);
/// Fifth argument.
pub const A4: Reg = Reg(5);
/// Sixth argument.
pub const A5: Reg = Reg(6);
/// First caller-saved temporary; `T0..=T_LAST` form the expression stack.
pub const T0: Reg = Reg(8);
/// Last caller-saved temporary.
pub const T_LAST: Reg = Reg(27);
/// Frame pointer.
pub const FP: Reg = Reg(29);
/// Stack pointer (grows down, 8-byte aligned).
pub const SP: Reg = Reg(30);
/// Return address (written by `call`).
pub const RA: Reg = Reg(31);

/// Virtual address of the global/data segment base.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Virtual address of the heap base.
pub const HEAP_BASE: u64 = 0x4000_0000;
/// Heap capacity in bytes.
pub const HEAP_LEN: u64 = 0x2000_0000; // 512 MiB
/// Virtual base of the per-thread stack area.
pub const STACK_BASE: u64 = 0x7000_0000;
/// Bytes of stack per hardware thread context.
pub const STACK_BYTES: u64 = 64 * 1024;

/// Top-of-stack (initial SP) for hardware thread context `ctx`.
///
/// Contexts are numbered CPU threads first, then MTTOP contexts; the 16-byte
/// red zone keeps a full descending stack off the next thread's region.
pub fn stack_top(ctx: u64) -> u64 {
    STACK_BASE + (ctx + 1) * STACK_BYTES - 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_tops_are_disjoint_and_aligned() {
        let a = stack_top(0);
        let b = stack_top(1);
        assert_eq!(a % 8, 0);
        assert_eq!(b - a, STACK_BYTES);
        assert!(a > STACK_BASE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // compile-time layout sanity check
    fn regions_do_not_overlap() {
        assert!(DATA_BASE < HEAP_BASE);
        assert!(HEAP_BASE + HEAP_LEN <= STACK_BASE);
    }
}
