//! Syscall numbers for the `syscall` instruction (CPU cores only).
//!
//! Convention: number in `r1`, arguments in `r2`–`r4`, result in `r1`.

/// Terminate the calling CPU thread.
pub const EXIT_THREAD: u64 = 0;
/// `write` to the MTTOP InterFace Device: launch a task.
/// Args: `r2` = pointer to a task descriptor
/// `{entry_pc, args_ptr, first_tid, last_tid}` (4 × 8 bytes; the CR3 is
/// appended by the kernel, §4.3). Returns 0 on success, 1 if the MIFD's
/// error register was set (not enough MTTOP thread contexts, §3.1).
pub const MIFD_LAUNCH: u64 = 1;
/// `malloc`: `r2` = size in bytes; returns the virtual address (0 on failure).
pub const MALLOC: u64 = 2;
/// `free`: `r2` = virtual address from [`MALLOC`].
pub const FREE: u64 = 3;
/// Debug print of `r2` as a signed integer.
pub const PRINT_INT: u64 = 4;
/// Spawn a CPU thread (pthread-create analogue): `r2` = entry PC,
/// `r3` = argument value (delivered in the new thread's `r1`).
/// Returns the new thread's context id, or -1 if no CPU core is free.
pub const SPAWN_CTHREAD: u64 = 6;
/// Unmap the page containing `r2` and perform a full TLB shootdown
/// (CPU IPIs + MTTOP flush-all, §3.2.1). Returns 0.
pub const MUNMAP: u64 = 9;
/// Debug print of `r2` as a float (bit pattern).
pub const PRINT_FLOAT: u64 = 10;
