//! Decoded-HIR superblocks: pre-resolved micro-ops and a per-core cache.
//!
//! Matching the [`Instr`] enum (and re-resolving its [`Operand`]s) per
//! instruction per lane dominates host time on compute-bound workloads. This
//! module decodes **straight-line runs** of timing-free instructions — from an
//! entry PC up to, but not including, the next control-flow or memory-timing
//! boundary — into a flat buffer of [`MicroOp`]s that a core can execute with
//! one bounds check and no enum re-matching per retired instruction.
//!
//! # Superblock boundaries
//!
//! Only instructions that neither touch data memory nor redirect the PC are
//! decodable: [`Instr::Alu`], [`Instr::Li`], [`Instr::Fence`] and
//! [`Instr::Nop`]. Everything else — branches, jumps, calls, `syscall`,
//! `exit`, and all memory instructions (whose timing flows through the TLB and
//! cache hierarchy) — terminates the block and executes on the core's ordinary
//! path. A superblock therefore never carries timing or trap side effects of
//! its own: executing its micro-ops one at a time is architecturally identical
//! to interpreting the corresponding `Instr`s one at a time.
//!
//! # Determinism
//!
//! The cache is pure host-side memoization. Micro-ops are derived from the
//! program text alone, cores still charge time and retire counters per
//! instruction exactly as before, and no decoded state is ever serialized into
//! snapshots (it is rebuilt on demand after restore). Cache statistics live in
//! [`SbStats`], outside the architectural `Stats`, so `RunReport`s are
//! bit-identical with the cache on or off.
//!
//! # The `r0` invariant
//!
//! [`MicroOp::exec`] reads source registers without the `r == 0` guard the
//! slow paths use. This is sound because every writer in the system (cores,
//! interpreter, syscall glue) already refuses to write `r0`, so `regs[0]` is
//! invariantly zero; the decoder additionally turns any instruction *writing*
//! `r0` into [`MicroOp::Skip`], which preserves the invariant from inside the
//! fast path itself.

use std::time::Instant;

use crate::instr::{AluOp, Instr, Operand};
use crate::Program;

/// A pre-resolved micro-op. `Instr` operands (`Reg` wrappers, `Operand`
/// register/immediate split) are flattened at decode time so execution is a
/// couple of array indexes and one `AluOp::apply`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MicroOp {
    /// `regs[rd] = op(regs[ra], regs[rb])` — `rd != 0`.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination register index (never 0).
        rd: u8,
        /// First source register index.
        ra: u8,
        /// Second source register index.
        rb: u8,
    },
    /// `regs[rd] = op(regs[ra], imm)` — `rd != 0`.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination register index (never 0).
        rd: u8,
        /// First source register index.
        ra: u8,
        /// Pre-converted immediate.
        imm: u64,
    },
    /// `regs[rd] = imm` — `rd != 0`.
    Li {
        /// Destination register index (never 0).
        rd: u8,
        /// Pre-converted immediate.
        imm: u64,
    },
    /// Architectural no-op: `fence`, `nop`, or any ALU/`li` writing `r0`.
    Skip,
}

impl MicroOp {
    /// Executes the micro-op over a register file. The caller advances the PC
    /// and charges time; this only performs the architectural register write.
    #[inline(always)]
    pub fn exec(self, regs: &mut [u64; 32]) {
        debug_assert_eq!(regs[0], 0, "r0 invariant violated");
        match self {
            MicroOp::AluRR { op, rd, ra, rb } => {
                regs[rd as usize] = op.apply(regs[ra as usize], regs[rb as usize]);
            }
            MicroOp::AluRI { op, rd, ra, imm } => {
                regs[rd as usize] = op.apply(regs[ra as usize], imm);
            }
            MicroOp::Li { rd, imm } => regs[rd as usize] = imm,
            MicroOp::Skip => {}
        }
    }

    /// Executes the micro-op over every register file yielded by `regs` —
    /// the SIMT case. Semantically identical to calling [`MicroOp::exec`] per
    /// file; the point is that the enum dispatch happens once per warp-op
    /// instead of once per lane.
    #[inline(always)]
    pub fn exec_all<'a, I: IntoIterator<Item = &'a mut [u64; 32]>>(self, regs: I) {
        match self {
            MicroOp::AluRR { op, rd, ra, rb } => {
                for r in regs {
                    debug_assert_eq!(r[0], 0, "r0 invariant violated");
                    r[rd as usize] = op.apply(r[ra as usize], r[rb as usize]);
                }
            }
            MicroOp::AluRI { op, rd, ra, imm } => {
                for r in regs {
                    debug_assert_eq!(r[0], 0, "r0 invariant violated");
                    r[rd as usize] = op.apply(r[ra as usize], imm);
                }
            }
            MicroOp::Li { rd, imm } => {
                for r in regs {
                    r[rd as usize] = imm;
                }
            }
            MicroOp::Skip => {}
        }
    }
}

/// Whether `instr` may appear inside a superblock (no memory timing, no
/// control flow, no traps).
#[inline]
pub fn decodable(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Alu { .. } | Instr::Li { .. } | Instr::Fence | Instr::Nop
    )
}

fn decode_one(instr: &Instr) -> Option<MicroOp> {
    Some(match *instr {
        Instr::Alu { op, rd, ra, rb } => {
            if rd.0 == 0 {
                MicroOp::Skip
            } else {
                match rb {
                    Operand::Reg(r) => MicroOp::AluRR {
                        op,
                        rd: rd.0,
                        ra: ra.0,
                        rb: r.0,
                    },
                    Operand::Imm(i) => MicroOp::AluRI {
                        op,
                        rd: rd.0,
                        ra: ra.0,
                        imm: i as u64,
                    },
                }
            }
        }
        Instr::Li { rd, imm } => {
            if rd.0 == 0 {
                MicroOp::Skip
            } else {
                MicroOp::Li {
                    rd: rd.0,
                    imm: imm as u64,
                }
            }
        }
        Instr::Fence | Instr::Nop => MicroOp::Skip,
        _ => return None,
    })
}

/// Decodes the straight-line run starting at `entry`. Empty iff the entry
/// instruction is itself a boundary (or the PC is outside the text).
pub fn decode_run(text: &[Instr], entry: usize) -> Vec<MicroOp> {
    let mut ops = Vec::new();
    if let Some(tail) = text.get(entry..) {
        for instr in tail {
            match decode_one(instr) {
                Some(op) => ops.push(op),
                None => break,
            }
        }
    }
    ops
}

/// Host-side superblock-cache counters (never part of `Stats`/`RunReport`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SbStats {
    /// Entry lookups served from an already-decoded slot.
    pub hits: u64,
    /// Entry lookups that had to decode (equals blocks decoded).
    pub misses: u64,
    /// Slots recycled by the LRU policy.
    pub evictions: u64,
    /// Total micro-ops produced by all decodes.
    pub decoded_ops: u64,
    /// Host nanoseconds spent decoding.
    pub decode_ns: u64,
}

impl SbStats {
    /// Accumulates `other` into `self` (for aggregating across cores).
    pub fn merge(&mut self, other: &SbStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.decoded_ops += other.decoded_ops;
        self.decode_ns += other.decode_ns;
    }

    /// Mean micro-ops per decoded superblock (0.0 if nothing was decoded).
    pub fn mean_decoded_len(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.decoded_ops as f64 / self.misses as f64
        }
    }
}

/// A validated reference to a cached superblock. Holders must revalidate
/// through [`SbCache::ops_at`] (the generation check) before every use, so a
/// stale reference after an eviction is harmless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SbRef {
    /// Slot index.
    pub slot: u32,
    /// Slot generation at lookup time.
    pub gen: u32,
}

#[derive(Debug)]
struct Slot {
    entry: u32,
    gen: u32,
    last_use: u64,
    ops: Box<[MicroOp]>,
}

/// Per-core decoded-superblock cache: entry PC → micro-op buffer, bounded to
/// `capacity` blocks with strict least-recently-used eviction (the LRU clock
/// is a monotonic lookup counter, so eviction order is a pure function of the
/// lookup sequence — deterministic across runs and hosts).
///
/// The cache binds to one program at a time, keyed by the identity of its
/// text section; looking up against a different program flushes everything
/// (invalidate-on-swap). Within a `Machine` the program never changes, so in
/// practice this fires once at first use.
#[derive(Debug)]
pub struct SbCache {
    enabled: bool,
    capacity: usize,
    /// Entry PC → slot index + 1 (0 = not cached). Sized to the bound text.
    index: Vec<u32>,
    slots: Vec<Slot>,
    tick: u64,
    /// Identity of the bound text: (address, length).
    prog_key: (usize, usize),
    stats: SbStats,
}

impl SbCache {
    /// Default capacity in superblocks; far above any hot working set in the
    /// paper's workloads, so evictions only occur on pathological programs.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An enabled cache holding at most `capacity` decoded blocks.
    pub fn new(capacity: usize) -> SbCache {
        SbCache {
            enabled: true,
            capacity: capacity.max(1),
            index: Vec::new(),
            slots: Vec::new(),
            tick: 0,
            prog_key: (0, 0),
            stats: SbStats::default(),
        }
    }

    /// Enables or disables the cache (the `SystemConfig::sb_cache` ablation
    /// knob). Disabled, every lookup returns `None` and cores use their
    /// ordinary decode-per-instruction path.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether lookups can succeed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Counters so far.
    pub fn stats(&self) -> &SbStats {
        &self.stats
    }

    /// Drops all decoded blocks (bumping generations so outstanding
    /// [`SbRef`]s go stale) but keeps counters and the program binding.
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.gen = slot.gen.wrapping_add(1);
            slot.ops = Box::new([]);
        }
        self.slots.clear();
        self.index.iter_mut().for_each(|e| *e = 0);
    }

    fn bind(&mut self, prog: &Program) {
        let key = (prog.text.as_ptr() as usize, prog.text.len());
        if self.prog_key != key {
            self.flush();
            self.index = vec![0; prog.text.len()];
            self.prog_key = key;
        }
    }

    /// Looks up (decoding on miss) the superblock entered at `pc`. Returns
    /// `None` when disabled, when `pc` is out of range, or when the entry
    /// instruction is a boundary (nothing to decode).
    pub fn entry(&mut self, prog: &Program, pc: usize) -> Option<SbRef> {
        if !self.enabled {
            return None;
        }
        self.bind(prog);
        let idx = *self.index.get(pc)?;
        self.tick += 1;
        if idx != 0 {
            let slot = &mut self.slots[(idx - 1) as usize];
            slot.last_use = self.tick;
            self.stats.hits += 1;
            return Some(SbRef {
                slot: idx - 1,
                gen: slot.gen,
            });
        }
        if !decodable(&prog.text[pc]) {
            return None;
        }
        let t0 = Instant::now();
        let ops = decode_run(&prog.text, pc).into_boxed_slice();
        self.stats.decode_ns += t0.elapsed().as_nanos() as u64;
        self.stats.misses += 1;
        self.stats.decoded_ops += ops.len() as u64;
        let si = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                entry: pc as u32,
                gen: 0,
                last_use: self.tick,
                ops,
            });
            self.slots.len() - 1
        } else {
            // Strict LRU: recycle the slot with the oldest last_use (ties
            // impossible — the clock is strictly monotonic).
            let si = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
                .expect("capacity >= 1");
            let slot = &mut self.slots[si];
            self.index[slot.entry as usize] = 0;
            slot.entry = pc as u32;
            slot.gen = slot.gen.wrapping_add(1);
            slot.last_use = self.tick;
            slot.ops = ops;
            self.stats.evictions += 1;
            si
        };
        self.index[pc] = si as u32 + 1;
        Some(SbRef {
            slot: si as u32,
            gen: self.slots[si].gen,
        })
    }

    /// The micro-ops behind `r`, or `None` if the slot was since evicted
    /// (generation mismatch) — the revalidation step for held cursors.
    #[inline]
    pub fn ops_at(&self, r: SbRef) -> Option<&[MicroOp]> {
        let slot = self.slots.get(r.slot as usize)?;
        (slot.gen == r.gen).then_some(&slot.ops[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn prog(src: &str) -> Program {
        assemble(src).unwrap()
    }

    #[test]
    fn decode_stops_at_boundaries() {
        let p = prog("main:
                li r1, 6
                mul r1, r1, 7
                fence
                nop
                st8 r1, 0(r2)
                exit");
        let ops = decode_run(&p.text, 0);
        assert_eq!(ops.len(), 4, "run ends before the store");
        assert_eq!(ops[0], MicroOp::Li { rd: 1, imm: 6 });
        assert!(matches!(ops[1], MicroOp::AluRI { op: AluOp::Mul, rd: 1, ra: 1, imm: 7 }));
        assert_eq!(ops[2], MicroOp::Skip);
        assert_eq!(ops[3], MicroOp::Skip);
        assert_eq!(decode_run(&p.text, 4).len(), 0, "entry on a boundary");
        assert_eq!(decode_run(&p.text, 99).len(), 0, "entry out of range");
    }

    #[test]
    fn writes_to_r0_become_skips() {
        let p = prog("main:
                li r0, 99
                add r0, r1, r2
                exit");
        let ops = decode_run(&p.text, 0);
        assert_eq!(ops, vec![MicroOp::Skip, MicroOp::Skip]);
        let mut regs = [0u64; 32];
        regs[1] = 5;
        regs[2] = 7;
        for op in ops {
            op.exec(&mut regs);
        }
        assert_eq!(regs[0], 0, "r0 stays hardwired zero");
    }

    #[test]
    fn exec_matches_interpreter_semantics() {
        // Differential check: every decodable instruction form, micro-op exec
        // vs `Interp::step`.
        let src = "main:
                li r1, -3
                li r2, 10
                add r3, r1, r2
                sub r4, r2, 5
                mul r5, r3, r4
                div r6, r5, r1
                and r7, r2, 6
                shl r8, r2, r1
                slt r9, r1, r2
                lif r10, 2.0
                fmul r11, r10, r10
                fsqrt r12, r11
                mv r13, r12
                fence
                nop
                exit";
        let p = prog(src);
        let mut interp = crate::Interp::new(0, 0);
        let mut mem = crate::FlatMem::new();
        let mut os = crate::FuncOs::new();
        let ops = decode_run(&p.text, 0);
        assert_eq!(ops.len(), p.text.len() - 1, "everything but exit decodes");

        let mut regs = interp.regs;
        for op in &ops {
            op.exec(&mut regs);
        }
        interp.run(&p, &mut mem, &mut os, 1000).unwrap();
        assert_eq!(regs, interp.regs);
    }

    #[test]
    fn cache_hits_misses_and_program_swap() {
        let p = prog("main:\n li r1, 1\n add r1, r1, 1\n exit\n");
        let mut c = SbCache::new(16);
        let r1 = c.entry(&p, 0).unwrap();
        assert_eq!((c.stats().hits, c.stats().misses), (0, 1));
        assert_eq!(c.ops_at(r1).unwrap().len(), 2);
        let r2 = c.entry(&p, 0).unwrap();
        assert_eq!((c.stats().hits, c.stats().misses), (1, 1));
        assert_eq!(r1, r2);
        assert_eq!(c.stats().decoded_ops, 2);
        assert!((c.stats().mean_decoded_len() - 2.0).abs() < 1e-9);
        // Boundary entry: no block.
        assert!(c.entry(&p, 2).is_none());

        // A different program invalidates everything.
        let q = prog("main:\n li r2, 9\n exit\n");
        let r3 = c.entry(&q, 0).unwrap();
        assert_eq!(c.ops_at(r3).unwrap(), &[MicroOp::Li { rd: 2, imm: 9 }]);
        assert!(
            c.ops_at(r1).is_none() || c.ops_at(r1).unwrap() == c.ops_at(r3).unwrap(),
            "stale refs must not resolve to the old program's ops"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Capacity 2; touch pattern makes pc=0 most recent, pc=2 LRU.
        let p = prog("main:
                li r1, 1
                exit
                li r2, 2
                exit
                li r3, 3
                exit");
        let mut c = SbCache::new(2);
        let r0 = c.entry(&p, 0).unwrap();
        let r2 = c.entry(&p, 2).unwrap();
        c.entry(&p, 0).unwrap(); // touch 0 → 2 becomes LRU
        let r4 = c.entry(&p, 4).unwrap(); // must evict pc=2
        assert_eq!(c.stats().evictions, 1);
        assert!(c.ops_at(r2).is_none(), "evicted ref revalidation fails");
        assert!(c.ops_at(r0).is_some());
        assert_eq!(c.ops_at(r4).unwrap(), &[MicroOp::Li { rd: 3, imm: 3 }]);
        // Re-entering the evicted block decodes again (miss), evicting the
        // new LRU (pc=0).
        c.entry(&p, 2).unwrap();
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn disabled_cache_never_resolves() {
        let p = prog("main:\n li r1, 1\n exit\n");
        let mut c = SbCache::new(16);
        c.set_enabled(false);
        assert!(c.entry(&p, 0).is_none());
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn unary_ops_ignore_second_operand_source() {
        // `fsqrt r1, r2` decodes with an arbitrary rb; exec must match apply.
        let p = prog("main:\n fsqrt r1, r2\n exit\n");
        let ops = decode_run(&p.text, 0);
        let mut regs = [0u64; 32];
        regs[2] = 9.0f64.to_bits();
        ops[0].exec(&mut regs);
        assert_eq!(f64::from_bits(regs[1]), 3.0);
    }
}
