//! Executable images.

use std::collections::HashMap;

use crate::Instr;

/// An executable image: one text section holding both the CPU and MTTOP code
/// (the paper's toolchain embeds the MTTOP code in the CPU executable's text
/// segment, §4.2/Figure 2), plus symbols and initialized data.
///
/// PCs are indices into [`Program::text`].
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The instructions.
    pub text: Vec<Instr>,
    /// Label → PC.
    pub symbols: HashMap<String, usize>,
    /// Size of the global data segment in bytes (mapped at `abi::DATA_BASE`).
    pub globals_size: u64,
    /// Initialized data: (offset into the data segment, bytes).
    pub data: Vec<(u64, Vec<u8>)>,
}

impl Program {
    /// PC of a named symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not exist — programs are linked before use.
    pub fn entry(&self, symbol: &str) -> usize {
        *self
            .symbols
            .get(symbol)
            .unwrap_or_else(|| panic!("undefined symbol `{symbol}`"))
    }

    /// PC of a named symbol, if defined.
    pub fn lookup(&self, symbol: &str) -> Option<usize> {
        self.symbols.get(symbol).copied()
    }

    /// Disassembles the whole program with PC labels.
    pub fn disassemble(&self) -> String {
        let mut by_pc: HashMap<usize, Vec<&str>> = HashMap::new();
        for (name, &pc) in &self.symbols {
            by_pc.entry(pc).or_default().push(name);
        }
        let mut out = String::new();
        for (pc, instr) in self.text.iter().enumerate() {
            if let Some(names) = by_pc.get(&pc) {
                for n in names {
                    out.push_str(n);
                    out.push_str(":\n");
                }
            }
            out.push_str(&format!("{pc:5}:  {instr}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instr;

    #[test]
    fn entry_and_lookup() {
        let mut p = Program::default();
        p.text.push(Instr::Nop);
        p.symbols.insert("main".into(), 0);
        assert_eq!(p.entry("main"), 0);
        assert_eq!(p.lookup("main"), Some(0));
        assert_eq!(p.lookup("nope"), None);
    }

    #[test]
    #[should_panic(expected = "undefined symbol")]
    fn missing_entry_panics() {
        Program::default().entry("main");
    }

    #[test]
    fn disassemble_includes_labels() {
        let mut p = Program::default();
        p.text.push(Instr::Nop);
        p.text.push(Instr::Exit);
        p.symbols.insert("main".into(), 0);
        let d = p.disassemble();
        assert!(d.contains("main:"));
        assert!(d.contains("exit"));
    }
}
