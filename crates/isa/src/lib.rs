//! HIR — the heterogeneous intermediate ISA shared by CPU and MTTOP cores.
//!
//! The paper's simulated chip runs x86 on the CPU cores and an "Alpha-like
//! ISA that has been modified to be data parallel" (similar to PTX) on the
//! MTTOP cores, and explicitly factors core pipelines out of the evaluation
//! (§5.1). This reproduction uses **one** RISC-like 64-bit ISA for both core
//! types — executed scalar on CPUs and SIMT (8 lanes/warp) on MTTOPs — which
//! preserves the property the paper actually measures: the instruction and
//! memory streams that drive the coherent memory system.
//!
//! The crate provides:
//!
//! * [`Instr`] and friends — the instruction set: 64-bit integer & IEEE-754
//!   double ALU ops, 1/2/4/8-byte loads/stores, the paper's §3.2.4 atomics
//!   (`cas`, `add`, `inc`, `dec`, `exch`), branches, direct/indirect calls,
//!   `syscall` (CPU only), `fence`, and `exit`.
//! * [`assemble`] — a text assembler with labels (and `Display`-based
//!   disassembly on every instruction).
//! * [`Program`] — the executable image: one text section holding both CPU
//!   and MTTOP code (as in the paper's toolchain, Figure 2) plus symbols.
//! * [`Interp`] — a *functional* reference interpreter over flat memory, used
//!   to test the compiler and as the semantic oracle for the timing cores.
//!
//! # Registers and ABI
//!
//! 32 general 64-bit registers. `r0` reads as zero. The xthreads ABI:
//! `r1`–`r6` arguments / `r1` return value, `r8`–`r27` temporaries,
//! `r29` frame pointer, `r30` stack pointer, `r31` return address.
//! Floating point uses the same registers (IEEE-754 bit patterns).

mod asm;
mod instr;
mod interp;
mod program;

pub mod abi;
pub mod decode;
pub mod sys;

pub use asm::{assemble, AsmError};
pub use decode::{decodable, decode_run, MicroOp, SbCache, SbRef, SbStats};
pub use instr::{AluOp, AmoKind, Cond, Instr, Operand, Reg};
pub use interp::{FlatMem, FuncOs, Interp, StepOutcome, Syscalls, TrapKind};
pub use program::Program;
