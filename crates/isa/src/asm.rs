//! Two-pass text assembler for HIR.
//!
//! Syntax, by example:
//!
//! ```text
//! ; comments run to end of line
//! loop:
//!     li   r8, 0x10        ; immediates: decimal or 0x-hex, signed
//!     lif  r9, 1.5         ; float immediate (IEEE-754 bits)
//!     li   r10, @kernel    ; label address (PC) as immediate
//!     add  r8, r8, 1       ; last ALU operand: register or immediate
//!     mv   r11, r8         ; alias for add r11, r8, 0
//!     fsqrt r9, r9         ; unary ALU ops take two operands
//!     ld8  r12, 8(r30)     ; ld1/ld2/ld4/ld8 (ld = ld8), offset(base)
//!     st8  r12, 0(r8)      ; st1/st2/st4/st8 (st = st8)
//!     amoadd r13, (r8), r12
//!     amocas r13, (r8), r12, r14
//!     amoinc r13, (r8)
//!     beq  r8, r0, done    ; beq/bne/blt/bge/bltu/bgeu
//!     jmp  loop
//! done:
//!     ret                  ; alias for jr r31
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, AmoKind, Cond, Instr, Operand, Reg};
use crate::Program;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assembles HIR source into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics/registers, duplicate labels, or undefined label
/// references.
///
/// # Examples
///
/// ```
/// let p = ccsvm_isa::assemble("main:\n li r1, 7\n exit\n").unwrap();
/// assert_eq!(p.entry("main"), 0);
/// assert_eq!(p.text.len(), 2);
/// ```
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: strip comments, collect labels and raw statements.
    let mut stmts: Vec<(usize, String)> = Vec::new();
    let mut symbols: HashMap<String, usize> = HashMap::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let mut line = raw;
        if let Some(p) = line.find([';', '#']) {
            line = &line[..p];
        }
        let mut rest = line.trim();
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                return err(line_no, format!("bad label `{label}`"));
            }
            if symbols.insert(label.to_string(), stmts.len()).is_some() {
                return err(line_no, format!("duplicate label `{label}`"));
            }
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            stmts.push((line_no, rest.to_string()));
        }
    }

    // Pass 2: parse instructions.
    let mut text = Vec::with_capacity(stmts.len());
    for (line_no, stmt) in &stmts {
        text.push(parse_stmt(*line_no, stmt, &symbols)?);
    }
    Ok(Program {
        text,
        symbols,
        globals_size: 0,
        data: Vec::new(),
    })
}

fn parse_stmt(
    line: usize,
    stmt: &str,
    symbols: &HashMap<String, usize>,
) -> Result<Instr, AsmError> {
    let (mnemonic, rest) = match stmt.find(char::is_whitespace) {
        Some(p) => (&stmt[..p], stmt[p..].trim()),
        None => (stmt, ""),
    };
    let ops: Vec<String> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(|s| s.trim().to_string()).collect()
    };
    let nops = ops.len();
    let want = |n: usize| -> Result<(), AsmError> {
        if nops == n {
            Ok(())
        } else {
            err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {nops}"),
            )
        }
    };

    let alu_binary = |op: AluOp| -> Result<Instr, AsmError> {
        want(3)?;
        Ok(Instr::Alu {
            op,
            rd: reg(line, &ops[0])?,
            ra: reg(line, &ops[1])?,
            rb: operand(line, &ops[2], symbols)?,
        })
    };
    let alu_unary = |op: AluOp| -> Result<Instr, AsmError> {
        want(2)?;
        Ok(Instr::Alu {
            op,
            rd: reg(line, &ops[0])?,
            ra: reg(line, &ops[1])?,
            rb: Operand::Reg(Reg::ZERO),
        })
    };
    let branch = |cond: Cond| -> Result<Instr, AsmError> {
        want(3)?;
        Ok(Instr::Br {
            cond,
            ra: reg(line, &ops[0])?,
            rb: reg(line, &ops[1])?,
            target: label(line, &ops[2], symbols)?,
        })
    };
    let load = |size: u8| -> Result<Instr, AsmError> {
        want(2)?;
        let (off, base) = mem_operand(line, &ops[1])?;
        Ok(Instr::Ld {
            rd: reg(line, &ops[0])?,
            base,
            off,
            size,
        })
    };
    let store = |size: u8| -> Result<Instr, AsmError> {
        want(2)?;
        let (off, base) = mem_operand(line, &ops[1])?;
        Ok(Instr::St {
            rs: reg(line, &ops[0])?,
            base,
            off,
            size,
        })
    };
    let amo = |op: AmoKind, n: usize| -> Result<Instr, AsmError> {
        want(n)?;
        let addr = paren_reg(line, &ops[1])?;
        Ok(Instr::Amo {
            op,
            rd: reg(line, &ops[0])?,
            addr,
            a: if n >= 3 {
                reg(line, &ops[2])?
            } else {
                Reg::ZERO
            },
            b: if n >= 4 {
                reg(line, &ops[3])?
            } else {
                Reg::ZERO
            },
        })
    };

    match mnemonic {
        "add" => alu_binary(AluOp::Add),
        "sub" => alu_binary(AluOp::Sub),
        "mul" => alu_binary(AluOp::Mul),
        "div" => alu_binary(AluOp::Div),
        "rem" => alu_binary(AluOp::Rem),
        "and" => alu_binary(AluOp::And),
        "or" => alu_binary(AluOp::Or),
        "xor" => alu_binary(AluOp::Xor),
        "shl" => alu_binary(AluOp::Shl),
        "shr" => alu_binary(AluOp::Shr),
        "sar" => alu_binary(AluOp::Sar),
        "slt" => alu_binary(AluOp::Slt),
        "sltu" => alu_binary(AluOp::Sltu),
        "seq" => alu_binary(AluOp::Seq),
        "sne" => alu_binary(AluOp::Sne),
        "sle" => alu_binary(AluOp::Sle),
        "sgt" => alu_binary(AluOp::Sgt),
        "fadd" => alu_binary(AluOp::FAdd),
        "fsub" => alu_binary(AluOp::FSub),
        "fmul" => alu_binary(AluOp::FMul),
        "fdiv" => alu_binary(AluOp::FDiv),
        "fmin" => alu_binary(AluOp::FMin),
        "fmax" => alu_binary(AluOp::FMax),
        "flt" => alu_binary(AluOp::FLt),
        "fle" => alu_binary(AluOp::FLe),
        "feq" => alu_binary(AluOp::FEq),
        "fsqrt" => alu_unary(AluOp::FSqrt),
        "fneg" => alu_unary(AluOp::FNeg),
        "fabs" => alu_unary(AluOp::FAbs),
        "i2f" => alu_unary(AluOp::I2F),
        "f2i" => alu_unary(AluOp::F2I),
        "mv" => {
            want(2)?;
            Ok(Instr::Alu {
                op: AluOp::Add,
                rd: reg(line, &ops[0])?,
                ra: reg(line, &ops[1])?,
                rb: Operand::Imm(0),
            })
        }
        "li" => {
            want(2)?;
            let imm = match operand(line, &ops[1], symbols)? {
                Operand::Imm(i) => i,
                Operand::Reg(_) => return err(line, "li takes an immediate"),
            };
            Ok(Instr::Li {
                rd: reg(line, &ops[0])?,
                imm,
            })
        }
        "lif" => {
            want(2)?;
            let f: f64 = ops[1].parse().map_err(|_| AsmError {
                line,
                message: format!("bad float `{}`", ops[1]),
            })?;
            Ok(Instr::Li {
                rd: reg(line, &ops[0])?,
                imm: f.to_bits() as i64,
            })
        }
        "ld" | "ld8" => load(8),
        "ld4" => load(4),
        "ld2" => load(2),
        "ld1" => load(1),
        "st" | "st8" => store(8),
        "st4" => store(4),
        "st2" => store(2),
        "st1" => store(1),
        "amocas" => amo(AmoKind::Cas, 4),
        "amoadd" => amo(AmoKind::Add, 3),
        "amoswap" => amo(AmoKind::Exch, 3),
        "amoinc" => amo(AmoKind::Inc, 2),
        "amodec" => amo(AmoKind::Dec, 2),
        "beq" => branch(Cond::Eq),
        "bne" => branch(Cond::Ne),
        "blt" => branch(Cond::LtS),
        "bge" => branch(Cond::GeS),
        "bltu" => branch(Cond::LtU),
        "bgeu" => branch(Cond::GeU),
        "jmp" => {
            want(1)?;
            Ok(Instr::Jmp {
                target: label(line, &ops[0], symbols)?,
            })
        }
        "jr" => {
            want(1)?;
            Ok(Instr::JmpReg {
                rs: reg(line, &ops[0])?,
            })
        }
        "ret" => {
            want(0)?;
            Ok(Instr::JmpReg { rs: crate::abi::RA })
        }
        "call" => {
            want(1)?;
            Ok(Instr::Call {
                target: label(line, &ops[0], symbols)?,
            })
        }
        "callr" => {
            want(1)?;
            Ok(Instr::CallReg {
                rs: reg(line, &ops[0])?,
            })
        }
        "syscall" => {
            want(0)?;
            Ok(Instr::Syscall)
        }
        "fence" => {
            want(0)?;
            Ok(Instr::Fence)
        }
        "exit" => {
            want(0)?;
            Ok(Instr::Exit)
        }
        "nop" => {
            want(0)?;
            Ok(Instr::Nop)
        }
        other => err(line, format!("unknown mnemonic `{other}`")),
    }
}

fn reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    let Some(num) = s.strip_prefix('r') else {
        return err(line, format!("expected register, got `{s}`"));
    };
    match num.parse::<u8>() {
        Ok(n) if n < 32 => Ok(Reg(n)),
        _ => err(line, format!("bad register `{s}`")),
    }
}

fn imm(line: usize, s: &str) -> Result<i64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value: Option<i64> = if let Some(hex) = body.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok().map(|v| v as i64)
    } else {
        body.parse().ok()
    };
    match value {
        Some(v) => Ok(if neg { v.wrapping_neg() } else { v }),
        None => err(line, format!("bad immediate `{s}`")),
    }
}

fn label(line: usize, s: &str, symbols: &HashMap<String, usize>) -> Result<usize, AsmError> {
    let name = s.strip_prefix('@').unwrap_or(s);
    symbols.get(name).copied().ok_or_else(|| AsmError {
        line,
        message: format!("undefined label `{name}`"),
    })
}

fn operand(line: usize, s: &str, symbols: &HashMap<String, usize>) -> Result<Operand, AsmError> {
    if let Some(name) = s.strip_prefix('@') {
        let pc = symbols.get(name).copied().ok_or_else(|| AsmError {
            line,
            message: format!("undefined label `{name}`"),
        })?;
        return Ok(Operand::Imm(pc as i64));
    }
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) {
        return Ok(Operand::Reg(reg(line, s)?));
    }
    Ok(Operand::Imm(imm(line, s)?))
}

/// Parses `offset(base)` or `(base)`.
fn mem_operand(line: usize, s: &str) -> Result<(i64, Reg), AsmError> {
    let Some(open) = s.find('(') else {
        return err(line, format!("expected offset(reg), got `{s}`"));
    };
    let Some(close) = s.find(')') else {
        return err(line, format!("missing `)` in `{s}`"));
    };
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        imm(line, off_str)?
    };
    Ok((off, reg(line, s[open + 1..close].trim())?))
}

fn paren_reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    let (off, base) = mem_operand(line, s)?;
    if off != 0 {
        return err(line, "atomics take a bare (reg) address");
    }
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi;

    #[test]
    fn basic_program() {
        let p =
            assemble("start:\n  li r8, 5\n  add r8, r8, 3\n  beq r8, r0, start\n  exit\n").unwrap();
        assert_eq!(p.text.len(), 4);
        assert_eq!(p.entry("start"), 0);
        assert_eq!(
            p.text[1],
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg(8),
                ra: Reg(8),
                rb: Operand::Imm(3)
            }
        );
        assert_eq!(
            p.text[2],
            Instr::Br {
                cond: Cond::Eq,
                ra: Reg(8),
                rb: Reg(0),
                target: 0
            }
        );
    }

    #[test]
    fn forward_references_and_same_line_labels() {
        let p = assemble("  jmp end\nmid: nop\nend: exit\n").unwrap();
        assert_eq!(p.text[0], Instr::Jmp { target: 2 });
        assert_eq!(p.entry("mid"), 1);
    }

    #[test]
    fn loads_stores_and_offsets() {
        let p = assemble("  ld8 r1, -16(r30)\n  st4 r2, (r9)\n  ld1 r3, 0x10(r4)\n").unwrap();
        assert_eq!(
            p.text[0],
            Instr::Ld {
                rd: Reg(1),
                base: abi::SP,
                off: -16,
                size: 8
            }
        );
        assert_eq!(
            p.text[1],
            Instr::St {
                rs: Reg(2),
                base: Reg(9),
                off: 0,
                size: 4
            }
        );
        assert_eq!(
            p.text[2],
            Instr::Ld {
                rd: Reg(3),
                base: Reg(4),
                off: 16,
                size: 1
            }
        );
    }

    #[test]
    fn atomics() {
        let p = assemble("  amocas r1, (r2), r3, r4\n  amoinc r5, (r6)\n  amoadd r7, (r8), r9\n")
            .unwrap();
        assert_eq!(
            p.text[0],
            Instr::Amo {
                op: AmoKind::Cas,
                rd: Reg(1),
                addr: Reg(2),
                a: Reg(3),
                b: Reg(4)
            }
        );
        assert_eq!(
            p.text[1],
            Instr::Amo {
                op: AmoKind::Inc,
                rd: Reg(5),
                addr: Reg(6),
                a: Reg(0),
                b: Reg(0)
            }
        );
    }

    #[test]
    fn label_as_immediate_for_function_pointers() {
        let p = assemble("main:\n  li r1, @kernel\n  exit\nkernel:\n  exit\n").unwrap();
        assert_eq!(p.text[0], Instr::Li { rd: Reg(1), imm: 2 });
    }

    #[test]
    fn float_immediates_and_aliases() {
        let p = assemble("  lif r8, 2.5\n  mv r9, r8\n  ret\n").unwrap();
        assert_eq!(
            p.text[0],
            Instr::Li {
                rd: Reg(8),
                imm: 2.5f64.to_bits() as i64
            }
        );
        assert_eq!(p.text[2], Instr::JmpReg { rs: abi::RA });
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("; header\n\n  nop ; trailing\n  # python style\n  exit\n").unwrap();
        assert_eq!(p.text.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(assemble("  nop\n  bogus r1\n").unwrap_err().line, 2);
        assert!(assemble("  li r99, 1\n")
            .unwrap_err()
            .message
            .contains("bad register"));
        assert!(assemble("  jmp nowhere\n")
            .unwrap_err()
            .message
            .contains("undefined label"));
        assert!(assemble("x: nop\nx: nop\n")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(assemble("  add r1, r2\n")
            .unwrap_err()
            .message
            .contains("expects 3"));
        assert!(assemble("  ld8 r1, r2\n")
            .unwrap_err()
            .message
            .contains("offset(reg)"));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = assemble("  li r1, -42\n  li r2, 0xff\n  li r3, -0x10\n").unwrap();
        assert_eq!(
            p.text[0],
            Instr::Li {
                rd: Reg(1),
                imm: -42
            }
        );
        assert_eq!(
            p.text[1],
            Instr::Li {
                rd: Reg(2),
                imm: 255
            }
        );
        assert_eq!(
            p.text[2],
            Instr::Li {
                rd: Reg(3),
                imm: -16
            }
        );
    }

    #[test]
    fn disassembly_of_assembled_text_reassembles() {
        // Display → parse round-trip for label-free instructions.
        let src = "  add r1, r2, 3\n  ld8 r4, 8(r5)\n  st2 r6, -4(r7)\n  amoadd r8, (r9), r10\n  fsqrt r11, r12\n  nop\n";
        let p1 = assemble(src).unwrap();
        let printed: String = p1.text.iter().map(|i| format!("  {i}\n")).collect();
        let p2 = assemble(&printed).unwrap();
        assert_eq!(p1.text, p2.text);
    }
}
