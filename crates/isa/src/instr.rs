//! Instruction definitions and disassembly.

use std::fmt;

/// A general-purpose register, `r0`–`r31`. `r0` always reads as zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Second ALU operand: register or immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// A signed 64-bit immediate.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Integer and floating-point ALU operations.
///
/// Integer ops are wrapping two's-complement on 64 bits; shifts mask their
/// amount to 6 bits; division by zero yields 0 (remainder yields the
/// dividend) so execution is always defined. Floating-point ops reinterpret
/// the 64-bit registers as IEEE-754 doubles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are their own documentation
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    Slt,
    Sltu,
    Seq,
    Sne,
    Sle,
    Sgt,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
    FSqrt,
    FNeg,
    FAbs,
    I2F,
    F2I,
    FLt,
    FLe,
    FEq,
}

impl AluOp {
    /// Whether the operation ignores its second operand (unary).
    pub fn is_unary(self) -> bool {
        matches!(
            self,
            AluOp::FSqrt | AluOp::FNeg | AluOp::FAbs | AluOp::I2F | AluOp::F2I
        )
    }

    /// Applies the operation to raw 64-bit values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let (ia, ib) = (a as i64, b as i64);
        let (fa, fb) = (f64::from_bits(a), f64::from_bits(b));
        match self {
            AluOp::Add => ia.wrapping_add(ib) as u64,
            AluOp::Sub => ia.wrapping_sub(ib) as u64,
            AluOp::Mul => ia.wrapping_mul(ib) as u64,
            AluOp::Div => {
                if ib == 0 {
                    0
                } else {
                    ia.wrapping_div(ib) as u64
                }
            }
            AluOp::Rem => {
                if ib == 0 {
                    a
                } else {
                    ia.wrapping_rem(ib) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
            AluOp::Sar => (ia >> (b & 63)) as u64,
            AluOp::Slt => (ia < ib) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Seq => (a == b) as u64,
            AluOp::Sne => (a != b) as u64,
            AluOp::Sle => (ia <= ib) as u64,
            AluOp::Sgt => (ia > ib) as u64,
            AluOp::FAdd => (fa + fb).to_bits(),
            AluOp::FSub => (fa - fb).to_bits(),
            AluOp::FMul => (fa * fb).to_bits(),
            AluOp::FDiv => (fa / fb).to_bits(),
            AluOp::FMin => fa.min(fb).to_bits(),
            AluOp::FMax => fa.max(fb).to_bits(),
            AluOp::FSqrt => fa.sqrt().to_bits(),
            AluOp::FNeg => (-fa).to_bits(),
            AluOp::FAbs => fa.abs().to_bits(),
            AluOp::I2F => (ia as f64).to_bits(),
            AluOp::F2I => {
                if fa.is_nan() {
                    0
                } else {
                    (fa as i64) as u64
                }
            }
            AluOp::FLt => (fa < fb) as u64,
            AluOp::FLe => (fa <= fb) as u64,
            AluOp::FEq => (fa == fb) as u64,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
            AluOp::Sle => "sle",
            AluOp::Sgt => "sgt",
            AluOp::FAdd => "fadd",
            AluOp::FSub => "fsub",
            AluOp::FMul => "fmul",
            AluOp::FDiv => "fdiv",
            AluOp::FMin => "fmin",
            AluOp::FMax => "fmax",
            AluOp::FSqrt => "fsqrt",
            AluOp::FNeg => "fneg",
            AluOp::FAbs => "fabs",
            AluOp::I2F => "i2f",
            AluOp::F2I => "f2i",
            AluOp::FLt => "flt",
            AluOp::FLe => "fle",
            AluOp::FEq => "feq",
        }
    }
}

/// The §3.2.4 atomic operations, plus exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AmoKind {
    Cas,
    Add,
    Inc,
    Dec,
    Exch,
}

impl AmoKind {
    fn mnemonic(self) -> &'static str {
        match self {
            AmoKind::Cas => "amocas",
            AmoKind::Add => "amoadd",
            AmoKind::Inc => "amoinc",
            AmoKind::Dec => "amodec",
            AmoKind::Exch => "amoswap",
        }
    }
}

/// Branch conditions comparing two registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    LtS,
    GeS,
    LtU,
    GeU,
}

impl Cond {
    /// Evaluates the condition on raw register values.
    pub fn test(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::LtS => (a as i64) < (b as i64),
            Cond::GeS => (a as i64) >= (b as i64),
            Cond::LtU => a < b,
            Cond::GeU => a >= b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::LtS => "blt",
            Cond::GeS => "bge",
            Cond::LtU => "bltu",
            Cond::GeU => "bgeu",
        }
    }
}

/// One HIR instruction. PCs are indices into the program text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd = op(ra, rb)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source (register or immediate); ignored by unary ops.
        rb: Operand,
    },
    /// `rd = imm` (also used for label addresses, e.g. function pointers).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Load `size` bytes from `[base + off]`, zero-extended.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i64,
        /// 1, 2, 4 or 8.
        size: u8,
    },
    /// Store the low `size` bytes of `rs` to `[base + off]`.
    St {
        /// Source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i64,
        /// 1, 2, 4 or 8.
        size: u8,
    },
    /// Atomic read-modify-write on the 8-byte word at `[addr]`; `rd` gets the
    /// old value. `a` is the operand (addend / exchange value / CAS
    /// expected); `b` is the CAS replacement.
    Amo {
        /// Which RMW.
        op: AmoKind,
        /// Destination (old value).
        rd: Reg,
        /// Address register.
        addr: Reg,
        /// First operand register.
        a: Reg,
        /// Second operand register (CAS replacement).
        b: Reg,
    },
    /// Conditional branch to `target` when `cond(ra, rb)` holds.
    Br {
        /// Condition.
        cond: Cond,
        /// Left comparand.
        ra: Reg,
        /// Right comparand.
        rb: Reg,
        /// Target PC.
        target: usize,
    },
    /// Unconditional jump.
    Jmp {
        /// Target PC.
        target: usize,
    },
    /// Indirect jump to the PC in `rs` (`ret` is `jr r31`).
    JmpReg {
        /// Register holding the target PC.
        rs: Reg,
    },
    /// Direct call: `r31 = pc + 1`, jump to `target`.
    Call {
        /// Target PC.
        target: usize,
    },
    /// Indirect call through `rs`.
    CallReg {
        /// Register holding the target PC.
        rs: Reg,
    },
    /// OS request (CPU cores only): number in `r1`, arguments in `r2`…,
    /// result in `r1`.
    Syscall,
    /// Memory fence. A no-op under the chip's SC model (§3.2.3) but kept in
    /// the ISA so relaxed implementations remain expressible.
    Fence,
    /// Ends the executing thread (MTTOP: halt the lane and signal the MIFD;
    /// CPU: equivalent to the exit-thread syscall).
    Exit,
    /// No operation.
    Nop,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, ra, rb } => {
                if op.is_unary() {
                    write!(f, "{} {rd}, {ra}", op.mnemonic())
                } else {
                    write!(f, "{} {rd}, {ra}, {rb}", op.mnemonic())
                }
            }
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Ld {
                rd,
                base,
                off,
                size,
            } => {
                write!(f, "ld{size} {rd}, {off}({base})")
            }
            Instr::St {
                rs,
                base,
                off,
                size,
            } => {
                write!(f, "st{size} {rs}, {off}({base})")
            }
            Instr::Amo { op, rd, addr, a, b } => match op {
                AmoKind::Cas => write!(f, "{} {rd}, ({addr}), {a}, {b}", op.mnemonic()),
                AmoKind::Inc | AmoKind::Dec => write!(f, "{} {rd}, ({addr})", op.mnemonic()),
                _ => write!(f, "{} {rd}, ({addr}), {a}", op.mnemonic()),
            },
            Instr::Br {
                cond,
                ra,
                rb,
                target,
            } => {
                write!(f, "{} {ra}, {rb}, @{target}", cond.mnemonic())
            }
            Instr::Jmp { target } => write!(f, "jmp @{target}"),
            Instr::JmpReg { rs } => write!(f, "jr {rs}"),
            Instr::Call { target } => write!(f, "call @{target}"),
            Instr::CallReg { rs } => write!(f, "callr {rs}"),
            Instr::Syscall => write!(f, "syscall"),
            Instr::Fence => write!(f, "fence"),
            Instr::Exit => write!(f, "exit"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

impl Instr {
    /// Whether this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Amo { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_integer_semantics() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4) as i64, -1);
        assert_eq!(AluOp::Mul.apply(u64::MAX, 2), u64::MAX.wrapping_mul(2));
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply((-7i64) as u64, 2) as i64, -3);
        assert_eq!(AluOp::Div.apply(7, 0), 0, "div by zero defined as 0");
        assert_eq!(AluOp::Rem.apply(7, 0), 7, "rem by zero keeps dividend");
        assert_eq!(AluOp::Slt.apply((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.apply((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift masks to 6 bits");
        assert_eq!(AluOp::Sar.apply((-8i64) as u64, 1) as i64, -4);
    }

    #[test]
    fn alu_float_semantics() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(AluOp::FAdd.apply(two, three)), 5.0);
        assert_eq!(f64::from_bits(AluOp::FSqrt.apply(two, 0)), 2.0f64.sqrt());
        assert_eq!(AluOp::FLt.apply(two, three), 1);
        assert_eq!(AluOp::F2I.apply(3.7f64.to_bits(), 0), 3);
        assert_eq!(AluOp::F2I.apply(f64::NAN.to_bits(), 0), 0);
        assert_eq!(f64::from_bits(AluOp::I2F.apply((-2i64) as u64, 0)), -2.0);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.test(5, 5));
        assert!(Cond::Ne.test(5, 6));
        assert!(Cond::LtS.test((-1i64) as u64, 0));
        assert!(!Cond::LtU.test((-1i64) as u64, 0));
        assert!(Cond::GeS.test(0, (-1i64) as u64));
        assert!(Cond::GeU.test((-1i64) as u64, 5));
    }

    #[test]
    fn display_roundtrippable_forms() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(8),
            ra: Reg(9),
            rb: Operand::Imm(4),
        };
        assert_eq!(i.to_string(), "add r8, r9, 4");
        let l = Instr::Ld {
            rd: Reg(1),
            base: Reg(30),
            off: -8,
            size: 8,
        };
        assert_eq!(l.to_string(), "ld8 r1, -8(r30)");
        assert_eq!(Instr::Exit.to_string(), "exit");
    }

    #[test]
    fn is_mem_classification() {
        assert!(Instr::Ld {
            rd: Reg(1),
            base: Reg(2),
            off: 0,
            size: 8
        }
        .is_mem());
        assert!(Instr::Amo {
            op: AmoKind::Inc,
            rd: Reg(1),
            addr: Reg(2),
            a: Reg(0),
            b: Reg(0)
        }
        .is_mem());
        assert!(!Instr::Nop.is_mem());
    }
}
