//! Figure 9: DRAM accesses for matrix multiply (log scale in the paper) —
//! the APU's staged DMA plus GPU misses versus CCSVM's on-chip
//! communication, with the single CPU's accesses growing as the working set
//! outgrows its caches.

use ccsvm_apu::{run_cpu, run_offload, ApuConfig, OffloadShape};
use ccsvm_bench::{check_eq, exit_with, BenchError, Claims, Opts, Out};
use ccsvm_workloads as wl;

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let opts = Opts::parse();
    let sizes = opts.pick(&[8, 16, 32, 64, 128], &[8, 16]);
    let apu = ApuConfig::paper_scaled();
    let mut claims = Claims::new();
    let mut out = Out::new(&opts, Some("results/fig9.txt"));

    out.header(
        "Figure 9: DRAM accesses for matmul",
        &["   n", "      CPU", "      APU", "    CCSVM", "APU/CCSVM"],
    );

    // Sweep points run up front (in parallel under `--threads N`); printing
    // and claims stay in input order so output is thread-count-invariant.
    let points = ccsvm_bench::sweep(sizes.len(), opts.threads, |i| -> Result<_, BenchError> {
        let n = sizes[i];
        let p = wl::matmul::MatmulParams::new(n, 42);
        let expect = wl::matmul::reference_checksum(&p);

        let (_, cpu_dram, c1) = run_cpu(&apu, &wl::matmul::cpu_source(&p));
        check_eq(c1, expect, format!("n={n}: CPU result"))?;
        let shape = OffloadShape {
            buffer_bytes: 3 * n * n * 8,
            launches: 1,
        };
        let a = run_offload(&apu, &wl::matmul::xthreads_source(&p), shape);
        check_eq(a.exit_code, expect, format!("n={n}: APU result"))?;
        let (_, ccsvm_dram, c3) = ccsvm_bench::run_ccsvm_point(
            &wl::matmul::xthreads_source(&p),
            &opts,
            &format!("fig9-n{n}"),
        );
        check_eq(c3, expect, format!("n={n}: CCSVM result"))?;
        Ok((cpu_dram, a, ccsvm_dram))
    });
    let points = points.into_iter().collect::<Result<Vec<_>, _>>()?;

    for (&n, (cpu_dram, a, ccsvm_dram)) in sizes.iter().zip(points) {
        out.line(format!(
            "{n:4} | {cpu_dram:8} | {:8} | {ccsvm_dram:8} | {:8.2}",
            a.dram_accesses,
            a.dram_accesses as f64 / ccsvm_dram as f64,
        ));

        claims.check(
            a.dram_accesses > ccsvm_dram,
            &format!("n={n}: APU needs more DRAM accesses than CCSVM"),
        );
    }
    out.finish()?;
    claims.finish("fig9");
    Ok(())
}
