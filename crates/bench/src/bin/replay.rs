//! `replay` — deterministically reproduce a captured failure from a triage
//! replay bundle (DESIGN §9).
//!
//! ```text
//! replay <bundle.ccbundle>
//! ```
//!
//! The bundle embeds everything the reproduction needs: the config preset
//! name (validated against the recorded config hash), the fault plan and
//! sanitizer settings, the guest source, the nearest pre-failure machine
//! snapshot, the bisected first-failing cycle, and the ring of last uncore
//! events before the abort. The replay restores the snapshot, forces the
//! sanitizer on (full check verbosity), and re-runs to the failure.
//!
//! Exit status: 0 when the failure reproduced at the recorded cycle with a
//! matching invariant, 1 when it did not reproduce or the bundle is
//! unusable, 2 on CLI misuse.

use ccsvm::{replay_bundle, ReplayBundle};
use ccsvm_bench::{exit_with, BenchError};

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => std::path::PathBuf::from(p),
        _ => {
            return Err(BenchError::Cli(
                "replay <bundle.ccbundle> — reproduce a captured failure".to_string(),
            ))
        }
    };

    let bundle = ReplayBundle::read(&path)?;
    println!("bundle:    {}", path.display());
    println!(
        "preset:    {} (config hash {:#018x})",
        bundle.preset, bundle.config_hash
    );
    println!("protocol:  {}", bundle.protocol.as_str());
    println!("captured:  {:?} at {}", bundle.outcome, bundle.first_fail);
    if let Some(v) = &bundle.violation {
        println!("violation: {v}");
    }
    println!(
        "snapshot:  {} bytes at {} ({} ring events of {} total)",
        bundle.snapshot.len(),
        bundle.snapshot_at,
        bundle.ring.len(),
        bundle.ring_total,
    );
    for ev in &bundle.ring {
        println!(
            "  [{:>6}] {:>14} ps  {:<12} block={:#x} who={}",
            ev.seq,
            ev.at_ps,
            ccsvm_mem::ring_kind_name(ev.kind),
            ev.a,
            ev.b
        );
    }

    let (report, reproduced) =
        replay_bundle(&bundle).map_err(|e| BenchError::Run(format!("replay setup failed: {e}")))?;
    println!("replayed:  {:?} at {}", report.outcome, report.time);
    if let Some(v) = report
        .diagnostic
        .as_ref()
        .and_then(|d| d.violation.as_ref())
    {
        println!("caught:    {v}");
    }
    if let Some(d) = &report.diagnostic {
        println!("{d}");
    }
    if reproduced {
        println!("REPRODUCED: failure manifests at the captured cycle");
        Ok(())
    } else {
        Err(BenchError::Run(format!(
            "failure did NOT reproduce (captured {:?} at {}, replayed {:?} at {})",
            bundle.outcome, bundle.first_fail, report.outcome, report.time
        )))
    }
}
