//! Warm-start sweep: Figure 5's CCSVM column re-measured by snapshotting
//! each sweep point at the offload-region start and forking the timed
//! repetitions from the image instead of re-simulating initialization
//! (guest mallocs, input-filling loops, first-touch page faults) every
//! time.
//!
//! The point of the exercise is the headline snapshot invariant: the forked
//! repetitions must be **bit-identical** to cold runs — same region time,
//! same DRAM accesses, same exit code — so the sweep reproduces
//! `results/fig5.txt` exactly while the wall-clock cost drops. Composes
//! with `--threads` (sweep points in parallel) and `--sim-threads` (the
//! fork-join executor inside each machine).

use std::time::Instant;

use ccsvm::Machine;
use ccsvm_bench::{bench_cfg, exit_with, ms, pause_at_region_start, BenchError, Claims, Opts, Out};
use ccsvm_engine::Time;
use ccsvm_workloads as wl;

/// Timed repetitions per sweep point. Cold pays initialization every time;
/// warm pays it once (inside the snapshot) plus a cheap restore per rep.
const REPS: usize = 3;

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let opts = Opts::parse();
    let sizes = opts.pick(&[8, 16, 32, 64, 128], &[8, 16]);
    let mut claims = Claims::new();
    let mut out = Out::new(&opts, Some("results/sweep_warm.txt"));

    out.header(
        "Warm-start sweep: fig5 CCSVM column, cold vs snapshot-forked",
        &[
            "   n",
            " CCSVM ms",
            "cold wall ms",
            "warm wall ms",
            " speedup",
            "image KiB",
        ],
    );

    let points = ccsvm_bench::sweep(sizes.len(), opts.threads, |i| -> Result<_, BenchError> {
        let n = sizes[i];
        let p = wl::matmul::MatmulParams::new(n, 42);
        let src = wl::matmul::xthreads_source(&p);
        let expect = wl::matmul::reference_checksum(&p);

        // Cold: every repetition re-simulates initialization + region.
        let t0 = Instant::now();
        let mut cold = Vec::new();
        for _ in 0..REPS {
            cold.push(ccsvm_bench::run_ccsvm(&src, opts.sim_threads));
        }
        let cold_wall = t0.elapsed();

        // Warm: simulate up to the region marker once, snapshot, then fork
        // every repetition from the in-memory image.
        let t1 = Instant::now();
        let paused = pause_at_region_start(&src, opts.sim_threads).ok_or_else(|| {
            BenchError::Run(format!(
                "n={n}: matmul finished before its region-start marker"
            ))
        })?;
        let image = paused.checkpoint_bytes();
        let mut warm = Vec::new();
        for _ in 0..REPS {
            let mut fork =
                Machine::restore_bytes(bench_cfg(opts.sim_threads), wl::build(&src), &image)?;
            warm.push(ccsvm_bench::region_numbers(&fork.run()));
        }
        let warm_wall = t1.elapsed();

        Ok((n, expect, cold, warm, cold_wall, warm_wall, image.len()))
    });
    let points = points.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut cold_total = 0.0;
    let mut warm_total = 0.0;
    for (n, expect, cold, warm, cold_wall, warm_wall, image_len) in points {
        let (region, _, code): (Time, u64, u64) = cold[0];
        claims.check(
            code == expect,
            &format!("n={n}: CCSVM checksum matches the reference"),
        );
        claims.check(
            cold.iter().all(|r| *r == cold[0]),
            &format!("n={n}: cold repetitions are deterministic"),
        );
        claims.check(
            warm == cold,
            &format!("n={n}: snapshot-forked repetitions are bit-identical to cold runs"),
        );
        let cw = cold_wall.as_secs_f64() * 1e3;
        let ww = warm_wall.as_secs_f64() * 1e3;
        cold_total += cw;
        warm_total += ww;
        out.line(format!(
            "{n:4} | {} | {cw:12.1} | {ww:12.1} | {:7.2}x | {:9.1}",
            ms(region),
            cw / ww,
            image_len as f64 / 1024.0,
        ));
    }
    // Judged over the whole sweep (per-point wall-clock is noisy), and only
    // in full mode: quick's smallest sizes have almost no initialization to
    // skip, so the restore cost has nothing to amortize against.
    if !opts.quick {
        claims.check(
            warm_total < cold_total,
            "whole sweep: warm-start wall-time beats cold re-simulation",
        );
    } else {
        out.line("  (quick mode: sizes too small to amortize a restore; wall-time claim skipped)");
    }
    out.line(format!(
        "totals: cold {cold_total:.1} ms, warm {warm_total:.1} ms ({:.2}x)",
        cold_total / warm_total
    ));
    out.finish()?;
    claims.finish("sweep-warm");
    Ok(())
}
