//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Write-back vs write-through MTTOP L1s** (paper §6.1) — per-store
//!    data pushes inflate NoC/L2 traffic.
//! 2. **TLB shootdown cost vs MTTOP core count** (paper §3.2.1) — the
//!    conservative flush-all broadcast scales with the chip.
//! 3. **Torus link bandwidth** (paper §3.4) — the CCSVM network is sized
//!    generously; how much does it matter?
//! 4. **Launch-path overhead sensitivity** (paper §5.2) — what makes loose
//!    coupling slow: sweep an artificial per-chunk dispatch cost toward
//!    driver-like values.
//! 5. **Atomics contention** (paper §3.2.4) — L1-resident atomics under
//!    increasing sharing.

use ccsvm::{Machine, SystemConfig};
use ccsvm_bench::{check_eq, exit_with, BenchError};
use ccsvm_engine::Time;
use ccsvm_mem::WritePolicy;
use ccsvm_workloads as wl;

fn run_with(cfg: SystemConfig, src: &str) -> (Time, ccsvm::RunReport) {
    let mut m = Machine::new(cfg, wl::build(src));
    let r = m.run();
    (wl::region_time(&r.printed, &r.printed_at, r.time), r)
}

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 16 } else { 48 };

    println!("== Ablation 1: L1 store policy (matmul n={n})");
    for (name, policy) in [
        ("write-back", WritePolicy::WriteBack),
        ("write-through", WritePolicy::WriteThrough),
    ] {
        let mut cfg = SystemConfig::paper_default();
        cfg.l1_write_policy = policy;
        let p = wl::matmul::MatmulParams::new(n, 7);
        let (t, r) = run_with(cfg, &wl::matmul::xthreads_source(&p));
        check_eq(
            r.exit_code,
            wl::matmul::reference_checksum(&p),
            format!("{name} matmul result"),
        )?;
        println!(
            "  {name:13} region {t}  noc bytes {:.0}  l2 puts {:.0}",
            r.stats.get("noc.bytes"),
            r.stats.sum_prefix("mem.l2.") - r.stats.sum_prefix("mem.l2.hits"),
        );
    }

    println!("== Ablation 2: TLB shootdown cost vs MTTOP cores");
    let shoot_src = "
        _CPU_ fn main() -> int {
            let p: int* = malloc(4096 * 16);
            for (let i = 0; i < 16; i = i + 1) { p[i * 512] = i; }
            print_int(-7000001);
            for (let i = 0; i < 16; i = i + 1) { munmap((p as int) + i * 4096); }
            print_int(-7000002);
            return 0;
        }";
    for cores in [1usize, 2, 4, 10] {
        let mut cfg = SystemConfig::paper_default();
        cfg.n_mttops = cores;
        let (t, _) = run_with(cfg, shoot_src);
        println!(
            "  {cores:2} MTTOP cores: 16 shootdowns in {t}  ({} each)",
            Time::from_ps(t.as_ps() / 16)
        );
    }

    println!("== Ablation 2b: shootdown policy (flush-all vs selective, paper 3.2.1)");
    {
        // Warm the MTTOP TLBs with a kernel, then unmap one page: flush-all
        // destroys every warm translation; selective keeps them.
        let src = "
            struct Args { data: int*; done: int*; victim: int*; }
            _MTTOP_ fn warm(tid: int, a: Args*) {
                let s = 0;
                for (let r = 0; r < 4; r = r + 1) {
                    for (let i = 0; i < 64; i = i + 1) {
                        s = s + a->data[i * 512 + tid % 8];
                    }
                }
                a->done[tid] = s + 1;
            }
            _CPU_ fn main() -> int {
                let a: Args* = malloc(sizeof(Args));
                a->data = malloc(64 * 4096);
                a->victim = malloc(4096);
                a->done = malloc(80 * 8);
                a->victim[0] = 1;
                for (let i = 0; i < 64; i = i + 1) { a->data[i * 512] = i; }
                for (let t = 0; t < 80; t = t + 1) { a->done[t] = 0; }
                xt_create_mthread(warm, a as int, 0, 79);
                let ok = 0;
                while (ok != 80) {
                    ok = 0;
                    for (let t = 0; t < 80; t = t + 1) {
                        if (a->done[t] != 0) { ok = ok + 1; }
                    }
                }
                print_int(-7000001);
                munmap(a->victim as int);
                for (let t = 0; t < 80; t = t + 1) { a->done[t] = 0; }
                xt_create_mthread(warm, a as int, 0, 79);
                ok = 0;
                while (ok != 80) {
                    ok = 0;
                    for (let t = 0; t < 80; t = t + 1) {
                        if (a->done[t] != 0) { ok = ok + 1; }
                    }
                }
                print_int(-7000002);
                return 0;
            }";
        for selective in [false, true] {
            let mut cfg = SystemConfig::paper_default();
            cfg.mttop_selective_shootdown = selective;
            let (t, r) = run_with(cfg, src);
            let walks: f64 = (0..10)
                .map(|i| r.stats.get(&format!("mttop.{i}.tlb_walks")))
                .sum();
            println!(
                "  {}: post-shootdown phase {t}  (mttop TLB walks {walks:.0})",
                if selective {
                    "selective "
                } else {
                    "flush-all "
                },
            );
        }
    }

    println!("== Ablation 3: torus link bandwidth (matmul n={n})");
    for gbps in [3.0, 6.0, 12.0, 24.0] {
        let mut cfg = SystemConfig::paper_default();
        cfg.noc.link_bytes_per_ns = gbps;
        let p = wl::matmul::MatmulParams::new(n, 7);
        let (t, _) = run_with(cfg, &wl::matmul::xthreads_source(&p));
        println!("  {gbps:5.1} GB/s links: region {t}");
    }

    println!("== Ablation 4: launch-path overhead sensitivity (vecadd n=256)");
    for mult in [1u64, 10, 100, 1000] {
        let mut cfg = SystemConfig::paper_default();
        cfg.os.mifd_chunk = Time::from_ps(cfg.os.mifd_chunk.as_ps() * mult);
        cfg.os.syscall = Time::from_ps(cfg.os.syscall.as_ps() * mult);
        let p = wl::vecadd::VecaddParams { n: 256, seed: 7 };
        let (t, r) = run_with(cfg, &wl::vecadd::xthreads_source(&p));
        check_eq(
            r.exit_code,
            wl::vecadd::reference_checksum(&p),
            format!("launch x{mult} vecadd result"),
        )?;
        println!("  launch costs x{mult:4}: region {t}");
    }

    println!("== Ablation 5: atomic contention (fetch-and-add across 1280 threads)");
    for targets in [1u64, 8, 64, 1280] {
        let src = format!(
            "_MTTOP_ fn k(tid: int, ctrs: int*) {{
                 for (let i = 0; i < 32; i = i + 1) {{
                     atomic_add(ctrs + tid % {targets}, 1);
                 }}
             }}
             _CPU_ fn main() -> int {{
                 let ctrs: int* = malloc({targets} * 8);
                 for (let i = 0; i < {targets}; i = i + 1) {{ ctrs[i] = 0; }}
                 print_int(-7000001);
                 xt_create_mthread(k, ctrs as int, 0, 1279);
                 let total = 0;
                 while (total != 1280 * 32) {{
                     total = 0;
                     for (let i = 0; i < {targets}; i = i + 1) {{ total = total + ctrs[i]; }}
                 }}
                 print_int(-7000002);
                 return total;
             }}"
        );
        let (t, r) = run_with(SystemConfig::paper_default(), &src);
        check_eq(
            r.exit_code,
            1280 * 32,
            format!("{targets}-counter atomic total"),
        )?;
        println!("  {targets:4} counters: 40960 atomics in {t}");
    }
    println!("[ablations] done");
    Ok(())
}
