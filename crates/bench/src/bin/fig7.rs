//! Figure 7: Barnes-Hut — runtime of CCSVM/xthreads and of pthreads×4 (on
//! the APU's CPU cores), relative to a single AMD CPU core. There is no
//! OpenCL version (the paper couldn't build one either — that's the point:
//! pointer chasing + frequent sequential/parallel toggling only works with
//! tight coupling).

use ccsvm_apu::{run_cpu, ApuConfig};
use ccsvm_bench::{check_eq, exit_with, ms, rel, BenchError, Claims, Opts, Out};
use ccsvm_workloads as wl;

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let opts = Opts::parse();
    let sizes = opts.pick(&[256, 512, 1024, 2048], &[128, 256]);
    let apu = ApuConfig::paper_scaled();
    let mut claims = Claims::new();
    let mut rels: Vec<f64> = Vec::new();
    let mut out = Out::new(&opts, Some("results/fig7.txt"));

    out.header(
        "Figure 7: Barnes-Hut runtime (ms, and relative to AMD CPU core = 1.0)",
        &[
            "bodies",
            "   CPU ms",
            "pthr4 ms",
            " CCSVM ms",
            "pthr4 rel",
            "CCSVM rel",
        ],
    );

    for &nb in &sizes {
        let p = wl::barnes_hut::BhParams {
            bodies: nb,
            steps: 1,
            max_threads: 1280,
            seed: 42,
        };
        let oracle = wl::barnes_hut::oracle_checksum(&p);

        let (t_cpu, _, c1) = run_cpu(&apu, &wl::barnes_hut::cpu_source(&p));
        check_eq(c1, oracle, format!("{nb} bodies: CPU result"))?;

        let (t_pth, _, c2) = run_cpu(&apu, &wl::barnes_hut::pthreads_source(&p, 4));
        check_eq(c2, oracle, format!("{nb} bodies: pthreads result"))?;

        let (t_ccsvm, _, c3) = ccsvm_bench::run_ccsvm_point(
            &wl::barnes_hut::xthreads_source(&p),
            &opts,
            &format!("fig7-b{nb}"),
        );
        check_eq(c3, oracle, format!("{nb} bodies: CCSVM result"))?;

        out.line(format!(
            "{nb:6} | {} | {} | {} | {} | {}",
            ms(t_cpu),
            ms(t_pth),
            ms(t_ccsvm),
            rel(t_pth, t_cpu),
            rel(t_ccsvm, t_cpu),
        ));

        if nb >= 512 {
            claims.check(
                t_pth < t_cpu,
                &format!("{nb} bodies: pthreads x4 beats one core"),
            );
        }
        if nb >= 1024 {
            claims.check(
                t_ccsvm < t_cpu,
                &format!("{nb} bodies: CCSVM beats the single CPU core"),
            );
        }
        rels.push(t_ccsvm.as_ps() as f64 / t_cpu.as_ps() as f64);
    }
    // The crossover against the single CPU lands around 1024 bodies at our
    // scaled sizes. The paper's stronger CCSVM-beats-pthreads headline needs
    // sizes beyond this sweep: the sequential tree build runs on the CCSVM
    // chip's deliberately slow (max IPC 0.5) CPU while the baselines enjoy
    // the APU's max-IPC-4 cores, an Amdahl term that fades as the force
    // phase grows. The trend is checked below; see EXPERIMENTS.md.
    claims.check(
        rels.windows(2).all(|w| w[1] <= w[0] * 1.05),
        "CCSVM relative runtime improves (or holds) as the problem grows",
    );
    out.line(format!(
        "note: CCSVM relative-runtime trend across sizes: {:?}",
        rels.iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    ));
    out.finish()?;
    claims.finish("fig7");
    Ok(())
}
