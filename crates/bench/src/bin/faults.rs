//! Fault-injection sweep: robustness characterisation of the CCSVM chip.
//!
//! 1. **Disabled-path identity** — `FaultConfig::default()` must leave every
//!    simulated result bit-identical to a fault-free build (the injectors
//!    are fully off, the watchdog only observes), so the figure/table
//!    binaries are unaffected by this subsystem.
//! 2. **NoC retransmission sweep** — message-loss rate vs runtime and
//!    retransmission count (bounded-backoff recovery).
//! 3. **DRAM ECC sweep** — single-bit corrections are absorbed silently;
//!    results stay correct.
//! 4. **Transient TLB-walk sweep** — walk failures retry and converge.
//! 5. **Replay** — the same seed reproduces a faulty run bit-for-bit; a
//!    different seed draws a different schedule.

use ccsvm::{Machine, Outcome, ProtocolKind, SystemConfig};
use ccsvm_bench::{exit_with, BenchError, Claims};
use ccsvm_engine::Time;
use ccsvm_workloads as wl;

/// `--protocol <name>` (default `directory`): run the whole sweep under the
/// named coherence protocol, so CI covers every protocol with one binary.
fn protocol_arg() -> Result<ProtocolKind, BenchError> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--protocol" {
            let name = args
                .next()
                .ok_or_else(|| BenchError::Run("--protocol needs a value".into()))?;
            return ProtocolKind::parse(&name)
                .ok_or_else(|| BenchError::Run(format!("unknown protocol {name:?}")));
        }
    }
    Ok(ProtocolKind::Directory)
}

fn run_with(cfg: SystemConfig, src: &str) -> (Time, ccsvm::RunReport) {
    let mut m = Machine::new(cfg, wl::build(src));
    let r = m.run();
    (wl::region_time(&r.printed, &r.printed_at, r.time), r)
}

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let protocol = protocol_arg()?;
    let base_cfg = || {
        let mut cfg = SystemConfig::paper_default();
        cfg.protocol = protocol;
        cfg
    };
    let n = if quick { 64 } else { 256 };
    let p = wl::vecadd::VecaddParams { n, seed: 7 };
    let src = wl::vecadd::xthreads_source(&p);
    let expect = wl::vecadd::reference_checksum(&p);
    let mut claims = Claims::new();

    println!(
        "== Fault sweep (vecadd n={n}, paper-default chip, protocol {})",
        protocol.as_str()
    );

    // 1. Disabled path: default fault config vs watchdog fully off.
    let (t0, base) = run_with(base_cfg(), &src);
    let mut off = base_cfg();
    off.fault.watchdog.enabled = false;
    let (_, no_wd) = run_with(off, &src);
    claims.check(
        base == no_wd,
        "default FaultConfig is bit-identical to watchdog-off",
    );
    claims.check(base.exit_code == expect, "baseline checksum");
    claims.check(
        !base.stats.contains("noc.retransmissions")
            && !base.stats.contains("mem.dram.ecc_corrected"),
        "disabled injectors leave no trace in the report",
    );
    println!("  baseline region {t0}  (watchdog observes, injects nothing)");

    // 2. NoC message-loss sweep.
    println!("== NoC loss rate | region ms | rel | retransmissions | outcome");
    let rates: &[f64] = if quick {
        &[0.0, 1e-3, 1e-2]
    } else {
        &[0.0, 1e-4, 1e-3, 1e-2, 5e-2]
    };
    let mut last_retx = -1.0f64;
    for &rate in rates {
        let mut cfg = base_cfg();
        cfg.fault.noc.drop_rate = rate;
        let (t, r) = run_with(cfg, &src);
        let retx = r.stats.get("noc.retransmissions");
        println!(
            "  {rate:12.0e} | {:9.4} | {} | {retx:15.0} | {:?}",
            t.as_ms(),
            ccsvm_bench::rel(t, t0),
            r.outcome
        );
        claims.check(
            r.outcome == Outcome::Completed,
            "NoC losses recover by retransmission",
        );
        claims.check(r.exit_code == expect, "results stay correct under NoC loss");
        claims.check(
            retx >= last_retx || rate == 0.0,
            "retransmissions grow with loss rate",
        );
        last_retx = retx;
    }

    // 3. DRAM single-bit ECC sweep (doubles poison; swept in tests).
    println!("== ECC single-bit rate | region ms | corrected | outcome");
    let rates: &[f64] = if quick {
        &[1e-3, 1e-1]
    } else {
        &[1e-4, 1e-3, 1e-2, 1e-1]
    };
    for &rate in rates {
        let mut cfg = base_cfg();
        cfg.fault.dram.single_bit_rate = rate;
        let (t, r) = run_with(cfg, &src);
        println!(
            "  {rate:18.0e} | {:9.4} | {:9.0} | {:?}",
            t.as_ms(),
            r.stats.get("mem.dram.ecc_corrected"),
            r.outcome
        );
        claims.check(
            r.outcome == Outcome::Completed,
            "corrected singles never abort",
        );
        claims.check(
            r.exit_code == expect,
            "SECDED corrections are invisible to results",
        );
    }

    // 4. Transient TLB-walk failures.
    println!("== TLB transient rate | region ms | transients | outcome");
    let rates: &[f64] = if quick { &[1e-2] } else { &[1e-3, 1e-2, 1e-1] };
    for &rate in rates {
        let mut cfg = base_cfg();
        cfg.fault.tlb.transient_rate = rate;
        let (t, r) = run_with(cfg, &src);
        let transients: f64 = (0..4)
            .map(|i| r.stats.get(&format!("cpu.{i}.tlb_transients")))
            .sum();
        println!(
            "  {rate:17.0e} | {:9.4} | {transients:10.0} | {:?}",
            t.as_ms(),
            r.outcome
        );
        claims.check(
            r.outcome == Outcome::Completed,
            "transient walks retry and converge",
        );
        claims.check(
            r.exit_code == expect,
            "results stay correct under TLB transients",
        );
    }

    // 5. Replay: same seed, same bits; different seed, different schedule.
    println!("== Replay determinism");
    let faulty = |seed: u64| {
        let mut cfg = base_cfg();
        cfg.fault.seed = seed;
        cfg.fault.noc.drop_rate = 1e-2;
        cfg.fault.dram.single_bit_rate = 1e-2;
        cfg.fault.tlb.transient_rate = 1e-2;
        cfg
    };
    let (_, a) = run_with(faulty(7), &src);
    let (_, b) = run_with(faulty(7), &src);
    let (_, c) = run_with(faulty(8), &src);
    claims.check(a == b, "same seed replays bit-for-bit");
    claims.check(a != c, "different seed draws a different fault schedule");
    claims.check(
        a.stats.get("noc.retransmissions") > 0.0,
        "the replayed runs actually injected faults",
    );
    println!(
        "  seed 7 twice: identical = {}; seed 8: retransmissions {} vs {}",
        a == b,
        a.stats.get("noc.retransmissions"),
        c.stats.get("noc.retransmissions"),
    );

    claims.finish("faults");
    Ok(())
}
