//! Figure 6: all-pairs shortest path — runtime relative to the AMD CPU
//! core. The algorithm needs a barrier per outer iteration, so the
//! loosely-coupled APU relaunches the kernel N times ("because the APU's
//! synchronization is quite slow, the APU's performance never exceeds that
//! of simply using the CPU core"), while CCSVM launches once and barriers
//! in shared memory.

use ccsvm_apu::{run_cpu, run_offload, ApuConfig, OffloadShape};
use ccsvm_bench::{check_eq, exit_with, ms, rel, BenchError, Claims, Opts, Out};
use ccsvm_workloads as wl;

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let opts = Opts::parse();
    let sizes = opts.pick(&[8, 16, 32, 64, 128], &[8, 16]);
    let apu = ApuConfig::paper_scaled();
    let mut claims = Claims::new();
    let mut out = Out::new(&opts, Some("results/fig6.txt"));

    out.header(
        "Figure 6: APSP runtime (ms, and relative to AMD CPU core = 1.0)",
        &[
            "   n",
            "   CPU ms",
            "   APU ms",
            "APUnoinit",
            " CCSVM ms",
            " APU rel",
            "noin rel",
            "CCSVMrel",
        ],
    );

    for &n in &sizes {
        let p = wl::apsp::ApspParams::new(n, 42);
        let expect = wl::apsp::reference_checksum(&p);

        let (t_cpu, _, cpu_code) = run_cpu(&apu, &wl::apsp::cpu_source(&p));
        check_eq(cpu_code, expect, format!("n={n}: CPU result"))?;

        // The OpenCL port relaunches per outer iteration; the distance
        // matrix stages in once and out once.
        let shape = OffloadShape {
            buffer_bytes: 2 * n * n * 8,
            launches: wl::apsp::launches_needed(&p),
        };
        let a = run_offload(&apu, &wl::apsp::xthreads_source(&p), shape);
        check_eq(a.exit_code, expect, format!("n={n}: APU result"))?;

        let (t_ccsvm, _, code) = ccsvm_bench::run_ccsvm_point(
            &wl::apsp::xthreads_source(&p),
            &opts,
            &format!("fig6-n{n}"),
        );
        check_eq(code, expect, format!("n={n}: CCSVM result"))?;

        out.line(format!(
            "{n:4} | {} | {} | {} | {} | {} | {} | {}",
            ms(t_cpu),
            ms(a.total),
            ms(a.total_no_init),
            ms(t_ccsvm),
            rel(a.total, t_cpu),
            rel(a.total_no_init, t_cpu),
            rel(t_ccsvm, t_cpu),
        ));

        claims.check(
            t_ccsvm < a.total_no_init,
            &format!("n={n}: CCSVM beats even the no-init APU"),
        );
        // With sizes scaled ~8x below the paper's sweep, the CCSVM-vs-CPU
        // crossover lands between n=64 and n=128 (see EXPERIMENTS.md).
        if n >= 128 {
            claims.check(
                t_ccsvm < t_cpu,
                &format!("n={n}: CCSVM beats the single CPU core"),
            );
        }
        if n <= 64 {
            claims.check(
                a.total_no_init > t_cpu,
                &format!("n={n}: the APU never beats the plain CPU (launch storm)"),
            );
        }
    }
    out.finish()?;
    claims.finish("fig6");
    Ok(())
}
