//! `campaign` — deterministic fault-campaign engine (DESIGN §14).
//!
//! Sweeps fault domain × protocol × workload × `sim_threads` cells from one
//! seed, enforcing the no-silent-wedge contract: every cell ends in a typed
//! outcome (panics are caught and recorded, hangs are watchdog- and
//! `max_sim_time`-bounded). Failing cells are delta-debugged down to a
//! minimal fault plan, captured as a replay bundle, and re-verified
//! in-process; `bench --bin replay <bundle>` reproduces them standalone.
//!
//! ```text
//! campaign [--quick] [--dir results/campaign] [--seed N]
//!          [--protocols a,b,c] [--workloads w1,w2] [--threads 1,2]
//!          [--domains d1,d2,...] [--no-mutation-cell]
//! ```
//!
//! The campaign writes `<dir>/manifest.txt` (byte-stable across re-runs),
//! `<dir>/bundles/*.ccbundle` for failing cells, and a report cache under
//! `<dir>/cache/`. Exit status 0 iff every claim holds: all grid cells
//! typed-ok, and (unless `--no-mutation-cell`) the seeded-mutation cell
//! fails, shrinks to a strictly simpler plan that keeps its probe-loss
//! carrier, and replays cycle- and invariant-exactly from its bundle.

use ccsvm::{Outcome, ProtocolKind, Time};
use ccsvm_bench::{exit_with, BenchError, Claims};
use ccsvm_engine::CampaignDomain;
use ccsvm_sweepd::campaign::{outcome_name, run_campaign, CampaignSpec, CellStatus};

fn main() {
    exit_with(run());
}

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn parse_list<T>(
    flag: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<Vec<T>>, BenchError> {
    let Some(raw) = arg_value(flag) else {
        return Ok(None);
    };
    raw.split(',')
        .map(|s| {
            let s = s.trim();
            parse(s).ok_or_else(|| BenchError::Run(format!("{flag}: bad element {s:?}")))
        })
        .collect::<Result<Vec<T>, BenchError>>()
        .map(Some)
}

fn run() -> Result<(), BenchError> {
    let quick = std::env::args().any(|a| a == "--quick");
    let dir = std::path::PathBuf::from(
        arg_value("--dir").unwrap_or_else(|| "results/campaign".to_string()),
    );

    let mut spec = CampaignSpec::default();
    if quick {
        // The CI smoke grid: every protocol, a cross-section of domains
        // (link loss, poison, probe loss, walk transients), both workloads.
        spec.domains = vec![
            CampaignDomain::NocDrop,
            CampaignDomain::DramDoubleBit,
            CampaignDomain::SnoopProbe,
            CampaignDomain::TlbTransient,
        ];
    } else {
        spec.sim_threads = vec![1, 2];
    }
    if let Some(seed) = arg_value("--seed") {
        spec.seed = seed
            .parse()
            .map_err(|_| BenchError::Run(format!("--seed: bad value {seed:?}")))?;
    }
    if let Some(protocols) = parse_list("--protocols", ProtocolKind::parse)? {
        spec.protocols = protocols;
    }
    if let Some(workloads) = parse_list("--workloads", |s| Some(s.to_string()))? {
        spec.workloads = workloads;
    }
    if let Some(threads) = parse_list("--threads", |s| s.parse::<usize>().ok())? {
        spec.sim_threads = threads;
    }
    if let Some(domains) = parse_list("--domains", CampaignDomain::parse)? {
        spec.domains = domains;
    }
    if std::env::args().any(|a| a == "--no-mutation-cell") {
        spec.mutation_cell = false;
    }

    println!(
        "== Fault campaign ({} protocols x {} workloads x {} domains x {} thread counts, seed {})",
        spec.protocols.len(),
        spec.workloads.len(),
        spec.domains.len(),
        spec.sim_threads.len(),
        spec.seed
    );
    let summary = run_campaign(&spec, &dir).map_err(|e| BenchError::Run(format!("{e}")))?;

    println!("== Cells");
    for c in &summary.cells {
        let outcome = match (&c.report, &c.panic) {
            (Some(r), _) => outcome_name(r.outcome).to_string(),
            (None, Some(p)) => format!("panic: {p}"),
            (None, None) => "?".to_string(),
        };
        let status = match c.status {
            CellStatus::Ok => "ok",
            CellStatus::Failing => "FAILING",
            CellStatus::Panicked => "PANICKED",
        };
        println!("  {:<44} {:<24} {status}", c.label, outcome);
    }
    for s in &summary.shrinks {
        println!(
            "  shrunk {} [{}] in {} steps -> {} (replay: {})",
            s.label,
            s.signature,
            s.steps,
            s.minimal.describe(),
            match s.reproduced {
                Some(true) => "reproduced",
                Some(false) => "NOT reproduced",
                None => "no bundle",
            }
        );
    }
    println!(
        "== {} cells: {} ok, {} failing, {} panicked",
        summary.cells.len(),
        summary.ok,
        summary.failing,
        summary.panicked
    );
    println!("manifest: {}", summary.manifest_path.display());

    let mut claims = Claims::new();
    claims.check(summary.panicked == 0, "no cell panicked");
    claims.check(
        summary
            .cells
            .iter()
            .all(|c| c.report.is_some() || c.panic.is_some()),
        "every cell produced a typed outcome",
    );
    let expected_failing = usize::from(spec.mutation_cell);
    claims.check(
        summary.failing == expected_failing,
        "every grid cell's outcome is justified by its plan",
    );
    claims.check(
        summary
            .cells
            .iter()
            .filter(|c| c.report.is_some())
            .all(|c| {
                c.report.as_ref().unwrap().time
                    <= Time::from_ms(2) // tiny_campaign max_sim_time + watchdog slack
            }),
        "every cell is time-bounded",
    );
    if spec.mutation_cell {
        let cell = summary
            .cells
            .iter()
            .find(|c| c.label == "mutation-corrupt-resend");
        claims.check(cell.is_some(), "the mutation cell ran");
        if let Some(cell) = cell {
            claims.check(
                cell.report.as_ref().map(|r| r.outcome) == Some(Outcome::InvariantViolation),
                "the seeded recovery-layer mutation is caught by the sanitizer",
            );
            let shrink = summary
                .shrinks
                .iter()
                .find(|s| s.label == "mutation-corrupt-resend");
            claims.check(shrink.is_some(), "the failing mutation cell was shrunk");
            if let Some(shrink) = shrink {
                claims.check(
                    shrink.minimal.entries.len() < cell.plan.entries.len(),
                    "shrinking produced a strictly simpler plan",
                );
                claims.check(
                    shrink
                        .minimal
                        .entries
                        .iter()
                        .any(|&(d, _)| d == CampaignDomain::SnoopProbe),
                    "the minimal plan keeps the probe-loss carrier",
                );
                claims.check(
                    shrink.reproduced == Some(true),
                    "the replay bundle reproduces cycle- and invariant-exactly",
                );
            }
        }
    }
    claims.finish("campaign");
    Ok(())
}
