//! Figure 8: sparse matrix multiplication speedup of CCSVM/xthreads over
//! the AMD CPU core. Left panel: fixed 1% density, varying size. Right
//! panel: fixed size, varying density — speedups shrink as the matrix
//! densifies because `mttop_malloc` (allocation proxied through a CPU
//! thread) becomes the bottleneck.

use ccsvm_apu::{run_cpu, ApuConfig};
use ccsvm_bench::{check_eq, exit_with, ms, BenchError, Claims, Opts, Out};
use ccsvm_workloads as wl;

fn run_pair(
    apu: &ApuConfig,
    p: &wl::spmm::SpmmParams,
    opts: &Opts,
    out: &mut Out,
) -> Result<(f64, u64), BenchError> {
    let expect = wl::spmm::reference_checksum(p);
    let (t_cpu, _, c1) = run_cpu(apu, &wl::spmm::cpu_source(p));
    check_eq(c1, expect, format!("n={}: CPU spmm result", p.n))?;
    let (t_ccsvm, _, c2) = ccsvm_bench::run_ccsvm_point(
        &wl::spmm::xthreads_source(p),
        opts,
        &format!("fig8-n{}-d{}", p.n, p.density_tenths_pct),
    );
    check_eq(c2, expect, format!("n={}: CCSVM spmm result", p.n))?;
    out.line(format!(
        "  n={:4} density={:4.1}% | CPU {} | CCSVM {} | speedup {:6.2} | allocs {}",
        p.n,
        p.density_tenths_pct as f64 / 10.0,
        ms(t_cpu),
        ms(t_ccsvm),
        t_cpu.as_ps() as f64 / t_ccsvm.as_ps() as f64,
        wl::spmm::reference_allocations(p),
    ));
    Ok((
        t_cpu.as_ps() as f64 / t_ccsvm.as_ps() as f64,
        wl::spmm::reference_allocations(p),
    ))
}

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let opts = Opts::parse();
    let apu = ApuConfig::paper_scaled();
    let mut claims = Claims::new();
    let mut out = Out::new(&opts, Some("results/fig8.txt"));

    out.header(
        "Figure 8 (left): sparse matmul speedup vs size at 1% density",
        &["rows below"],
    );
    let sizes = opts.pick(&[64, 128, 256], &[64, 128]);
    let mut left = Vec::new();
    for &n in &sizes {
        let p = wl::spmm::SpmmParams {
            n,
            density_tenths_pct: 10,
            max_threads: 1280,
            seed: 42,
        };
        left.push(run_pair(&apu, &p, &opts, &mut out)?);
    }
    if !opts.quick {
        claims.check(
            left.iter().all(|(s, _)| *s > 0.5),
            "1% density: CCSVM stays within 2x of the CPU (there is almost no              compute per row at simulable sizes; the win appears as density              or size grows)",
        );
    }

    out.header(
        "Figure 8 (right): sparse matmul speedup vs density at fixed size",
        &["rows below"],
    );
    let n = if opts.quick { 96 } else { 128 };
    let mut right = Vec::new();
    for &d in &[5u64, 10, 20, 50, 100] {
        let p = wl::spmm::SpmmParams {
            n,
            density_tenths_pct: d,
            max_threads: 1280,
            seed: 42,
        };
        right.push(run_pair(&apu, &p, &opts, &mut out)?);
    }
    if !opts.quick {
        let best = right.iter().map(|(s, _)| *s).fold(0.0f64, f64::max);
        claims.check(
            best > 1.0,
            "CCSVM obtains speedups on dynamically-allocated sparse matmul",
        );
        claims.check(
            best < 3.0,
            "...but far smaller than the dense benchmarks' (the paper's own caveat)",
        );
        // NOT REPRODUCED at simulable sizes: the paper's *declining* speedup
        // tail at high density. With a dense per-row accumulator and a
        // batching malloc server, allocation count scales with (and then
        // saturates below) compute at these matrix sizes, so mttop_malloc
        // never overtakes the compute term the way the paper's "extremely
        // large" matrices made it. The mechanism is still measurable: the
        // per-allocation CPU round trip is the reason speedups stay ~1x
        // instead of the dense benchmarks' 2-4x. See EXPERIMENTS.md.
        out.line(format!(
            "note: speedup-vs-density trend here: {:?} (paper shows a decline              at its much larger sizes)",
            right.iter().map(|(s, _)| (*s * 100.0).round() / 100.0).collect::<Vec<_>>()
        ));
    } else {
        out.line("  (quick mode: sizes too small for the paper's trend; claims skipped)");
    }
    out.finish()?;
    claims.finish("fig8");
    Ok(())
}
