//! `sweepd` — crash-recoverable sweep orchestrator front-end (DESIGN §10).
//!
//! Orchestrator mode expands a workload × size × seed grid into deduplicated
//! jobs and runs them in supervised worker processes (re-invocations of this
//! same binary with `--worker`), journaling every state transition to
//! `<dir>/sweep.journal`. Kill it at any point — SIGKILL included — and
//! rerunning the same command resumes from the journal + result cache,
//! finishing with a `manifest.txt` byte-identical to an uninterrupted run.
//!
//! `--chaos kill=P,seed=S[,crashes=K]` turns on deterministic failure
//! injection: workers SIGKILL themselves at seeded checkpoints and the
//! orchestrator crash-restarts itself `K` times (default 1) before running
//! to completion. Used by CI to prove the recovery invariant.
//!
//! Exit codes: 0 = sweep complete (poisoned jobs are *named in the
//! manifest*, not an error), 130 = interrupted by SIGINT/SIGTERM (resume by
//! rerunning), 1 = operational failure, 2 = CLI misuse.

use std::path::PathBuf;

use ccsvm_sweepd::orchestrator::{run_sweep, ChaosPlan, SweepOutcome};
use ccsvm_sweepd::worker::{run_worker, WorkerJob};
use ccsvm_sweepd::{SweepError, SweepSpec};

fn usage_exit(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: sweepd --dir DIR [--preset NAME] [--protocol NAME]\n\
         \x20             [--workloads a,b] [--sizes a,b]\n\
         \x20             [--seeds a,b] [--max-attempts N] [--timeout-ms N]\n\
         \x20             [--inflight N] [--ckpt-us US] [--seed N]\n\
         \x20             [--chaos kill=P,seed=S[,crashes=K]]\n\
         \n\
         \x20 --dir DIR         sweep directory (journal, cache, manifest)\n\
         \x20 --preset NAME     config preset (default tiny)\n\
         \x20 --protocol NAME   coherence protocol: directory, mesi-snoop,\n\
         \x20                   dragon (default directory); part of the job\n\
         \x20                   identity, so each protocol sweeps separately\n\
         \x20 --workloads LIST  vecadd,matmul,wedge (default vecadd)\n\
         \x20 --sizes LIST      problem sizes (default 64)\n\
         \x20 --seeds LIST      input seeds (default 1)\n\
         \x20 --max-attempts N  retry budget per job before poisoning (default 3)\n\
         \x20 --timeout-ms N    per-attempt wall-clock timeout (default 120000)\n\
         \x20 --inflight N      concurrent workers (default 2)\n\
         \x20 --ckpt-us US      checkpoint cadence in simulated µs (default 2;\n\
         \x20                   0 disables mid-run checkpoints)\n\
         \x20 --seed N          orchestrator seed for backoff jitter (default 1)\n\
         \x20 --chaos SPEC      deterministic failure injection: kill=P\n\
         \x20                   (worker kill probability), seed=S, crashes=K\n\
         \x20                   (orchestrator crash-restarts, default 1)\n\
         \n\
         Rerunning the same command on the same --dir resumes/no-ops: completed\n\
         jobs are served from the result cache, poisoned jobs stay retired."
    );
    std::process::exit(2);
}

struct ChaosArgs {
    plan: ChaosPlan,
    crashes: u32,
}

fn parse_chaos(v: &str) -> Result<ChaosArgs, String> {
    let mut kill = 0.0f64;
    let mut seed = 0u64;
    let mut crashes = 1u32;
    for part in v.split(',') {
        let Some((k, val)) = part.split_once('=') else {
            return Err(format!("bad --chaos component `{part}` (want k=v)"));
        };
        match k.trim() {
            "kill" => {
                kill = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad kill probability `{val}`"))?;
                if !(0.0..=1.0).contains(&kill) {
                    return Err(format!("kill probability `{val}` outside [0, 1]"));
                }
            }
            "seed" => {
                seed = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed `{val}`"))?;
            }
            "crashes" => {
                crashes = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad crash count `{val}`"))?;
            }
            other => return Err(format!("unknown --chaos key `{other}`")),
        }
    }
    Ok(ChaosArgs {
        plan: ChaosPlan {
            kill_prob: kill,
            seed,
            orch_crash: false,
        },
        crashes,
    })
}

fn parse_u64_list(flag: &str, v: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for s in v.split(',') {
        match s.trim().parse::<u64>() {
            Ok(n) => out.push(n),
            Err(_) => usage_exit(&format!("bad value `{s}` in {flag}")),
        }
    }
    if out.is_empty() {
        usage_exit(&format!("{flag} list is empty"));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker mode: this same binary re-invoked by the supervisor.
    if args.first().map(String::as_str) == Some("--worker") {
        match WorkerJob::parse_args(&args[1..]).and_then(|job| run_worker(&job)) {
            Ok(code) => std::process::exit(code),
            Err(e) => {
                eprintln!("sweepd-worker error: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut spec = SweepSpec::default();
    let mut dir: Option<PathBuf> = None;
    let mut chaos: Option<ChaosArgs> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| usage_exit(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--dir" => dir = Some(PathBuf::from(val("--dir"))),
            "--preset" => spec.preset = val("--preset"),
            "--protocol" => {
                let v = val("--protocol");
                match ccsvm::ProtocolKind::parse(&v) {
                    Some(p) => spec.protocol = p,
                    None => usage_exit(&format!(
                        "unknown protocol `{v}` (want directory, mesi-snoop, or dragon)"
                    )),
                }
            }
            "--workloads" => {
                spec.workloads = val("--workloads")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--sizes" => spec.sizes = parse_u64_list("--sizes", &val("--sizes")),
            "--seeds" => spec.seeds = parse_u64_list("--seeds", &val("--seeds")),
            "--max-attempts" => match val("--max-attempts").parse() {
                Ok(n) if n > 0 => spec.max_attempts = n,
                _ => usage_exit("bad --max-attempts (want a positive integer)"),
            },
            "--timeout-ms" => match val("--timeout-ms").parse() {
                Ok(n) if n > 0 => spec.timeout_ms = n,
                _ => usage_exit("bad --timeout-ms (want positive milliseconds)"),
            },
            "--inflight" => match val("--inflight").parse() {
                Ok(n) if n > 0 => spec.inflight = n,
                _ => usage_exit("bad --inflight (want a positive integer)"),
            },
            "--ckpt-us" => match val("--ckpt-us").parse::<u64>() {
                Ok(us) => spec.checkpoint_every_ps = us * 1_000_000,
                Err(_) => usage_exit("bad --ckpt-us (want simulated microseconds)"),
            },
            "--seed" => match val("--seed").parse() {
                Ok(n) => spec.seed = n,
                Err(_) => usage_exit("bad --seed"),
            },
            "--chaos" => match parse_chaos(&val("--chaos")) {
                Ok(c) => chaos = Some(c),
                Err(e) => usage_exit(&e),
            },
            other => usage_exit(&format!("unknown argument `{other}`")),
        }
    }
    let Some(dir) = dir else {
        usage_exit("--dir is required");
    };
    let worker_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot locate own executable: {e}");
            std::process::exit(1);
        }
    };

    // Chaos restart loop: each armed pass ends in a simulated orchestrator
    // crash (workers SIGKILLed, in-memory state dropped); the journal and
    // cache carry everything across. The final pass runs crash-free, which
    // bounds the loop and guarantees convergence.
    let mut crashes_left = chaos.as_ref().map_or(0, |c| c.crashes);
    let outcome = loop {
        let plan = chaos.as_ref().map(|c| ChaosPlan {
            orch_crash: crashes_left > 0,
            ..c.plan
        });
        match run_sweep(&spec, &dir, &worker_exe, plan.as_ref()) {
            Ok(SweepOutcome::ChaosCrashed) => {
                crashes_left -= 1;
                eprintln!(
                    "sweepd: chaos crash-restart ({} left); recovering from journal",
                    crashes_left
                );
            }
            Ok(other) => break Ok(other),
            Err(e) => break Err(e),
        }
    };

    match outcome {
        Ok(SweepOutcome::Completed(s)) => {
            println!(
                "sweep complete: {}/{} done, {} poisoned{}{}",
                s.done,
                s.total,
                s.poisoned.len(),
                if s.poisoned.is_empty() { "" } else { ": " },
                s.poisoned.join(", "),
            );
            println!(
                "manifest {} (fnv {:016x}), recoveries {}, max resumed_at {} ps",
                s.manifest_path.display(),
                s.manifest_fnv,
                s.recoveries,
                s.max_resumed_at_ps,
            );
            std::process::exit(0);
        }
        Ok(SweepOutcome::Interrupted) => {
            eprintln!("sweepd: interrupted; rerun the same command to resume");
            std::process::exit(130);
        }
        Ok(SweepOutcome::ChaosCrashed) => unreachable!("restart loop consumes crashes"),
        Err(e @ SweepError::Spec(_)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
