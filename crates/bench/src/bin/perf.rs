//! Hot-path throughput benchmark: events/sec and simulated-ns per host-ms
//! over a fixed end-to-end workload matrix, written to `BENCH_hotpath.json`.
//!
//! The paper's figures are produced by sweeping many full-system runs, so
//! simulator wall-clock throughput *is* the experiment budget. This binary
//! gives that throughput a recorded trajectory:
//!
//! * each matrix point builds one `Machine`, runs it to completion, and
//!   reports dispatched events, host wall time, and simulated time;
//! * every point runs twice and keeps the faster wall time (coarse noise
//!   rejection, same policy as `bench_loop`);
//! * totals land in `BENCH_hotpath.json` together with the merge-base
//!   baseline (see below), so a regression is visible per-PR.
//!
//! `--write-baseline` captures the current numbers as the comparison
//! baseline in `results/BENCH_hotpath_baseline.json`; later default runs
//! load that file and report `speedup_vs_baseline`.
//!
//! Usage: `perf [--quick] [--threads N] [--out PATH] [--write-baseline]`

use std::time::Instant;

use ccsvm::{Machine, Outcome, SystemConfig};
use ccsvm_bench::sweep;
use ccsvm_workloads as wl;

/// One matrix point: a named workload source.
struct Point {
    name: &'static str,
    source: String,
}

/// The fixed workload matrix. Mixed on purpose: CPU-only interpretation,
/// launch-heavy offload, memory-bound offload, and an irregular
/// pointer-chasing workload stress different slices of the hot path.
fn matrix(quick: bool) -> Vec<Point> {
    let mm = |n| wl::matmul::MatmulParams::new(n, 42);
    let sp = |n| wl::spmm::SpmmParams::one_percent(n, 42);
    let bh = |bodies| wl::barnes_hut::BhParams {
        bodies,
        steps: 1,
        max_threads: 1280,
        seed: 42,
    };
    let va = |n| wl::vecadd::VecaddParams { n, seed: 42 };
    if quick {
        vec![
            Point {
                name: "cpu_matmul_n16",
                source: wl::matmul::cpu_source(&mm(16)),
            },
            Point {
                name: "vecadd_n2048",
                source: wl::vecadd::xthreads_source(&va(2048)),
            },
            Point {
                name: "matmul_n24",
                source: wl::matmul::xthreads_source(&mm(24)),
            },
            Point {
                name: "barnes_hut_b128",
                source: wl::barnes_hut::xthreads_source(&bh(128)),
            },
        ]
    } else {
        vec![
            Point {
                name: "cpu_matmul_n24",
                source: wl::matmul::cpu_source(&mm(24)),
            },
            Point {
                name: "vecadd_n8192",
                source: wl::vecadd::xthreads_source(&va(8192)),
            },
            Point {
                name: "matmul_n48",
                source: wl::matmul::xthreads_source(&mm(48)),
            },
            Point {
                name: "spmm_n64",
                source: wl::spmm::xthreads_source(&sp(64)),
            },
            Point {
                name: "barnes_hut_b256",
                source: wl::barnes_hut::xthreads_source(&bh(256)),
            },
        ]
    }
}

/// Timing results for one matrix point.
struct Measure {
    name: &'static str,
    events: u64,
    host_ms: f64,
    sim_ms: f64,
}

fn run_point(p: &Point) -> Measure {
    let prog = wl::build(&p.source);
    let mut best: Option<Measure> = None;
    for _ in 0..2 {
        let mut cfg = SystemConfig::paper_default();
        cfg.max_sim_time = ccsvm::Time::from_ms(60_000);
        let mut m = Machine::new(cfg, prog.clone());
        let start = Instant::now();
        let r = m.run();
        let host_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            r.outcome,
            Outcome::Completed,
            "{}: run did not complete",
            p.name
        );
        let candidate = Measure {
            name: p.name,
            events: r.events,
            host_ms,
            sim_ms: r.time.as_ms(),
        };
        best = Some(match best {
            Some(b) if b.host_ms <= candidate.host_ms => b,
            _ => candidate,
        });
    }
    best.expect("at least one iteration")
}

/// Extracts `"key": <number>` from a minimal JSON text (no nesting of the
/// same key). Good enough to read our own baseline file without a JSON
/// dependency.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn usage_exit(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: perf [--quick] [--threads N] [--out PATH] [--write-baseline]\n\
         \n\
         \x20 --quick           smaller matrix for CI smoke runs\n\
         \x20 --threads N       run matrix points on N worker threads (default 1;\n\
         \x20                   use 1 for trustworthy per-point wall times)\n\
         \x20 --out PATH        where to write the JSON report (default BENCH_hotpath.json)\n\
         \x20 --write-baseline  record these numbers as results/BENCH_hotpath_baseline.json"
    );
    std::process::exit(2);
}

const BASELINE_PATH: &str = "results/BENCH_hotpath_baseline.json";

fn main() {
    let mut quick = false;
    let mut threads = 1usize;
    let mut out_path = "BENCH_hotpath.json".to_string();
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage_exit("--threads needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => usage_exit("--out needs a path"),
            },
            "--write-baseline" => write_baseline = true,
            other => usage_exit(&format!("unknown argument `{other}`")),
        }
    }

    let points = matrix(quick);
    println!(
        "== hot-path perf: {} workloads, {} thread(s)",
        points.len(),
        threads
    );
    println!(
        "{:<18} | {:>12} | {:>9} | {:>9} | {:>12} | {:>14}",
        "workload", "events", "host ms", "sim ms", "events/s", "sim ns/host ms"
    );
    let results = sweep(points.len(), threads, |i| run_point(&points[i]));
    let mut events_total = 0u64;
    let mut host_ms_total = 0.0f64;
    let mut rows = String::new();
    for m in &results {
        let eps = m.events as f64 / (m.host_ms / 1e3);
        let sim_ns_per_host_ms = m.sim_ms * 1e6 / m.host_ms;
        println!(
            "{:<18} | {:>12} | {:>9.2} | {:>9.4} | {:>12.0} | {:>14.1}",
            m.name, m.events, m.host_ms, m.sim_ms, eps, sim_ns_per_host_ms
        );
        events_total += m.events;
        host_ms_total += m.host_ms;
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"host_ms\": {:.3}, \"sim_ms\": {:.6}, \
             \"events_per_sec\": {:.0}, \"sim_ns_per_host_ms\": {:.1}}},\n",
            m.name, m.events, m.host_ms, m.sim_ms, eps, sim_ns_per_host_ms
        ));
    }
    let rows = rows.trim_end_matches(",\n").to_string();
    let eps_total = events_total as f64 / (host_ms_total / 1e3);
    println!(
        "total: {events_total} events in {host_ms_total:.1} host ms = {eps_total:.0} events/s"
    );

    let baseline = std::fs::read_to_string(BASELINE_PATH)
        .ok()
        .and_then(|text| json_number(&text, "events_per_sec_total"));
    let (baseline_json, speedup_json) = match baseline {
        Some(b) if b > 0.0 => {
            let speedup = eps_total / b;
            println!("baseline (merge-base): {b:.0} events/s -> speedup {speedup:.2}x");
            (
                format!("{{\"events_per_sec_total\": {b:.0}, \"source\": \"{BASELINE_PATH}\"}}"),
                format!("{speedup:.3}"),
            )
        }
        _ => ("null".to_string(), "null".to_string()),
    };

    let json = format!(
        "{{\n  \"schema\": \"ccsvm-hotpath-perf-v1\",\n  \"mode\": \"{mode}\",\n  \
         \"threads\": {threads},\n  \"workloads\": [\n{rows}\n  ],\n  \
         \"events_total\": {events_total},\n  \"host_ms_total\": {host_ms_total:.3},\n  \
         \"events_per_sec_total\": {eps_total:.0},\n  \"baseline\": {baseline_json},\n  \
         \"speedup_vs_baseline\": {speedup_json}\n}}\n",
        mode = if quick { "quick" } else { "full" },
    );
    std::fs::write(&out_path, &json).expect("write perf report");
    println!("wrote {out_path}");
    if write_baseline {
        std::fs::write(BASELINE_PATH, &json).expect("write baseline");
        println!("wrote {BASELINE_PATH}");
    }
}
