//! Hot-path throughput benchmark: events/sec and simulated-ns per host-ms
//! over a fixed end-to-end workload matrix, written to
//! `results/BENCH_hotpath.json`.
//!
//! The paper's figures are produced by sweeping many full-system runs, so
//! simulator wall-clock throughput *is* the experiment budget. This binary
//! gives that throughput a recorded trajectory:
//!
//! * each matrix point builds one `Machine`, runs it to completion, and
//!   reports dispatched events, host wall time, and simulated time;
//! * every point runs twice and keeps the faster wall time (coarse noise
//!   rejection, same policy as `bench_loop`); a third run with
//!   `host_profile` enabled records the per-phase host-time breakdown
//!   (core-exec vs uncore vs merge) without perturbing the timed runs;
//! * totals land in the JSON report together with the mode-keyed baseline
//!   (see below), so a regression is visible per-PR.
//!
//! The phase breakdown is what makes the `--sim-threads` Amdahl ceiling
//! visible in the artifact rather than guessed: `core_exec_ms` is the only
//! parallelizable share, and `zones`/`zone_batches` show how much of it
//! actually forks.
//!
//! `--write-baseline` captures the current numbers as the comparison
//! baseline in `results/BENCH_hotpath_baseline_<mode>.json`; later runs in
//! the same mode load that file and report `speedup_vs_baseline`. Quick and
//! full baselines are keyed separately so a CI smoke run is never compared
//! against a full-matrix capture.
//!
//! Usage: `perf [--quick] [--threads N] [--sim-threads N] [--out PATH]
//!              [--write-baseline]`

use std::time::Instant;

use ccsvm::{HostPhases, Machine, Outcome, SbStats, SpecStats, SystemConfig};
use ccsvm_bench::{exit_with, sweep, BenchError};
use ccsvm_workloads as wl;

/// One matrix point: a named workload source.
struct Point {
    name: &'static str,
    source: String,
}

/// The fixed workload matrix. Mixed on purpose: CPU-only interpretation,
/// launch-heavy offload, memory-bound offload, and an irregular
/// pointer-chasing workload stress different slices of the hot path.
fn matrix(quick: bool) -> Vec<Point> {
    let mm = |n| wl::matmul::MatmulParams::new(n, 42);
    let sp = |n| wl::spmm::SpmmParams::one_percent(n, 42);
    let bh = |bodies| wl::barnes_hut::BhParams {
        bodies,
        steps: 1,
        max_threads: 1280,
        seed: 42,
    };
    let va = |n| wl::vecadd::VecaddParams { n, seed: 42 };
    if quick {
        vec![
            Point {
                name: "cpu_matmul_n16",
                source: wl::matmul::cpu_source(&mm(16)),
            },
            Point {
                name: "vecadd_n2048",
                source: wl::vecadd::xthreads_source(&va(2048)),
            },
            Point {
                name: "matmul_n24",
                source: wl::matmul::xthreads_source(&mm(24)),
            },
            Point {
                name: "barnes_hut_b128",
                source: wl::barnes_hut::xthreads_source(&bh(128)),
            },
        ]
    } else {
        vec![
            Point {
                name: "cpu_matmul_n24",
                source: wl::matmul::cpu_source(&mm(24)),
            },
            Point {
                name: "vecadd_n8192",
                source: wl::vecadd::xthreads_source(&va(8192)),
            },
            Point {
                name: "matmul_n48",
                source: wl::matmul::xthreads_source(&mm(48)),
            },
            Point {
                name: "spmm_n64",
                source: wl::spmm::xthreads_source(&sp(64)),
            },
            Point {
                name: "barnes_hut_b256",
                source: wl::barnes_hut::xthreads_source(&bh(256)),
            },
        ]
    }
}

/// Timing results for one matrix point.
struct Measure {
    name: &'static str,
    events: u64,
    host_ms: f64,
    sim_ms: f64,
    phases: HostPhases,
    /// Superblock-cache counters from the profiled run (host telemetry;
    /// identical work across the timed runs).
    sb: SbStats,
    /// Speculative-epoch counters from the profiled run (DESIGN §12).
    spec: SpecStats,
}

fn run_point(
    p: &Point,
    sim_threads: usize,
    sb_cache: bool,
    speculation: bool,
    checkpoint_at: Option<ccsvm::Time>,
    restore_from: Option<&std::path::Path>,
) -> Result<Measure, BenchError> {
    let prog = wl::build(&p.source);
    let make_cfg = |host_profile: bool| {
        let mut cfg = SystemConfig::paper_default();
        cfg.max_sim_time = ccsvm::Time::from_ms(60_000);
        cfg.sim_threads = sim_threads;
        cfg.host_profile = host_profile;
        cfg.sb_cache = sb_cache;
        cfg.speculation.enabled = speculation;
        cfg
    };
    // `--restore-from`: warm-start the timed runs from this point's image
    // when one exists. The wall time then covers restore + the resumed tail
    // only, while `events`/`sim_ms` still describe the whole run (both are
    // part of the restored state), so warm captures are not comparable to
    // cold ones — that difference is exactly what the flag is for.
    let image = restore_from
        .map(|dir| dir.join(format!("perf-{}.ccsnap", p.name)))
        .filter(|path| path.exists());
    let mut best: Option<Measure> = None;
    for _ in 0..2 {
        let start = Instant::now();
        let mut m = match &image {
            Some(path) => Machine::restore(make_cfg(false), prog.clone(), path)?,
            None => Machine::new(make_cfg(false), prog.clone()),
        };
        let r = m.run();
        let host_ms = start.elapsed().as_secs_f64() * 1e3;
        if r.outcome != Outcome::Completed {
            return Err(BenchError::Run(format!(
                "{}: run ended {:?} instead of completing",
                p.name, r.outcome
            )));
        }
        let candidate = Measure {
            name: p.name,
            events: r.events,
            host_ms,
            sim_ms: r.time.as_ms(),
            phases: HostPhases::default(),
            sb: SbStats::default(),
            spec: SpecStats::default(),
        };
        best = Some(match best {
            Some(b) if b.host_ms <= candidate.host_ms => b,
            _ => candidate,
        });
    }
    let mut best = best.expect("loop above ran twice");
    // Separate profiled run: the per-batch `Instant` reads would skew the
    // timed runs above, so the breakdown comes from its own execution (the
    // simulated machine is bit-identical either way).
    let mut m = Machine::new(make_cfg(true), prog.clone());
    let r = m.run();
    if r.outcome != Outcome::Completed {
        return Err(BenchError::Run(format!(
            "{}: profiled run ended {:?}",
            p.name, r.outcome
        )));
    }
    best.phases = m.host_phases();
    best.sb = m.sb_stats();
    best.spec = m.spec_stats();
    // `--checkpoint-at`: one extra untimed run pauses at the requested cycle
    // and writes this point's image, so the timed numbers above are never
    // perturbed by serialization or disk writes.
    if let Some(at) = checkpoint_at {
        let mut m = Machine::new(make_cfg(false), prog);
        if m.run_until(at).is_none() {
            std::fs::create_dir_all(ccsvm_bench::SNAP_DIR)
                .map_err(|e| BenchError::io(ccsvm_bench::SNAP_DIR, &e))?;
            let path =
                std::path::Path::new(ccsvm_bench::SNAP_DIR).join(format!("perf-{}.ccsnap", p.name));
            m.checkpoint(&path)?;
        }
    }
    Ok(best)
}

/// Cold-vs-warm sweep wall-time for the fig5-style warm-start protocol
/// (EXPERIMENTS.md): repetitions of the matrix's offload matmul point, once
/// re-simulating initialization every time and once forked from a snapshot
/// taken at the region-start marker. Returns the `warm_start` JSON object
/// and the measured speedup.
///
/// Only the *marginal repetitions* are timed on both sides: the one-off
/// snapshot capture (which itself simulates the initialization it exists to
/// amortize) is setup, reported separately as `setup_wall_ms`. Folding it
/// into the warm wall — as this harness once did — understated the win
/// enough to report speedups below 1.0 on fast full-matrix machines.
fn measure_warm_start(
    quick: bool,
    sim_threads: usize,
    speculation: bool,
) -> Result<(String, f64), BenchError> {
    // Full mode measures fig5's largest point: initialization there is worth
    // hundreds of host-ms per repetition, so the amortization is well above
    // run-to-run noise. Quick keeps the matrix's small matmul — the capture
    // records the protocol (and asserts determinism), not a wall-time win.
    let n = if quick { 24 } else { 128 };
    let reps = 3usize;
    let p = wl::matmul::MatmulParams::new(n, 42);
    let src = wl::matmul::xthreads_source(&p);
    let prog = wl::build(&src);
    let make_cfg = || {
        let mut cfg = ccsvm_bench::bench_cfg(sim_threads);
        cfg.speculation.enabled = speculation;
        cfg
    };

    // Setup (untimed side of the comparison): simulate to the region-start
    // marker once and capture the fork image every warm rep restores from.
    // The image crosses speculation settings freely (`config_hash`
    // normalizes host-only knobs).
    let t_setup = Instant::now();
    let paused = ccsvm_bench::pause_at_region_start(&src, sim_threads).ok_or_else(|| {
        BenchError::Run("matmul finished before its region-start marker".to_string())
    })?;
    let image = paused.checkpoint_bytes();
    let setup_wall_ms = t_setup.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut cold = Vec::new();
    for _ in 0..reps {
        let mut m = Machine::new(make_cfg(), prog.clone());
        cold.push(ccsvm_bench::region_numbers(&m.run()));
    }
    let cold_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let mut warm = Vec::new();
    for _ in 0..reps {
        let mut fork = Machine::restore_bytes(make_cfg(), prog.clone(), &image)?;
        warm.push(ccsvm_bench::region_numbers(&fork.run()));
    }
    let warm_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    let region_match = warm == cold;
    if !region_match {
        return Err(BenchError::Run(
            "warm-start repetitions diverged from cold runs".to_string(),
        ));
    }
    let speedup = cold_wall_ms / warm_wall_ms;
    println!(
        "warm-start (matmul n={n}, {reps} reps): cold {cold_wall_ms:.1} ms, \
         warm {warm_wall_ms:.1} ms ({speedup:.2}x, setup {setup_wall_ms:.1} ms), \
         image {} bytes",
        image.len()
    );
    let json = format!(
        "{{\"workload\": \"matmul_n{n}\", \"reps\": {reps}, \
         \"cold_wall_ms\": {cold_wall_ms:.3}, \"warm_wall_ms\": {warm_wall_ms:.3}, \
         \"setup_wall_ms\": {setup_wall_ms:.3}, \
         \"speedup\": {speedup:.3}, \"region_match\": {region_match}, \
         \"image_bytes\": {}}}",
        image.len()
    );
    Ok((json, speedup))
}

/// One scaling-matrix measurement: `(sim_threads, events_per_sec, coverage)`.
type ScalingPoint = (usize, f64, f64);

/// `--sim-threads` scaling matrix over the matrix's offload matmul point:
/// the same workload at `sim_threads` {1, 2, 4} with speculation as
/// configured, so the artifact records how the epoch executor scales rather
/// than a single operating point. Returns the `scaling` JSON object and the
/// measured `(sim_threads, events_per_sec)` pairs.
///
/// The host's available parallelism is recorded alongside: the executors
/// clamp their worker count to it, so on a single-CPU host every
/// `sim_threads` value runs the same speculative machinery inline and the
/// ev/s ordering reflects pure bookkeeping overhead, not scaling. The gate
/// in `main` therefore only enforces `sim_threads 4 > sim_threads 1` when
/// the host can actually run workers in parallel.
fn measure_scaling(
    quick: bool,
    sb_cache: bool,
    speculation: bool,
) -> Result<(String, Vec<ScalingPoint>), BenchError> {
    let (name, n) = if quick {
        ("matmul_n24", 24)
    } else {
        ("matmul_n48", 48)
    };
    let p = Point {
        name,
        source: wl::matmul::xthreads_source(&wl::matmul::MatmulParams::new(n, 42)),
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut points = Vec::new();
    let mut rows = String::new();
    for &t in &[1usize, 2, 4] {
        let m = run_point(&p, t, sb_cache, speculation, None, None)?;
        let eps = m.events as f64 / (m.host_ms / 1e3);
        println!(
            "scaling {name}: sim_threads {t} -> {eps:.0} events/s \
             (epochs {}, coverage {:.1}%)",
            m.spec.epochs,
            m.spec.coverage() * 100.0
        );
        rows.push_str(&format!(
            "{{\"sim_threads\": {t}, \"events_per_sec\": {eps:.0}, \
             \"host_ms\": {:.3}, \"coverage\": {:.4}}}, ",
            m.host_ms,
            m.spec.coverage(),
        ));
        points.push((t, eps, m.spec.coverage()));
    }
    let rows = rows.trim_end_matches(", ").to_string();
    let json = format!(
        "{{\"workload\": \"{name}\", \"host_cpus\": {host_cpus}, \
         \"points\": [{rows}]}}"
    );
    Ok((json, points))
}

/// Extracts `"key": <number>` from a minimal JSON text (no nesting of the
/// same key). Good enough to read our own baseline file without a JSON
/// dependency.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn usage_exit(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: perf [--quick] [--threads N] [--sim-threads N] [--out PATH] [--write-baseline]\n\
         \x20            [--checkpoint-at NS] [--restore-from DIR] [--no-sb-cache]\n\
         \x20            [--no-speculation] [--gate-drop PCT]\n\
         \n\
         \x20 --quick           smaller matrix for CI smoke runs\n\
         \x20 --threads N       run matrix points on N worker threads (default 1;\n\
         \x20                   use 1 for trustworthy per-point wall times)\n\
         \x20 --sim-threads N   fork-join workers inside each machine (default 1;\n\
         \x20                   simulated results are bit-identical at every value)\n\
         \x20 --out PATH        where to write the JSON report\n\
         \x20                   (default results/BENCH_hotpath.json)\n\
         \x20 --write-baseline  record these numbers as the mode-keyed baseline\n\
         \x20                   results/BENCH_hotpath_baseline_<mode>.json\n\
         \x20 --checkpoint-at NS  after the timed runs, pause an extra untimed run\n\
         \x20                   of each point at simulated time NS ns and write\n\
         \x20                   snapshots/perf-<name>.ccsnap (timed numbers are\n\
         \x20                   never perturbed)\n\
         \x20 --restore-from DIR  warm-start each point's timed runs from\n\
         \x20                   DIR/perf-<name>.ccsnap when present; warm captures\n\
         \x20                   measure restore + the resumed tail and are not\n\
         \x20                   comparable to cold ones\n\
         \x20 --no-sb-cache     disable the decoded-superblock cache (host-perf\n\
         \x20                   ablation; simulated results are bit-identical)\n\
         \x20 --no-speculation  disable the speculative epoch executor (host-perf\n\
         \x20                   ablation; simulated results are bit-identical)\n\
         \x20 --gate-drop PCT   CI regression gate: exit nonzero when\n\
         \x20                   events_per_sec_total drops more than PCT% below\n\
         \x20                   the committed mode-keyed baseline (errors if no\n\
         \x20                   baseline file exists); also fails when warm-start\n\
         \x20                   speedup < 1.0 or, with speculation on and\n\
         \x20                   sim-threads > 1, when the offload matmul point\n\
         \x20                   commits zero epochs"
    );
    std::process::exit(2);
}

/// The comparison baseline, keyed by matrix mode so quick CI captures never
/// get compared against the checked-in full-matrix numbers.
fn baseline_path(quick: bool) -> String {
    format!(
        "results/BENCH_hotpath_baseline_{}.json",
        if quick { "quick" } else { "full" }
    )
}

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let mut quick = false;
    let mut threads = 1usize;
    let mut sim_threads = 1usize;
    let mut out_path = "results/BENCH_hotpath.json".to_string();
    let mut write_baseline = false;
    let mut checkpoint_at = None;
    let mut restore_from: Option<std::path::PathBuf> = None;
    let mut sb_cache = true;
    let mut speculation = true;
    let mut gate_drop: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--no-sb-cache" => sb_cache = false,
            "--no-speculation" => speculation = false,
            "--gate-drop" => match args.next().and_then(|v| v.trim().parse::<f64>().ok()) {
                Some(pct) if (0.0..100.0).contains(&pct) => gate_drop = Some(pct),
                _ => usage_exit("--gate-drop needs a percentage in [0, 100)"),
            },
            "--threads" => match args.next().and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage_exit("--threads needs a positive integer"),
            },
            "--sim-threads" => match args.next().and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(n) if n > 0 => sim_threads = n,
                _ => usage_exit("--sim-threads needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => usage_exit("--out needs a path"),
            },
            "--write-baseline" => write_baseline = true,
            "--checkpoint-at" => match args.next().and_then(|v| v.trim().parse::<u64>().ok()) {
                Some(ns) if ns > 0 => checkpoint_at = Some(ccsvm::Time::from_ns(ns)),
                _ => usage_exit("--checkpoint-at needs positive nanoseconds"),
            },
            "--restore-from" => match args.next() {
                Some(p) => restore_from = Some(std::path::PathBuf::from(p)),
                None => usage_exit("--restore-from needs a directory"),
            },
            other => usage_exit(&format!("unknown argument `{other}`")),
        }
    }

    let points = matrix(quick);
    println!(
        "== hot-path perf: {} workloads, {} thread(s), {} sim-thread(s)",
        points.len(),
        threads,
        sim_threads
    );
    println!(
        "{:<18} | {:>12} | {:>9} | {:>9} | {:>12} | {:>14} | {:>22}",
        "workload",
        "events",
        "host ms",
        "sim ms",
        "events/s",
        "sim ns/host ms",
        "core/uncore/merge ms"
    );
    if !sb_cache {
        println!("(superblock cache DISABLED: --no-sb-cache ablation)");
    }
    if !speculation {
        println!("(speculative epochs DISABLED: --no-speculation ablation)");
    }
    let results = sweep(points.len(), threads, |i| {
        run_point(
            &points[i],
            sim_threads,
            sb_cache,
            speculation,
            checkpoint_at,
            restore_from.as_deref(),
        )
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let mut events_total = 0u64;
    let mut host_ms_total = 0.0f64;
    let mut rows = String::new();
    for m in &results {
        let eps = m.events as f64 / (m.host_ms / 1e3);
        let sim_ns_per_host_ms = m.sim_ms * 1e6 / m.host_ms;
        let ph = &m.phases;
        println!(
            "{:<18} | {:>12} | {:>9.2} | {:>9.4} | {:>12.0} | {:>14.1} | {:>6.1}/{:>6.1}/{:>6.1} \
             | sb {}h/{}m/{}e len {:.1} | epochs {} cov {:.0}%",
            m.name,
            m.events,
            m.host_ms,
            m.sim_ms,
            eps,
            sim_ns_per_host_ms,
            ph.core_exec_ms,
            ph.uncore_ms,
            ph.merge_ms,
            m.sb.hits,
            m.sb.misses,
            m.sb.evictions,
            m.sb.mean_decoded_len(),
            m.spec.epochs,
            m.spec.coverage() * 100.0,
        );
        events_total += m.events;
        host_ms_total += m.host_ms;
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"host_ms\": {:.3}, \"sim_ms\": {:.6}, \
             \"events_per_sec\": {:.0}, \"sim_ns_per_host_ms\": {:.1}, \
             \"phases\": {{\"core_exec_ms\": {:.3}, \"uncore_ms\": {:.3}, \
             \"merge_ms\": {:.3}, \"other_ms\": {:.3}, \"decode_ms\": {:.3}, \"zones\": {}, \
             \"zone_batches\": {}}}, \
             \"sb\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"mean_decoded_len\": {:.2}}}, \
             \"spec\": {{\"epochs\": {}, \"members\": {}, \"committed\": {}, \
             \"rolled_back\": {}, \"stale\": {}, \"overflows\": {}, \"rollback_all\": {}, \
             \"batches_total\": {}, \"coverage\": {:.4}, \"commit_rate\": {:.4}}}}},\n",
            m.name,
            m.events,
            m.host_ms,
            m.sim_ms,
            eps,
            sim_ns_per_host_ms,
            ph.core_exec_ms,
            ph.uncore_ms,
            ph.merge_ms,
            ph.other_ms,
            ph.decode_ms,
            ph.zones,
            ph.zone_batches,
            m.sb.hits,
            m.sb.misses,
            m.sb.evictions,
            m.sb.mean_decoded_len(),
            m.spec.epochs,
            m.spec.members,
            m.spec.committed,
            m.spec.rolled_back,
            m.spec.stale,
            m.spec.overflows,
            m.spec.rollback_all,
            m.spec.batches_total,
            m.spec.coverage(),
            m.spec.commit_rate(),
        ));
    }
    let rows = rows.trim_end_matches(",\n").to_string();
    let eps_total = events_total as f64 / (host_ms_total / 1e3);
    println!(
        "total: {events_total} events in {host_ms_total:.1} host ms = {eps_total:.0} events/s"
    );

    let (warm_start_json, warm_speedup) = measure_warm_start(quick, sim_threads, speculation)?;
    let (scaling_json, scaling_points) = measure_scaling(quick, sb_cache, speculation)?;

    let baseline_file = baseline_path(quick);
    let baseline = std::fs::read_to_string(&baseline_file)
        .ok()
        .and_then(|text| json_number(&text, "events_per_sec_total"));
    let (baseline_json, speedup_json) = match baseline {
        Some(b) if b > 0.0 => {
            let speedup = eps_total / b;
            println!("baseline (merge-base): {b:.0} events/s -> speedup {speedup:.2}x");
            (
                format!("{{\"events_per_sec_total\": {b:.0}, \"source\": \"{baseline_file}\"}}"),
                format!("{speedup:.3}"),
            )
        }
        _ => ("null".to_string(), "null".to_string()),
    };

    let json = format!(
        "{{\n  \"schema\": \"ccsvm-hotpath-perf-v5\",\n  \"mode\": \"{mode}\",\n  \
         \"threads\": {threads},\n  \"sim_threads\": {sim_threads},\n  \
         \"sb_cache\": {sb_cache},\n  \"speculation\": {speculation},\n  \
         \"workloads\": [\n{rows}\n  ],\n  \
         \"events_total\": {events_total},\n  \"host_ms_total\": {host_ms_total:.3},\n  \
         \"events_per_sec_total\": {eps_total:.0},\n  \
         \"warm_start\": {warm_start_json},\n  \"scaling\": {scaling_json},\n  \
         \"baseline\": {baseline_json},\n  \
         \"speedup_vs_baseline\": {speedup_json}\n}}\n",
        mode = if quick { "quick" } else { "full" },
    );
    // Atomic temp-file + rename: a crash mid-write can never leave a torn
    // perf artifact for the CI gate (or a later run) to trip over.
    ccsvm_bench::write_results_atomic(&out_path, &json)?;
    println!("wrote {out_path}");
    if write_baseline {
        ccsvm_bench::write_results_atomic(&baseline_file, &json)?;
        println!("wrote {baseline_file}");
    }
    // `--gate-drop`: the CI regression gate. Runs against the *committed*
    // mode-keyed baseline so a hot-path regression fails the build instead
    // of silently shipping.
    if let Some(pct) = gate_drop {
        let Some(b) = baseline.filter(|b| *b > 0.0) else {
            return Err(BenchError::Run(format!(
                "--gate-drop: no baseline at {baseline_file}; run with --write-baseline \
                 on a known-good build and commit it"
            )));
        };
        let floor = b * (1.0 - pct / 100.0);
        if eps_total < floor {
            return Err(BenchError::Run(format!(
                "perf regression gate: {eps_total:.0} events/s is more than {pct}% below \
                 the baseline {b:.0} (floor {floor:.0})"
            )));
        }
        println!("gate: {eps_total:.0} events/s >= floor {floor:.0} ({pct}% below {b:.0}) — ok");
        // Warm-start must actually win: the marginal warm repetition skips
        // re-simulating initialization, so a speedup below 1.0 means the
        // protocol (or its timing) regressed.
        if warm_speedup < 1.0 {
            return Err(BenchError::Run(format!(
                "warm-start gate: speedup {warm_speedup:.3} < 1.0 — forked repetitions \
                 were slower than cold re-simulation"
            )));
        }
        println!("gate: warm-start speedup {warm_speedup:.2}x >= 1.0 — ok");
        // With speculation on and a parallel executor, the offload matmul
        // point must commit epochs: zero coverage means the executor
        // silently degenerated to serial batch-at-a-time execution.
        if speculation && sim_threads > 1 {
            let mm = results
                .iter()
                .find(|m| m.name.starts_with("matmul_n"))
                .ok_or_else(|| BenchError::Run("matrix lost its offload matmul point".into()))?;
            if mm.spec.committed == 0 {
                return Err(BenchError::Run(format!(
                    "speculation gate: {} committed zero epoch members \
                     ({} batches ran) with speculation enabled",
                    mm.name, mm.spec.batches_total
                )));
            }
            println!(
                "gate: {} epoch coverage {:.1}% ({} committed / {} batches) — ok",
                mm.name,
                mm.spec.coverage() * 100.0,
                mm.spec.committed,
                mm.spec.batches_total
            );
        }
        // Scaling gate: with speculation on, `--sim-threads 4` must beat
        // `--sim-threads 1` — but only where the claim is testable. The
        // executors clamp workers to the host's available parallelism, so
        // on a single-CPU host every thread count runs the same machinery
        // inline and "scaling" would gate on noise; record the skip
        // instead of pretending.
        if speculation {
            let host_cpus = std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1);
            let t1 = scaling_points.iter().find(|(t, _, _)| *t == 1);
            let t4 = scaling_points.iter().find(|(t, _, _)| *t == 4);
            match (t1, t4) {
                (Some(&(_, eps1, _)), Some(&(_, eps4, _))) if host_cpus >= 2 => {
                    if eps4 <= eps1 {
                        return Err(BenchError::Run(format!(
                            "scaling gate: sim_threads 4 ({eps4:.0} ev/s) did not beat \
                             sim_threads 1 ({eps1:.0} ev/s) on a {host_cpus}-CPU host"
                        )));
                    }
                    println!(
                        "gate: scaling {eps1:.0} -> {eps4:.0} ev/s \
                         (sim_threads 1 -> 4, {host_cpus} host CPUs) — ok"
                    );
                }
                (Some(&(_, eps1, _)), Some(&(_, eps4, _))) => println!(
                    "gate: scaling SKIPPED — single-CPU host \
                     (sim_threads 1: {eps1:.0} ev/s, 4: {eps4:.0} ev/s, \
                     parallel executors run inline)"
                ),
                _ => {
                    return Err(BenchError::Run(
                        "scaling gate: matrix lost its sim_threads 1/4 points".into(),
                    ))
                }
            }
        }
    }
    Ok(())
}
