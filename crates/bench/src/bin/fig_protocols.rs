//! Cross-protocol evaluation (DESIGN §13): the same CPU+MTTOP workloads
//! under the directory-MOESI, snooping-MESI, and Dragon write-update
//! protocols. The simulated table (runtime, event count, DRAM accesses, NoC
//! traffic) is deterministic; a separate host-throughput footer reports
//! ev/s per protocol, which — like the hotpath baselines — depends on the
//! host machine.
//!
//! The expected shape: all three protocols compute identical results
//! (architectural equivalence), the snooping protocols pay a broadcast
//! event/traffic premium over the directory, and Dragon's in-place updates
//! keep DRAM traffic at directory level where invalidating MESI re-fetches.

use std::time::Instant;

use ccsvm::{Machine, Outcome, ProtocolKind, RunReport};
use ccsvm_bench::{bench_cfg, check_eq, exit_with, ms, rel, BenchError, Claims, Opts, Out};
use ccsvm_workloads as wl;

fn stat(r: &RunReport, key: &str) -> f64 {
    r.stats
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
        .unwrap_or(0.0)
}

struct Point {
    report: RunReport,
    host_secs: f64,
}

fn run_point(kind: ProtocolKind, src: &str, opts: &Opts) -> Result<Point, BenchError> {
    let mut cfg = bench_cfg(opts.sim_threads);
    cfg.sb_cache = opts.sb_cache;
    cfg.protocol = kind;
    let prog = wl::build(src);
    let started = Instant::now();
    let report = Machine::new(cfg, prog).run();
    let host_secs = started.elapsed().as_secs_f64();
    if report.outcome != Outcome::Completed {
        return Err(BenchError::Run(format!(
            "{kind}: run aborted with {:?} (diag: {:?})",
            report.outcome, report.diagnostic
        )));
    }
    Ok(Point { report, host_secs })
}

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let opts = Opts::parse();
    let sizes = opts.pick(&[8, 16, 24], &[8]);
    let mut claims = Claims::new();
    let mut out = Out::new(&opts, Some("results/fig_protocols.txt"));

    out.header(
        "Cross-protocol: matmul on CPU+MTTOP under each coherence protocol",
        &[
            "   n",
            "protocol  ",
            "  time ms",
            " rel dir",
            "    events",
            "    dram",
            " noc KB",
        ],
    );

    // protocol-major within each size: every (size, protocol) pair is an
    // independent machine, swept in parallel under `--threads N` and
    // reassembled in input order so the table is byte-identical at any
    // thread count.
    let grid: Vec<(u64, ProtocolKind)> = sizes
        .iter()
        .flat_map(|&n| ProtocolKind::ALL.iter().map(move |&p| (n, p)))
        .collect();
    let points = ccsvm_bench::sweep(grid.len(), opts.threads, |i| -> Result<_, BenchError> {
        let (n, kind) = grid[i];
        let p = wl::matmul::MatmulParams::new(n, 42);
        let point = run_point(kind, &wl::matmul::xthreads_source(&p), &opts)?;
        check_eq(
            point.report.exit_code,
            wl::matmul::reference_checksum(&p),
            format!("n={n} {kind}: result checksum"),
        )?;
        Ok(point)
    });
    let points = points.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut footer = Vec::new();
    for (chunk, &n) in points.chunks(ProtocolKind::ALL.len()).zip(&sizes) {
        let dir = &chunk[0].report;
        for (point, &kind) in chunk.iter().zip(ProtocolKind::ALL.iter()) {
            let r = &point.report;
            out.line(format!(
                "{n:4} | {:10} | {} | {} | {:9} | {:7} | {:6.1}",
                kind.to_string(),
                ms(r.time),
                rel(r.time, dir.time),
                r.events,
                r.dram_accesses,
                stat(r, "noc.bytes") / 1024.0,
            ));
            footer.push(format!(
                "n={n} {kind}: {:.0} ev/s host",
                r.events as f64 / point.host_secs.max(1e-9)
            ));
            claims.check(
                r.exit_code == dir.exit_code,
                &format!("n={n} {kind}: same program result as directory"),
            );
        }
        let mesi = &chunk[1].report;
        let dragon = &chunk[2].report;
        claims.check(
            mesi.events > dir.events,
            &format!("n={n}: snooping broadcast costs events over the directory"),
        );
        claims.check(
            dragon.dram_accesses <= mesi.dram_accesses,
            &format!("n={n}: Dragon updates avoid MESI's re-fetch DRAM traffic"),
        );
        claims.check(
            dir.time <= mesi.time && dir.time <= dragon.time,
            &format!("n={n}: the directory protocol is the fastest simulated machine"),
        );
    }
    out.finish()?;

    // Host-dependent, so kept out of the results artifact (like the hotpath
    // harness, throughput belongs to the machine that measured it).
    println!("-- host throughput (not in the artifact) --");
    for line in footer {
        println!("{line}");
    }
    claims.finish("fig-protocols");
    Ok(())
}
