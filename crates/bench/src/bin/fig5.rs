//! Figure 5: dense matrix multiply — runtime relative to the AMD CPU core,
//! for the APU (full), the APU without compilation/initialization, and
//! CCSVM/xthreads. Lower is better; the paper's log-scale plot shows CCSVM
//! winning by orders of magnitude at small sizes with the APU catching up
//! at the largest size.

use ccsvm_apu::{run_cpu, run_offload, ApuConfig, OffloadShape};
use ccsvm_bench::{check_eq, exit_with, ms, rel, BenchError, Claims, Opts, Out};
use ccsvm_workloads as wl;

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let opts = Opts::parse();
    let sizes = opts.pick(&[8, 16, 32, 64, 128], &[8, 16]);
    let apu = ApuConfig::paper_scaled();
    let mut claims = Claims::new();
    let mut out = Out::new(&opts, Some("results/fig5.txt"));

    out.header(
        "Figure 5: matmul runtime (ms, and relative to AMD CPU core = 1.0)",
        &[
            "   n",
            "   CPU ms",
            "   APU ms",
            "APUnoinit",
            " CCSVM ms",
            " APU rel",
            "noin rel",
            "CCSVMrel",
        ],
    );

    // Simulate every sweep point (each an independent `Machine`) up front —
    // in parallel under `--threads N` — then print and judge claims in input
    // order, so the output is byte-identical at any thread count.
    let points = ccsvm_bench::sweep(sizes.len(), opts.threads, |i| -> Result<_, BenchError> {
        let n = sizes[i];
        let p = wl::matmul::MatmulParams::new(n, 42);
        let expect = wl::matmul::reference_checksum(&p);

        let (t_cpu, _, cpu_code) = run_cpu(&apu, &wl::matmul::cpu_source(&p));
        check_eq(cpu_code, expect, format!("n={n}: CPU result"))?;

        let shape = OffloadShape {
            buffer_bytes: 3 * n * n * 8,
            launches: 1,
        };
        let a = run_offload(&apu, &wl::matmul::xthreads_source(&p), shape);
        check_eq(a.exit_code, expect, format!("n={n}: APU result"))?;

        let (t_ccsvm, _, ccsvm_code) = ccsvm_bench::run_ccsvm_point(
            &wl::matmul::xthreads_source(&p),
            &opts,
            &format!("fig5-n{n}"),
        );
        check_eq(ccsvm_code, expect, format!("n={n}: CCSVM result"))?;
        Ok((t_cpu, a, t_ccsvm))
    });
    let points = points.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut rel_ccsvm_small = None;
    let mut last_ratio_noinit_over_ccsvm = 0.0;
    for (&n, (t_cpu, a, t_ccsvm)) in sizes.iter().zip(points) {
        out.line(format!(
            "{n:4} | {} | {} | {} | {} | {} | {} | {}",
            ms(t_cpu),
            ms(a.total),
            ms(a.total_no_init),
            ms(t_ccsvm),
            rel(a.total, t_cpu),
            rel(a.total_no_init, t_cpu),
            rel(t_ccsvm, t_cpu),
        ));

        if n == sizes[0] {
            rel_ccsvm_small = Some((t_ccsvm, a.total_no_init));
        }
        last_ratio_noinit_over_ccsvm = a.total_no_init.as_ps() as f64 / t_ccsvm.as_ps() as f64;
        claims.check(
            t_ccsvm < a.total,
            &format!("n={n}: CCSVM beats the full-runtime APU"),
        );
    }

    if let Some((ccsvm_small, apu_small)) = rel_ccsvm_small {
        claims.check(
            apu_small.as_ps() as f64 / ccsvm_small.as_ps() as f64 > 2.0,
            "smallest size: CCSVM beats even the no-init APU by > 2x",
        );
    }
    if sizes.len() > 1 {
        claims.check(
            last_ratio_noinit_over_ccsvm < 5.0,
            "largest size: the no-init APU closes most of the gap (raw VLIW throughput)",
        );
    }
    out.finish()?;
    claims.finish("fig5");
    Ok(())
}
