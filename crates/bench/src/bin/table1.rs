//! Table 1: the xthreads API synopsis — printed from the implementation and
//! verified against the compiled runtime library (every function must
//! exist, with the declared caller side enforced by the compiler).

use ccsvm_bench::{exit_with, BenchError};

fn main() {
    exit_with(run());
}

fn run() -> Result<(), BenchError> {
    let program = ccsvm_xcc::compile_to_program(ccsvm_xthreads::XTHREADS_LIB)
        .map_err(|e| BenchError::Run(format!("runtime library failed to compile: {e}")))?;
    let rows: &[(&str, &str, &str)] = &[
        (
            "CPU",
            "xt_create_mthread(fn, args, firstThread, lastThread)",
            "Spawns MTTOP threads running fn(tid, args); MIFD write syscall",
        ),
        (
            "CPU",
            "xt_wait(cond, firstThread, lastThread)",
            "Sets elements to WaitingOnMTTOP, waits until MTTOP threads set Ready",
        ),
        (
            "CPU",
            "xt_signal(cond, firstThread, lastThread)",
            "Sets condition elements to Ready so MTTOP threads stop waiting",
        ),
        (
            "CPU",
            "xt_barrier_cpu(bar, sense, firstThread, lastThread)",
            "Waits for all MTTOP arrivals, then flips the sense",
        ),
        (
            "CPU",
            "xt_malloc_server(req, resp, n, done, firstThread, lastThread)",
            "Table 1's wait(waitCondition = malloc requests): services mttop_malloc",
        ),
        (
            "MTTOP",
            "xt_mwait(cond, tid)",
            "Sets own element to WaitingOnCPU, waits until the CPU sets Ready",
        ),
        (
            "MTTOP",
            "xt_msignal(cond, tid)",
            "Sets own condition element to Ready so the CPU stops waiting",
        ),
        (
            "MTTOP",
            "xt_barrier_mttop(bar, sense, tid)",
            "Writes own barrier entry, then waits for the sense flip",
        ),
        (
            "MTTOP",
            "xt_mttop_malloc(req, resp, tid, size)",
            "Dynamic allocation proxied through a CPU thread (paper 5.3.2)",
        ),
    ];

    println!("== Table 1: synopsis of basic xthreads API functions");
    println!("{:6} | {:62} | description", "caller", "function");
    println!("{}", "-".repeat(150));
    let mut missing = 0;
    for (caller, sig, desc) in rows {
        let name = sig.split('(').next().unwrap_or(sig);
        let present = program.lookup(name).is_some();
        if !present {
            missing += 1;
        }
        println!(
            "{caller:6} | {sig:62} | {desc} [{}]",
            if present { "ok" } else { "MISSING" }
        );
    }
    println!(
        "\nruntime library: {} instructions of HIR across {} symbols",
        program.text.len(),
        program.symbols.len()
    );
    if missing != 0 {
        return Err(BenchError::Run(format!(
            "{missing} Table 1 function(s) missing from the library"
        )));
    }
    println!("[table1] all API functions present");
    Ok(())
}
