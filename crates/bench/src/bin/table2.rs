//! Table 2: the simulated CCSVM system and the modeled APU configurations.

use ccsvm::SystemConfig;
use ccsvm_apu::ApuConfig;

fn main() {
    println!("== Table 2: simulated CCSVM system configuration");
    print!("{}", SystemConfig::paper_default().describe());

    let apu = ApuConfig::paper_scaled();
    println!("\n== Table 2: modeled AMD APU (A8-3850-like) configuration");
    println!(
        "CPU:    {} out-of-order cores, {:.1} GHz, max IPC {}",
        apu.cpu_chip.n_cpus,
        apu.cpu_chip.cpu.clock.hz() / 1e9,
        apu.cpu_chip.cpu.cycles_per_instr_den as f64 / apu.cpu_chip.cpu.cycles_per_instr_num as f64,
    );
    println!(
        "GPU:    {} SIMD units, {:.0} MHz, VLIW x{} (max {} ops/cycle)",
        apu.gpu_chip.n_mttops,
        apu.gpu_chip.mttop.clock.hz() / 1e6,
        apu.gpu_chip.mttop.vliw_ops_per_lane,
        apu.gpu_chip.n_mttops as u64
            * apu.gpu_chip.mttop.lanes as u64
            * apu.gpu_chip.mttop.vliw_ops_per_lane,
    );
    println!(
        "DRAM:   {} latency (Table 2: 72 ns)",
        apu.cpu_chip.dram.latency
    );
    println!(
        "OpenCL: compile {}  init {}",
        apu.compile_time, apu.init_time
    );
    println!(
        "Driver: launch overhead {}  DMA {} + {:.1} B/ns",
        apu.launch_overhead, apu.dma_latency, apu.dma_bytes_per_ns
    );
    println!("\n(modeled constants are scaled for simulable problem sizes; see EXPERIMENTS.md)");
}
