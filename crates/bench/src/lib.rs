//! Shared harness utilities for the per-figure benchmark binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — smaller sweeps for smoke runs (used by `cargo bench`/CI),
//! * `--sizes a,b,c` — override the swept sizes.
//!
//! Output is a fixed-width table whose rows mirror the corresponding figure
//! in the paper; EXPERIMENTS.md records a captured run next to the paper's
//! reported shape.

use ccsvm::{Machine, SystemConfig};
use ccsvm_engine::Time;
use ccsvm_workloads as wl;

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Reduced sweep for smoke testing.
    pub quick: bool,
    /// Optional size override.
    pub sizes: Option<Vec<u64>>,
}

impl Opts {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics on malformed `--sizes` lists.
    pub fn parse() -> Opts {
        let mut quick = false;
        let mut sizes = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--sizes" => {
                    let list = args.next().expect("--sizes needs a value");
                    sizes = Some(
                        list.split(',')
                            .map(|s| s.trim().parse().expect("size"))
                            .collect(),
                    );
                }
                other => panic!("unknown argument `{other}` (supported: --quick, --sizes a,b,c)"),
            }
        }
        Opts { quick, sizes }
    }

    /// The sweep to use: override > quick > full.
    pub fn pick(&self, full: &[u64], quick: &[u64]) -> Vec<u64> {
        match &self.sizes {
            Some(s) => s.clone(),
            None if self.quick => quick.to_vec(),
            None => full.to_vec(),
        }
    }
}

/// Runs an xthreads program on the CCSVM chip; returns (measured region,
/// DRAM accesses, exit code).
///
/// # Panics
///
/// Panics on compile errors or guest misbehaviour.
pub fn run_ccsvm(src: &str) -> (Time, u64, u64) {
    let mut cfg = SystemConfig::paper_default();
    cfg.max_sim_time = Time::from_ms(60_000);
    let mut m = Machine::new(cfg, wl::build(src));
    let r = m.run();
    let t = wl::region_time(&r.printed, &r.printed_at, r.time);
    let d = wl::region_dram(&r.printed, &r.dram_at_print, r.dram_accesses);
    (t, d, r.exit_code)
}

/// Formats a time as milliseconds with 3 significant decimals.
pub fn ms(t: Time) -> String {
    format!("{:10.4}", t.as_ms())
}

/// Formats a runtime relative to a baseline (paper figures plot
/// log-scale "runtime relative to the AMD CPU core").
pub fn rel(t: Time, base: Time) -> String {
    format!("{:8.3}", t.as_ps() as f64 / base.as_ps() as f64)
}

/// Prints the standard table header for a figure binary.
pub fn header(title: &str, columns: &[&str]) {
    println!("== {title}");
    println!("{}", columns.join(" | "));
    println!("{}", "-".repeat(columns.iter().map(|c| c.len() + 3).sum::<usize>()));
}

/// Asserts a qualitative claim, printing rather than panicking so a full
/// sweep always completes; the harness exits nonzero at the end if any
/// claim failed.
pub struct Claims {
    failures: Vec<String>,
}

impl Claims {
    /// Empty set.
    pub fn new() -> Claims {
        Claims { failures: Vec::new() }
    }

    /// Records a claim.
    pub fn check(&mut self, ok: bool, what: &str) {
        if !ok {
            println!("  !! claim failed: {what}");
            self.failures.push(what.to_string());
        }
    }

    /// Prints a summary and exits nonzero on failures.
    pub fn finish(self, figure: &str) {
        if self.failures.is_empty() {
            println!("[{figure}] all qualitative claims hold");
        } else {
            println!("[{figure}] {} claim(s) FAILED", self.failures.len());
            std::process::exit(1);
        }
    }
}

impl Default for Claims {
    fn default() -> Self {
        Claims::new()
    }
}

/// Minimal wall-clock micro-benchmark harness for the `benches/` targets.
///
/// Criterion is deliberately not used: the workspace must build from a cold
/// cargo cache with no network, so the bench targets run on this
/// dependency-free loop instead. Reported numbers are a coarse regression
/// guard (median-free mean over `iters` runs after one warmup), not a
/// statistics suite.
pub fn bench_loop<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f()); // warmup
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let per = total.as_nanos() / u128::from(iters.max(1));
    println!("{name:<40} {iters:>7} iters  {per:>12} ns/iter");
}
